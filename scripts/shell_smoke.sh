#!/usr/bin/env bash
# Scripted smoke test of the deepeverest_shell example: pipes a fixed
# session (tests/golden/shell_smoke_session.txt) into the binary and diffs
# the output against the committed golden. Numbers are normalised to '#'
# before diffing — activation values are deterministic for one build, but
# the smoke should not fail on last-digit float formatting differences
# across compilers; bit-exactness is covered by the unit/e2e suites.
#
#   scripts/shell_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SHELL_BIN="$BUILD_DIR/example_deepeverest_shell"
if [[ ! -x "$SHELL_BIN" ]]; then
  echo "error: $SHELL_BIN not built" >&2
  exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
"$SHELL_BIN" < "$ROOT/tests/golden/shell_smoke_session.txt" \
  | sed -E 's/[0-9][0-9.]*/#/g' > "$tmp"
diff -u "$ROOT/tests/golden/shell_smoke.expected" "$tmp"
echo "shell smoke OK: session output matches the golden"
