#!/usr/bin/env bash
# Repo lint: project invariants the compiler cannot enforce.
#
# Rules (each can be waived per line with a `lint:allow(<rule>)` comment
# next to a justification):
#
#   console       No std::cout/std::cerr/printf-family output in src/ —
#                 everything goes through common/logging so sinks and
#                 levels apply. src/common/logging.cc's terminal backend
#                 is the one legitimate writer.
#   sleep-under-lock
#                 No sleeping while a scoped lock is held: a sleeping
#                 holder stalls every contender (and under TSan, every
#                 test). Tracked textually per scope, so release-before-
#                 sleep patterns pass.
#   include-guard Headers use DEEPEVEREST_<PATH>_H_ include guards, never
#                 `#pragma once` — one convention, greppable.
#   double-format Doubles are formatted with %.17g only (outside
#                 src/common/json.cc, which owns the canonical
#                 implementation): shorter precisions silently break the
#                 bit-exact wire round-trip the JSON layer guarantees.
#   raw-mutex     No raw std::mutex/std::condition_variable/std locks in
#                 src/ outside common/mutex.h: the annotated
#                 common::Mutex wrappers are what clang's thread-safety
#                 analysis can see; a raw std type is an unchecked lock.
#   simd-intrinsics
#                 No <immintrin.h> (or sibling x86 intrinsic headers) and
#                 no raw _mm*/__m128/__m256/__m512 intrinsics in src/
#                 outside src/kernels/: every SIMD body lives behind the
#                 dispatched KernelTable so the scalar-vs-AVX2 parity
#                 suite covers it and non-x86 builds stay portable.
#   raw-io        No raw POSIX file IO (::open/::write/::rename, fsync,
#                 O_* flags) in src/ outside src/storage/ and
#                 src/persist/: durability lives behind FileStore's
#                 write-temp/fsync/rename primitives so crash-safety is
#                 provable in one place. A stray ::write elsewhere is an
#                 unaudited commit point.
#
# Usage:
#   scripts/lint.sh              lint the repository
#   scripts/lint.sh --self-test  seed one violation per rule into a
#                                scratch tree and assert each is caught
set -u

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "${SCRIPT_DIR}")"

FAIL=0

note() { echo "lint: $*" >&2; }

# --- rule: console -----------------------------------------------------------
check_console() {
  local root="$1"
  [ -d "${root}/src" ] || return 0
  local out
  out="$(grep -rnE '(^|[^[:alnum:]_])(std::cout|std::cerr|(printf|fprintf|puts|fputs)[[:space:]]*\()' \
      "${root}/src" --include='*.h' --include='*.cc' \
      --exclude='logging.cc' --exclude='logging.h' 2>/dev/null |
    grep -v 'lint:allow(console)' |
    grep -vE ':[0-9]+:[[:space:]]*(//|\*)' || true)"
  if [ -n "${out}" ]; then
    while IFS= read -r hit; do
      note "console: raw console output (use DE_LOG): ${hit}"
    done <<<"${out}"
    FAIL=1
  fi
  return 0
}

# --- rule: sleep-under-lock --------------------------------------------------
check_sleep_under_lock() {
  local root="$1"
  [ -d "${root}/src" ] || return 0
  local out
  out="$(find "${root}/src" \( -name '*.cc' -o -name '*.h' \) -print0 2>/dev/null |
    xargs -0 -r awk '
      FNR == 1 { depth = 0; nlocks = 0 }
      {
        raw = $0
        line = $0
        sub(/\/\/.*/, "", line)  # line comments do not hold locks
        if (nlocks > 0 &&
            line ~ /(sleep_for|sleep_until|[^[:alnum:]_](sleep|usleep|nanosleep)[[:space:]]*\()/ &&
            raw !~ /lint:allow\(sleep-under-lock\)/) {
          printf "%s:%d: sleep while holding a lock\n", FILENAME, FNR
        }
        if (line ~ /(MutexLock|lock_guard|unique_lock|scoped_lock|shared_lock)[<[:space:]]/ &&
            line !~ /^[[:space:]]*(class|\/)/) {
          lockdepth[nlocks++] = depth
        }
        open = gsub(/{/, "", line)
        close_ = gsub(/}/, "", line)
        depth += open - close_
        while (nlocks > 0 && depth < lockdepth[nlocks - 1]) nlocks--
      }
    ')"
  if [ -n "${out}" ]; then
    while IFS= read -r hit; do note "sleep-under-lock: ${hit}"; done <<<"${out}"
    FAIL=1
  fi
  return 0
}

# --- rule: include-guard -----------------------------------------------------
check_include_guards() {
  local root="$1"
  local header
  while IFS= read -r -d '' header; do
    if grep -q '#pragma once' "${header}" &&
        ! grep -q 'lint:allow(include-guard)' "${header}"; then
      note "include-guard: ${header}: uses #pragma once (use DEEPEVEREST_*_H_ guards)"
      FAIL=1
    fi
    if ! grep -qE '#ifndef DEEPEVEREST_[A-Z0-9_]*_H_' "${header}" &&
        ! grep -q 'lint:allow(include-guard)' "${header}"; then
      note "include-guard: ${header}: missing DEEPEVEREST_*_H_ include guard"
      FAIL=1
    fi
  done < <(find "${root}/src" "${root}/tests" -name '*.h' -print0 2>/dev/null)
  return 0
}

# --- rule: double-format -----------------------------------------------------
check_double_format() {
  local root="$1"
  [ -d "${root}/src" ] || return 0
  local out
  out="$(grep -rnE '%[-+ #0-9.]*l?[efgEFG]' "${root}/src" \
      --include='*.h' --include='*.cc' 2>/dev/null |
    grep -vE '%\.17g' |
    grep -v '/src/common/json\.cc:' |
    grep -v 'lint:allow(double-format)' |
    grep -vE ':[0-9]+:[[:space:]]*(//|\*)' || true)"  # comments may cite formats
  if [ -n "${out}" ]; then
    while IFS= read -r hit; do
      note "double-format: non-%.17g double formatting (breaks bit-exactness): ${hit}"
    done <<<"${out}"
    FAIL=1
  fi
  return 0
}

# --- rule: raw-mutex ---------------------------------------------------------
check_raw_mutex() {
  local root="$1"
  [ -d "${root}/src" ] || return 0
  local out
  out="$(grep -rnE 'std::(mutex|shared_mutex|recursive_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)[^A-Za-z0-9_]' \
      "${root}/src" --include='*.h' --include='*.cc' 2>/dev/null |
    grep -v '/src/common/mutex\.h:' |
    grep -v 'lint:allow(raw-mutex)' |
    grep -vE ':[0-9]+:[[:space:]]*(//|\*|///)' || true)"
  if [ -n "${out}" ]; then
    while IFS= read -r hit; do
      note "raw-mutex: raw std lock type (use common::Mutex wrappers): ${hit}"
    done <<<"${out}"
    FAIL=1
  fi
  return 0
}

# --- rule: simd-intrinsics ---------------------------------------------------
check_simd_intrinsics() {
  local root="$1"
  [ -d "${root}/src" ] || return 0
  local out
  out="$(grep -rnE '(#[[:space:]]*include[[:space:]]*<(immintrin|x86intrin|[epstnwax]mmintrin|avx[0-9a-z]*intrin)\.h>|(^|[^A-Za-z0-9_])(_mm(256|512)?_[a-z0-9_]+[[:space:]]*\(|__m(128|256|512)[di]?[^A-Za-z0-9_]))' \
      "${root}/src" --include='*.h' --include='*.cc' 2>/dev/null |
    grep -v "^${root}/src/kernels/" |
    grep -v 'lint:allow(simd-intrinsics)' |
    grep -vE ':[0-9]+:[[:space:]]*(//|\*)' || true)"
  if [ -n "${out}" ]; then
    while IFS= read -r hit; do
      note "simd-intrinsics: raw SIMD outside src/kernels/ (add a KernelTable entry instead): ${hit}"
    done <<<"${out}"
    FAIL=1
  fi
  return 0
}

# --- rule: raw-io ------------------------------------------------------------
check_raw_io() {
  local root="$1"
  [ -d "${root}/src" ] || return 0
  local out
  out="$(grep -rnE '(::(open|write|pwrite|rename|fsync|fdatasync)[[:space:]]*\(|(^|[^A-Za-z0-9_:.])(fsync|fdatasync|pwrite)[[:space:]]*\(|[^A-Za-z0-9_]O_(WRONLY|RDWR|CREAT|APPEND|TRUNC|SYNC|DSYNC)[^A-Za-z0-9_])' \
      "${root}/src" --include='*.h' --include='*.cc' 2>/dev/null |
    grep -vE "^${root}/src/(storage|persist)/" |
    grep -v 'lint:allow(raw-io)' |
    grep -vE ':[0-9]+:[[:space:]]*(//|\*|///)' || true)"
  if [ -n "${out}" ]; then
    while IFS= read -r hit; do
      note "raw-io: raw file IO outside src/storage//src/persist/ (go through storage::FileStore): ${hit}"
    done <<<"${out}"
    FAIL=1
  fi
  return 0
}

run_all() {
  local root="$1"
  FAIL=0
  check_console "${root}"
  check_sleep_under_lock "${root}"
  check_include_guards "${root}"
  check_double_format "${root}"
  check_raw_mutex "${root}"
  check_simd_intrinsics "${root}"
  check_raw_io "${root}"
  return "${FAIL}"
}

# --- self-test: every rule must fire on a seeded violation -------------------
self_test() {
  local scratch
  scratch="$(mktemp -d)"
  trap 'rm -rf "${scratch}"' EXIT
  mkdir -p "${scratch}/src/core" "${scratch}/tests"

  local ok=0 bad=0
  expect_fire() {
    local rule="$1"
    if run_all "${scratch}" 2>/dev/null; then
      echo "self-test: FAIL — seeded ${rule} violation not caught" >&2
      bad=1
    else
      echo "self-test: ok — ${rule} caught"
      ok=$((ok + 1))
    fi
    rm -f "${scratch}/src/core/seeded.cc" "${scratch}/src/core/seeded.h"
  }

  printf '#include <iostream>\nvoid f() { std::cout << "x"; }\n' \
      > "${scratch}/src/core/seeded.cc"
  expect_fire console

  printf 'void f() {\n  common::MutexLock lock(&mu_);\n  std::this_thread::sleep_for(t);\n}\n' \
      > "${scratch}/src/core/seeded.cc"
  expect_fire sleep-under-lock

  printf '#pragma once\nstruct S {};\n' > "${scratch}/src/core/seeded.h"
  expect_fire include-guard

  printf 'void f(char* b, double v) { snprintf(b, 8, "%%.6g", v); }\n' \
      > "${scratch}/src/core/seeded.cc"
  expect_fire double-format

  printf '#include <mutex>\nstd::mutex mu;\n' > "${scratch}/src/core/seeded.cc"
  expect_fire raw-mutex

  printf '#include <immintrin.h>\n__m256d f(__m256d v) { return _mm256_add_pd(v, v); }\n' \
      > "${scratch}/src/core/seeded.cc"
  expect_fire simd-intrinsics

  printf '#include <fcntl.h>\nint f(const char* p) { return ::open(p, O_WRONLY | O_CREAT, 0644); }\n' \
      > "${scratch}/src/core/seeded.cc"
  expect_fire raw-io

  # And a clean tree must pass.
  if ! run_all "${scratch}"; then
    echo "self-test: FAIL — clean tree reported a violation" >&2
    bad=1
  else
    echo "self-test: ok — clean tree passes"
  fi

  if [ "${bad}" -ne 0 ]; then
    echo "self-test: FAILED" >&2
    exit 1
  fi
  echo "self-test: all ${ok} rules fire and a clean tree passes"
  exit 0
}

if [ "${1:-}" = "--self-test" ]; then
  self_test
fi

if run_all "${REPO_ROOT}"; then
  echo "lint: clean"
  exit 0
fi
echo "lint: FAILED (see findings above; waive a line only with a justified lint:allow(<rule>) comment)" >&2
exit 1
