#!/usr/bin/env bash
# Crash-safety end-to-end over a real process boundary:
#
#   1. start the example server with a persistent store, ingest while
#      queries run, and commit a snapshot;
#   2. fire an ingest storm and `kill -9` the server mid-storm;
#   3. restart over the same store and assert every acknowledged input
#      survived (dataset_size >= last acked size), the index tier settles
#      with every watermark exactly at the dataset size (nothing skipped,
#      nothing double-indexed), and the readiness line reports recovery;
#   4. prove exactly-once end to end: a THIRD server over a fresh store
#      ingests the identical prefix the restarted server settled at, and
#      both must return byte-identical query entries — a lost or
#      double-merged input would change the top-k.
#
# Usage: scripts/crash_safety_e2e.sh [build_dir]
set -u

BUILD_DIR="${1:-build}"
SERVER="${BUILD_DIR}/example_query_server"
PORT="${DE_E2E_PORT:-18931}"
BASE=200                 # demo-a's deterministic seed dataset size
QUERY='{"model":"demo-a","kind":"highest","layer":1,"neurons":[0,3,6],"k":8}'

if [ ! -x "${SERVER}" ]; then
  echo "error: '${SERVER}' not found; build example_query_server first" >&2
  exit 2
fi

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "${SERVER_PID}" ] && kill -9 "${SERVER_PID}" 2>/dev/null
  wait 2>/dev/null
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for log in "${WORK}"/server*.log; do
    [ -f "${log}" ] && { echo "--- ${log} ---" >&2; cat "${log}" >&2; }
  done
  exit 1
}

url() { echo "http://127.0.0.1:${PORT}$1"; }

wait_ready() {
  for _ in $(seq 1 300); do
    curl -sf "$(url /healthz)" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  return 1
}

# Deterministic ingest inputs: batch of `count` starting at global extra
# index `start`. Both the crashing server and the fresh reference server
# replay the same sequence, so equal dataset sizes mean identical data.
gen_batch() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
start, count = int(sys.argv[1]), int(sys.argv[2])
inputs = []
for i in range(start, start + count):
    values = [((i * 8 + d) * 2654435761 % 1000003) / 1000003.0 - 0.5
              for d in range(8)]
    inputs.append({"values": values, "label": i % 4})
print(json.dumps({"model": "demo-a", "inputs": inputs}))
EOF
}

# Ingest one batch, retrying on 429 backpressure; prints the acked
# dataset_size.
ingest() {
  local body status
  body="$(gen_batch "$1" "$2")"
  for _ in $(seq 1 100); do
    status="$(curl -s -o "${WORK}/ingest_out.json" -w '%{http_code}' \
        -X POST --data "${body}" "$(url /v1/ingest)")"
    if [ "${status}" = "200" ]; then
      python3 -c 'import json;print(json.load(open("'"${WORK}"'/ingest_out.json"))["dataset_size"])'
      return 0
    fi
    [ "${status}" = "429" ] || return 1
    sleep 0.05
  done
  return 1
}

query_entries() {
  curl -sf -X POST --data "${QUERY}" "$(url /v1/query)" |
    python3 -c 'import json,sys;print(json.dumps(json.load(sys.stdin)["entries"]))'
}

# Polls /v1/snapshot until every layer watermark equals dataset_size == $1
# (fully applied, nothing skipped, nothing double-indexed).
wait_applied() {
  local want="$1"
  for _ in $(seq 1 300); do
    if curl -sf "$(url '/v1/snapshot?model=demo-a')" \
        -o "${WORK}/snap.json" 2>/dev/null; then
      if python3 - "${want}" "${WORK}/snap.json" <<'EOF'
import json, sys
want = int(sys.argv[1])
snap = json.load(open(sys.argv[2]))
size = snap["dataset_size"]
assert size == want, f"dataset_size {size} != {want}"
for w in snap["watermarks"]:
    assert w["watermark"] <= size, f"watermark past dataset: {w}"
sys.exit(0 if snap["min_watermark"] == size else 1)
EOF
      then return 0; fi
    fi
    sleep 0.1
  done
  return 1
}

echo "== phase 1: serve + ingest + snapshot (store ${WORK}/store)"
"${SERVER}" --port "${PORT}" --store-dir "${WORK}/store" \
    --snapshot-every 20 > "${WORK}/server1.log" 2>&1 &
SERVER_PID=$!
disown "${SERVER_PID}"
wait_ready || fail "server 1 never became ready"

BASELINE="$(query_entries)" || fail "baseline query failed"
[ -n "${BASELINE}" ] || fail "baseline query returned no entries"

for b in 0 1 2 3; do
  ingest $((b * 10)) 10 >/dev/null || fail "warm ingest batch ${b} failed"
done
wait_applied $((BASE + 40)) || fail "index tier never caught up to $((BASE + 40))"
curl -sf -X POST --data '{"model":"demo-a"}' "$(url /v1/snapshot/save)" \
    >/dev/null || fail "snapshot save failed"

echo "== phase 2: ingest storm, kill -9 mid-storm"
: > "${WORK}/acked.log"
(
  start=40
  while :; do
    size="$(ingest "${start}" 10)" || exit 0  # server died mid-request
    echo "${size}" >> "${WORK}/acked.log"
    start=$((start + 10))
  done
) &
STORM_PID=$!
# A query must still succeed while the storm runs (ingest never blocks
# serving), then the server dies with acks in flight.
for _ in $(seq 1 100); do
  [ "$(wc -l < "${WORK}/acked.log")" -ge 3 ] && break
  sleep 0.05
done
query_entries >/dev/null || fail "query during ingest storm failed"
kill -9 "${SERVER_PID}" 2>/dev/null
SERVER_PID=""
wait "${STORM_PID}" 2>/dev/null
LAST_ACKED="$(tail -n 1 "${WORK}/acked.log")"
[ -n "${LAST_ACKED}" ] || fail "storm never got an ack before the kill"
echo "   last acked dataset_size before kill: ${LAST_ACKED}"

echo "== phase 3: restart over the same store"
"${SERVER}" --port "${PORT}" --store-dir "${WORK}/store" \
    > "${WORK}/server2.log" 2>&1 &
SERVER_PID=$!
disown "${SERVER_PID}"
wait_ready || fail "restarted server never became ready"
grep -Eq 'recovered_inputs=[1-9][0-9]* recovered_layers=[1-9]' \
    "${WORK}/server2.log" ||
  fail "readiness line does not report recovery"

curl -sf "$(url '/v1/snapshot?model=demo-a')" -o "${WORK}/snap.json" ||
  fail "snapshot stats unavailable after restart"
SETTLED="$(python3 -c 'import json;print(json.load(open("'"${WORK}"'/snap.json"))["dataset_size"])')"
[ "${SETTLED}" -ge "${LAST_ACKED}" ] ||
  fail "acked inputs lost: settled ${SETTLED} < acked ${LAST_ACKED}"
wait_applied "${SETTLED}" || fail "restarted index tier never settled"
RESTART_ANSWER="$(query_entries)" || fail "query after restart failed"
echo "   settled dataset_size ${SETTLED}, answers served"

echo "== phase 4: fresh-store reference over the identical prefix"
kill -9 "${SERVER_PID}" 2>/dev/null
SERVER_PID=""
sleep 0.2
"${SERVER}" --port "${PORT}" --store-dir "${WORK}/store-ref" \
    > "${WORK}/server3.log" 2>&1 &
SERVER_PID=$!
disown "${SERVER_PID}"
wait_ready || fail "reference server never became ready"
EXTRA=$((SETTLED - BASE))
start=0
while [ "${start}" -lt "${EXTRA}" ]; do
  count=$((EXTRA - start)); [ "${count}" -gt 50 ] && count=50
  ingest "${start}" "${count}" >/dev/null ||
    fail "reference ingest at ${start} failed"
  start=$((start + count))
done
wait_applied "${SETTLED}" || fail "reference index tier never settled"
REFERENCE_ANSWER="$(query_entries)" || fail "reference query failed"

if [ "${RESTART_ANSWER}" != "${REFERENCE_ANSWER}" ]; then
  echo "restarted : ${RESTART_ANSWER}" >&2
  echo "reference : ${REFERENCE_ANSWER}" >&2
  fail "restarted answers are NOT bit-identical to a fresh ingest of the same prefix (lost or double-indexed input)"
fi

echo "PASS: kill -9 mid-ingest lost nothing, double-indexed nothing; answers bit-identical (${SETTLED} inputs)"
