#!/usr/bin/env bash
# clang-format wrapper over the committed .clang-format.
#
# Usage:
#   scripts/format.sh [files...]          format in place (default: all
#                                         tracked C++ files)
#   scripts/format.sh --check [base-ref]  check formatting of the C++
#                                         files changed since base-ref
#                                         (default: merge-base with
#                                         origin/main, falling back to
#                                         HEAD~1) without modifying them
#
# The check mode deliberately covers changed files only: the gate landed
# without a whole-tree reformat, so untouched files may predate the
# config. Touch a file, own its formatting.
set -u

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "${CLANG_FORMAT}" >/dev/null 2>&1; then
  echo "format: ${CLANG_FORMAT} not found — skipping (install clang-format or set CLANG_FORMAT)" >&2
  exit 0
fi

cpp_filter() { grep -E '\.(cc|h|cpp|hpp)$' || true; }

if [ "${1:-}" = "--check" ]; then
  base_ref="${2:-}"
  if [ -z "${base_ref}" ]; then
    base_ref="$(git merge-base HEAD origin/main 2>/dev/null ||
                git rev-parse HEAD~1 2>/dev/null || echo HEAD)"
  fi
  mapfile -t changed < <(git diff --name-only --diff-filter=ACMR "${base_ref}" -- \
                           'src/*' 'tests/*' 'bench/*' 'examples/*' | cpp_filter)
  if [ "${#changed[@]}" -eq 0 ]; then
    echo "format: no changed C++ files since ${base_ref}"
    exit 0
  fi
  fail=0
  for f in "${changed[@]}"; do
    [ -f "${f}" ] || continue
    if ! "${CLANG_FORMAT}" --dry-run -Werror "${f}" >/dev/null 2>&1; then
      echo "format: ${f} needs formatting (run scripts/format.sh ${f})" >&2
      fail=1
    fi
  done
  if [ "${fail}" -ne 0 ]; then
    echo "format: FAILED" >&2
    exit 1
  fi
  echo "format: ${#changed[@]} changed file(s) clean"
  exit 0
fi

if [ "$#" -gt 0 ]; then
  files=("$@")
else
  mapfile -t files < <(git ls-files 'src/*' 'tests/*' 'bench/*' 'examples/*' |
                         cpp_filter)
fi
for f in "${files[@]}"; do
  [ -f "${f}" ] || continue
  "${CLANG_FORMAT}" -i "${f}"
done
echo "format: formatted ${#files[@]} file(s)"
