// QoS protection under saturation: an interactive session issues queries
// while many batch-class sessions keep an 8-worker service saturated with a
// closed-loop background load. The same workload runs twice — QoS-aware
// dispatch + per-class batch linger ON (default) vs OFF (the flat
// session-round-robin, uniform-linger service of PR 1/2) — and the bench
// reports per-class p50/p99 latency for both.
//
// The QoS contract this demonstrates:
//   - interactive p99 must be at least ~2x lower with QoS on (strict class
//     priority means an interactive query waits for one in-flight query at
//     most, instead of a round-robin turn behind every batch session, and
//     its inference seals partial device batches instead of lingering);
//   - results stay bit-identical in both modes and per-query `inputs_run`
//     equals the sequential reference exactly (receipt-metered attribution
//     is schedule-independent);
//   - batch-class throughput pays only modestly (it keeps the leftover
//     capacity and still lingers for full batches).
//
// Scale knobs:
//   DE_BENCH_INPUTS               dataset size (default 300 here)
//   DE_BENCH_QOS_INTERACTIVE      interactive queries per mode (default 16)
//   DE_BENCH_QOS_BATCH_SESSIONS   background sessions (default 12)
//   DE_BENCH_QOS_OUTSTANDING      in-flight queries per session (default 4)
//   DE_BENCH_QOS_DEVICE_SCALE     device latency multiplier (default 4)
//   DE_BENCH_QOS_THINK_MS         interactive think time (default 5)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/deepeverest.h"
#include "service/query_service.h"

namespace deepeverest {
namespace {

struct QosBenchConfig {
  int interactive_queries = 16;
  int batch_sessions = 12;
  int outstanding_per_session = 4;
  double device_scale = 4.0;
  double think_seconds = 0.005;
};

std::vector<core::QuerySpec> MakeTemplates(const bench::System& system,
                                           int count, int group_size,
                                           int k, uint64_t seed) {
  auto generator = system.NewEngine();
  Rng rng(seed);
  std::vector<core::QuerySpec> templates;
  templates.reserve(static_cast<size_t>(count));
  const bench_util::QueryType types[] = {bench_util::QueryType::kFireMax,
                                         bench_util::QueryType::kSimTop,
                                         bench_util::QueryType::kSimHigh};
  const bench_util::LayerDepth depths[] = {bench_util::LayerDepth::kEarly,
                                           bench_util::LayerDepth::kMid,
                                           bench_util::LayerDepth::kLate};
  for (int i = 0; i < count; ++i) {
    auto generated = bench_util::GenerateQuery(
        generator.get(), types[i % 3], depths[(i / 3) % 3], group_size, &rng);
    DE_CHECK(generated.ok()) << generated.status().ToString();
    core::QuerySpec query;
    if (generated->type == bench_util::QueryType::kFireMax) {
      query.kind = core::QuerySpec::Kind::kHighest;
    } else {
      query.kind = core::QuerySpec::Kind::kMostSimilar;
      query.target_id = generated->target_id;
    }
    query.layer = generated->group.layer;
    query.neurons = std::move(generated->group.neurons);
    query.k = k;
    templates.push_back(std::move(query));
  }
  return templates;
}

std::unique_ptr<core::DeepEverest> MakeEngine(const bench::System& system,
                                              storage::FileStore* store,
                                              int partitions = 0) {
  core::DeepEverestOptions options;
  options.batch_size = system.batch_size;
  // IQA off: cache state would make per-query inputs_run depend on the
  // schedule, which is exactly what the exactness check must exclude.
  options.enable_iqa = false;
  // The preemption arms sweep partition count as the bulk round-length
  // knob: fewer partitions = more inputs per NTA round = longer rounds.
  if (partitions > 0) options.num_partitions_override = partitions;
  auto engine = core::DeepEverest::Create(system.model.get(),
                                          system.dataset.get(), store,
                                          options);
  DE_CHECK(engine.ok()) << engine.status().ToString();
  system.ApplyCostModel((*engine)->inference());
  return std::move(engine.value());
}

/// Sequential canonical run of every template (tie-complete, no device
/// latency): the entries AND inputs_run every service run must reproduce.
std::vector<core::TopKResult> RunReference(
    core::DeepEverest* engine,
    const std::vector<core::QuerySpec>& templates) {
  std::vector<core::TopKResult> reference;
  reference.reserve(templates.size());
  for (const core::QuerySpec& query : templates) {
    auto result = engine->ExecuteSpec(query);
    DE_CHECK(result.ok()) << result.status().ToString();
    reference.push_back(std::move(result.value()));
  }
  return reference;
}

bool SameEntries(const core::TopKResult& a, const core::TopKResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].input_id != b.entries[i].input_id ||
        a.entries[i].value != b.entries[i].value) {
      return false;
    }
  }
  return true;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

struct ModeResult {
  std::vector<double> interactive_latencies;
  std::vector<double> batch_latencies;
  int mismatches = 0;
  int inputs_mismatches = 0;
  int64_t batch_completed = 0;
  /// Wall seconds of the whole loaded phase; the two modes run for
  /// different lengths (the interactive session finishes sooner under QoS),
  /// so batch throughput must be compared as a rate.
  double wall_seconds = 0.0;
  service::ServiceStats stats;
};

ModeResult RunMode(const bench::System& system, const QosBenchConfig& config,
                   bool qos_enabled,
                   const std::vector<core::QuerySpec>& batch_templates,
                   const std::vector<core::TopKResult>& batch_reference,
                   const std::vector<core::QuerySpec>& inter_templates,
                   const std::vector<core::TopKResult>& inter_reference) {
  bench::ScratchDir scratch(qos_enabled ? "qos_on" : "qos_off");
  auto store = storage::FileStore::Open(scratch.path());
  DE_CHECK(store.ok());
  auto engine = MakeEngine(system, &store.value());
  // Warm serving start, then make the simulated device a real latency
  // source (same methodology as bench_service_throughput).
  DE_CHECK(engine->PreprocessAllLayers().ok());
  engine->inference()->mutable_cost_model()->seconds_per_mac *=
      config.device_scale;
  engine->inference()->set_simulate_device_latency(true);

  service::QueryServiceOptions options;
  options.num_workers = 8;
  options.max_queue_depth = 4096;
  options.enable_qos = qos_enabled;
  options.enable_cross_query_batching = true;
  auto service = service::QueryService::Create(engine.get(), options);
  DE_CHECK(service.ok()) << service.status().ToString();

  ModeResult out;
  Stopwatch wall;
  std::mutex result_mu;  // guards out.* from the background threads

  // Saturating closed-loop background: each batch session keeps
  // `outstanding_per_session` queries in the service at all times.
  std::atomic<bool> stop{false};
  std::vector<std::thread> background;
  background.reserve(static_cast<size_t>(config.batch_sessions));
  for (int s = 0; s < config.batch_sessions; ++s) {
    background.emplace_back([&, s] {
      struct InFlight {
        size_t template_index;
        Stopwatch latency;
        std::future<Result<core::TopKResult>> future;
      };
      std::deque<InFlight> inflight;
      auto harvest = [&](InFlight in_flight) {
        auto result = in_flight.future.get();
        const double latency = in_flight.latency.ElapsedSeconds();
        DE_CHECK(result.ok()) << result.status().ToString();
        const core::TopKResult& expected =
            batch_reference[in_flight.template_index];
        std::lock_guard<std::mutex> lock(result_mu);
        ++out.batch_completed;
        out.batch_latencies.push_back(latency);
        if (!SameEntries(expected, result.value())) ++out.mismatches;
        if (expected.stats.inputs_run != result->stats.inputs_run) {
          ++out.inputs_mismatches;
        }
      };
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t index =
            (static_cast<size_t>(s) * 31 + i) % batch_templates.size();
        core::QuerySpec query = batch_templates[index];
        query.session_id = static_cast<uint64_t>(1 + s);
        query.qos = QosClass::kBatch;
        InFlight in_flight;
        in_flight.template_index = index;
        in_flight.latency.Reset();
        auto submitted = (*service)->Submit(std::move(query));
        DE_CHECK(submitted.ok()) << submitted.status().ToString();
        in_flight.future = std::move(submitted.value());
        inflight.push_back(std::move(in_flight));
        ++i;
        while (inflight.size() >=
               static_cast<size_t>(config.outstanding_per_session)) {
          harvest(std::move(inflight.front()));
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        harvest(std::move(inflight.front()));
        inflight.pop_front();
      }
    });
  }

  // Let the backlog build, then run the interactive session in the
  // foreground: submit, wait, think, repeat — a human exploring neurons.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  for (int i = 0; i < config.interactive_queries; ++i) {
    const size_t index = static_cast<size_t>(i) % inter_templates.size();
    core::QuerySpec query = inter_templates[index];
    query.session_id = 1000;
    query.qos = QosClass::kInteractive;
    Stopwatch latency;
    auto result = (*service)->Execute(std::move(query));
    const double seconds = latency.ElapsedSeconds();
    DE_CHECK(result.ok()) << result.status().ToString();
    out.interactive_latencies.push_back(seconds);
    if (!SameEntries(inter_reference[index], result.value())) {
      ++out.mismatches;
    }
    if (inter_reference[index].stats.inputs_run != result->stats.inputs_run) {
      ++out.inputs_mismatches;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        config.think_seconds));
  }

  stop.store(true);
  for (std::thread& thread : background) thread.join();
  (*service)->Drain();
  out.wall_seconds = wall.ElapsedSeconds();
  out.stats = (*service)->Snapshot();
  return out;
}

// ---------------------------------------------------------------------------
// Preemption arm: interactive p99 vs bulk round length.
//
// Two workers are kept saturated by best-effort bulk sessions while an
// interactive session probes in the foreground, across three bulk round
// lengths (partition counts: fewer partitions = longer NTA rounds). Three
// modes per round length:
//   - baseline: no bulk load at all — the floor interactive latency;
//   - preempt on: bulk parked between rounds the moment interactive work
//     arrives (the default service behaviour);
//   - preempt off: interactive waits for a full bulk query run-to-completion.
// The contract: with preemption on, interactive p99 stays near the bulk-free
// baseline regardless of round length, while preemption off degrades as
// rounds lengthen — and every bulk result stays bit-identical to the
// sequential reference with exact inputs_run, parked or not.

enum class PreemptArm { kBaseline, kPreemptOn, kPreemptOff };

struct PreemptArmOut {
  std::vector<double> interactive_latencies;
  int64_t parked_total = 0;
  int64_t resumed_total = 0;
  int mismatches = 0;
  int inputs_mismatches = 0;
};

PreemptArmOut RunPreemptionArm(
    const bench::System& system, const QosBenchConfig& config, int partitions,
    PreemptArm arm, const std::vector<core::QuerySpec>& bulk_templates,
    const std::vector<core::TopKResult>& bulk_reference,
    const std::vector<core::QuerySpec>& inter_templates,
    const std::vector<core::TopKResult>& inter_reference) {
  bench::ScratchDir scratch("preempt_arm");
  auto store = storage::FileStore::Open(scratch.path());
  DE_CHECK(store.ok());
  auto engine = MakeEngine(system, &store.value(), partitions);
  DE_CHECK(engine->PreprocessAllLayers().ok());
  engine->inference()->mutable_cost_model()->seconds_per_mac *=
      config.device_scale;
  engine->inference()->set_simulate_device_latency(true);

  service::QueryServiceOptions options;
  options.num_workers = 2;  // few enough for bulk to monopolise them
  options.max_queue_depth = 4096;
  options.enable_qos = true;
  options.enable_preemption = arm == PreemptArm::kPreemptOn;
  // Batching off: the arm isolates *scheduling* preemption. With the shared
  // batch scheduler on, interactive inference also queues behind bulk's
  // in-flight device batches — real, but a separate axis the main QoS bench
  // already measures (per-class linger + sealing).
  options.enable_cross_query_batching = false;
  auto service = service::QueryService::Create(engine.get(), options);
  DE_CHECK(service.ok()) << service.status().ToString();

  PreemptArmOut out;
  std::mutex result_mu;
  std::atomic<bool> stop{false};
  std::vector<std::thread> background;
  const int bulk_sessions = arm == PreemptArm::kBaseline ? 0 : 2;
  for (int s = 0; s < bulk_sessions; ++s) {
    background.emplace_back([&, s] {
      struct InFlight {
        size_t template_index;
        std::future<Result<core::TopKResult>> future;
      };
      std::deque<InFlight> inflight;
      auto harvest = [&](InFlight in_flight) {
        auto result = in_flight.future.get();
        DE_CHECK(result.ok()) << result.status().ToString();
        const core::TopKResult& expected =
            bulk_reference[in_flight.template_index];
        std::lock_guard<std::mutex> lock(result_mu);
        if (!SameEntries(expected, result.value())) ++out.mismatches;
        if (expected.stats.inputs_run != result->stats.inputs_run) {
          ++out.inputs_mismatches;
        }
      };
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t index =
            (static_cast<size_t>(s) * 13 + i) % bulk_templates.size();
        core::QuerySpec query = bulk_templates[index];
        query.session_id = static_cast<uint64_t>(1 + s);
        query.qos = QosClass::kBestEffort;
        auto submitted = (*service)->Submit(std::move(query));
        DE_CHECK(submitted.ok()) << submitted.status().ToString();
        inflight.push_back(InFlight{index, std::move(submitted.value())});
        ++i;
        while (inflight.size() >= 2) {
          harvest(std::move(inflight.front()));
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        harvest(std::move(inflight.front()));
        inflight.pop_front();
      }
    });
  }

  if (bulk_sessions > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  for (int i = 0; i < config.interactive_queries; ++i) {
    const size_t index = static_cast<size_t>(i) % inter_templates.size();
    core::QuerySpec query = inter_templates[index];
    query.session_id = 1000;
    query.qos = QosClass::kInteractive;
    Stopwatch latency;
    auto result = (*service)->Execute(std::move(query));
    const double seconds = latency.ElapsedSeconds();
    DE_CHECK(result.ok()) << result.status().ToString();
    out.interactive_latencies.push_back(seconds);
    if (!SameEntries(inter_reference[index], result.value())) {
      ++out.mismatches;
    }
    if (inter_reference[index].stats.inputs_run != result->stats.inputs_run) {
      ++out.inputs_mismatches;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.think_seconds));
  }

  stop.store(true);
  for (std::thread& thread : background) thread.join();
  (*service)->Drain();
  const service::ServiceStats stats = (*service)->Snapshot();
  out.parked_total = stats.parked_total;
  out.resumed_total = stats.resumed_total;
  DE_CHECK(stats.parked == 0) << "queries left parked after drain";
  return out;
}

void RunPreemptionBench(const bench::System& system,
                        const QosBenchConfig& config) {
  bench_util::PrintBanner(
      std::cout, "Preemptive execution: interactive p99 vs bulk round length",
      "2 workers, 2 best-effort sessions x 2 outstanding, " +
          std::to_string(config.interactive_queries) +
          " interactive queries per arm");

  // Heavy bulk work; light interactive probes (fresh generators per arm
  // sweep would re-randomise — one set shared across all partition counts).
  const std::vector<core::QuerySpec> bulk_templates =
      MakeTemplates(system, 6, /*group_size=*/8, /*k=*/20, 9301);
  const std::vector<core::QuerySpec> inter_templates =
      MakeTemplates(system, 6, /*group_size=*/4, /*k=*/10, 9402);

  bench_util::TablePrinter table(
      {"partitions", "baseline p99", "preempt-on p99", "preempt-off p99",
       "on/base", "off/base", "parked", "resumed"});
  int64_t parked_sum = 0;
  int mismatches = 0;
  int inputs_mismatches = 0;
  for (const int partitions : {2, 8, 32}) {
    // Fresh reference per round length: entries are partition-invariant but
    // per-query inputs_run is not, and exactness is asserted on both.
    std::vector<core::TopKResult> bulk_reference, inter_reference;
    {
      bench::ScratchDir scratch("preempt_ref");
      auto store = storage::FileStore::Open(scratch.path());
      DE_CHECK(store.ok());
      auto engine = MakeEngine(system, &store.value(), partitions);
      DE_CHECK(engine->PreprocessAllLayers().ok());
      bulk_reference = RunReference(engine.get(), bulk_templates);
      inter_reference = RunReference(engine.get(), inter_templates);
    }
    PreemptArmOut arms[3];
    const PreemptArm kinds[3] = {PreemptArm::kBaseline, PreemptArm::kPreemptOn,
                                 PreemptArm::kPreemptOff};
    for (int a = 0; a < 3; ++a) {
      arms[a] = RunPreemptionArm(system, config, partitions, kinds[a],
                                 bulk_templates, bulk_reference,
                                 inter_templates, inter_reference);
      mismatches += arms[a].mismatches;
      inputs_mismatches += arms[a].inputs_mismatches;
    }
    parked_sum += arms[1].parked_total;
    const double base = Percentile(arms[0].interactive_latencies, 0.99);
    const double on = Percentile(arms[1].interactive_latencies, 0.99);
    const double off = Percentile(arms[2].interactive_latencies, 0.99);
    table.AddRow({std::to_string(partitions), bench_util::FormatSeconds(base),
                  bench_util::FormatSeconds(on), bench_util::FormatSeconds(off),
                  bench_util::FormatDouble(base > 0.0 ? on / base : 0.0, 2),
                  bench_util::FormatDouble(base > 0.0 ? off / base : 0.0, 2),
                  std::to_string(arms[1].parked_total),
                  std::to_string(arms[1].resumed_total)});
  }
  table.Print(std::cout);

  // The greppable line CI's smoke asserts on: at least one park happened and
  // every result (bulk and interactive, all arms) was bit-identical to the
  // sequential reference with exact inputs_run.
  std::printf("\nPREEMPTION_SMOKE: parked=%lld identical=%s\n",
              static_cast<long long>(parked_sum),
              (mismatches == 0 && inputs_mismatches == 0) ? "yes" : "no");
}

void Run() {
  bench::Scale scale = bench::GetScale();
  if (bench::EnvInt("DE_BENCH_INPUTS", 0) <= 0) {
    scale.vgg_inputs = 300;  // ratios, not absolute scale, are the point
  }
  QosBenchConfig config;
  config.interactive_queries = static_cast<int>(
      bench::EnvInt("DE_BENCH_QOS_INTERACTIVE", config.interactive_queries));
  config.batch_sessions = static_cast<int>(
      bench::EnvInt("DE_BENCH_QOS_BATCH_SESSIONS", config.batch_sessions));
  config.outstanding_per_session = static_cast<int>(bench::EnvInt(
      "DE_BENCH_QOS_OUTSTANDING", config.outstanding_per_session));
  config.device_scale = static_cast<double>(
      bench::EnvInt("DE_BENCH_QOS_DEVICE_SCALE", 4));
  config.think_seconds =
      static_cast<double>(bench::EnvInt("DE_BENCH_QOS_THINK_MS", 5)) * 1e-3;

  const bench::System system = bench::MakeVggSystem(scale);
  bench_util::PrintBanner(
      std::cout, "Service QoS: interactive latency under batch saturation",
      system.name + ", 8 workers, " +
          std::to_string(config.batch_sessions) + " batch sessions x " +
          std::to_string(config.outstanding_per_session) + " outstanding, " +
          std::to_string(config.interactive_queries) +
          " interactive queries");

  // Heavy batch work; light interactive probes.
  const std::vector<core::QuerySpec> batch_templates =
      MakeTemplates(system, 18, /*group_size=*/8, /*k=*/20, 8101);
  const std::vector<core::QuerySpec> inter_templates =
      MakeTemplates(system, 8, /*group_size=*/4, /*k=*/10, 8202);

  // Canonical reference on its own engine (warm, no device latency).
  std::vector<core::TopKResult> batch_reference, inter_reference;
  {
    bench::ScratchDir scratch("qos_ref");
    auto store = storage::FileStore::Open(scratch.path());
    DE_CHECK(store.ok());
    auto engine = MakeEngine(system, &store.value());
    DE_CHECK(engine->PreprocessAllLayers().ok());
    batch_reference = RunReference(engine.get(), batch_templates);
    inter_reference = RunReference(engine.get(), inter_templates);
  }

  bench_util::TablePrinter table({"mode", "int p50", "int p99", "batch p50",
                                  "batch p99", "batch qps", "int fill",
                                  "batch fill", "sealed", "identical",
                                  "inputs_exact"});
  double p99_off = 0.0, p99_on = 0.0;
  for (const bool qos_enabled : {false, true}) {
    const ModeResult mode =
        RunMode(system, config, qos_enabled, batch_templates, batch_reference,
                inter_templates, inter_reference);
    const double p99 = Percentile(mode.interactive_latencies, 0.99);
    (qos_enabled ? p99_on : p99_off) = p99;
    const auto& interactive_stats =
        mode.stats.per_class[QosIndex(QosClass::kInteractive)];
    const auto& batch_stats =
        mode.stats.per_class[QosIndex(QosClass::kBatch)];
    table.AddRow(
        {qos_enabled ? "qos on" : "qos off",
         bench_util::FormatSeconds(Percentile(mode.interactive_latencies,
                                              0.50)),
         bench_util::FormatSeconds(p99),
         bench_util::FormatSeconds(Percentile(mode.batch_latencies, 0.50)),
         bench_util::FormatSeconds(Percentile(mode.batch_latencies, 0.99)),
         bench_util::FormatDouble(
             mode.wall_seconds > 0.0
                 ? static_cast<double>(mode.batch_completed) /
                       mode.wall_seconds
                 : 0.0,
             1),
         bench_util::FormatDouble(interactive_stats.batch_fill, 2),
         bench_util::FormatDouble(batch_stats.batch_fill, 2),
         std::to_string(mode.stats.batching.sealed_by_interactive),
         mode.mismatches == 0
             ? "yes"
             : ("NO (" + std::to_string(mode.mismatches) + ")"),
         mode.inputs_mismatches == 0
             ? "yes"
             : ("NO (" + std::to_string(mode.inputs_mismatches) + ")")});
  }
  table.Print(std::cout);

  if (p99_on > 0.0) {
    std::printf(
        "\nQoS protection: interactive p99 %.1fx lower with QoS on "
        "(%.1f ms -> %.1f ms)%s\n",
        p99_off / p99_on, p99_off * 1e3, p99_on * 1e3,
        p99_off / p99_on >= 2.0 ? "" : "  [WARNING: below the 2x target]");
  }

  RunPreemptionBench(system, config);
}

}  // namespace
}  // namespace deepeverest

int main() {
  deepeverest::Run();
  return 0;
}
