// Reproduces **Figure 11**: speedups of DeepEverest with Inter-Query
// Acceleration against DeepEverest without it, on sequences of related
// queries. Sequence 1: 5-neuron groups, 1 neuron replaced per query;
// Sequence 2: 10-neuron groups, 2 replaced. nPartitions=16, ratio=0 as in
// §5.6.
//
// Expected shape: speedup ~1x on the first query (cold cache), then a
// consistent multi-x speedup; smaller for the early layer, whose wide rows
// crowd the cache.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "baselines/query_engine.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/iqa_cache.h"
#include "core/nta.h"

namespace deepeverest {
namespace {

// (sequence/depth) -> query position -> median speedup over targets.
std::map<std::string, std::map<int, double>>& Cells() {
  static auto& cells = *new std::map<std::string, std::map<int, double>>();
  return cells;
}

const std::vector<int>& ReportPositions() {
  static const auto& positions = *new std::vector<int>{0, 1, 4, 9, 19, 29};
  return positions;
}

void RunSequence(const bench::System& system, const std::string& label,
                 int group_size, int num_replace) {
  const bench::Scale scale = bench::GetScale();
  auto engine = system.NewEngine();
  auto generator = system.NewEngine();
  const int length = scale.iqa_queries;

  for (bench_util::LayerDepth depth :
       {bench_util::LayerDepth::kEarly, bench_util::LayerDepth::kMid,
        bench_util::LayerDepth::kLate}) {
    const int layer = bench_util::PickLayer(*system.model, depth);
    auto matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
    DE_CHECK(matrix.ok());
    auto index = core::LayerIndex::Build(
        *matrix, core::LayerIndexConfig{16, 0.0});  // §5.6 configuration
    DE_CHECK(index.ok());

    // speedups[pos] over several random targets.
    std::map<int, std::vector<double>> speedups;
    Rng rng(1100 + group_size * 10 + static_cast<int>(depth));
    const int num_targets = 3;
    for (int t = 0; t < num_targets; ++t) {
      const uint32_t target = static_cast<uint32_t>(
          rng.NextUint64(system.dataset->size()));
      auto sequence = bench_util::GenerateIqaSequence(
          generator.get(), target, layer, group_size, num_replace, length,
          &rng);
      DE_CHECK(sequence.ok()) << sequence.status().ToString();

      core::IqaCache cache(64ull << 20);  // scaled stand-in for 1 GB
      for (int q = 0; q < length; ++q) {
        const core::NeuronGroup& group = (*sequence)[static_cast<size_t>(q)];
        core::NtaEngine nta(engine.get(), &index.value());
        core::NtaOptions options;
        options.k = 20;

        core::QueryContext with_ctx;
        with_ctx.iqa = &cache;
        Stopwatch with_watch;
        DE_CHECK(nta.MostSimilarTo(group, target, options, &with_ctx).ok());
        const double with_iqa = with_watch.ElapsedSeconds();

        Stopwatch without_watch;
        DE_CHECK(nta.MostSimilarTo(group, target, options).ok());
        const double without_iqa = without_watch.ElapsedSeconds();

        speedups[q].push_back(without_iqa / with_iqa);
      }
    }
    const std::string key =
        label + "/" + bench_util::LayerDepthToString(depth);
    for (int pos : ReportPositions()) {
      if (pos < length) Cells()[key][pos] = bench::Median(speedups[pos]);
    }
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);

  struct SequenceDef {
    const char* label;
    int group_size;
    int num_replace;
  };
  const SequenceDef sequences[] = {{"Sequence 1 (n=5, r=1)", 5, 1},
                                   {"Sequence 2 (n=10, r=2)", 10, 2}};
  for (const SequenceDef& seq : sequences) {
    benchmark::RegisterBenchmark(
        ("Fig11/" + std::string(seq.label)).c_str(),
        [&vgg, seq](benchmark::State& state) {
          for (auto _ : state) {
            RunSequence(vgg, seq.label, seq.group_size, seq.num_replace);
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const SequenceDef& seq : sequences) {
    bench_util::PrintBanner(
        std::cout,
        "Figure 11: IQA speedups on related-query sequences, " + vgg.name,
        std::string(seq.label) + ", " + std::to_string(scale.iqa_queries) +
            " SimHigh queries, 64 MB cache, nPartitions=16, ratio=0");
    std::vector<std::string> headers = {"Layer"};
    for (int pos : ReportPositions()) {
      if (pos < scale.iqa_queries) {
        headers.push_back("query " + std::to_string(pos + 1));
      }
    }
    bench_util::TablePrinter table(headers);
    for (const char* depth : {"early", "mid", "late"}) {
      const std::string key = std::string(seq.label) + "/" + depth;
      std::vector<std::string> row = {depth};
      for (int pos : ReportPositions()) {
        if (pos < scale.iqa_queries) {
          row.push_back(bench_util::FormatSpeedup(Cells()[key][pos]));
        }
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  return 0;
}
