// Reproduces **Figure 9**: speedups against ReprocessAll achieved by
// DeepEverest when the automatic configuration selector (§4.7.2) is given
// different storage budgets. Expected shape: high speedups across budgets
// (the selector is robust), increasing with the budget, and larger for
// medium groups than for large groups.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "baselines/query_engine.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/config.h"
#include "core/nta.h"

namespace deepeverest {
namespace {

using bench_util::QueryType;

// (system/query/group) -> budget % -> speedup.
std::map<std::string, std::map<int, double>>& Cells() {
  static auto& cells = *new std::map<std::string, std::map<int, double>>();
  return cells;
}

std::map<std::string, core::SystemConfig>& Configs() {
  static auto& configs = *new std::map<std::string, core::SystemConfig>();
  return configs;
}

const std::vector<int>& BudgetSweep() {
  static const auto& sweep = *new std::vector<int>{5, 10, 20, 40};
  return sweep;
}

void RunSweep(const bench::System& system) {
  const bench::Scale scale = bench::GetScale();
  auto engine = system.NewEngine();
  auto generator = system.NewEngine();
  const int layer =
      bench_util::PickLayer(*system.model, bench_util::LayerDepth::kLate);
  auto matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
  DE_CHECK(matrix.ok());

  Stopwatch ra_watch;
  auto ra_matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
  DE_CHECK(ra_matrix.ok());
  const double ra_seconds = ra_watch.ElapsedSeconds();

  int64_t total_neurons = 0;
  for (int l = 0; l < system.model->num_layers(); ++l) {
    total_neurons += system.model->NeuronCount(l);
  }
  const uint64_t full_bytes =
      static_cast<uint64_t>(total_neurons) * system.dataset->size() * 4;

  for (int budget_percent : BudgetSweep()) {
    const core::SystemConfig config = core::SelectConfig(
        full_bytes * static_cast<uint64_t>(budget_percent) / 100,
        system.batch_size, system.dataset->size(), total_neurons);
    Configs()[system.name + "/" + std::to_string(budget_percent)] = config;
    auto index = core::LayerIndex::Build(*matrix, config.ToLayerConfig());
    DE_CHECK(index.ok());
    for (QueryType type : {QueryType::kSimTop, QueryType::kSimHigh}) {
      for (int group_size : {3, 10}) {
        Rng rng(9000 + budget_percent * 10 + group_size +
                static_cast<int>(type));
        std::vector<double> times;
        for (int trial = 0; trial < scale.trials; ++trial) {
          const uint32_t target = static_cast<uint32_t>(
              rng.NextUint64(system.dataset->size()));
          auto group = bench_util::MakeNeuronGroup(
              generator.get(), target, layer,
              type == QueryType::kSimTop ? bench_util::GroupKind::kTop
                                         : bench_util::GroupKind::kRandHigh,
              group_size, &rng);
          DE_CHECK(group.ok());
          core::NtaEngine nta(engine.get(), &index.value());
          core::NtaOptions options;
          options.k = 20;
          Stopwatch watch;
          DE_CHECK(nta.MostSimilarTo(*group, target, options).ok());
          times.push_back(watch.ElapsedSeconds());
        }
        const std::string key = system.name + "/" +
                                bench_util::QueryTypeToString(type) + "/g" +
                                std::to_string(group_size);
        Cells()[key][budget_percent] = ra_seconds / bench::Median(times);
      }
    }
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);
  const bench::System resnet = bench::MakeResnetSystem(scale);
  for (const bench::System* system : {&vgg, &resnet}) {
    benchmark::RegisterBenchmark(
        ("Fig9/" + system->name).c_str(),
        [system](benchmark::State& state) {
          for (auto _ : state) RunSweep(*system);
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const bench::System* system : {&vgg, &resnet}) {
    std::string config_line = "Selected configs:";
    for (int budget : BudgetSweep()) {
      const auto& config =
          Configs()[system->name + "/" + std::to_string(budget)];
      config_line += " " + std::to_string(budget) +
                     "%%->(P=" + std::to_string(config.num_partitions) +
                     ",r=" + bench_util::FormatDouble(config.mai_ratio, 3) +
                     ")";
    }
    bench_util::PrintBanner(
        std::cout,
        "Figure 9: speedups vs ReprocessAll across storage budgets, " +
            system->name,
        config_line);
    std::vector<std::string> headers = {"Query"};
    for (int budget : BudgetSweep()) {
      headers.push_back(std::to_string(budget) + "% budget");
    }
    bench_util::TablePrinter table(headers);
    for (const char* type : {"SimTop", "SimHigh"}) {
      for (int group_size : {3, 10}) {
        const std::string key = system->name + "/" + type + "/g" +
                                std::to_string(group_size);
        std::vector<std::string> row = {std::string(type) + "/g" +
                                        std::to_string(group_size)};
        for (int budget : BudgetSweep()) {
          row.push_back(bench_util::FormatSpeedup(Cells()[key][budget]));
        }
        table.AddRow(row);
      }
    }
    table.Print(std::cout);
  }
  return 0;
}
