// Reproduces **Figure 5 (a-f)**: end-to-end individual query times and
// storage for DeepEverest (20% budget, indexes prebuilt as in §5.2) vs
// PreprocessAll and ReprocessAll, across both systems x {FireMax, SimTop,
// SimHigh} x {early, mid, late} x group sizes {1, 3, 10}.
//
// Expected shape (paper §5.2): DeepEverest approaches (sometimes beats)
// PreprocessAll at ~20% of its storage, and beats ReprocessAll by large
// factors that shrink as the group grows (curse of dimensionality).
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/preprocess_all.h"
#include "baselines/reprocess_all.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/deepeverest.h"

namespace deepeverest {
namespace {

using bench_util::LayerDepth;
using bench_util::QueryType;

struct Row {
  std::string system;
  std::string query;
  double de_seconds = 0.0;
  double pa_seconds = 0.0;
  double ra_seconds = 0.0;
  int64_t de_inputs = 0;
};

struct SystemFixture {
  bench::System system;
  bench::ScratchDir scratch;
  std::unique_ptr<storage::FileStore> de_store;
  std::unique_ptr<storage::FileStore> pa_store;
  std::unique_ptr<core::DeepEverest> de;
  std::unique_ptr<nn::InferenceEngine> baseline_engine;
  std::unique_ptr<nn::InferenceEngine> generator_engine;
  std::unique_ptr<baselines::PreprocessAll> preprocess_all;
  std::unique_ptr<baselines::ReprocessAll> reprocess_all;
  uint64_t de_storage = 0;
  uint64_t pa_storage = 0;

  SystemFixture(bench::System sys, const std::string& tag)
      : system(std::move(sys)), scratch("fig5-" + tag) {
    auto de_dir = storage::FileStore::Open(scratch.path() + "/de");
    auto pa_dir = storage::FileStore::Open(scratch.path() + "/pa");
    DE_CHECK(de_dir.ok() && pa_dir.ok());
    de_store = std::make_unique<storage::FileStore>(std::move(*de_dir));
    pa_store = std::make_unique<storage::FileStore>(std::move(*pa_dir));

    core::DeepEverestOptions options;
    options.batch_size = system.batch_size;
    options.storage_budget_fraction = 0.2;
    auto created = core::DeepEverest::Create(
        system.model.get(), system.dataset.get(), de_store.get(), options);
    DE_CHECK(created.ok()) << created.status().ToString();
    de = std::move(*created);
    // §5.2 prebuilds the indexes for all layers before the benchmark.
    DE_CHECK(de->PreprocessAllLayers().ok());
    de_storage = de->PersistedIndexBytes().ValueOr(0);

    baseline_engine = system.NewEngine();
    generator_engine = system.NewEngine();
    preprocess_all = std::make_unique<baselines::PreprocessAll>(
        baseline_engine.get(), pa_store.get());
    DE_CHECK(preprocess_all->Preprocess().ok());
    pa_storage = preprocess_all->StorageBytes().ValueOr(0);
    reprocess_all =
        std::make_unique<baselines::ReprocessAll>(baseline_engine.get());
  }
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

void RunConfig(SystemFixture* fixture, QueryType type, LayerDepth depth,
               int group_size, Row* row) {
  const bench::Scale scale = bench::GetScale();
  const int k = 20;
  Rng rng(static_cast<uint64_t>(type) * 1000 +
          static_cast<uint64_t>(depth) * 100 + group_size);
  std::vector<double> de_times, pa_times, ra_times;
  std::vector<double> de_inputs;
  for (int trial = 0; trial < scale.trials; ++trial) {
    auto query = bench_util::GenerateQuery(fixture->generator_engine.get(),
                                           type, depth, group_size, &rng);
    DE_CHECK(query.ok()) << query.status().ToString();

    auto run = [&](auto&& fn) {
      Stopwatch watch;
      auto result = fn();
      DE_CHECK(result.ok()) << result.status().ToString();
      return std::make_pair(watch.ElapsedSeconds(),
                            result->stats.inputs_run);
    };

    if (type == QueryType::kFireMax) {
      auto [t_de, in_de] = run(
          [&] { return fixture->de->TopKHighest(query->group, k); });
      auto [t_pa, in_pa] = run([&] {
        return fixture->preprocess_all->TopKHighest(query->group, k, nullptr);
      });
      auto [t_ra, in_ra] = run([&] {
        return fixture->reprocess_all->TopKHighest(query->group, k, nullptr);
      });
      de_times.push_back(t_de);
      pa_times.push_back(t_pa);
      ra_times.push_back(t_ra);
      de_inputs.push_back(static_cast<double>(in_de));
    } else {
      auto [t_de, in_de] = run([&] {
        return fixture->de->TopKMostSimilar(query->target_id, query->group, k);
      });
      auto [t_pa, in_pa] = run([&] {
        return fixture->preprocess_all->TopKMostSimilar(query->target_id,
                                                        query->group, k,
                                                        nullptr);
      });
      auto [t_ra, in_ra] = run([&] {
        return fixture->reprocess_all->TopKMostSimilar(query->target_id,
                                                       query->group, k,
                                                       nullptr);
      });
      de_times.push_back(t_de);
      pa_times.push_back(t_pa);
      ra_times.push_back(t_ra);
      de_inputs.push_back(static_cast<double>(in_de));
    }
  }
  row->de_seconds = bench::Median(de_times);
  row->pa_seconds = bench::Median(pa_times);
  row->ra_seconds = bench::Median(ra_times);
  row->de_inputs = static_cast<int64_t>(bench::Median(de_inputs));
}

void RegisterSystem(SystemFixture* fixture) {
  for (QueryType type :
       {QueryType::kFireMax, QueryType::kSimTop, QueryType::kSimHigh}) {
    for (LayerDepth depth :
         {LayerDepth::kEarly, LayerDepth::kMid, LayerDepth::kLate}) {
      for (int group_size : {1, 3, 10}) {
        const std::string name =
            "Fig5/" + fixture->system.name + "/" +
            bench_util::QueryTypeToString(type) + "/" +
            bench_util::LayerDepthToString(depth) + "/g" +
            std::to_string(group_size);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [fixture, type, depth, group_size,
             name](benchmark::State& state) {
              Row row;
              row.system = fixture->system.name;
              row.query = name.substr(name.find('/') + 1);
              for (auto _ : state) {
                RunConfig(fixture, type, depth, group_size, &row);
              }
              state.counters["de_inputs"] =
                  static_cast<double>(row.de_inputs);
              Rows().push_back(row);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  SystemFixture vgg(bench::MakeVggSystem(scale), "vgg");
  SystemFixture resnet(bench::MakeResnetSystem(scale), "resnet");
  RegisterSystem(&vgg);
  RegisterSystem(&resnet);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const SystemFixture* fixture : {&vgg, &resnet}) {
    const uint64_t accounted = fixture->de->AnalyticIndexBytes();
    bench_util::PrintBanner(
        std::cout,
        "Figure 5: individual query times, " + fixture->system.name,
        "DeepEverest storage: " + bench_util::FormatBytes(accounted) +
            " accounted (" +
            bench_util::FormatDouble(
                100.0 * static_cast<double>(accounted) /
                    static_cast<double>(fixture->pa_storage),
                1) +
            "% of PreprocessAll's " +
            bench_util::FormatBytes(fixture->pa_storage) +
            "); on-disk incl. per-partition bounds: " +
            bench_util::FormatBytes(fixture->de_storage) +
            " (bounds are negligible at the paper's 10k-input scale but "
            "visible at this benchmark scale)");
    bench_util::TablePrinter table({"Query", "DeepEverest", "PreprocessAll",
                                    "ReprocessAll", "DE speedup vs RA",
                                    "DE inputs run"});
    for (const auto& row : Rows()) {
      if (row.system != fixture->system.name) continue;
      table.AddRow({row.query.substr(row.query.find('/') + 1),
                    bench_util::FormatSeconds(row.de_seconds),
                    bench_util::FormatSeconds(row.pa_seconds),
                    bench_util::FormatSeconds(row.ra_seconds),
                    bench_util::FormatSpeedup(row.ra_seconds / row.de_seconds),
                    std::to_string(row.de_inputs)});
    }
    table.Print(std::cout);
  }
  return 0;
}
