// Reproduces **Table 1**: query-time breakdown for the baselines on a
// top-k most-similar query (SimHigh, |G| = 3, late layer). The paper's
// point: DNN inference dominates end-to-end time for every method that
// does not reduce the number of inputs fed to the DNN — ReprocessAll, CTA,
// k-d tree, and ball tree all cost (almost exactly) the same.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/cta.h"
#include "baselines/kd_tree.h"
#include "baselines/query_engine.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace {

struct Row {
  std::string method;
  double total_seconds = 0.0;
  double inference_seconds = 0.0;
};

std::vector<Row>& Rows() {
  static auto& rows = *new std::vector<Row>();
  return rows;
}

bench::System& TheSystem() {
  static auto& system = *new bench::System(
      bench::MakeResnetSystem(bench::GetScale()));
  return system;
}

bench_util::GeneratedQuery& TheQuery() {
  static auto& query = *new bench_util::GeneratedQuery([] {
    auto engine = TheSystem().NewEngine();
    Rng rng(55);
    auto q = bench_util::GenerateQuery(engine.get(),
                                       bench_util::QueryType::kSimHigh,
                                       bench_util::LayerDepth::kLate, 3, &rng);
    DE_CHECK(q.ok()) << q.status().ToString();
    return *q;
  }());
  return query;
}

/// Computes the layer's activation matrix (this is the inference cost every
/// method pays) and times it separately.
storage::LayerActivationMatrix ComputeMatrixTimed(nn::InferenceEngine* engine,
                                                  int layer,
                                                  double* inference_seconds) {
  Stopwatch watch;
  auto matrix = baselines::ComputeLayerMatrix(engine, layer);
  DE_CHECK(matrix.ok()) << matrix.status().ToString();
  *inference_seconds = watch.ElapsedSeconds();
  return std::move(matrix).value();
}

void BM_Method(benchmark::State& state, const std::string& method) {
  const bench_util::GeneratedQuery& query = TheQuery();
  const int k = 20;
  for (auto _ : state) {
    auto engine = TheSystem().NewEngine();
    Stopwatch total;
    double inference_seconds = 0.0;
    storage::LayerActivationMatrix matrix = ComputeMatrixTimed(
        engine.get(), query.group.layer, &inference_seconds);
    const std::vector<float> target_acts = baselines::TargetActsFromMatrix(
        matrix, query.group.neurons, query.target_id);

    if (method == "ReprocessAll") {
      benchmark::DoNotOptimize(core::ScanMostSimilar(
          matrix, query.group.neurons, target_acts, k, core::L2Distance(),
          true, query.target_id));
    } else if (method == "CTA [11]") {
      benchmark::DoNotOptimize(baselines::CtaMostSimilar(
          matrix, query.group.neurons, target_acts, k, core::L2Distance(),
          true, query.target_id));
    } else if (method == "K-D Tree [7]") {
      // The tree can only be built *after* the group's activations exist.
      baselines::KdTree tree(
          baselines::MakePointMatrix(matrix, query.group.neurons));
      benchmark::DoNotOptimize(
          tree.Query(target_acts.data(), k, query.target_id));
    } else {  // Ball Tree [41]
      baselines::BallTree tree(
          baselines::MakePointMatrix(matrix, query.group.neurons));
      benchmark::DoNotOptimize(
          tree.Query(target_acts.data(), k, query.target_id));
    }
    Rows().push_back(Row{method, total.ElapsedSeconds(), inference_seconds});
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  for (const char* method :
       {"ReprocessAll", "CTA [11]", "K-D Tree [7]", "Ball Tree [41]"}) {
    benchmark::RegisterBenchmark(("Table1/" + std::string(method)).c_str(),
                                 [method](benchmark::State& state) {
                                   BM_Method(state, method);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench_util::PrintBanner(
      std::cout, "Table 1: query time breakdown (SimHigh, |G|=3, late layer)",
      "System: " + TheSystem().name + ", " +
          std::to_string(TheSystem().dataset->size()) +
          " inputs. Expected shape: DNN inference dominates every method.");
  bench_util::TablePrinter table(
      {"Method", "Total query time", "DNN inference time", "Inference share"});
  for (const auto& row : Rows()) {
    table.AddRow({row.method, bench_util::FormatSeconds(row.total_seconds),
                  bench_util::FormatSeconds(row.inference_seconds),
                  bench_util::FormatDouble(
                      100.0 * row.inference_seconds / row.total_seconds, 1) +
                      "%"});
  }
  table.Print(std::cout);
  return 0;
}
