// Reproduces **Figure 10**: cumulative preprocessing times, layer by layer
// (first to last), for PreprocessAll vs DeepEverest in the extreme case
// where every layer is indexed. Components: DNN inference, index
// computation (DeepEverest only), and force-synced data persistence.
//
// Expected shape: the two methods' totals are comparable — DeepEverest's
// index computation + small writes cost about as much as PreprocessAll's
// large writes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/deepeverest.h"
#include "storage/activation_store.h"

namespace deepeverest {
namespace {

struct Cumulative {
  std::vector<double> inference;
  std::vector<double> index;
  std::vector<double> persist;
};

struct SystemResult {
  std::string system;
  Cumulative deepeverest;
  Cumulative preprocess_all;
};

std::vector<SystemResult>& Results() {
  static auto& results = *new std::vector<SystemResult>();
  return results;
}

void RunSystem(const bench::System& system) {
  SystemResult result;
  result.system = system.name;

  // --- DeepEverest: per-layer incremental builds, front to back, with
  // force-synced persistence (the paper force-writes when timing).
  {
    bench::ScratchDir scratch("fig10-de");
    auto store = storage::FileStore::Open(scratch.path());
    DE_CHECK(store.ok());
    core::DeepEverestOptions options;
    options.batch_size = system.batch_size;
    options.storage_budget_fraction = 0.2;
    options.force_sync = true;
    auto de = core::DeepEverest::Create(system.model.get(),
                                        system.dataset.get(), &store.value(),
                                        options);
    DE_CHECK(de.ok());
    double inference = 0.0, index = 0.0, persist = 0.0;
    for (int layer = 0; layer < system.model->num_layers(); ++layer) {
      core::PreprocessTimings timings;
      DE_CHECK((*de)->index_manager()->EnsureIndex(layer, nullptr, &timings)
                   .ok());
      inference += timings.inference_seconds;
      index += timings.index_seconds;
      persist += timings.persist_seconds;
      result.deepeverest.inference.push_back(inference);
      result.deepeverest.index.push_back(index);
      result.deepeverest.persist.push_back(persist);
    }
  }

  // --- PreprocessAll: a single inference pass (charged as it progresses
  // through layers) followed by per-layer force-synced writes.
  {
    bench::ScratchDir scratch("fig10-pa");
    auto store = storage::FileStore::Open(scratch.path());
    DE_CHECK(store.ok());
    storage::ActivationStore activations(&store.value());
    auto engine = system.NewEngine();
    const uint32_t n = system.dataset->size();

    // One pass computing everything (inference cost is attributed to the
    // final layer since the pass is shared — we record it as a flat line
    // reaching the total at the last layer, matching how the paper plots a
    // single preprocessing job).
    Stopwatch watch;
    std::vector<storage::LayerActivationMatrix> matrices;
    for (int layer = 0; layer < system.model->num_layers(); ++layer) {
      matrices.push_back(storage::LayerActivationMatrix::Make(
          n, static_cast<uint64_t>(system.model->NeuronCount(layer))));
    }
    std::vector<Tensor> outputs;
    for (uint32_t id = 0; id < n; ++id) {
      DE_CHECK(engine->ComputeAllLayers(id, &outputs).ok());
      for (int layer = 0; layer < system.model->num_layers(); ++layer) {
        const Tensor& out = outputs[static_cast<size_t>(layer)];
        std::copy(out.vec().begin(), out.vec().end(),
                  matrices[static_cast<size_t>(layer)].MutableRow(id));
      }
    }
    const double total_inference = watch.ElapsedSeconds();

    double persist = 0.0;
    for (int layer = 0; layer < system.model->num_layers(); ++layer) {
      Stopwatch persist_watch;
      DE_CHECK(activations
                   .Save(system.model->name(), layer,
                         matrices[static_cast<size_t>(layer)], /*sync=*/true)
                   .ok());
      persist += persist_watch.ElapsedSeconds();
      // Attribute inference cost proportionally to cumulative layer MACs so
      // the per-layer series is meaningful.
      const double frac =
          static_cast<double>(system.model->CumulativeMacs(layer)) /
          static_cast<double>(
              system.model->CumulativeMacs(system.model->num_layers() - 1));
      result.preprocess_all.inference.push_back(total_inference * frac);
      result.preprocess_all.index.push_back(0.0);
      result.preprocess_all.persist.push_back(persist);
    }
  }
  Results().push_back(std::move(result));
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);
  const bench::System resnet = bench::MakeResnetSystem(scale);
  for (const bench::System* system : {&vgg, &resnet}) {
    benchmark::RegisterBenchmark(
        ("Fig10/" + system->name).c_str(),
        [system](benchmark::State& state) {
          for (auto _ : state) RunSystem(*system);
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const auto& result : Results()) {
    bench_util::PrintBanner(
        std::cout,
        "Figure 10: cumulative preprocessing time (all layers), " +
            result.system,
        "Per-layer cumulative seconds; persistence is force-synced.");
    const size_t layers = result.deepeverest.inference.size();
    bench_util::TablePrinter table(
        {"Layer", "DE inference", "DE index", "DE persist", "DE total",
         "PA inference", "PA persist", "PA total"});
    for (size_t layer = 0; layer < layers; ++layer) {
      // Print every other layer to keep the table readable.
      if (layer % 2 != 0 && layer + 1 != layers) continue;
      const double de_total = result.deepeverest.inference[layer] +
                              result.deepeverest.index[layer] +
                              result.deepeverest.persist[layer];
      const double pa_total = result.preprocess_all.inference[layer] +
                              result.preprocess_all.persist[layer];
      table.AddRow(
          {std::to_string(layer),
           bench_util::FormatSeconds(result.deepeverest.inference[layer]),
           bench_util::FormatSeconds(result.deepeverest.index[layer]),
           bench_util::FormatSeconds(result.deepeverest.persist[layer]),
           bench_util::FormatSeconds(de_total),
           bench_util::FormatSeconds(result.preprocess_all.inference[layer]),
           bench_util::FormatSeconds(result.preprocess_all.persist[layer]),
           bench_util::FormatSeconds(pa_total)});
    }
    table.Print(std::cout);
  }
  return 0;
}
