// Ingest bench + correctness harness (pmembench-style: one binary,
// deterministic workload, machine-readable JSON out).
//
// Self-contained like bench_kernels — no Google Benchmark — because the
// committed BENCH_ingest.json snapshot and the CI crash-safety job must be
// reproducible everywhere the library builds. Three arms:
//
//   durable_ingest      inputs/s acknowledged (fsynced log append + publish)
//   concurrent          ingest racing a query loop; every answer observed is
//                       verified BIT-IDENTICAL to a fresh engine built over
//                       exactly the prefix the query pinned ([0, version))
//   snapshot_restart    SaveSnapshot cost/size + warm-restart recovery time
//                       (asserted to run zero dataset inference)
//
// Exit status: 0 on success, 1 on any bit-equality or recovery failure.
//
// Env knobs:
//   DE_BENCH_INGEST_BASE     base dataset inputs            (default 400)
//   DE_BENCH_INGEST_BATCHES  ingest batches                 (default 12)
//   DE_BENCH_INGEST_BATCH    inputs per batch               (default 16)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/deepeverest.h"
#include "src/data/dataset.h"
#include "src/nn/model_zoo.h"
#include "src/persist/ingest.h"
#include "src/storage/file_store.h"

namespace {

using namespace deepeverest;  // NOLINT: bench brevity

constexpr uint64_t kSeed = 29;
constexpr int kDims = 8;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) {
    std::fprintf(stderr, "bench_ingest: ignoring bad %s='%s'\n", name, v);
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::DeepEverestOptions EngineOptions() {
  core::DeepEverestOptions options;
  options.batch_size = 32;
  options.num_partitions_override = 8;
  options.mai_ratio_override = 0.05;
  return options;
}

data::Dataset MakeBaseDataset(uint32_t num_inputs) {
  Rng rng(kSeed + 1);
  data::Dataset dataset("bench-ingest", Shape({kDims}));
  for (uint32_t i = 0; i < num_inputs; ++i) {
    Tensor input(Shape({kDims}));
    for (int d = 0; d < kDims; ++d) {
      input[d] = static_cast<float>(rng.NextGaussian());
    }
    dataset.Add(std::move(input), static_cast<int>(i % 4));
  }
  return dataset;
}

std::vector<service::IngestInput> MakeExtras(uint32_t count) {
  Rng rng(kSeed + 1000);
  std::vector<service::IngestInput> extras;
  for (uint32_t i = 0; i < count; ++i) {
    service::IngestInput input;
    input.values.resize(kDims);
    for (float& v : input.values) v = static_cast<float>(rng.NextGaussian());
    input.label = static_cast<int>(i % 4);
    extras.push_back(std::move(input));
  }
  return extras;
}

/// A scoped temp store (removed on destruction).
struct ScopedStore {
  std::string dir;
  std::unique_ptr<storage::FileStore> store;

  ScopedStore() = default;
  ScopedStore(ScopedStore&& other) noexcept
      : dir(std::move(other.dir)), store(std::move(other.store)) {
    other.dir.clear();
  }
  ScopedStore(const ScopedStore&) = delete;
  ScopedStore& operator=(const ScopedStore&) = delete;

  static ScopedStore Make(const char* tag) {
    ScopedStore s;
    auto dir = storage::MakeTempDir(tag);
    if (!dir.ok()) {
      std::fprintf(stderr, "temp dir: %s\n", dir.status().ToString().c_str());
      std::exit(1);
    }
    s.dir = *dir;
    auto store = storage::FileStore::Open(s.dir);
    if (!store.ok()) {
      std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
      std::exit(1);
    }
    s.store = std::make_unique<storage::FileStore>(std::move(*store));
    return s;
  }
  ~ScopedStore() {
    store.reset();
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

bool SameEntries(const core::TopKResult& a, const core::TopKResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].input_id != b.entries[i].input_id) return false;
    if (a.entries[i].value != b.entries[i].value) return false;
  }
  return true;
}

}  // namespace

int main() {
  const uint32_t base = static_cast<uint32_t>(
      EnvSize("DE_BENCH_INGEST_BASE", 400));
  const uint32_t batches = static_cast<uint32_t>(
      EnvSize("DE_BENCH_INGEST_BATCHES", 12));
  const uint32_t batch = static_cast<uint32_t>(
      EnvSize("DE_BENCH_INGEST_BATCH", 16));
  const uint32_t total_extras = batches * batch;

  auto model = nn::MakeTinyMlp(kDims, kSeed);
  const int layer = model->activation_layers()[0];
  const core::NeuronGroup group{layer, {0, 3, 6}};
  const int k = 8;
  const std::vector<service::IngestInput> extras = MakeExtras(total_extras);

  ScopedStore main_store = ScopedStore::Make("bench_ingest");
  data::Dataset dataset = MakeBaseDataset(base);
  auto engine = core::DeepEverest::Create(model.get(), &dataset,
                                          main_store.store.get(),
                                          EngineOptions());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  auto warmup = (*engine)->TopKHighest(group, k);  // builds the index
  if (!warmup.ok()) {
    std::fprintf(stderr, "warmup: %s\n", warmup.status().ToString().c_str());
    return 1;
  }
  auto queue = persist::IngestQueue::Create(engine->get(), &dataset,
                                            main_store.store.get(), {});
  if (!queue.ok()) {
    std::fprintf(stderr, "queue: %s\n", queue.status().ToString().c_str());
    return 1;
  }

  // --- Arm 1+2: concurrent ingest vs query -------------------------------
  // A query loop races the ingest; every result pins a dataset version and
  // is recorded for post-hoc verification against fresh engines.
  std::atomic<bool> ingest_done{false};
  std::vector<std::pair<int64_t, core::TopKResult>> observed;
  std::atomic<int64_t> query_failures{0};
  std::thread querier([&] {
    while (!ingest_done.load(std::memory_order_acquire)) {
      auto result = (*engine)->TopKHighest(group, k);
      if (!result.ok()) {
        std::fprintf(stderr, "query during ingest: %s\n",
                     result.status().ToString().c_str());
        query_failures.fetch_add(1);
        return;
      }
      observed.emplace_back(result->stats.dataset_version,
                            std::move(result.value()));
    }
  });

  const double ingest_t0 = NowSeconds();
  for (uint32_t b = 0; b < batches; ++b) {
    std::vector<service::IngestInput> slice(
        extras.begin() + static_cast<ptrdiff_t>(b) * batch,
        extras.begin() + static_cast<ptrdiff_t>(b + 1) * batch);
    for (;;) {
      auto ack = (*queue)->Ingest(slice);
      if (ack.ok()) break;
      if (ack.status().code() == StatusCode::kResourceExhausted) {
        (*queue)->WaitIdle(0.05);  // backpressure: let the applier drain
        continue;
      }
      std::fprintf(stderr, "ingest: %s\n", ack.status().ToString().c_str());
      return 1;
    }
  }
  const double ingest_ack_seconds = NowSeconds() - ingest_t0;
  if (!(*queue)->WaitIdle(120.0)) {
    std::fprintf(stderr, "applier did not drain\n");
    return 1;
  }
  const double ingest_applied_seconds = NowSeconds() - ingest_t0;
  ingest_done.store(true, std::memory_order_release);
  querier.join();
  if (query_failures.load() != 0) return 1;

  // Final answer at the fully applied watermark joins the verification set.
  {
    auto final_result = (*engine)->TopKHighest(group, k);
    if (!final_result.ok()) return 1;
    observed.emplace_back(final_result->stats.dataset_version,
                          std::move(final_result.value()));
  }

  // --- Verification: bit-identical at every pinned watermark -------------
  std::map<int64_t, const core::TopKResult*> by_version;
  int mismatches = 0;
  for (const auto& [version, result] : observed) {
    auto [it, inserted] = by_version.emplace(version, &result);
    if (!inserted && !SameEntries(*it->second, result)) {
      std::fprintf(stderr, "two answers at version %lld differ\n",
                   static_cast<long long>(version));
      ++mismatches;
    }
  }
  for (const auto& [version, result] : by_version) {
    ScopedStore ref_store = ScopedStore::Make("bench_ingest_ref");
    data::Dataset ref_dataset = MakeBaseDataset(base);
    for (int64_t i = base; i < version; ++i) {
      const service::IngestInput& extra =
          extras[static_cast<size_t>(i - base)];
      ref_dataset.Add(Tensor(Shape({kDims}), extra.values), extra.label);
    }
    auto ref_engine = core::DeepEverest::Create(
        model.get(), &ref_dataset, ref_store.store.get(), EngineOptions());
    if (!ref_engine.ok()) return 1;
    auto ref = (*ref_engine)->TopKHighest(group, k);
    if (!ref.ok()) return 1;
    if (!SameEntries(*ref, *result)) {
      std::fprintf(stderr,
                   "answer at pinned version %lld is NOT bit-identical to a "
                   "fresh scan over that prefix\n",
                   static_cast<long long>(version));
      ++mismatches;
    }
  }

  // --- Arm 3: snapshot + warm restart ------------------------------------
  const double snap_t0 = NowSeconds();
  const Status snapped = (*queue)->SaveSnapshot();
  const double snapshot_seconds = NowSeconds() - snap_t0;
  if (!snapped.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", snapped.ToString().c_str());
    return 1;
  }
  const service::IngestStats stats = (*queue)->Stats();
  (*queue)->Shutdown();

  double restart_seconds = 0.0;
  uint32_t recovered_layers = 0;
  int64_t restart_inference_inputs = -1;
  {
    data::Dataset dataset2 = MakeBaseDataset(base);
    auto engine2 = core::DeepEverest::Create(model.get(), &dataset2,
                                             main_store.store.get(),
                                             EngineOptions());
    if (!engine2.ok()) return 1;
    const double t0 = NowSeconds();
    auto queue2 = persist::IngestQueue::Create(engine2->get(), &dataset2,
                                               main_store.store.get(), {});
    if (!queue2.ok()) {
      std::fprintf(stderr, "restart: %s\n",
                   queue2.status().ToString().c_str());
      return 1;
    }
    (*queue2)->WaitIdle(120.0);
    restart_seconds = NowSeconds() - t0;
    recovered_layers = (*queue2)->recovered_layers();
    restart_inference_inputs = (*engine2)->inference()->stats().inputs_run;
    auto recovered = (*engine2)->TopKHighest(group, k);
    if (!recovered.ok() ||
        !SameEntries(*recovered, *by_version.rbegin()->second)) {
      std::fprintf(stderr, "restarted engine answers differently\n");
      ++mismatches;
    }
    (*queue2)->Shutdown();
  }
  if (restart_inference_inputs != 0) {
    std::fprintf(stderr,
                 "warm restart ran inference on %lld inputs (want 0)\n",
                 static_cast<long long>(restart_inference_inputs));
    ++mismatches;
  }

  // --- Report ------------------------------------------------------------
  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::strftime(date, sizeof(date), "%Y-%m-%d", std::localtime(&now));
  std::printf("{\n");
  std::printf("  \"bench\": \"bench_ingest\",\n");
  std::printf("  \"date\": \"%s\",\n", date);
  std::printf(
      "  \"workload\": {\"base_inputs\": %u, \"batches\": %u, "
      "\"batch_size\": %u, \"k\": %d, \"neurons\": 3},\n",
      base, batches, batch, k);
  std::printf("  \"results\": [\n");
  std::printf(
      "    {\"arm\": \"durable_ingest\", \"inputs_acked_per_s\": %.6g, "
      "\"ack_seconds\": %.6g},\n",
      total_extras / ingest_ack_seconds, ingest_ack_seconds);
  std::printf(
      "    {\"arm\": \"concurrent\", \"inputs_applied_per_s\": %.6g, "
      "\"apply_seconds\": %.6g, \"queries_during_ingest\": %zu, "
      "\"distinct_watermarks_verified\": %zu, \"bit_identical\": %s},\n",
      total_extras / ingest_applied_seconds, ingest_applied_seconds,
      observed.size() - 1, by_version.size(),
      mismatches == 0 ? "true" : "false");
  std::printf(
      "    {\"arm\": \"snapshot_restart\", \"snapshot_seconds\": %.6g, "
      "\"snapshot_bytes\": %lld, \"restart_seconds\": %.6g, "
      "\"recovered_layers\": %u, \"restart_inference_inputs\": %lld}\n",
      snapshot_seconds, static_cast<long long>(stats.snapshot_bytes),
      restart_seconds, recovered_layers,
      static_cast<long long>(restart_inference_inputs));
  std::printf("  ]\n");
  std::printf("}\n");
  return mismatches == 0 ? 0 : 1;
}
