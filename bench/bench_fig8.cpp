// Reproduces **Figure 8**: speedups of FireMax and SimTop queries against
// ReprocessAll as the MAI `ratio` varies, with nPartitions fixed at 16
// (late layer). Expected shape: a large jump from ratio 0 to any non-zero
// ratio, then a plateau (and eventually decline, as loading a larger MAI
// costs more than it saves).
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "baselines/query_engine.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace {

using bench_util::QueryType;

// (system, query type + group size) -> ratio -> speedup vs ReprocessAll.
std::map<std::string, std::map<double, double>>& Cells() {
  static auto& cells = *new std::map<std::string, std::map<double, double>>();
  return cells;
}

const std::vector<double>& RatioSweep() {
  static const auto& sweep =
      *new std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.1, 0.2};
  return sweep;
}

void RunSweep(const bench::System& system) {
  const bench::Scale scale = bench::GetScale();
  auto engine = system.NewEngine();
  auto generator = system.NewEngine();
  const int layer =
      bench_util::PickLayer(*system.model, bench_util::LayerDepth::kLate);
  auto matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
  DE_CHECK(matrix.ok());

  // ReprocessAll reference time: one full pass + scan (measured once per
  // group size; the scan cost is group-size independent to first order).
  Stopwatch ra_watch;
  auto ra_matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
  DE_CHECK(ra_matrix.ok());
  const double ra_seconds = ra_watch.ElapsedSeconds();

  for (double ratio : RatioSweep()) {
    auto index = core::LayerIndex::Build(
        *matrix, core::LayerIndexConfig{16, ratio});
    DE_CHECK(index.ok());
    for (QueryType type : {QueryType::kFireMax, QueryType::kSimTop}) {
      for (int group_size : {1, 3, 10}) {
        Rng rng(8000 + static_cast<int>(ratio * 1000) + group_size +
                static_cast<int>(type));
        std::vector<double> times;
        for (int trial = 0; trial < scale.trials; ++trial) {
          const uint32_t target = static_cast<uint32_t>(
              rng.NextUint64(system.dataset->size()));
          auto group = bench_util::MakeNeuronGroup(
              generator.get(), target, layer, bench_util::GroupKind::kTop,
              group_size, &rng);
          DE_CHECK(group.ok());
          core::NtaEngine nta(engine.get(), &index.value());
          core::NtaOptions options;
          options.k = 20;
          Stopwatch watch;
          if (type == QueryType::kFireMax) {
            DE_CHECK(nta.Highest(*group, options).ok());
          } else {
            DE_CHECK(nta.MostSimilarTo(*group, target, options).ok());
          }
          times.push_back(watch.ElapsedSeconds());
        }
        const std::string key = system.name + "/" +
                                bench_util::QueryTypeToString(type) + "/g" +
                                std::to_string(group_size);
        Cells()[key][ratio] = ra_seconds / bench::Median(times);
      }
    }
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);
  const bench::System resnet = bench::MakeResnetSystem(scale);
  for (const bench::System* system : {&vgg, &resnet}) {
    benchmark::RegisterBenchmark(
        ("Fig8/" + system->name).c_str(),
        [system](benchmark::State& state) {
          for (auto _ : state) RunSweep(*system);
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const bench::System* system : {&vgg, &resnet}) {
    bench_util::PrintBanner(
        std::cout,
        "Figure 8: speedup vs ReprocessAll when varying MAI ratio, " +
            system->name,
        "Late layer, nPartitions=16, k=20. ratio=0 disables MAI.");
    std::vector<std::string> headers = {"Query"};
    for (double r : RatioSweep()) {
      headers.push_back("ratio=" + bench_util::FormatDouble(r, 2));
    }
    bench_util::TablePrinter table(headers);
    for (const char* type : {"FireMax", "SimTop"}) {
      for (int group_size : {1, 3, 10}) {
        const std::string key = system->name + "/" + type + "/g" +
                                std::to_string(group_size);
        std::vector<std::string> row = {std::string(type) + "/g" +
                                        std::to_string(group_size)};
        for (double r : RatioSweep()) {
          row.push_back(bench_util::FormatSpeedup(Cells()[key][r]));
        }
        table.AddRow(row);
      }
    }
    table.Print(std::cout);
  }
  return 0;
}
