// Concurrent query service throughput: queries/sec at 1-16 worker threads
// against the sequential baseline, on the synthetic MiniVgg system.
//
// The engine simulates accelerator dispatch latency (the repo's GPU cost
// model, applied as real blocking time), so worker threads overlap device
// waits exactly as a serving tier overlaps GPU dispatches — which is where
// concurrent serving throughput comes from, and why this bench scales past
// the host's CPU-core count. Indexes are pre-built (warm serving start);
// every thread count runs the identical workload and results are verified
// bit-identical to the sequential baseline.
//
// Expected shape: near-linear queries/sec scaling while workers overlap
// device waits (>= 3x at 8 workers), flattening once admission or the
// host CPU saturates. A cross-query batching table then compares the
// 8-worker service with and without the BatchingInferenceScheduler:
// batching must strictly reduce total batches_run and simulated GPU
// seconds at bit-identical results, with every query's inputs_run equal to
// its sequential-run value (receipt-exact attribution). A final table
// shows the same service with the sharded IQA cache enabled: hits skip
// inference entirely, raising absolute throughput; per-shard counters stay
// balanced.
//
// Scale knobs: DE_BENCH_INPUTS (default 400 here), DE_BENCH_SERVICE_QUERIES
// (workload length, default 32), DE_BENCH_SERVICE_DEVICE_SCALE (device
// latency multiplier, default 8 — see RunSuite).
#include <algorithm>
#include <cstdio>
#include <future>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/deepeverest.h"
#include "service/query_service.h"

namespace deepeverest {
namespace {

struct WorkloadResult {
  double seconds = 0.0;
  std::vector<core::TopKResult> results;
};

std::vector<core::QuerySpec> MakeWorkload(const bench::System& system,
                                          int count) {
  auto generator = system.NewEngine();
  Rng rng(7021);
  std::vector<core::QuerySpec> workload;
  workload.reserve(static_cast<size_t>(count));
  const bench_util::QueryType types[] = {bench_util::QueryType::kFireMax,
                                         bench_util::QueryType::kSimTop,
                                         bench_util::QueryType::kSimHigh};
  const bench_util::LayerDepth depths[] = {bench_util::LayerDepth::kEarly,
                                           bench_util::LayerDepth::kMid,
                                           bench_util::LayerDepth::kLate};
  for (int i = 0; i < count; ++i) {
    auto generated = bench_util::GenerateQuery(
        generator.get(), types[i % 3], depths[(i / 3) % 3],
        /*group_size=*/8, &rng);
    DE_CHECK(generated.ok()) << generated.status().ToString();
    core::QuerySpec query;
    if (generated->type == bench_util::QueryType::kFireMax) {
      query.kind = core::QuerySpec::Kind::kHighest;
    } else {
      query.kind = core::QuerySpec::Kind::kMostSimilar;
      query.target_id = generated->target_id;
    }
    query.layer = generated->group.layer;
    query.neurons = std::move(generated->group.neurons);
    query.k = 20;
    query.session_id = static_cast<uint64_t>(i % 4);  // 4 client sessions
    workload.push_back(std::move(query));
  }
  return workload;
}

// Sequential reference through the same canonical ExecuteSpec path the
// service runs (tie-complete NTA termination), so per-query `inputs_run`
// is directly comparable: the service must reproduce these values
// *exactly*, thread count and batching notwithstanding — that is what
// receipt-based attribution guarantees.
WorkloadResult RunSequential(core::DeepEverest* engine,
                             const std::vector<core::QuerySpec>& workload) {
  WorkloadResult out;
  out.results.reserve(workload.size());
  Stopwatch watch;
  for (const core::QuerySpec& query : workload) {
    auto result = engine->ExecuteSpec(query);
    DE_CHECK(result.ok()) << result.status().ToString();
    out.results.push_back(std::move(result.value()));
  }
  out.seconds = watch.ElapsedSeconds();
  return out;
}

WorkloadResult RunService(core::DeepEverest* engine,
                          const std::vector<core::QuerySpec>& workload,
                          int num_workers, service::ServiceStats* stats,
                          bool cross_query_batching = false) {
  service::QueryServiceOptions options;
  options.num_workers = num_workers;
  options.max_queue_depth = workload.size();
  options.enable_cross_query_batching = cross_query_batching;
  auto svc = service::QueryService::Create(engine, options);
  DE_CHECK(svc.ok()) << svc.status().ToString();

  WorkloadResult out;
  Stopwatch watch;
  std::vector<std::future<Result<core::TopKResult>>> futures;
  futures.reserve(workload.size());
  for (const core::QuerySpec& query : workload) {
    auto submitted = (*svc)->Submit(query);
    DE_CHECK(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted.value()));
  }
  out.results.reserve(futures.size());
  for (auto& future : futures) {
    auto result = future.get();
    DE_CHECK(result.ok()) << result.status().ToString();
    out.results.push_back(std::move(result.value()));
  }
  out.seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = (*svc)->Snapshot();
  return out;
}

int CountMismatches(const std::vector<core::TopKResult>& expected,
                    const std::vector<core::TopKResult>& actual);

// Cross-query batching at 8 workers vs. the same service without it: with
// co-scheduled queries filling each other's device batches, total launches
// (batches_run, fractional shares summed over queries) and simulated GPU
// seconds must drop at bit-identical results — and receipt attribution must
// keep every query's inputs_run equal to its sequential-run value.
void RunBatchingComparison(core::DeepEverest* engine,
                           const std::vector<core::QuerySpec>& workload,
                           const WorkloadResult& sequential) {
  double seq_batches = 0.0, seq_gpu = 0.0;
  for (const core::TopKResult& r : sequential.results) {
    seq_batches += r.stats.batches_run;
    seq_gpu += r.stats.simulated_gpu_seconds;
  }

  bench_util::TablePrinter table({"mode", "wall", "queries/sec", "batches",
                                  "gpu_s", "fill", "shared", "identical",
                                  "inputs_exact"});
  table.AddRow({"sequential", bench_util::FormatSeconds(sequential.seconds),
                bench_util::FormatDouble(
                    static_cast<double>(workload.size()) / sequential.seconds,
                    1),
                bench_util::FormatDouble(seq_batches, 1),
                bench_util::FormatDouble(seq_gpu, 3), "-", "-", "ref", "ref"});

  struct Mode {
    const char* name;
    bool batching;
  };
  for (const Mode& mode : {Mode{"8w unbatched", false}, Mode{"8w batched", true}}) {
    service::ServiceStats stats;
    const WorkloadResult run =
        RunService(engine, workload, /*num_workers=*/8, &stats, mode.batching);
    double batches = 0.0, gpu = 0.0;
    int inputs_mismatch = 0;
    for (size_t q = 0; q < run.results.size(); ++q) {
      batches += run.results[q].stats.batches_run;
      gpu += run.results[q].stats.simulated_gpu_seconds;
      if (run.results[q].stats.inputs_run !=
          sequential.results[q].stats.inputs_run) {
        ++inputs_mismatch;
      }
    }
    const int mismatches = CountMismatches(sequential.results, run.results);
    table.AddRow(
        {mode.name, bench_util::FormatSeconds(run.seconds),
         bench_util::FormatDouble(
             static_cast<double>(workload.size()) / run.seconds, 1),
         bench_util::FormatDouble(batches, 1),
         bench_util::FormatDouble(gpu, 3),
         stats.batching_enabled
             ? bench_util::FormatDouble(
                   stats.batching.AverageFill(stats.batch_size), 2)
             : "-",
         stats.batching_enabled
             ? std::to_string(stats.batching.shared_batches)
             : "-",
         mismatches == 0 ? "yes" : ("NO (" + std::to_string(mismatches) + ")"),
         inputs_mismatch == 0
             ? "yes"
             : ("NO (" + std::to_string(inputs_mismatch) + ")")});
  }
  table.Print(std::cout);
}

int CountMismatches(const std::vector<core::TopKResult>& expected,
                    const std::vector<core::TopKResult>& actual) {
  int mismatches = 0;
  for (size_t q = 0; q < expected.size(); ++q) {
    const auto& e = expected[q].entries;
    const auto& a = actual[q].entries;
    if (e.size() != a.size()) {
      ++mismatches;
      continue;
    }
    for (size_t i = 0; i < e.size(); ++i) {
      if (e[i].input_id != a[i].input_id || e[i].value != a[i].value) {
        ++mismatches;
        break;
      }
    }
  }
  return mismatches;
}

core::DeepEverestOptions EngineOptions(const bench::System& system,
                                       bool enable_iqa) {
  core::DeepEverestOptions options;
  options.batch_size = system.batch_size;
  options.enable_iqa = enable_iqa;
  options.iqa_capacity_bytes = 64ull << 20;
  options.iqa_shards = 8;
  return options;
}

void RunSuite(const bench::System& system, bool enable_iqa,
              const std::vector<core::QuerySpec>& workload,
              bool batching_comparison = false) {
  bench::ScratchDir scratch("svc_bench");
  auto store = storage::FileStore::Open(scratch.path());
  DE_CHECK(store.ok());
  auto engine = core::DeepEverest::Create(system.model.get(),
                                          system.dataset.get(), &store.value(),
                                          EngineOptions(system, enable_iqa));
  DE_CHECK(engine.ok()) << engine.status().ToString();
  system.ApplyCostModel((*engine)->inference());
  // The system's per-MAC time is calibrated so *simulated* timings match the
  // paper's K80 on the mini stand-in model. For wall-clock serving, the
  // device wait has to be judged against the stand-in's real CPU cost, and
  // the full-size VGG16 this system models is ~500x the stand-in's MACs —
  // so the unscaled dispatch would be far too cheap relative to the host
  // CPU work. Scale it up (default 8x) to restore a serving-realistic
  // device:CPU ratio.
  const double device_scale = static_cast<double>(
      bench::EnvInt("DE_BENCH_SERVICE_DEVICE_SCALE", 8));
  (*engine)->inference()->mutable_cost_model()->seconds_per_mac *=
      device_scale;

  // Warm serving start: build every index up front, without device-latency
  // simulation (preprocessing throughput is Figure 10's experiment, not
  // this one).
  DE_CHECK((*engine)->PreprocessAllLayers().ok());
  (*engine)->inference()->set_simulate_device_latency(true);

  auto reset_cache = [&] {
    if ((*engine)->iqa_cache() != nullptr) (*engine)->iqa_cache()->Clear();
  };

  reset_cache();
  const WorkloadResult sequential = RunSequential(engine->get(), workload);
  const double seq_qps =
      static_cast<double>(workload.size()) / sequential.seconds;

  bench_util::TablePrinter table({"workers", "wall", "queries/sec", "speedup",
                                  "p50", "p99", "util", "identical"});
  table.AddRow({"seq", bench_util::FormatSeconds(sequential.seconds),
                bench_util::FormatDouble(seq_qps, 1), "1.0x", "-", "-", "-",
                "ref"});

  for (int workers : {1, 2, 4, 8, 16}) {
    reset_cache();
    service::ServiceStats stats;
    // Batching off here: this table isolates worker scaling (PR 1's
    // methodology); the batching comparison below isolates coalescing.
    const WorkloadResult run =
        RunService(engine->get(), workload, workers, &stats);
    const double qps = static_cast<double>(workload.size()) / run.seconds;
    const int mismatches = CountMismatches(sequential.results, run.results);
    table.AddRow(
        {std::to_string(workers), bench_util::FormatSeconds(run.seconds),
         bench_util::FormatDouble(qps, 1),
         bench_util::FormatSpeedup(qps / seq_qps),
         bench_util::FormatSeconds(stats.p50_latency_seconds),
         bench_util::FormatSeconds(stats.p99_latency_seconds),
         bench_util::FormatDouble(stats.worker_utilization, 2),
         mismatches == 0 ? "yes" : ("NO (" + std::to_string(mismatches) +
                                    ")")});
    if (enable_iqa && workers == 8) {
      int64_t hits = 0, misses = 0;
      for (const auto& shard : stats.iqa_shards) {
        hits += shard.hits;
        misses += shard.misses;
      }
      std::printf("    [8 workers] IQA shards: %zu, hits %lld, misses %lld, "
                  "hit rate %.2f\n",
                  stats.iqa_shards.size(), static_cast<long long>(hits),
                  static_cast<long long>(misses),
                  hits + misses > 0
                      ? static_cast<double>(hits) /
                            static_cast<double>(hits + misses)
                      : 0.0);
    }
  }
  table.Print(std::cout);

  if (batching_comparison) {
    std::cout << "\n-- cross-query batching, 8 workers (shared device "
                 "batches, exact per-query attribution) --\n";
    RunBatchingComparison(engine->get(), workload, sequential);
  }
}

void Run() {
  bench::Scale scale = bench::GetScale();
  if (bench::EnvInt("DE_BENCH_INPUTS", 0) <= 0) {
    // Smaller default than the figure benches: six workload passes (one per
    // thread-count row) over the same queries make 1000 inputs needlessly
    // slow, and throughput ratios do not depend on the dataset size.
    scale.vgg_inputs = 400;
  }
  const int num_queries = std::max<int>(
      1, static_cast<int>(bench::EnvInt("DE_BENCH_SERVICE_QUERIES", 32)));
  const bench::System system = bench::MakeVggSystem(scale);

  bench_util::PrintBanner(
      std::cout, "Service throughput: worker threads vs. sequential",
      system.name + ", " + std::to_string(num_queries) +
          " queries, 4 sessions, simulated accelerator dispatch");

  const std::vector<core::QuerySpec> workload =
      MakeWorkload(system, num_queries);

  std::cout << "\n-- IQA disabled (every query pays inference) --\n";
  // The batching comparison runs here: without IQA, NTA is deterministic,
  // so each query's sequential inputs_run is the exact value the service
  // must reproduce.
  RunSuite(system, /*enable_iqa=*/false, workload,
           /*batching_comparison=*/true);
  std::cout << "\n-- IQA enabled, 8 shards, cache cleared per run --\n";
  RunSuite(system, /*enable_iqa=*/true, workload);
}

}  // namespace
}  // namespace deepeverest

int main() {
  deepeverest::Run();
  return 0;
}
