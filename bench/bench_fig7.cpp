// Reproduces **Figure 7**: query times of SimHigh queries as nPartitions
// varies (MAI disabled). Reports wall-clock time on this machine plus the
// simulated-GPU time from the batch cost model, which is what exhibits the
// paper's plateau: past a certain nPartitions, partitions get smaller than
// the optimal batch and GPU parallelism goes unused.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "baselines/query_engine.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace {

struct Cell {
  double wall_seconds = 0.0;
  double gpu_seconds = 0.0;
  int64_t inputs_run = 0;
};

// (system, group size, nPartitions) -> cell; group sweep at the late layer.
std::map<std::string, std::map<int, std::map<int, Cell>>>& Cells() {
  static auto& cells =
      *new std::map<std::string, std::map<int, std::map<int, Cell>>>();
  return cells;
}

const std::vector<int>& PartitionSweep() {
  static const auto& sweep = *new std::vector<int>{4, 8, 16, 32, 64, 128};
  return sweep;
}

void RunSweep(const bench::System& system) {
  const bench::Scale scale = bench::GetScale();
  auto engine = system.NewEngine();
  auto generator = system.NewEngine();
  const int layer =
      bench_util::PickLayer(*system.model, bench_util::LayerDepth::kLate);

  // One inference pass for the layer; every index is built from it.
  auto matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
  DE_CHECK(matrix.ok());

  for (int num_partitions : PartitionSweep()) {
    auto index = core::LayerIndex::Build(
        *matrix, core::LayerIndexConfig{num_partitions, 0.0});  // MAI off
    DE_CHECK(index.ok());
    for (int group_size : {1, 3, 10}) {
      Rng rng(900 + num_partitions * 10 + group_size);
      std::vector<double> walls, gpus, inputs;
      for (int trial = 0; trial < scale.trials; ++trial) {
        const uint32_t target = static_cast<uint32_t>(
            rng.NextUint64(system.dataset->size()));
        auto group = bench_util::MakeNeuronGroup(
            generator.get(), target, layer, bench_util::GroupKind::kRandHigh,
            group_size, &rng);
        DE_CHECK(group.ok());
        core::NtaEngine nta(engine.get(), &index.value());
        core::NtaOptions options;
        options.k = 20;
        Stopwatch watch;
        auto result = nta.MostSimilarTo(*group, target, options);
        DE_CHECK(result.ok()) << result.status().ToString();
        walls.push_back(watch.ElapsedSeconds());
        gpus.push_back(result->stats.simulated_gpu_seconds);
        inputs.push_back(static_cast<double>(result->stats.inputs_run));
      }
      Cell cell;
      cell.wall_seconds = bench::Median(walls);
      cell.gpu_seconds = bench::Median(gpus);
      cell.inputs_run = static_cast<int64_t>(bench::Median(inputs));
      Cells()[system.name][group_size][num_partitions] = cell;
    }
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);
  const bench::System resnet = bench::MakeResnetSystem(scale);
  for (const bench::System* system : {&vgg, &resnet}) {
    benchmark::RegisterBenchmark(
        ("Fig7/" + system->name).c_str(),
        [system](benchmark::State& state) {
          for (auto _ : state) RunSweep(*system);
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  for (const bench::System* system : {&vgg, &resnet}) {
    bench_util::PrintBanner(
        std::cout, "Figure 7: SimHigh query time vs nPartitions, " +
                       system->name,
        "Late layer, MAI disabled, k=20. Simulated-GPU time shows the "
        "paper's plateau once partitions drop below the optimal batch (" +
            std::to_string(system->batch_size) + ").");
    std::vector<std::string> headers = {"Group size", "Metric"};
    for (int p : PartitionSweep()) headers.push_back("P=" + std::to_string(p));
    bench_util::TablePrinter table(headers);
    for (int group_size : {1, 3, 10}) {
      std::vector<std::string> wall_row = {"g" + std::to_string(group_size),
                                           "wall"};
      std::vector<std::string> gpu_row = {"", "simulated GPU"};
      for (int p : PartitionSweep()) {
        const auto& cell = Cells()[system->name][group_size][p];
        wall_row.push_back(bench_util::FormatSeconds(cell.wall_seconds));
        gpu_row.push_back(bench_util::FormatSeconds(cell.gpu_seconds));
      }
      table.AddRow(wall_row).AddRow(gpu_row);
    }
    table.Print(std::cout);
  }
  return 0;
}
