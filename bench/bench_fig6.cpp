// Reproduces **Figure 6 (a-f)**: cumulative total time (preprocessing +
// query execution) on multi-query workloads for DeepEverest with
// incremental indexing vs the disk-cache baselines.
//
// Workload 1: p_same=.5 p_prev=.3 p_new=.2;  Workload 2: .5/.4/.1;
// Workload 3: uniform layers (DeepEverest's worst case). All queries are
// SimHigh over medium (3-neuron) groups, as in §5.3.
//
// Expected shape: DeepEverest's cumulative time grows fastest while it
// builds indexes for new layers, then plateaus and finishes lowest on
// workloads 1-2; on workload 3 it starts behind and wins late.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/lru_cache.h"
#include "baselines/preprocess_all.h"
#include "baselines/priority_cache.h"
#include "baselines/reprocess_all.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "common/stopwatch.h"
#include "core/deepeverest.h"

namespace deepeverest {
namespace {

struct Series {
  std::string system;
  std::string workload;
  std::string method;
  /// Modeled testbed time at each checkpoint: K80-calibrated simulated
  /// inference plus bytes moved through the store at the modeled disk
  /// throughput — the accounting that matches the paper's GPU+EBS testbed.
  std::vector<double> cumulative_modeled;
  /// Raw wall-clock on this machine, for reference.
  std::vector<double> cumulative_wall;
  uint64_t storage_bytes = 0;
};

std::vector<Series>& AllSeries() {
  static auto& series = *new std::vector<Series>();
  return series;
}

std::vector<int> Checkpoints(int total) {
  std::vector<int> points;
  for (int frac = 1; frac <= 8; ++frac) {
    points.push_back(total * frac / 8);
  }
  return points;
}

/// One pre-generated workload query.
struct WorkloadQuery {
  core::NeuronGroup group;
  uint32_t target_id = 0;
};

std::vector<WorkloadQuery> BuildWorkload(const bench::System& system,
                                         double p_same, double p_prev,
                                         double p_new, int num_queries,
                                         uint64_t seed) {
  auto generator = system.NewEngine();
  bench_util::WorkloadSpec spec;
  spec.p_same = p_same;
  spec.p_prev = p_prev;
  spec.p_new = p_new;
  spec.num_queries = num_queries;
  spec.seed = seed;
  const std::vector<int> layers =
      bench_util::GenerateLayerSequence(system.model->activation_layers(),
                                        spec);
  Rng rng(seed * 13 + 5);
  std::vector<WorkloadQuery> queries;
  queries.reserve(layers.size());
  for (int layer : layers) {
    WorkloadQuery query;
    query.target_id =
        static_cast<uint32_t>(rng.NextUint64(system.dataset->size()));
    auto group = bench_util::MakeNeuronGroup(
        generator.get(), query.target_id, layer,
        bench_util::GroupKind::kRandHigh, /*size=*/3, &rng);
    DE_CHECK(group.ok()) << group.status().ToString();
    query.group = *group;
    queries.push_back(std::move(query));
  }
  return queries;
}

/// Runs a workload through one engine-like callable, sampling both wall
/// time and the modeled-testbed clock at the checkpoints. `modeled_now`
/// must return the method's total modeled seconds so far (inference +
/// store traffic), including any preprocessing already performed.
template <typename QueryFn, typename ModeledFn>
void RunWorkload(const std::vector<WorkloadQuery>& queries,
                 double preprocess_wall_seconds, QueryFn&& run,
                 ModeledFn&& modeled_now, Series* series) {
  const std::vector<int> checkpoints = Checkpoints(
      static_cast<int>(queries.size()));
  double wall = preprocess_wall_seconds;
  size_t next_checkpoint = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    Stopwatch watch;
    run(queries[q]);
    wall += watch.ElapsedSeconds();
    while (next_checkpoint < checkpoints.size() &&
           static_cast<int>(q + 1) == checkpoints[next_checkpoint]) {
      series->cumulative_wall.push_back(wall);
      series->cumulative_modeled.push_back(modeled_now());
      ++next_checkpoint;
    }
  }
}

void RunSystemWorkload(const bench::System& system,
                       const std::string& workload_name, double p_same,
                       double p_prev, double p_new) {
  const bench::Scale scale = bench::GetScale();
  const int k = 20;
  const std::vector<WorkloadQuery> queries =
      BuildWorkload(system, p_same, p_prev, p_new, scale.workload_queries,
                    std::hash<std::string>{}(workload_name) % 1000 + 17);

  const uint64_t full_bytes = [&] {
    int64_t total_neurons = 0;
    for (int layer = 0; layer < system.model->num_layers(); ++layer) {
      total_neurons += system.model->NeuronCount(layer);
    }
    return static_cast<uint64_t>(total_neurons) * system.dataset->size() * 4;
  }();
  const uint64_t budget = full_bytes / 5;  // 20%

  // Modeled clock for a (engine, store) pair: simulated-GPU inference time
  // plus store traffic at the modeled reference-disk throughput.
  auto modeled_clock = [&](const nn::InferenceEngine* engine,
                           const storage::FileStore* store) {
    return [&, engine, store]() {
      double modeled = engine->stats().simulated_gpu_seconds;
      if (store != nullptr) {
        modeled += static_cast<double>(store->bytes_written() +
                                       store->bytes_read()) /
                   system.disk_bytes_per_second;
      }
      return modeled;
    };
  };

  // --- DeepEverest with incremental indexing (no preprocessing). ---
  {
    bench::ScratchDir scratch("fig6-de");
    auto store = storage::FileStore::Open(scratch.path());
    DE_CHECK(store.ok());
    core::DeepEverestOptions options;
    options.batch_size = system.batch_size;
    options.storage_budget_fraction = 0.2;
    auto de = core::DeepEverest::Create(system.model.get(),
                                        system.dataset.get(), &store.value(),
                                        options);
    DE_CHECK(de.ok());
    system.ApplyCostModel((*de)->inference());
    Series series{system.name, workload_name, "DeepEverest", {}, {}, 0};
    RunWorkload(
        queries, 0.0,
        [&](const WorkloadQuery& query) {
          DE_CHECK(
              (*de)->TopKMostSimilar(query.target_id, query.group, k).ok());
        },
        modeled_clock((*de)->inference(), &store.value()), &series);
    series.storage_bytes = (*de)->PersistedIndexBytes().ValueOr(0);
    AllSeries().push_back(std::move(series));
  }

  // --- PreprocessAll: full materialisation charged to query 0. ---
  {
    bench::ScratchDir scratch("fig6-pa");
    auto store = storage::FileStore::Open(scratch.path());
    DE_CHECK(store.ok());
    auto engine = system.NewEngine();
    baselines::PreprocessAll engine_pa(engine.get(), &store.value());
    Stopwatch preprocess_watch;
    DE_CHECK(engine_pa.Preprocess().ok());
    const double preprocess_seconds = preprocess_watch.ElapsedSeconds();
    Series series{system.name, workload_name, "PreprocessAll", {}, {}, 0};
    RunWorkload(
        queries, preprocess_seconds,
        [&](const WorkloadQuery& query) {
          DE_CHECK(engine_pa
                       .TopKMostSimilar(query.target_id, query.group, k,
                                        nullptr)
                       .ok());
        },
        modeled_clock(engine.get(), &store.value()), &series);
    series.storage_bytes = engine_pa.StorageBytes().ValueOr(0);
    AllSeries().push_back(std::move(series));
  }

  // --- ReprocessAll. ---
  {
    auto engine = system.NewEngine();
    baselines::ReprocessAll engine_ra(engine.get());
    Series series{system.name, workload_name, "ReprocessAll", {}, {}, 0};
    RunWorkload(
        queries, 0.0,
        [&](const WorkloadQuery& query) {
          DE_CHECK(engine_ra
                       .TopKMostSimilar(query.target_id, query.group, k,
                                        nullptr)
                       .ok());
        },
        modeled_clock(engine.get(), nullptr), &series);
    AllSeries().push_back(std::move(series));
  }

  // --- LRU Cache (20% budget). ---
  {
    bench::ScratchDir scratch("fig6-lru");
    auto store = storage::FileStore::Open(scratch.path());
    DE_CHECK(store.ok());
    auto engine = system.NewEngine();
    baselines::LruCacheEngine engine_lru(engine.get(), &store.value(),
                                         budget);
    Series series{system.name, workload_name, "LRU Cache", {}, {}, 0};
    RunWorkload(
        queries, 0.0,
        [&](const WorkloadQuery& query) {
          DE_CHECK(engine_lru
                       .TopKMostSimilar(query.target_id, query.group, k,
                                        nullptr)
                       .ok());
        },
        modeled_clock(engine.get(), &store.value()), &series);
    series.storage_bytes = engine_lru.StorageBytes().ValueOr(0);
    AllSeries().push_back(std::move(series));
  }

  // --- Priority Cache (MISTIQUE cost model, 20% budget). ---
  {
    bench::ScratchDir scratch("fig6-pri");
    auto store = storage::FileStore::Open(scratch.path());
    DE_CHECK(store.ok());
    auto engine = system.NewEngine();
    baselines::PriorityCacheEngine engine_pri(engine.get(), &store.value(),
                                              budget);
    Stopwatch preprocess_watch;
    DE_CHECK(engine_pri.Preprocess().ok());
    const double preprocess_seconds = preprocess_watch.ElapsedSeconds();
    Series series{system.name, workload_name, "Priority Cache", {}, {}, 0};
    RunWorkload(
        queries, preprocess_seconds,
        [&](const WorkloadQuery& query) {
          DE_CHECK(engine_pri
                       .TopKMostSimilar(query.target_id, query.group, k,
                                        nullptr)
                       .ok());
        },
        modeled_clock(engine.get(), &store.value()), &series);
    series.storage_bytes = engine_pri.StorageBytes().ValueOr(0);
    AllSeries().push_back(std::move(series));
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);
  const bench::System resnet = bench::MakeResnetSystem(scale);

  struct WorkloadDef {
    const char* name;
    double p_same, p_prev, p_new;
  };
  const WorkloadDef workloads[] = {
      {"Workload 1 (.5/.3/.2)", 0.5, 0.3, 0.2},
      {"Workload 2 (.5/.4/.1)", 0.5, 0.4, 0.1},
      {"Workload 3 (uniform)", 0.0, 0.0, 1.0},
  };
  for (const bench::System* system : {&vgg, &resnet}) {
    for (const WorkloadDef& workload : workloads) {
      const std::string name =
          "Fig6/" + system->name + "/" + workload.name;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [system, workload](benchmark::State& state) {
            for (auto _ : state) {
              RunSystemWorkload(*system, workload.name, workload.p_same,
                                workload.p_prev, workload.p_new);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Print one table per (system, workload): cumulative seconds at each
  // checkpoint, matching the paper's Figure 6 series.
  const int total = bench::GetScale().workload_queries;
  for (const bench::System* system : {&vgg, &resnet}) {
    for (const WorkloadDef& workload : workloads) {
      bench_util::PrintBanner(
          std::cout,
          "Figure 6: cumulative total time, " + system->name + ", " +
              workload.name,
          std::to_string(total) +
              " SimHigh queries, medium groups, 20% storage budgets.\n"
              "Modeled testbed time (K80-calibrated inference + modeled "
              "reference disk) — the accounting matching the paper's "
              "GPU+EBS machine; wall-clock on this CPU follows.");
      std::vector<std::string> headers = {"Method"};
      for (int frac = 1; frac <= 8; ++frac) {
        headers.push_back("q" + std::to_string(total * frac / 8));
      }
      headers.push_back("storage");
      for (const bool modeled : {true, false}) {
        std::cout << (modeled ? "[modeled testbed time]\n"
                              : "\n[wall-clock on this machine]\n");
        bench_util::TablePrinter table(headers);
        for (const auto& series : AllSeries()) {
          if (series.system != system->name ||
              series.workload != workload.name) {
            continue;
          }
          std::vector<std::string> row = {series.method};
          const auto& values =
              modeled ? series.cumulative_modeled : series.cumulative_wall;
          for (double v : values) {
            row.push_back(bench_util::FormatDouble(v, 2) + "s");
          }
          row.push_back(bench_util::FormatBytes(series.storage_bytes));
          table.AddRow(row);
        }
        table.Print(std::cout);
      }
    }
  }
  return 0;
}
