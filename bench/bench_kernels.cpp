// Kernel-level microbench + parity harness (pmembench-style: one binary,
// deterministic workload, machine-readable JSON out).
//
// Unlike the other bench binaries this one is self-contained — no Google
// Benchmark — because CI's kernel-bench smoke and reproduce/run_kernel_bench.sh
// must run everywhere the library builds. It times every KernelTable entry
// under both dispatch modes (when the CPU has AVX2), asserts bitwise
// scalar-vs-AVX2 parity on the measured outputs, and prints one JSON object
// with rows/s (or values/s), effective GB/s and the per-kernel speedup.
//
// Exit status: 0 on success, 1 on any parity mismatch (CI fails the smoke).
//
// Env knobs (the default block is L2-cache-resident on purpose: NTA rounds
// feed the aggregation kernels blocks bounded by the inference batch size,
// not whole-dataset sweeps, so ~1k rows x 256 neurons is the representative
// shape; crank DE_BENCH_KERNEL_ROWS up to measure the DRAM-bound regime):
//   DE_BENCH_KERNEL_ROWS     rows per aggregation block        (default 1024)
//   DE_BENCH_KERNEL_NEURONS  values per row                    (default 256)
//   DE_BENCH_KERNEL_COUNT    values per bulk-unpack call       (default 1<<22)
//   DE_BENCH_KERNEL_REPS     timed repetitions, best-of        (default 20)

#include <cinttypes>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "src/common/bit_pack.h"
#include "src/kernels/kernels.h"

namespace {

using deepeverest::kernels::AggKind;
using deepeverest::kernels::DispatchMode;
using deepeverest::kernels::GetKernelTable;
using deepeverest::kernels::KernelTable;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) {
    std::fprintf(stderr, "bench_kernels: ignoring bad %s='%s'\n", name, v);
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Result {
  std::string kernel;
  std::string mode;
  double items_per_s = 0.0;  // rows/s for agg kernels, values/s otherwise
  double gb_per_s = 0.0;     // (bytes read + bytes written) / best time
  double best_seconds = 0.0;
};

/// Best-of-`reps` wall time of `fn()`; `bytes` and `items` describe ONE call.
template <typename Fn>
Result Time(const std::string& kernel, const std::string& mode, size_t reps,
            double items, double bytes, Fn fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    fn();
    const double t1 = NowSeconds();
    if (t1 - t0 < best) best = t1 - t0;
  }
  Result res;
  res.kernel = kernel;
  res.mode = mode;
  res.best_seconds = best;
  res.items_per_s = items / best;
  res.gb_per_s = bytes / best / 1e9;
  return res;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool BitEqualF(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

const char* AggName(AggKind kind) {
  switch (kind) {
    case AggKind::kL1:
      return "l1";
    case AggKind::kL2:
      return "l2";
    case AggKind::kLInf:
      return "linf";
    case AggKind::kWeightedL2:
      return "weighted_l2";
  }
  return "?";
}

}  // namespace

int main() {
  const size_t rows = EnvSize("DE_BENCH_KERNEL_ROWS", 1024);
  const size_t neurons = EnvSize("DE_BENCH_KERNEL_NEURONS", 256);
  const size_t count = EnvSize("DE_BENCH_KERNEL_COUNT", size_t{1} << 22);
  const size_t reps = EnvSize("DE_BENCH_KERNEL_REPS", 20);
  const bool avx2 = deepeverest::kernels::Avx2Supported();

  std::mt19937_64 rng(42);
  std::uniform_real_distribution<float> dist(-4.0f, 4.0f);
  std::uniform_real_distribution<double> wdist(0.0, 2.0);

  // Shared aggregation workload: a contiguous block of `rows` rows.
  std::vector<float> block(rows * neurons);
  for (float& v : block) v = dist(rng);
  std::vector<float> target(neurons);
  for (float& v : target) v = dist(rng);
  std::vector<double> weights(neurons);
  for (double& v : weights) v = wdist(rng);

  // Bulk-unpack workload (4 bits = the NPI default of 16 partitions, plus a
  // straddling width that exercises the scalar fallback inside either table).
  const int unpack_bits[] = {4, 7};
  deepeverest::PackedIntArray packed4(count, /*bits=*/4);
  deepeverest::PackedIntArray packed7(count, /*bits=*/7);
  for (size_t i = 0; i < count; ++i) {
    packed4.Set(i, rng() & 0xf);
    packed7.Set(i, rng() & 0x7f);
  }

  // Dequant workload: one codes matrix, decoded row by row like the store.
  std::vector<uint8_t> codes(rows * neurons);
  for (uint8_t& c : codes) c = static_cast<uint8_t>(rng() & 0xff);
  std::vector<float> minv(neurons), scale(neurons);
  for (size_t i = 0; i < neurons; ++i) {
    minv[i] = dist(rng);
    scale[i] = std::abs(dist(rng)) / 255.0f + 1e-6f;
  }

  std::vector<Result> results;
  std::map<std::string, std::map<std::string, double>> times;  // kernel->mode
  bool parity_ok = true;
  auto check_parity = [&parity_ok](const char* what, bool ok) {
    if (!ok) {
      parity_ok = false;
      std::fprintf(stderr, "bench_kernels: PARITY MISMATCH in %s\n", what);
    }
  };

  const DispatchMode modes[] = {DispatchMode::kScalar, DispatchMode::kAvx2};
  const size_t num_modes = avx2 ? 2 : 1;

  // ---- batched aggregation (abs-diff and value forms, all kinds) ----
  std::vector<double> out_scalar(rows), out(rows);
  const double agg_bytes =
      static_cast<double>(rows) * neurons * sizeof(float) +
      static_cast<double>(rows) * sizeof(double);
  for (int k = 0; k < deepeverest::kernels::kNumAggKinds; ++k) {
    const AggKind kind = static_cast<AggKind>(k);
    for (size_t m = 0; m < num_modes; ++m) {
      const KernelTable& table = GetKernelTable(modes[m]);
      const std::string name = std::string("abs_diff_") + AggName(kind);
      results.push_back(Time(name, table.name, reps, rows, agg_bytes, [&] {
        table.abs_diff_agg[k](block.data(), neurons, rows, target.data(),
                              weights.data(), neurons, out.data());
      }));
      times[name][table.name] = results.back().best_seconds;
      if (m == 0) {
        out_scalar = out;
      } else {
        check_parity(name.c_str(), BitEqual(out_scalar, out));
      }
    }
    for (size_t m = 0; m < num_modes; ++m) {
      const KernelTable& table = GetKernelTable(modes[m]);
      const std::string name = std::string("value_") + AggName(kind);
      results.push_back(Time(name, table.name, reps, rows, agg_bytes, [&] {
        table.value_agg[k](block.data(), neurons, rows, weights.data(),
                           neurons, out.data());
      }));
      times[name][table.name] = results.back().best_seconds;
      if (m == 0) {
        out_scalar = out;
      } else {
        check_parity(name.c_str(), BitEqual(out_scalar, out));
      }
    }
  }

  // ---- bulk unpack ----
  std::vector<uint64_t> uout(count), uout_scalar(count);
  for (const int bits : unpack_bits) {
    const deepeverest::PackedIntArray& packed =
        bits == 4 ? packed4 : packed7;
    const double unpack_bytes =
        static_cast<double>(count) * bits / 8.0 +
        static_cast<double>(count) * sizeof(uint64_t);
    const std::string name = "unpack_b" + std::to_string(bits);
    for (size_t m = 0; m < num_modes; ++m) {
      const KernelTable& table = GetKernelTable(modes[m]);
      results.push_back(Time(name, table.name, reps, count, unpack_bytes, [&] {
        table.unpack(packed.words().data(), packed.words().size(), bits, 0,
                     count, uout.data());
      }));
      times[name][table.name] = results.back().best_seconds;
      if (m == 0) {
        uout_scalar = uout;
      } else {
        check_parity(name.c_str(),
                     std::memcmp(uout_scalar.data(), uout.data(),
                                 count * sizeof(uint64_t)) == 0);
      }
    }
  }

  // ---- quantised row decode ----
  std::vector<float> fout(rows * neurons), fout_scalar(rows * neurons);
  const double dq_bytes = static_cast<double>(rows) * neurons *
                          (sizeof(uint8_t) + sizeof(float));
  for (size_t m = 0; m < num_modes; ++m) {
    const KernelTable& table = GetKernelTable(modes[m]);
    results.push_back(
        Time("dequant_row", table.name, reps, rows * neurons, dq_bytes, [&] {
          for (size_t r = 0; r < rows; ++r) {
            table.dequant_row(codes.data() + r * neurons, minv.data(),
                              scale.data(), neurons, fout.data() + r * neurons);
          }
        }));
    times["dequant_row"][table.name] = results.back().best_seconds;
    if (m == 0) {
      fout_scalar = fout;
    } else {
      check_parity("dequant_row", BitEqualF(fout_scalar, fout));
    }
  }

  // ---- JSON report ----
  char datebuf[32];
  const std::time_t now = std::time(nullptr);
  std::strftime(datebuf, sizeof(datebuf), "%Y-%m-%d", std::gmtime(&now));
  std::printf("{\n");
  std::printf("  \"bench\": \"bench_kernels\",\n");
  std::printf("  \"date\": \"%s\",\n", datebuf);
  std::printf("  \"avx2_supported\": %s,\n", avx2 ? "true" : "false");
  std::printf("  \"workload\": {\"rows\": %zu, \"neurons\": %zu, "
              "\"unpack_count\": %zu, \"reps\": %zu},\n",
              rows, neurons, count, reps);
  std::printf("  \"gb_per_s_definition\": "
              "\"(bytes read + bytes written) / best wall time\",\n");
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::printf("    {\"kernel\": \"%s\", \"mode\": \"%s\", "
                "\"items_per_s\": %.6g, \"gb_per_s\": %.4f, "
                "\"best_seconds\": %.6g}%s\n",
                r.kernel.c_str(), r.mode.c_str(), r.items_per_s, r.gb_per_s,
                r.best_seconds, i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_avx2_vs_scalar\": {");
  if (avx2) {
    bool first = true;
    for (const auto& entry : times) {
      const auto& by_mode = entry.second;
      if (by_mode.count("scalar") == 0 || by_mode.count("avx2") == 0) continue;
      std::printf("%s\n    \"%s\": %.2f", first ? "" : ",",
                  entry.first.c_str(),
                  by_mode.at("scalar") / by_mode.at("avx2"));
      first = false;
    }
    std::printf("\n  ");
  }
  std::printf("},\n");
  std::printf("  \"parity\": \"%s\"\n", parity_ok ? "ok" : "MISMATCH");
  std::printf("}\n");

  return parity_ok ? 0 : 1;
}
