// Ablation (not a paper table, but validates the paper's §4.3 design
// choice): equi-depth vs equi-width partitioning. Activation values are
// heavily skewed (post-ReLU mass at/near zero + a long tail), so equi-width
// partitions concentrate most inputs into one or two partitions and NTA
// loses its pruning power. Expected shape: equi-depth runs inference on
// substantially fewer inputs at every nPartitions setting.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "baselines/query_engine.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "core/nta.h"

namespace deepeverest {
namespace {

// scheme -> nPartitions -> median inputs run (SimHigh g3, late layer).
std::map<std::string, std::map<int, int64_t>>& Cells() {
  static auto& cells = *new std::map<std::string, std::map<int, int64_t>>();
  return cells;
}

const std::vector<int>& PartitionSweep() {
  static const auto& sweep = *new std::vector<int>{8, 16, 32, 64};
  return sweep;
}

void RunSweep(const bench::System& system) {
  const bench::Scale scale = bench::GetScale();
  auto engine = system.NewEngine();
  auto generator = system.NewEngine();
  const int layer =
      bench_util::PickLayer(*system.model, bench_util::LayerDepth::kLate);
  auto matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
  DE_CHECK(matrix.ok());

  for (core::PartitionScheme scheme :
       {core::PartitionScheme::kEquiDepth,
        core::PartitionScheme::kEquiWidth}) {
    const std::string scheme_name =
        scheme == core::PartitionScheme::kEquiDepth ? "equi-depth"
                                                    : "equi-width";
    for (int num_partitions : PartitionSweep()) {
      core::LayerIndexConfig config;
      config.num_partitions = num_partitions;
      config.scheme = scheme;
      auto index = core::LayerIndex::Build(*matrix, config);
      DE_CHECK(index.ok());
      Rng rng(4100 + num_partitions);
      std::vector<double> inputs;
      for (int trial = 0; trial < scale.trials; ++trial) {
        const uint32_t target = static_cast<uint32_t>(
            rng.NextUint64(system.dataset->size()));
        auto group = bench_util::MakeNeuronGroup(
            generator.get(), target, layer, bench_util::GroupKind::kRandHigh,
            3, &rng);
        DE_CHECK(group.ok());
        core::NtaEngine nta(engine.get(), &index.value());
        core::NtaOptions options;
        options.k = 20;
        auto result = nta.MostSimilarTo(*group, target, options);
        DE_CHECK(result.ok()) << result.status().ToString();
        inputs.push_back(static_cast<double>(result->stats.inputs_run));
      }
      Cells()[scheme_name][num_partitions] =
          static_cast<int64_t>(bench::Median(inputs));
    }
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);
  benchmark::RegisterBenchmark(("Ablation/" + vgg.name).c_str(),
                               [&vgg](benchmark::State& state) {
                                 for (auto _ : state) RunSweep(vgg);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench_util::PrintBanner(
      std::cout,
      "Ablation: equi-depth vs equi-width partitioning, " + vgg.name,
      "#inputs run by the DNN for SimHigh (g3, late layer, k=20) over " +
          std::to_string(vgg.dataset->size()) +
          " inputs. Validates the paper's §4.3 equi-depth choice on skewed "
          "activations.");
  std::vector<std::string> headers = {"Scheme"};
  for (int p : PartitionSweep()) headers.push_back("P=" + std::to_string(p));
  bench_util::TablePrinter table(headers);
  for (const char* scheme : {"equi-depth", "equi-width"}) {
    std::vector<std::string> row = {scheme};
    for (int p : PartitionSweep()) {
      row.push_back(std::to_string(Cells()[scheme][p]));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}
