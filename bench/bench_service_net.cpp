// HTTP front-end overhead: the same mixed workload served (a) in-process
// via QueryService::Execute and (b) over the loopback HTTP/1.1 API, with
// concurrent clients each holding one keep-alive connection. Results must
// be bit-identical across arms; the delta is pure wire + parse overhead,
// which should stay a small fraction of query latency once the engine
// simulates realistic device dispatch.
//
// Also smoke-checks the streaming path: one NDJSON query must deliver at
// least one progress event before its final result.
//
// Scale knobs: DE_BENCH_INPUTS (default 200), DE_BENCH_NET_QUERIES
// (default 64), DE_BENCH_NET_CLIENTS (default 4),
// DE_BENCH_NET_DEVICE_SCALE (default 4).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench_util/demo_system.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "core/query_spec_json.h"
#include "net/http_client.h"
#include "net/query_server.h"
#include "service/engine_registry.h"
#include "service/query_service.h"

namespace deepeverest {
namespace {

/// Canonical per-query signature for the bit-equality check.
std::string Signature(const std::vector<core::ResultEntry>& entries) {
  JsonWriter w;
  w.BeginArray();
  for (const core::ResultEntry& e : entries) {
    w.BeginObject();
    w.Key("input_id");
    w.Uint(e.input_id);
    w.Key("value");
    w.Double(e.value);
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

struct ArmResult {
  double seconds = 0.0;
  std::vector<std::string> signatures;  // per query, canonical JSON
};

int Run() {
  const int num_queries =
      static_cast<int>(bench::EnvInt("DE_BENCH_NET_QUERIES", 64));
  const int num_clients =
      static_cast<int>(bench::EnvInt("DE_BENCH_NET_CLIENTS", 4));
  bench_util::DemoSystemOptions demo_options;
  demo_options.num_inputs = static_cast<uint32_t>(
      bench::EnvInt("DE_BENCH_INPUTS", 200));
  demo_options.device_latency_scale = static_cast<double>(
      bench::EnvInt("DE_BENCH_NET_DEVICE_SCALE", 4));
  auto system = bench_util::DemoSystem::Make(demo_options);
  DE_CHECK(system.ok()) << system.status().ToString();

  service::QueryServiceOptions service_options;
  service_options.num_workers = num_clients;
  auto service =
      service::QueryService::Create((*system)->engine(), service_options);
  DE_CHECK(service.ok()) << service.status().ToString();

  service::EngineRegistry registry;
  DE_CHECK(registry.Register((*system)->model_name(), service->get()).ok());
  net::QueryServerOptions server_options;  // port 0: kernel-assigned
  auto server = net::QueryServer::Start(&registry, server_options);
  DE_CHECK(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  const std::vector<core::QuerySpec> workload =
      bench_util::MakeMixedWorkload(*(*system)->model(), num_queries);

  // Arm A: in-process — concurrent clients calling Execute directly.
  auto run_in_process = [&]() {
    ArmResult arm;
    arm.signatures.resize(workload.size());
    std::atomic<size_t> next{0};
    Stopwatch watch;
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= workload.size()) return;
          auto result = (*service)->Execute(workload[i]);
          DE_CHECK(result.ok()) << result.status().ToString();
          arm.signatures[i] = Signature(result->entries);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    arm.seconds = watch.ElapsedSeconds();
    return arm;
  };

  // Arm B: the same clients over loopback HTTP.
  auto run_http = [&]() {
    ArmResult arm;
    arm.signatures.resize(workload.size());
    std::atomic<size_t> next{0};
    Stopwatch watch;
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&] {
        auto client = net::HttpClient::Connect("127.0.0.1", port);
        DE_CHECK(client.ok()) << client.status().ToString();
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= workload.size()) return;
          auto response = client->Post(
              "/v1/query", core::QuerySpecJson(workload[i]));
          DE_CHECK(response.ok()) << response.status().ToString();
          DE_CHECK_EQ(response->status, 200);
          auto body = ParseJson(response->body);
          DE_CHECK(body.ok()) << body.status().ToString();
          const JsonValue* entries = body->Find("entries");
          DE_CHECK(entries != nullptr);
          std::vector<core::ResultEntry> parsed;
          for (const JsonValue& entry : entries->array_items()) {
            core::ResultEntry e;
            e.input_id =
                static_cast<uint32_t>(entry.Find("input_id")->int_value());
            e.value = entry.Find("value")->number_value();
            parsed.push_back(e);
          }
          arm.signatures[i] = Signature(parsed);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    arm.seconds = watch.ElapsedSeconds();
    return arm;
  };

  std::printf("bench_service_net: %d queries, %d clients, %u inputs, "
              "port %u\n\n",
              num_queries, num_clients, demo_options.num_inputs,
              static_cast<unsigned>(port));

  // One unmeasured warm-up pass per arm (allocator, connection setup, code
  // paths) so neither measured arm benefits from running second.
  run_in_process();
  run_http();
  ArmResult in_process = run_in_process();
  ArmResult http = run_http();

  size_t mismatched = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (in_process.signatures[i] != http.signatures[i]) ++mismatched;
  }
  DE_CHECK_EQ(mismatched, 0u) << "HTTP results diverged from in-process";

  const double qps_in_process =
      static_cast<double>(num_queries) / in_process.seconds;
  const double qps_http = static_cast<double>(num_queries) / http.seconds;
  std::printf("%-14s %12s %12s\n", "arm", "seconds", "queries/s");
  std::printf("%-14s %12.3f %12.1f\n", "in-process", in_process.seconds,
              qps_in_process);
  std::printf("%-14s %12.3f %12.1f\n", "http", http.seconds, qps_http);
  std::printf("\nHTTP overhead: %.1f%% of in-process wall time "
              "(bit-identical results)\n",
              (http.seconds / in_process.seconds - 1.0) * 100.0);

  // Streaming smoke: one query must emit progress before its result.
  auto client = net::HttpClient::Connect("127.0.0.1", port);
  DE_CHECK(client.ok()) << client.status().ToString();
  int progress = 0;
  int results = 0;
  auto streamed = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string((*system)->model()->activation_layers().front()) +
          "&neurons=0,1,2,3&k=10",
      [&](const std::string& line) {
        auto event = ParseJson(line);
        if (!event.ok()) return true;
        const JsonValue* kind = event->Find("event");
        if (kind == nullptr) return true;
        if (kind->string_value() == "progress") ++progress;
        if (kind->string_value() == "result") ++results;
        return true;
      });
  DE_CHECK(streamed.ok()) << streamed.status().ToString();
  DE_CHECK_EQ(results, 1);
  DE_CHECK_GE(progress, 1);
  std::printf("streaming: %d progress events before the final result\n",
              progress);

  (*server)->Shutdown();
  (*service)->Shutdown();
  return 0;
}

}  // namespace
}  // namespace deepeverest

int main() { return deepeverest::Run(); }
