#ifndef DEEPEVEREST_BENCH_BENCH_COMMON_H_
#define DEEPEVEREST_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "data/dataset.h"
#include "nn/inference.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace bench {

/// \brief Experiment scale. The defaults finish the full suite in minutes on
/// one CPU core while preserving the paper's result *shapes*; raise them via
/// environment variables for higher-fidelity runs:
///   DE_BENCH_INPUTS            dataset size            (default 1000 / 600)
///   DE_BENCH_TRIALS            queries per config       (default 3)
///   DE_BENCH_WORKLOAD_QUERIES  multi-query workload len  (default 120)
///   DE_BENCH_IQA_QUERIES       related-query sequence len (default 30)
struct Scale {
  uint32_t vgg_inputs = 1000;
  uint32_t resnet_inputs = 600;
  int trials = 3;
  int workload_queries = 120;
  int iqa_queries = 30;
};

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

inline Scale GetScale() {
  Scale scale;
  const int64_t inputs = EnvInt("DE_BENCH_INPUTS", 0);
  if (inputs > 0) {
    scale.vgg_inputs = static_cast<uint32_t>(inputs);
    scale.resnet_inputs = static_cast<uint32_t>(inputs * 7 / 10);
  }
  scale.trials = static_cast<int>(EnvInt("DE_BENCH_TRIALS", scale.trials));
  scale.workload_queries = static_cast<int>(
      EnvInt("DE_BENCH_WORKLOAD_QUERIES", scale.workload_queries));
  scale.iqa_queries =
      static_cast<int>(EnvInt("DE_BENCH_IQA_QUERIES", scale.iqa_queries));
  return scale;
}

/// \brief One benchmark system: a frozen model plus its dataset — the
/// analogue of the paper's CIFAR10-VGG16 / ImageNet-ResNet50 pairs.
struct System {
  std::string name;
  nn::ModelPtr model;
  std::unique_ptr<data::Dataset> dataset;
  int batch_size = 16;
  /// GPU cost-model calibration: chosen so one input's simulated inference
  /// time matches the real model this system stands in for on the paper's
  /// K80 (VGG16-on-CIFAR ~1.1 ms/input; ResNet50 ~12 ms/input).
  double seconds_per_mac = 2.0e-12;
  /// Modeled reference-storage throughput for *modeled-time* experiment
  /// series. The paper's EBS moves ~16-30x more bytes per unit of inference
  /// work than our scaled-down layers produce, so the modeled device is
  /// proportionally slower than the paper's 125 MB/s gp3 volume.
  double disk_bytes_per_second = 8e6;

  std::unique_ptr<nn::InferenceEngine> NewEngine() const {
    auto engine = std::make_unique<nn::InferenceEngine>(
        model.get(), dataset.get(), batch_size);
    engine->mutable_cost_model()->seconds_per_mac = seconds_per_mac;
    return engine;
  }

  void ApplyCostModel(nn::InferenceEngine* engine) const {
    engine->mutable_cost_model()->seconds_per_mac = seconds_per_mac;
  }
};

inline System MakeVggSystem(const Scale& scale) {
  System system;
  system.name = "Synthetic-MiniVgg";
  system.model = nn::MakeMiniVgg(/*seed=*/101);
  data::SyntheticImageConfig config;
  config.num_inputs = scale.vgg_inputs;
  config.seed = 2024;
  system.dataset =
      std::make_unique<data::Dataset>(data::MakeSyntheticImages(config));
  system.batch_size = 16;  // throughput-optimal batch (paper: 128 for VGG16)
  // MiniVgg is ~0.64 MMACs/input; VGG16-on-CIFAR takes ~1.1 ms/input on the
  // paper's K80 (11 s ReprocessAll over 10k inputs).
  system.seconds_per_mac = 1.7e-9;
  return system;
}

inline System MakeResnetSystem(const Scale& scale) {
  System system;
  system.name = "Synthetic-MiniResNet";
  system.model = nn::MakeMiniResNet(/*seed=*/202);
  data::SyntheticImageConfig config;
  config.num_inputs = scale.resnet_inputs;
  config.seed = 4048;
  system.dataset =
      std::make_unique<data::Dataset>(data::MakeSyntheticImages(config));
  system.batch_size = 8;  // paper: 64 for ResNet50
  // MiniResNet is ~1.0 MMACs/input; ResNet50 takes ~12 ms/input on the K80
  // (121.4 s inference over 10k inputs, Table 1).
  system.seconds_per_mac = 1.2e-8;
  return system;
}

inline double Median(std::vector<double> values) {
  DE_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// A scratch directory removed at destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    auto dir = storage::MakeTempDir(tag);
    DE_CHECK(dir.ok()) << dir.status().ToString();
    path_ = *dir;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace bench
}  // namespace deepeverest

#endif  // DEEPEVEREST_BENCH_BENCH_COMMON_H_
