// Reproduces **Table 3**: the number of inputs run by the DNN at query time
// for SimHigh queries, as a function of nPartitions, per layer (mid/late)
// and group size (1/3/10). This is the paper's hardware-independent cost
// metric; the expected shape is a monotone decrease with nPartitions, with
// diminishing returns for large groups (curse of dimensionality).
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "baselines/query_engine.h"
#include "bench/bench_common.h"
#include "bench_util/query_gen.h"
#include "bench_util/report.h"
#include "core/nta.h"

namespace deepeverest {
namespace {

// (depth label + group size) -> nPartitions -> median inputs run.
std::map<std::string, std::map<int, int64_t>>& Cells() {
  static auto& cells = *new std::map<std::string, std::map<int, int64_t>>();
  return cells;
}

const std::vector<int>& PartitionSweep() {
  static const auto& sweep =
      *new std::vector<int>{4, 8, 16, 32, 64, 128, 256};
  return sweep;
}

void RunSweep(const bench::System& system) {
  const bench::Scale scale = bench::GetScale();
  auto engine = system.NewEngine();
  auto generator = system.NewEngine();
  for (bench_util::LayerDepth depth :
       {bench_util::LayerDepth::kMid, bench_util::LayerDepth::kLate}) {
    const int layer = bench_util::PickLayer(*system.model, depth);
    auto matrix = baselines::ComputeLayerMatrix(engine.get(), layer);
    DE_CHECK(matrix.ok());
    for (int num_partitions : PartitionSweep()) {
      auto index = core::LayerIndex::Build(
          *matrix, core::LayerIndexConfig{num_partitions, 0.0});
      DE_CHECK(index.ok());
      for (int group_size : {1, 3, 10}) {
        Rng rng(3000 + num_partitions * 10 + group_size +
                static_cast<int>(depth));
        std::vector<double> inputs;
        for (int trial = 0; trial < scale.trials; ++trial) {
          const uint32_t target = static_cast<uint32_t>(
              rng.NextUint64(system.dataset->size()));
          auto group = bench_util::MakeNeuronGroup(
              generator.get(), target, layer,
              bench_util::GroupKind::kRandHigh, group_size, &rng);
          DE_CHECK(group.ok());
          core::NtaEngine nta(engine.get(), &index.value());
          core::NtaOptions options;
          options.k = 20;
          auto result = nta.MostSimilarTo(*group, target, options);
          DE_CHECK(result.ok());
          inputs.push_back(static_cast<double>(result->stats.inputs_run));
        }
        const std::string key = std::string(
            bench_util::LayerDepthToString(depth)) +
            "-" + std::to_string(group_size);
        Cells()[key][num_partitions] =
            static_cast<int64_t>(bench::Median(inputs));
      }
    }
  }
}

}  // namespace
}  // namespace deepeverest

int main(int argc, char** argv) {
  using namespace deepeverest;  // NOLINT
  benchmark::Initialize(&argc, argv);
  const bench::Scale scale = bench::GetScale();
  const bench::System vgg = bench::MakeVggSystem(scale);
  benchmark::RegisterBenchmark(("Table3/" + vgg.name).c_str(),
                               [&vgg](benchmark::State& state) {
                                 for (auto _ : state) RunSweep(vgg);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench_util::PrintBanner(
      std::cout,
      "Table 3: #inputs run by the DNN at query time (SimHigh), " + vgg.name,
      "Dataset: " + std::to_string(vgg.dataset->size()) +
          " inputs, k=20, MAI off. Expected: monotone decrease with "
          "nPartitions; higher plateaus for larger groups.");
  std::vector<std::string> headers = {"Layer-Group"};
  for (int p : PartitionSweep()) headers.push_back(std::to_string(p));
  bench_util::TablePrinter table(headers);
  for (const char* depth : {"mid", "late"}) {
    for (int group_size : {1, 3, 10}) {
      const std::string key =
          std::string(depth) + "-" + std::to_string(group_size);
      std::vector<std::string> row = {key};
      for (int p : PartitionSweep()) {
        row.push_back(std::to_string(Cells()[key][p]));
      }
      table.AddRow(row);
    }
  }
  table.Print(std::cout);
  return 0;
}
