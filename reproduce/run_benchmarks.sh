#!/usr/bin/env bash
# Runs every bench_* binary and collects per-bench logs plus a JSON report
# (pmembench-style): one JSON object per bench with status, wall time, and
# the log location, assembled into reproduce/reports/summary.json.
#
# Usage:
#   reproduce/run_benchmarks.sh [build_dir] [report_dir]
#
# Scale knobs are inherited from the environment (DE_BENCH_INPUTS,
# DE_BENCH_TRIALS, DE_BENCH_SERVICE_QUERIES, ...). For a quick smoke pass:
#   DE_BENCH_INPUTS=120 DE_BENCH_TRIALS=1 DE_BENCH_SERVICE_QUERIES=12 \
#   DE_BENCH_SERVICE_DEVICE_SCALE=2 reproduce/run_benchmarks.sh
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
REPORT_DIR="${2:-$REPO_ROOT/reproduce/reports}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build directory '$BUILD_DIR' not found." >&2
  echo "Configure and build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

mkdir -p "$REPORT_DIR"
SUMMARY="$REPORT_DIR/summary.json"

benches=$(find "$BUILD_DIR" -maxdepth 1 -name 'bench_*' ! -name '*_test' \
  -type f -perm -u+x | sort)
if [ -z "$benches" ]; then
  echo "error: no bench_* binaries under '$BUILD_DIR' (benches need" \
    "Google Benchmark at configure time)." >&2
  exit 1
fi

echo "{" > "$SUMMARY"
echo "  \"generated_by\": \"reproduce/run_benchmarks.sh\"," >> "$SUMMARY"
echo "  \"benches\": [" >> "$SUMMARY"

total=0
failed=0
first=1
for bench in $benches; do
  name=$(basename "$bench")
  log="$REPORT_DIR/$name.log"
  total=$((total + 1))
  echo "== $name (log: $log)"
  start=$(date +%s.%N)
  if "$bench" > "$log" 2>&1; then
    status="ok"
  else
    status="failed"
    failed=$((failed + 1))
    echo "   FAILED - tail of log:"
    tail -5 "$log" | sed 's/^/   | /'
  fi
  end=$(date +%s.%N)
  seconds=$(echo "$end $start" | awk '{printf "%.2f", $1 - $2}')
  echo "   $status in ${seconds}s"

  [ "$first" -eq 1 ] || echo "    ," >> "$SUMMARY"
  first=0
  {
    echo "    {"
    echo "      \"bench\": \"$name\","
    echo "      \"status\": \"$status\","
    echo "      \"wall_seconds\": $seconds,"
    echo "      \"log\": \"$log\""
    echo "    }"
  } >> "$SUMMARY"
done

echo "  ]," >> "$SUMMARY"
echo "  \"total\": $total," >> "$SUMMARY"
echo "  \"failed\": $failed" >> "$SUMMARY"
echo "}" >> "$SUMMARY"

echo
echo "Report: $SUMMARY ($total benches, $failed failed)"
[ "$failed" -eq 0 ]
