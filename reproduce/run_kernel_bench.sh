#!/usr/bin/env bash
# Runs the kernel microbench (bench_kernels) in BOTH dispatch modes and
# writes the results (pmembench-style, one JSON per mode plus the bench's own
# cross-mode report) under reproduce/reports/. The auto-mode JSON is what
# gets committed as BENCH_kernels.json at the repo root.
#
# bench_kernels itself asserts bitwise scalar-vs-AVX2 parity on every
# measured output and exits non-zero on mismatch, so this script doubles as
# the CI kernel-bench smoke.
#
# Usage:
#   reproduce/run_kernel_bench.sh [build_dir] [report_dir]
#
# Scale knobs (environment):
#   DE_BENCH_KERNEL_ROWS     rows per aggregation block   (default 1024)
#   DE_BENCH_KERNEL_NEURONS  values per row               (default 256)
#   DE_BENCH_KERNEL_COUNT    values per bulk-unpack call  (default 1<<22)
#   DE_BENCH_KERNEL_REPS     timed repetitions, best-of   (default 20)
# Quick smoke pass:
#   DE_BENCH_KERNEL_ROWS=512 DE_BENCH_KERNEL_COUNT=65536 \
#   DE_BENCH_KERNEL_REPS=3 reproduce/run_kernel_bench.sh
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
REPORT_DIR="${2:-$REPO_ROOT/reproduce/reports}"
BENCH="$BUILD_DIR/bench_kernels"

if [ ! -x "$BENCH" ]; then
  echo "error: '$BENCH' not found or not executable." >&2
  echo "Configure and build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

mkdir -p "$REPORT_DIR"
failed=0

# Auto mode: cpuid picks the table; the report contains both modes' numbers
# and the per-kernel speedups (measured in one process for comparability).
echo "== bench_kernels (auto dispatch)"
if env -u DEEPEVEREST_KERNELS "$BENCH" > "$REPORT_DIR/kernels_auto.json"; then
  echo "   ok -> $REPORT_DIR/kernels_auto.json"
else
  echo "   FAILED (parity mismatch or crash) - tail of output:" >&2
  tail -5 "$REPORT_DIR/kernels_auto.json" | sed 's/^/   | /' >&2
  failed=1
fi

# Scalar-forced mode: exercises the DEEPEVEREST_KERNELS override end to end
# (the report's avx2 rows are absent when the override pins scalar... the
# bench still measures both tables; what this leg checks is that the binary
# honours the env and stays healthy under it).
echo "== bench_kernels (DEEPEVEREST_KERNELS=scalar)"
if DEEPEVEREST_KERNELS=scalar "$BENCH" > "$REPORT_DIR/kernels_scalar.json"; then
  echo "   ok -> $REPORT_DIR/kernels_scalar.json"
else
  echo "   FAILED - tail of output:" >&2
  tail -5 "$REPORT_DIR/kernels_scalar.json" | sed 's/^/   | /' >&2
  failed=1
fi

if [ "$failed" -eq 0 ]; then
  echo
  echo "Speedups (avx2 vs scalar, measured in-process):"
  sed -n '/speedup_avx2_vs_scalar/,/}/p' "$REPORT_DIR/kernels_auto.json"
  echo "To refresh the committed snapshot:"
  echo "  cp $REPORT_DIR/kernels_auto.json $REPO_ROOT/BENCH_kernels.json"
fi
exit "$failed"
