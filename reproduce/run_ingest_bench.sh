#!/usr/bin/env bash
# Runs the ingest bench (bench_ingest): durable-ack throughput, a concurrent
# ingest-vs-query arm that verifies every observed answer is BIT-IDENTICAL
# to a fresh engine built over exactly the prefix the query pinned, and a
# snapshot/warm-restart arm asserted to run zero startup inference. Writes
# the JSON report under reproduce/reports/; that report is what gets
# committed as BENCH_ingest.json at the repo root.
#
# bench_ingest exits non-zero on any bit-equality or recovery failure, so
# this script doubles as a correctness smoke.
#
# Usage:
#   reproduce/run_ingest_bench.sh [build_dir] [report_dir]
#
# Scale knobs (environment):
#   DE_BENCH_INGEST_BASE     base dataset inputs  (default 400)
#   DE_BENCH_INGEST_BATCHES  ingest batches       (default 12)
#   DE_BENCH_INGEST_BATCH    inputs per batch     (default 16)
# Quick smoke pass:
#   DE_BENCH_INGEST_BASE=100 DE_BENCH_INGEST_BATCHES=4 \
#   reproduce/run_ingest_bench.sh
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
REPORT_DIR="${2:-$REPO_ROOT/reproduce/reports}"
BENCH="$BUILD_DIR/bench_ingest"

if [ ! -x "$BENCH" ]; then
  echo "error: '$BENCH' not found or not executable." >&2
  echo "Configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target bench_ingest" >&2
  exit 2
fi

mkdir -p "$REPORT_DIR"
REPORT="$REPORT_DIR/bench_ingest.json"

echo "== bench_ingest -> $REPORT"
if ! "$BENCH" 2>"$REPORT_DIR/bench_ingest.log" >"$REPORT"; then
  echo "FAILED: bench_ingest reported a bit-equality or recovery failure" >&2
  cat "$REPORT_DIR/bench_ingest.log" >&2
  exit 1
fi
cat "$REPORT"

echo
echo "All pinned-watermark answers bit-identical; warm restart ran zero inference."
echo "To refresh the committed snapshot: cp $REPORT $REPO_ROOT/BENCH_ingest.json"
