// Seeded scalar-vs-AVX2 parity suite: every KernelTable entry must return
// BIT-IDENTICAL results from both tables for identical inputs. This is the
// contract that lets the §4.6 fresh-scan reference stay bit-equal to the
// service path under either DEEPEVEREST_KERNELS mode. Both tables are
// exercised in one process via GetKernelTable(mode) — no env involved.

#include "kernels/kernels.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace deepeverest {
namespace kernels {
namespace {

/// Bitwise comparison that distinguishes +0.0/-0.0 and NaN payloads.
::testing::AssertionResult BitsEqual(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ba = 0;
    uint64_t bb = 0;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << "row " << i << ": " << a[i] << " (0x" << std::hex << ba
             << ") vs " << b[i] << " (0x" << bb << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

class KernelsParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Supported()) {
      GTEST_SKIP() << "no AVX2 on this machine; nothing to compare";
    }
  }
};

// Odd lengths and row counts on purpose: every combination of SIMD body,
// column epilogue (n % 4) and row tail (num_rows % 8 / % 4) gets hit.
const size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 17, 31, 33, 64, 100};
const size_t kRowCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 40};

TEST_F(KernelsParityTest, AggregationAllKindsOddShapesUnalignedTails) {
  const KernelTable& scalar = GetKernelTable(DispatchMode::kScalar);
  const KernelTable& avx2 = GetKernelTable(DispatchMode::kAvx2);
  Rng rng(2024);
  for (const size_t n : kLengths) {
    for (const size_t num_rows : kRowCounts) {
      // Strided layout (stride > n) in half the cases.
      const size_t stride = (n + num_rows) % 2 == 0 ? n : n + 3;
      std::vector<float> rows(num_rows * stride);
      for (float& v : rows) {
        v = static_cast<float>(rng.NextDouble() * 8.0 - 4.0);
      }
      // Inject signed zeros and exact ties so the max path's tie-breaking
      // is exercised, not just generic values.
      if (rows.size() > 4) {
        rows[1] = -0.0f;
        rows[2] = 0.0f;
        rows[3] = rows[0];
      }
      std::vector<float> target(n);
      for (float& v : target) {
        v = static_cast<float>(rng.NextDouble() * 8.0 - 4.0);
      }
      std::vector<double> weights(n);
      for (double& w : weights) w = rng.NextDouble() * 2.0;

      for (int k = 0; k < kNumAggKinds; ++k) {
        std::vector<double> out_scalar(num_rows, -1.0);
        std::vector<double> out_avx2(num_rows, -2.0);
        scalar.abs_diff_agg[k](rows.data(), stride, num_rows, target.data(),
                               weights.data(), n, out_scalar.data());
        avx2.abs_diff_agg[k](rows.data(), stride, num_rows, target.data(),
                             weights.data(), n, out_avx2.data());
        EXPECT_TRUE(BitsEqual(out_scalar, out_avx2))
            << "abs_diff kind=" << k << " n=" << n << " rows=" << num_rows;

        scalar.value_agg[k](rows.data(), stride, num_rows, weights.data(), n,
                            out_scalar.data());
        avx2.value_agg[k](rows.data(), stride, num_rows, weights.data(), n,
                          out_avx2.data());
        EXPECT_TRUE(BitsEqual(out_scalar, out_avx2))
            << "value kind=" << k << " n=" << n << " rows=" << num_rows;
      }
    }
  }
}

TEST_F(KernelsParityTest, AggregationAllNegativeRows) {
  // The linf value kernel must track the scalar seed-from-first behaviour
  // for all-negative rows (no phantom zero in either table).
  const KernelTable& scalar = GetKernelTable(DispatchMode::kScalar);
  const KernelTable& avx2 = GetKernelTable(DispatchMode::kAvx2);
  Rng rng(5);
  const size_t n = 9;
  const size_t num_rows = 11;
  std::vector<float> rows(num_rows * n);
  for (float& v : rows) {
    v = static_cast<float>(-rng.NextDouble() * 5.0 - 0.25);
  }
  std::vector<double> weights(n, 1.0);
  for (int k = 0; k < kNumAggKinds; ++k) {
    std::vector<double> out_scalar(num_rows);
    std::vector<double> out_avx2(num_rows);
    scalar.value_agg[k](rows.data(), n, num_rows, weights.data(), n,
                        out_scalar.data());
    avx2.value_agg[k](rows.data(), n, num_rows, weights.data(), n,
                      out_avx2.data());
    EXPECT_TRUE(BitsEqual(out_scalar, out_avx2)) << "kind=" << k;
    if (k == static_cast<int>(AggKind::kLInf)) {
      for (const double v : out_scalar) EXPECT_LT(v, 0.0);
    }
  }
}

TEST_F(KernelsParityTest, UnpackAllWidthsAndOffsets) {
  const KernelTable& scalar = GetKernelTable(DispatchMode::kScalar);
  const KernelTable& avx2 = GetKernelTable(DispatchMode::kAvx2);
  Rng rng(77);
  for (const int bits : {1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64}) {
    const size_t n = 513;
    const size_t num_words =
        (n * static_cast<size_t>(bits) + 63) / 64;
    std::vector<uint64_t> words(num_words);
    for (uint64_t& w : words) w = rng.NextUint64();
    for (const size_t begin :
         {size_t{0}, size_t{1}, size_t{3}, size_t{15}, size_t{16},
          size_t{63}, size_t{64}, size_t{65}, size_t{300}}) {
      for (const size_t count :
           {size_t{0}, size_t{1}, size_t{4}, size_t{16}, size_t{63},
            size_t{64}, size_t{129}, size_t{200}}) {
        if (begin + count > n) continue;
        std::vector<uint64_t> out_scalar(count + 1, 0xAAu);
        std::vector<uint64_t> out_avx2(count + 1, 0xBBu);
        scalar.unpack(words.data(), num_words, bits, begin, count,
                      out_scalar.data());
        avx2.unpack(words.data(), num_words, bits, begin, count,
                    out_avx2.data());
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(out_scalar[i], out_avx2[i])
              << "bits=" << bits << " begin=" << begin << " count=" << count
              << " i=" << i;
        }
        // Neither kernel may write past `count`.
        EXPECT_EQ(out_scalar[count], 0xAAu);
        EXPECT_EQ(out_avx2[count], 0xBBu);
      }
    }
  }
}

TEST_F(KernelsParityTest, DequantRowAllLengths) {
  const KernelTable& scalar = GetKernelTable(DispatchMode::kScalar);
  const KernelTable& avx2 = GetKernelTable(DispatchMode::kAvx2);
  Rng rng(31);
  for (const size_t n : kLengths) {
    std::vector<uint8_t> codes(n);
    std::vector<float> minv(n);
    std::vector<float> scale(n);
    for (size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<uint8_t>(rng.NextUint64() & 0xff);
      minv[i] = static_cast<float>(rng.NextDouble() * 4.0 - 2.0);
      scale[i] = static_cast<float>(rng.NextDouble() / 255.0);
    }
    std::vector<float> out_scalar(n);
    std::vector<float> out_avx2(n);
    scalar.dequant_row(codes.data(), minv.data(), scale.data(), n,
                       out_scalar.data());
    avx2.dequant_row(codes.data(), minv.data(), scale.data(), n,
                     out_avx2.data());
    EXPECT_EQ(std::memcmp(out_scalar.data(), out_avx2.data(),
                          n * sizeof(float)),
              0)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace kernels
}  // namespace deepeverest
