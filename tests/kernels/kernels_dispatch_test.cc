// Dispatch-selection tests. The pure ResolveDispatchMode logic is tested
// directly; the process-wide override is tested by setting
// DEEPEVEREST_KERNELS=scalar from a static initialiser, which runs before
// any code can touch Active() — so this binary observes the forced mode no
// matter what hardware it runs on.

#include "kernels/kernels.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace deepeverest {
namespace kernels {
namespace {

// Runs before main(), hence before the one-time resolution in
// ActiveDispatchMode() can possibly have happened.
const bool kEnvForced = [] {
  setenv("DEEPEVEREST_KERNELS", "scalar", /*overwrite=*/1);
  return true;
}();

TEST(KernelDispatchTest, ResolveAutodetects) {
  EXPECT_EQ(ResolveDispatchMode(nullptr, /*avx2_supported=*/true),
            DispatchMode::kAvx2);
  EXPECT_EQ(ResolveDispatchMode(nullptr, /*avx2_supported=*/false),
            DispatchMode::kScalar);
  EXPECT_EQ(ResolveDispatchMode("", /*avx2_supported=*/true),
            DispatchMode::kAvx2);
}

TEST(KernelDispatchTest, ResolveHonoursExplicitModes) {
  EXPECT_EQ(ResolveDispatchMode("scalar", /*avx2_supported=*/true),
            DispatchMode::kScalar);
  EXPECT_EQ(ResolveDispatchMode("scalar", /*avx2_supported=*/false),
            DispatchMode::kScalar);
  EXPECT_EQ(ResolveDispatchMode("avx2", /*avx2_supported=*/true),
            DispatchMode::kAvx2);
}

TEST(KernelDispatchTest, ResolveFallsBackWhenAvx2Unavailable) {
  EXPECT_EQ(ResolveDispatchMode("avx2", /*avx2_supported=*/false),
            DispatchMode::kScalar);
}

TEST(KernelDispatchTest, ResolveRejectsUnknownValues) {
  EXPECT_EQ(ResolveDispatchMode("sse9", /*avx2_supported=*/true),
            DispatchMode::kAvx2);  // warns, then autodetects
  EXPECT_EQ(ResolveDispatchMode("sse9", /*avx2_supported=*/false),
            DispatchMode::kScalar);
}

TEST(KernelDispatchTest, ModeNames) {
  EXPECT_STREQ(DispatchModeName(DispatchMode::kScalar), "scalar");
  EXPECT_STREQ(DispatchModeName(DispatchMode::kAvx2), "avx2");
}

TEST(KernelDispatchTest, ForcedScalarOverrideWins) {
  ASSERT_TRUE(kEnvForced);
  // Even on AVX2 hardware, the env override must pin the process to the
  // scalar table — this is what the CI scalar test-matrix leg relies on.
  EXPECT_EQ(ActiveDispatchMode(), DispatchMode::kScalar);
  EXPECT_STREQ(Active().name, "scalar");
}

TEST(KernelDispatchTest, ScalarTableAlwaysAvailable) {
  const KernelTable& table = GetKernelTable(DispatchMode::kScalar);
  EXPECT_STREQ(table.name, "scalar");
  for (int k = 0; k < kNumAggKinds; ++k) {
    EXPECT_NE(table.abs_diff_agg[k], nullptr);
    EXPECT_NE(table.value_agg[k], nullptr);
  }
  EXPECT_NE(table.unpack, nullptr);
  EXPECT_NE(table.dequant_row, nullptr);
}

}  // namespace
}  // namespace kernels
}  // namespace deepeverest
