// Tests for NTA's extensions (paper section 6): θ-approximation,
// incremental result return, user-driven early stopping — plus IQA-backed
// execution correctness and inference-savings accounting.
#include <gtest/gtest.h>

#include "core/iqa_cache.h"
#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::ExpectValidTopK;
using testing_util::TinySystem;

Result<LayerIndex> BuildIndexFor(nn::InferenceEngine* engine, int layer,
                                 const LayerIndexConfig& config) {
  const uint32_t n = engine->dataset().size();
  std::vector<uint32_t> ids(n);
  for (uint32_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::vector<float>> rows;
  DE_RETURN_NOT_OK(engine->ComputeLayer(ids, layer, &rows));
  auto matrix = storage::LayerActivationMatrix::Make(n, rows[0].size());
  for (uint32_t i = 0; i < n; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), matrix.MutableRow(i));
  }
  return LayerIndex::Build(matrix, config);
}

std::vector<float> TargetActs(nn::InferenceEngine* engine, int layer,
                              uint32_t target,
                              const std::vector<int64_t>& neurons) {
  std::vector<std::vector<float>> rows;
  DE_CHECK(engine->ComputeLayer({target}, layer, &rows).ok());
  std::vector<float> acts(neurons.size());
  for (size_t i = 0; i < neurons.size(); ++i) {
    acts[i] = rows[0][static_cast<size_t>(neurons[i])];
  }
  return acts;
}

TEST(ThetaApproximationTest, GuaranteeHoldsForAllReturnedEntries) {
  TinySystem sys(80, 21, 8);
  const int layer = sys.model->activation_layers()[1];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{16, 0.1});
  ASSERT_TRUE(index.ok());

  const NeuronGroup group{layer, {2, 6, 10}};
  const uint32_t target = 17;
  const std::vector<float> target_acts =
      TargetActs(sys.engine.get(), layer, target, group.neurons);

  for (double theta : {0.5, 0.8, 0.95}) {
    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = 10;
    options.theta = theta;
    auto approx = nta.MostSimilarTo(group, target, options);
    ASSERT_TRUE(approx.ok());
    ASSERT_EQ(approx->entries.size(), 10u);

    // θ-approximation definition (paper section 6): for every returned y
    // and every not-returned z, θ * dist(y) <= dist(z). Verify against a
    // brute-force computation of all distances.
    auto all = BruteForceMostSimilar(sys.engine.get(), group, target_acts,
                                     static_cast<int>(sys.dataset.size()) - 1,
                                     L2Distance(), true, target);
    ASSERT_TRUE(all.ok());
    std::set<uint32_t> returned;
    double max_returned = 0.0;
    for (const ResultEntry& e : approx->entries) {
      returned.insert(e.input_id);
      max_returned = std::max(max_returned, e.value);
    }
    for (const ResultEntry& z : all->entries) {
      if (returned.count(z.input_id) != 0) continue;
      EXPECT_LE(theta * max_returned, z.value + 1e-9)
          << "theta=" << theta << " violated by input " << z.input_id;
    }
  }
}

TEST(ThetaApproximationTest, LooserThetaRunsNoMoreInputs) {
  TinySystem sys(80, 22, 8);
  const int layer = sys.model->activation_layers()[1];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{16, 0.0});
  ASSERT_TRUE(index.ok());
  const NeuronGroup group{layer, {1, 5}};

  int64_t exact_inputs = 0, approx_inputs = 0;
  {
    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = 8;
    auto result = nta.MostSimilarTo(group, 3, options);
    ASSERT_TRUE(result.ok());
    exact_inputs = result->stats.inputs_run;
  }
  {
    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = 8;
    options.theta = 0.5;
    auto result = nta.MostSimilarTo(group, 3, options);
    ASSERT_TRUE(result.ok());
    approx_inputs = result->stats.inputs_run;
  }
  EXPECT_LE(approx_inputs, exact_inputs);
}

TEST(IncrementalReturnTest, ConfirmedEntriesAreFinalAnswers) {
  TinySystem sys(60, 23, 8);
  const int layer = sys.model->activation_layers()[0];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{8, 0.1});
  ASSERT_TRUE(index.ok());
  const NeuronGroup group{layer, {0, 7, 12}};

  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 10;
  std::vector<NtaProgress> snapshots;
  QueryContext ctx;
  ctx.on_progress = [&](const NtaProgress& p) {
    snapshots.push_back(p);
    return true;
  };
  auto result = nta.MostSimilarTo(group, 9, options, &ctx);
  ASSERT_TRUE(result.ok());

  // Every entry confirmed mid-run (dist <= threshold at that time) must be
  // present in the final result (incrementally returning results,
  // section 6).
  std::set<uint32_t> final_ids;
  for (const ResultEntry& e : result->entries) final_ids.insert(e.input_id);
  for (const NtaProgress& p : snapshots) {
    for (const ResultEntry& confirmed : p.confirmed) {
      EXPECT_TRUE(final_ids.count(confirmed.input_id) != 0)
          << "confirmed input " << confirmed.input_id
          << " missing from final answer";
    }
  }
  // Threshold must be non-decreasing over rounds (monotone expansion).
  for (size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_GE(snapshots[i].threshold, snapshots[i - 1].threshold - 1e-9);
  }
}

TEST(EarlyStoppingTest, UserStopReturnsCurrentTopWithGuarantee) {
  TinySystem sys(100, 24, 4);
  const int layer = sys.model->activation_layers()[1];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{32, 0.0});
  ASSERT_TRUE(index.ok());
  const NeuronGroup group{layer, {3, 8}};
  const uint32_t target = 42;

  // Stop after the first round that has a full top-k.
  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 5;
  double theta_guarantee = 0.0;
  QueryContext ctx;
  ctx.on_progress = [&](const NtaProgress& p) {
    if (p.round >= 2 && p.kth_value < 1e18) {
      theta_guarantee = p.theta_guarantee;
      return false;  // user stops
    }
    return true;
  };
  auto stopped = nta.MostSimilarTo(group, target, options, &ctx);
  ASSERT_TRUE(stopped.ok());
  ASSERT_EQ(stopped->entries.size(), 5u);
  ASSERT_GT(theta_guarantee, 0.0);
  ASSERT_LE(theta_guarantee, 1.0);

  // The guarantee must hold against ground truth: θ * dist(y) <= dist(z)
  // for returned y, unreturned z.
  const std::vector<float> target_acts =
      TargetActs(sys.engine.get(), layer, target, group.neurons);
  auto all = BruteForceMostSimilar(sys.engine.get(), group, target_acts,
                                   static_cast<int>(sys.dataset.size()) - 1,
                                   L2Distance(), true, target);
  ASSERT_TRUE(all.ok());
  std::set<uint32_t> returned;
  double max_returned = 0.0;
  for (const ResultEntry& e : stopped->entries) {
    returned.insert(e.input_id);
    max_returned = std::max(max_returned, e.value);
  }
  for (const ResultEntry& z : all->entries) {
    if (returned.count(z.input_id) != 0) continue;
    EXPECT_LE(theta_guarantee * max_returned, z.value + 1e-9);
  }
}

TEST(IqaIntegrationTest, SecondQuerySameLayerUsesCache) {
  TinySystem sys(60, 25, 8);
  const int layer = sys.model->activation_layers()[1];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{8, 0.0});
  ASSERT_TRUE(index.ok());
  IqaCache cache(1 << 24);

  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 10;
  QueryContext first_ctx;
  first_ctx.iqa = &cache;

  auto first =
      nta.MostSimilarTo(NeuronGroup{layer, {1, 4, 7}}, 5, options, &first_ctx);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->stats.inputs_run, 0);

  // A related query over a *different* group in the same layer: the cache
  // holds full-layer rows, so repeated inputs cost nothing.
  QueryContext second_ctx;
  second_ctx.iqa = &cache;
  auto second = nta.MostSimilarTo(NeuronGroup{layer, {2, 4, 9}}, 5, options,
                                  &second_ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->stats.iqa_hits, 0);
  EXPECT_LT(second->stats.inputs_run, first->stats.inputs_run);

  // And the answer remains exact.
  std::vector<float> target_acts =
      TargetActs(sys.engine.get(), layer, 5, {2, 4, 9});
  auto expected = BruteForceMostSimilar(sys.engine.get(),
                                        NeuronGroup{layer, {2, 4, 9}},
                                        target_acts, 10, L2Distance(), true,
                                        5);
  ASSERT_TRUE(expected.ok());
  ExpectValidTopK(*expected, *second, true);
}

TEST(IqaIntegrationTest, CacheDoesNotLeakAcrossLayers) {
  TinySystem sys(40, 26, 8);
  const int layer_a = sys.model->activation_layers()[0];
  const int layer_b = sys.model->activation_layers()[1];
  auto index_a =
      BuildIndexFor(sys.engine.get(), layer_a, LayerIndexConfig{4, 0.0});
  auto index_b =
      BuildIndexFor(sys.engine.get(), layer_b, LayerIndexConfig{4, 0.0});
  ASSERT_TRUE(index_a.ok());
  ASSERT_TRUE(index_b.ok());
  IqaCache cache(1 << 24);

  NtaOptions options;
  options.k = 5;
  NtaEngine nta_a(sys.engine.get(), &index_a.value());
  QueryContext ctx_a;
  ctx_a.iqa = &cache;
  auto first =
      nta_a.MostSimilarTo(NeuronGroup{layer_a, {0, 1}}, 2, options, &ctx_a);
  ASSERT_TRUE(first.ok());

  // Querying another layer must not hit layer_a's cached rows.
  NtaEngine nta_b(sys.engine.get(), &index_b.value());
  QueryContext ctx_b;
  ctx_b.iqa = &cache;
  auto second =
      nta_b.MostSimilarTo(NeuronGroup{layer_b, {0, 1}}, 2, options, &ctx_b);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.iqa_hits, 0);
}

TEST(InferenceSavingsTest, SmallerPartitionsRunFewerInputs) {
  // Table 3's monotone trend: more partitions => fewer inputs run by the
  // DNN at query time.
  TinySystem sys(128, 27, 4);
  const int layer = sys.model->activation_layers()[1];
  const NeuronGroup group{layer, {2, 5, 8}};
  int64_t prev = std::numeric_limits<int64_t>::max();
  for (int parts : {2, 8, 32}) {
    auto index = BuildIndexFor(sys.engine.get(), layer,
                               LayerIndexConfig{parts, 0.0});
    ASSERT_TRUE(index.ok());
    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = 5;
    auto result = nta.MostSimilarTo(group, 11, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->stats.inputs_run, prev)
        << "nPartitions=" << parts;
    prev = result->stats.inputs_run;
  }
  // With 32 partitions the query must touch well under the whole dataset.
  EXPECT_LT(prev, 128);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
