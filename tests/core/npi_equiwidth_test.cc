// Tests for the equi-width partitioning scheme (ablation of the paper's
// equi-depth design choice): geometry, skew behaviour, and NTA correctness
// on indexes with empty partitions.
#include <gtest/gtest.h>

#include "core/nta.h"
#include "core/npi.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::ExpectValidTopK;
using testing_util::TinySystem;

storage::LayerActivationMatrix UniformMatrix() {
  // Values 0..9 over a single neuron: equi-width with 5 partitions gives
  // two inputs per partition, highest values in partition 0.
  auto m = storage::LayerActivationMatrix::Make(10, 1);
  for (uint32_t i = 0; i < 10; ++i) {
    m.MutableRow(i)[0] = static_cast<float>(i);
  }
  return m;
}

TEST(EquiWidthTest, UniformValuesSplitEvenly) {
  LayerIndexConfig config;
  config.num_partitions = 5;
  config.scheme = PartitionScheme::kEquiWidth;
  auto index = LayerIndex::Build(UniformMatrix(), config);
  ASSERT_TRUE(index.ok());
  // Value 9 -> partition 0; value 0 -> partition 4.
  EXPECT_EQ(index->GetPid(0, 9), 0u);
  EXPECT_EQ(index->GetPid(0, 8), 0u);
  EXPECT_EQ(index->GetPid(0, 0), 4u);
  EXPECT_EQ(index->GetPid(0, 1), 4u);
  EXPECT_FLOAT_EQ(index->UpperBound(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(index->LowerBound(0, 4), 0.0f);
}

TEST(EquiWidthTest, SkewConcentratesInputs) {
  // Heavy skew: 99 zeros and one huge value. Equi-width puts all zeros in
  // the last partition and leaves the middle empty — the failure mode that
  // motivates equi-depth (§4.3).
  auto m = storage::LayerActivationMatrix::Make(100, 1);
  for (uint32_t i = 0; i < 99; ++i) m.MutableRow(i)[0] = 0.0f;
  m.MutableRow(99)[0] = 100.0f;
  LayerIndexConfig config;
  config.num_partitions = 8;
  config.scheme = PartitionScheme::kEquiWidth;
  auto index = LayerIndex::Build(m, config);
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> ids;
  index->GetInputIds(0, 7, &ids);
  EXPECT_EQ(ids.size(), 99u);  // every zero lands in the last partition
  ids.clear();
  index->GetInputIds(0, 3, &ids);
  EXPECT_TRUE(ids.empty());  // middle partitions empty
  // Equi-depth instead balances them.
  config.scheme = PartitionScheme::kEquiDepth;
  auto depth_index = LayerIndex::Build(m, config);
  ASSERT_TRUE(depth_index.ok());
  ids.clear();
  depth_index->GetInputIds(0, 3, &ids);
  EXPECT_GT(ids.size(), 10u);
}

TEST(EquiWidthTest, ConstantNeuronSinglePartition) {
  auto m = storage::LayerActivationMatrix::Make(6, 1);
  for (uint32_t i = 0; i < 6; ++i) m.MutableRow(i)[0] = 2.5f;
  LayerIndexConfig config;
  config.num_partitions = 4;
  config.scheme = PartitionScheme::kEquiWidth;
  auto index = LayerIndex::Build(m, config);
  ASSERT_TRUE(index.ok());
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(index->GetPid(0, i), 0u);
  }
}

TEST(EquiWidthTest, MaiRequiresEquiDepth) {
  LayerIndexConfig config;
  config.num_partitions = 4;
  config.mai_ratio = 0.2;
  config.scheme = PartitionScheme::kEquiWidth;
  EXPECT_TRUE(
      LayerIndex::Build(UniformMatrix(), config).status().IsInvalidArgument());
}

TEST(EquiWidthTest, NtaRemainsExactWithEmptyPartitions) {
  TinySystem sys(80, 55, 8);
  const int layer = sys.model->activation_layers()[1];
  const uint32_t n = sys.dataset.size();
  std::vector<uint32_t> ids(n);
  for (uint32_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer(ids, layer, &rows));
  auto matrix = storage::LayerActivationMatrix::Make(n, rows[0].size());
  for (uint32_t i = 0; i < n; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), matrix.MutableRow(i));
  }
  LayerIndexConfig config;
  config.num_partitions = 16;
  config.scheme = PartitionScheme::kEquiWidth;
  auto index = LayerIndex::Build(matrix, config);
  ASSERT_TRUE(index.ok());

  Rng rng(56);
  for (int trial = 0; trial < 5; ++trial) {
    NeuronGroup group{layer, {}};
    for (size_t pick :
         rng.SampleWithoutReplacement(rows[0].size(), 3)) {
      group.neurons.push_back(static_cast<int64_t>(pick));
    }
    const uint32_t target = static_cast<uint32_t>(rng.NextUint64(n));
    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = 7;
    auto actual = nta.MostSimilarTo(group, target, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();

    std::vector<float> target_acts(group.neurons.size());
    for (size_t i = 0; i < group.neurons.size(); ++i) {
      target_acts[i] =
          matrix.At(target, static_cast<uint64_t>(group.neurons[i]));
    }
    auto expected = BruteForceMostSimilar(sys.engine.get(), group,
                                          target_acts, 7, L2Distance(), true,
                                          target);
    ASSERT_TRUE(expected.ok());
    ExpectValidTopK(*expected, *actual, /*smaller_is_better=*/true);

    // Highest must also stay exact.
    auto actual_high = nta.Highest(group, options);
    ASSERT_TRUE(actual_high.ok());
    auto expected_high =
        BruteForceHighest(sys.engine.get(), group, 7, L2Distance());
    ASSERT_TRUE(expected_high.ok());
    ExpectValidTopK(*expected_high, *actual_high, false);
  }
}

TEST(EquiWidthTest, SerializationRoundTrip) {
  LayerIndexConfig config;
  config.num_partitions = 5;
  config.scheme = PartitionScheme::kEquiWidth;
  auto built = LayerIndex::Build(UniformMatrix(), config);
  ASSERT_TRUE(built.ok());
  BinaryWriter writer;
  built->Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded = LayerIndex::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok());
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded->GetPid(0, i), built->GetPid(0, i));
  }
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
