#include "core/index_manager.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::TempDir;
using testing_util::TinySystem;

IndexManagerOptions Opts(int partitions = 4, double ratio = 0.1,
                         bool persist = true) {
  IndexManagerOptions options;
  options.layer_config = LayerIndexConfig{partitions, ratio};
  options.persist = persist;
  return options;
}

TEST(IndexManagerTest, BuildsOnFirstUseAndReturnsFreshActs) {
  TinySystem sys(30, 31, 8);
  TempDir dir("im");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IndexManager manager(sys.engine.get(), &store.value(), Opts());

  const int layer = sys.model->activation_layers()[0];
  EXPECT_FALSE(manager.IsIndexed(layer));

  storage::LayerActivationMatrix fresh;
  PreprocessTimings timings;
  auto index = manager.EnsureIndex(layer, &fresh, &timings);
  ASSERT_TRUE(index.ok());
  // Fresh activations returned so the triggering query can be answered
  // without a second pass (section 4.6).
  EXPECT_EQ(fresh.num_inputs, 30u);
  EXPECT_EQ(fresh.num_neurons,
            static_cast<uint64_t>(sys.model->NeuronCount(layer)));
  EXPECT_GT(timings.inference_seconds + timings.index_seconds +
                timings.persist_seconds,
            0.0);
  EXPECT_TRUE(manager.IsIndexed(layer));
  EXPECT_TRUE(manager.IsLoaded(layer));
  EXPECT_TRUE(
      store->Exists(IndexManager::KeyFor(sys.model->name(), layer)));
}

TEST(IndexManagerTest, SecondCallDoesNotRebuild) {
  TinySystem sys(30, 32, 8);
  TempDir dir("im");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IndexManager manager(sys.engine.get(), &store.value(), Opts());
  const int layer = sys.model->activation_layers()[1];

  ASSERT_TRUE(manager.EnsureIndex(layer).ok());
  const int64_t after_build = sys.engine->stats().inputs_run;
  storage::LayerActivationMatrix fresh;
  auto again = manager.EnsureIndex(layer, &fresh);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(sys.engine->stats().inputs_run, after_build);  // no inference
  EXPECT_EQ(fresh.num_inputs, 0u);  // nothing recomputed
}

TEST(IndexManagerTest, LoadsPersistedIndexAcrossManagers) {
  TinySystem sys(25, 33, 8);
  TempDir dir("im");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  const int layer = sys.model->activation_layers()[0];
  {
    IndexManager manager(sys.engine.get(), &store.value(), Opts());
    ASSERT_TRUE(manager.EnsureIndex(layer).ok());
  }
  // A new manager (new session) finds the index on disk: no inference.
  IndexManager manager2(sys.engine.get(), &store.value(), Opts());
  EXPECT_TRUE(manager2.IsIndexed(layer));
  EXPECT_FALSE(manager2.IsLoaded(layer));
  const int64_t before = sys.engine->stats().inputs_run;
  auto index = manager2.EnsureIndex(layer);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(sys.engine->stats().inputs_run, before);
  EXPECT_EQ((*index)->num_inputs(), 25u);
}

TEST(IndexManagerTest, NonPersistentStaysInMemory) {
  TinySystem sys(20, 34, 8);
  TempDir dir("im");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IndexManager manager(sys.engine.get(), &store.value(),
                       Opts(4, 0.0, /*persist=*/false));
  const int layer = sys.model->activation_layers()[0];
  ASSERT_TRUE(manager.EnsureIndex(layer).ok());
  auto keys = store->ListKeys();
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
  auto bytes = manager.PersistedBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, 0u);
}

TEST(IndexManagerTest, PreprocessAllLayersIndexesEverything) {
  TinySystem sys(15, 35, 8);
  TempDir dir("im");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IndexManager manager(sys.engine.get(), &store.value(), Opts());
  PreprocessTimings timings;
  DE_ASSERT_OK(manager.PreprocessAllLayers(&timings));
  for (int layer = 0; layer < sys.model->num_layers(); ++layer) {
    EXPECT_TRUE(manager.IsIndexed(layer)) << "layer " << layer;
  }
  auto bytes = manager.PersistedBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);
  EXPECT_GT(timings.inference_seconds, 0.0);
}

TEST(IndexManagerTest, RejectsBadLayer) {
  TinySystem sys(10, 36, 8);
  TempDir dir("im");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IndexManager manager(sys.engine.get(), &store.value(), Opts());
  EXPECT_TRUE(manager.EnsureIndex(-1).status().IsOutOfRange());
  EXPECT_TRUE(manager.EnsureIndex(99).status().IsOutOfRange());
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
