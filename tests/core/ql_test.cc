#include "core/ql.h"

#include <gtest/gtest.h>

#include "core/deepeverest.h"
#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::TempDir;
using testing_util::TinySystem;

TEST(QlParseTest, HighestWithExplicitGroup) {
  auto spec =
      ParseQuery("SELECT TOPK 20 HIGHEST FOR LAYER 7 NEURONS (10, 42, 100)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kHighest);
  EXPECT_EQ(spec->k, 20);
  EXPECT_EQ(spec->layer, 7);
  EXPECT_EQ(spec->neurons, (std::vector<int64_t>{10, 42, 100}));
  EXPECT_EQ(spec->distance, DistanceKind::kL2);
  EXPECT_EQ(spec->theta, 1.0);
  // QL covers the declarative half; the envelope stays at its defaults.
  EXPECT_EQ(spec->session_id, 0u);
  EXPECT_EQ(spec->qos, QosClass::kBatch);
  EXPECT_LT(spec->deadline_ms, 0.0);
}

TEST(QlParseTest, SimilarWithTopNeurons) {
  auto spec = ParseQuery(
      "select topk 10 most similar to 42 for layer 3 top 3 neurons using l1 "
      "theta 0.9");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kMostSimilar);
  EXPECT_EQ(spec->target_id, 42);
  EXPECT_EQ(spec->top_neurons, 3);
  EXPECT_TRUE(spec->has_derived_group());
  EXPECT_EQ(spec->top_of, -1);  // defaults to the target
  EXPECT_EQ(spec->distance, DistanceKind::kL1);
  EXPECT_DOUBLE_EQ(spec->theta, 0.9);
}

TEST(QlParseTest, TopNeuronsOfOtherInput) {
  auto spec = ParseQuery(
      "SELECT TOPK 5 HIGHEST FOR LAYER 2 TOP 4 NEURONS OF INPUT 17");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->top_neurons, 4);
  EXPECT_EQ(spec->top_of, 17);
}

TEST(QlParseTest, SingleNeuronGroupAndLinf) {
  auto spec =
      ParseQuery("SELECT TOPK 1 SIMILAR TO 0 FOR LAYER 1 NEURONS (5) "
                 "USING LINF");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->neurons, (std::vector<int64_t>{5}));
  EXPECT_EQ(spec->distance, DistanceKind::kLInf);
}

TEST(QlParseTest, ToStringRoundTrips) {
  const char* texts[] = {
      "SELECT TOPK 20 HIGHEST FOR LAYER 7 NEURONS (10, 42, 100)",
      "SELECT TOPK 10 SIMILAR TO 42 FOR LAYER 3 TOP 3 NEURONS",
      "SELECT TOPK 5 HIGHEST FOR LAYER 2 TOP 4 NEURONS OF 17 USING L1",
      "SELECT TOPK 3 SIMILAR TO 1 FOR LAYER 2 NEURONS (7) THETA 0.75",
  };
  for (const char* text : texts) {
    auto first = ParseQuery(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseQuery(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(first->ToString(), second->ToString());
    EXPECT_EQ(*first, *second) << text;  // field-wise, bit-exact theta
  }
}

TEST(QlParseTest, ErrorsAreDescriptive) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1)", "SELECT"},
      {"SELECT TOPK 0 HIGHEST FOR LAYER 1 NEURONS (1)", "k must be >= 1"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS ()", "neuron"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1", "NEURONS"},
      {"SELECT TOPK 5 SIMILAR TO x FOR LAYER 1 NEURONS (1)", "integer"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) USING L3", "L3"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) THETA 2", "theta"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) GARBAGE", "GARBAGE"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 TOP 3 NEURONS", "OF"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) @", "character"},
      // Validation is shared with every other entry point: the same
      // duplicate-neuron error the wire and Submit produce.
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (3, 3)", "duplicate"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (-2)", ">= 0"},
  };
  for (const Case& c : cases) {
    auto spec = ParseQuery(c.text);
    ASSERT_FALSE(spec.ok()) << c.text;
    EXPECT_NE(spec.status().message().find(c.needle), std::string::npos)
        << c.text << " -> " << spec.status().ToString();
  }
}

TEST(QlExecuteTest, MatchesDirectApiCalls) {
  TinySystem sys(50, 61, 8);
  TempDir dir("ql");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());

  const int layer = sys.model->activation_layers()[1];
  const std::string text = "SELECT TOPK 7 SIMILAR TO 13 FOR LAYER " +
                           std::to_string(layer) + " NEURONS (1, 4, 9)";
  auto parsed = ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto via_ql = (*de)->ExecuteSpec(*parsed);
  ASSERT_TRUE(via_ql.ok()) << via_ql.status().ToString();
  auto via_api =
      (*de)->TopKMostSimilar(13, NeuronGroup{layer, {1, 4, 9}}, 7);
  ASSERT_TRUE(via_api.ok());
  ASSERT_EQ(via_ql->entries.size(), via_api->entries.size());
  for (size_t i = 0; i < via_ql->entries.size(); ++i) {
    EXPECT_EQ(via_ql->entries[i].input_id, via_api->entries[i].input_id);
    EXPECT_DOUBLE_EQ(via_ql->entries[i].value, via_api->entries[i].value);
  }
}

TEST(QlExecuteTest, TopNeuronsResolveToMaximallyActivated) {
  TinySystem sys(40, 62, 8);
  TempDir dir("ql2");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[0];

  const std::string text = "SELECT TOPK 5 SIMILAR TO 8 FOR LAYER " +
                           std::to_string(layer) + " TOP 3 NEURONS";
  auto parsed = ParseQuery(text);
  ASSERT_TRUE(parsed.ok());
  auto via_ql = (*de)->ExecuteSpec(*parsed);
  ASSERT_TRUE(via_ql.ok()) << via_ql.status().ToString();

  auto top = (*de)->MaximallyActivatedNeurons(8, layer, 3);
  ASSERT_TRUE(top.ok());
  auto via_api = (*de)->TopKMostSimilar(8, NeuronGroup{layer, *top}, 5);
  ASSERT_TRUE(via_api.ok());
  for (size_t i = 0; i < via_ql->entries.size(); ++i) {
    EXPECT_EQ(via_ql->entries[i].input_id, via_api->entries[i].input_id);
  }
}

// The derived-group resolution pass runs under the query's context, so its
// inference is part of the query's exact attribution (it used to be
// invisible: the QL layer resolved the group outside any metering).
TEST(QlExecuteTest, DerivedGroupResolutionIsMetered) {
  TinySystem sys(30, 64, 8);
  TempDir dir("ql4");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  ASSERT_TRUE((*de)->PreprocessAllLayers().ok());
  const int layer = sys.model->activation_layers()[0];

  QuerySpec explicit_spec;
  explicit_spec.kind = QuerySpec::Kind::kHighest;
  explicit_spec.layer = layer;
  explicit_spec.k = 5;
  QuerySpec derived = explicit_spec;
  derived.top_neurons = 2;
  derived.top_of = 3;
  // Resolve what the derived group will be, then run both specs.
  auto resolved = (*de)->MaximallyActivatedNeurons(3, layer, 2);
  ASSERT_TRUE(resolved.ok());
  explicit_spec.neurons = *resolved;

  auto explicit_result = (*de)->ExecuteSpec(explicit_spec);
  ASSERT_TRUE(explicit_result.ok()) << explicit_result.status().ToString();
  auto derived_result = (*de)->ExecuteSpec(derived);
  ASSERT_TRUE(derived_result.ok()) << derived_result.status().ToString();

  // Identical entries (same group), but the derived query pays one extra
  // inference pass for the resolution — visible in its exact stats.
  ASSERT_EQ(explicit_result->entries.size(), derived_result->entries.size());
  for (size_t i = 0; i < explicit_result->entries.size(); ++i) {
    EXPECT_EQ(explicit_result->entries[i].input_id,
              derived_result->entries[i].input_id);
    EXPECT_EQ(explicit_result->entries[i].value,
              derived_result->entries[i].value);
  }
  EXPECT_EQ(derived_result->stats.inputs_run,
            explicit_result->stats.inputs_run + 1);
}

// The spec's progress sink works engine-direct too: ExecuteSpec copies it
// into the context, so all three front doors honour the field the spec
// carries (the service moves it into the context at admission instead).
TEST(QlExecuteTest, SpecProgressSinkFiresOnEngineDirectExecution) {
  TinySystem sys(60, 66, 8);
  TempDir dir("ql6");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  // Warm start so the query takes the NTA path (the one that reports
  // per-round progress, not the index-build scan).
  ASSERT_TRUE((*de)->PreprocessAllLayers().ok());

  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kHighest;
  spec.layer = sys.model->activation_layers().front();
  spec.neurons = {0, 1, 2, 3};
  spec.k = 10;
  int events = 0;
  spec.on_progress = [&events](const NtaProgress&) {
    ++events;
    return true;
  };
  auto result = (*de)->ExecuteSpec(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(events, 1);
}

// A derived-group query under an already-cancelled context never runs the
// resolution inference — it used to be unstoppable (resolved in ql.cc
// outside any QueryContext).
TEST(QlExecuteTest, DerivedGroupResolutionHonoursCancellation) {
  TinySystem sys(30, 65, 8);
  TempDir dir("ql5");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());

  QuerySpec derived;
  derived.kind = QuerySpec::Kind::kHighest;
  derived.layer = sys.model->activation_layers()[0];
  derived.top_neurons = 2;
  derived.top_of = 3;
  derived.k = 5;
  QueryContext ctx;
  ctx.Cancel();
  auto result = (*de)->ExecuteSpec(derived, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_EQ(ctx.receipt.inputs_run, 0);
}

TEST(QlExecuteTest, RuntimeErrorsPropagate) {
  TinySystem sys(10, 63, 8);
  TempDir dir("ql3");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  // Layer out of range.
  auto bad_layer =
      ParseQuery("SELECT TOPK 5 HIGHEST FOR LAYER 99 NEURONS (1)");
  ASSERT_TRUE(bad_layer.ok());  // syntactically fine; the engine rejects it
  EXPECT_FALSE((*de)->ExecuteSpec(*bad_layer).ok());
  // Target out of range.
  auto bad_target =
      ParseQuery("SELECT TOPK 5 SIMILAR TO 9999 FOR LAYER 1 NEURONS (1)");
  ASSERT_TRUE(bad_target.ok());
  EXPECT_FALSE((*de)->ExecuteSpec(*bad_target).ok());
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
