#include "core/ql.h"

#include <gtest/gtest.h>

#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::TempDir;
using testing_util::TinySystem;

TEST(QlParseTest, HighestWithExplicitGroup) {
  auto query =
      ParseQuery("SELECT TOPK 20 HIGHEST FOR LAYER 7 NEURONS (10, 42, 100)");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->kind, ParsedQuery::Kind::kHighest);
  EXPECT_EQ(query->k, 20);
  EXPECT_EQ(query->layer, 7);
  EXPECT_EQ(query->neurons, (std::vector<int64_t>{10, 42, 100}));
  EXPECT_EQ(query->distance, DistanceKind::kL2);
  EXPECT_EQ(query->theta, 1.0);
}

TEST(QlParseTest, SimilarWithTopNeurons) {
  auto query = ParseQuery(
      "select topk 10 most similar to 42 for layer 3 top 3 neurons using l1 "
      "theta 0.9");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->kind, ParsedQuery::Kind::kMostSimilar);
  EXPECT_EQ(query->target, 42);
  EXPECT_EQ(query->top_neurons, 3);
  EXPECT_EQ(query->top_of, -1);  // defaults to the target
  EXPECT_EQ(query->distance, DistanceKind::kL1);
  EXPECT_DOUBLE_EQ(query->theta, 0.9);
}

TEST(QlParseTest, TopNeuronsOfOtherInput) {
  auto query = ParseQuery(
      "SELECT TOPK 5 HIGHEST FOR LAYER 2 TOP 4 NEURONS OF INPUT 17");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->top_neurons, 4);
  EXPECT_EQ(query->top_of, 17);
}

TEST(QlParseTest, SingleNeuronGroupAndLinf) {
  auto query =
      ParseQuery("SELECT TOPK 1 SIMILAR TO 0 FOR LAYER 1 NEURONS (5) "
                 "USING LINF");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->neurons, (std::vector<int64_t>{5}));
  EXPECT_EQ(query->distance, DistanceKind::kLInf);
}

TEST(QlParseTest, ToStringRoundTrips) {
  const char* texts[] = {
      "SELECT TOPK 20 HIGHEST FOR LAYER 7 NEURONS (10, 42, 100)",
      "SELECT TOPK 10 SIMILAR TO 42 FOR LAYER 3 TOP 3 NEURONS",
      "SELECT TOPK 5 HIGHEST FOR LAYER 2 TOP 4 NEURONS OF 17 USING L1",
  };
  for (const char* text : texts) {
    auto first = ParseQuery(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseQuery(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(first->ToString(), second->ToString());
  }
}

TEST(QlParseTest, ErrorsAreDescriptive) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1)", "SELECT"},
      {"SELECT TOPK 0 HIGHEST FOR LAYER 1 NEURONS (1)", "k must be >= 1"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS ()", "neuron"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1", "NEURONS"},
      {"SELECT TOPK 5 SIMILAR TO x FOR LAYER 1 NEURONS (1)", "integer"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) USING L3", "L3"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) THETA 2", "THETA"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) GARBAGE", "GARBAGE"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 TOP 3 NEURONS", "OF"},
      {"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) @", "character"},
  };
  for (const Case& c : cases) {
    auto query = ParseQuery(c.text);
    ASSERT_FALSE(query.ok()) << c.text;
    EXPECT_NE(query.status().message().find(c.needle), std::string::npos)
        << c.text << " -> " << query.status().ToString();
  }
}

TEST(QlExecuteTest, MatchesDirectApiCalls) {
  TinySystem sys(50, 61, 8);
  TempDir dir("ql");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());

  const int layer = sys.model->activation_layers()[1];
  const std::string text = "SELECT TOPK 7 SIMILAR TO 13 FOR LAYER " +
                           std::to_string(layer) + " NEURONS (1, 4, 9)";
  auto via_ql = ExecuteQuery(de->get(), text);
  ASSERT_TRUE(via_ql.ok()) << via_ql.status().ToString();
  auto via_api =
      (*de)->TopKMostSimilar(13, NeuronGroup{layer, {1, 4, 9}}, 7);
  ASSERT_TRUE(via_api.ok());
  ASSERT_EQ(via_ql->entries.size(), via_api->entries.size());
  for (size_t i = 0; i < via_ql->entries.size(); ++i) {
    EXPECT_EQ(via_ql->entries[i].input_id, via_api->entries[i].input_id);
    EXPECT_DOUBLE_EQ(via_ql->entries[i].value, via_api->entries[i].value);
  }
}

TEST(QlExecuteTest, TopNeuronsResolveToMaximallyActivated) {
  TinySystem sys(40, 62, 8);
  TempDir dir("ql2");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[0];

  const std::string text = "SELECT TOPK 5 SIMILAR TO 8 FOR LAYER " +
                           std::to_string(layer) + " TOP 3 NEURONS";
  auto via_ql = ExecuteQuery(de->get(), text);
  ASSERT_TRUE(via_ql.ok()) << via_ql.status().ToString();

  auto top = (*de)->MaximallyActivatedNeurons(8, layer, 3);
  ASSERT_TRUE(top.ok());
  auto via_api = (*de)->TopKMostSimilar(8, NeuronGroup{layer, *top}, 5);
  ASSERT_TRUE(via_api.ok());
  for (size_t i = 0; i < via_ql->entries.size(); ++i) {
    EXPECT_EQ(via_ql->entries[i].input_id, via_api->entries[i].input_id);
  }
}

TEST(QlExecuteTest, RuntimeErrorsPropagate) {
  TinySystem sys(10, 63, 8);
  TempDir dir("ql3");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 8;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  // Layer out of range.
  EXPECT_FALSE(
      ExecuteQuery(de->get(),
                   "SELECT TOPK 5 HIGHEST FOR LAYER 99 NEURONS (1)")
          .ok());
  // Target out of range.
  EXPECT_FALSE(
      ExecuteQuery(de->get(),
                   "SELECT TOPK 5 SIMILAR TO 9999 FOR LAYER 1 NEURONS (1)")
          .ok());
  EXPECT_FALSE(ExecuteQuery(nullptr, "SELECT TOPK 1 HIGHEST FOR LAYER 1 "
                                     "NEURONS (1)")
                   .ok());
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
