// Integration tests for the DeepEverest facade: incremental indexing,
// query correctness against brute force, IQA, config selection, and the
// interpretation-session helpers.
#include "core/deepeverest.h"

#include <gtest/gtest.h>

#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::ExpectValidTopK;
using testing_util::TempDir;
using testing_util::TinySystem;

DeepEverestOptions SmallOptions() {
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.1;
  return options;
}

TEST(DeepEverestTest, CreateValidatesArguments) {
  TinySystem sys(10, 41, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(DeepEverest::Create(nullptr, &sys.dataset, &store.value(),
                                   SmallOptions())
                   .ok());
  DeepEverestOptions bad = SmallOptions();
  bad.batch_size = 0;
  EXPECT_FALSE(
      DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(), bad)
          .ok());
  bad = SmallOptions();
  bad.storage_budget_fraction = 0.0;
  EXPECT_FALSE(
      DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(), bad)
          .ok());
}

TEST(DeepEverestTest, FirstQueryBuildsIndexSecondUsesIt) {
  TinySystem sys(40, 42, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());

  const int layer = sys.model->activation_layers()[1];
  const NeuronGroup group{layer, {1, 5, 9}};

  // First query: incremental indexing computes all 40 inputs once.
  auto first = (*de)->TopKMostSimilar(7, group, 5);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.inputs_run, 40);
  EXPECT_TRUE((*de)->index_manager()->IsIndexed(layer));

  // Second query on the same layer: index-guided, strictly fewer inputs.
  auto second = (*de)->TopKMostSimilar(8, group, 5);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->stats.inputs_run, 40);
}

TEST(DeepEverestTest, ResultsMatchBruteForceBothQueryTypes) {
  TinySystem sys(50, 43, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());

  const int layer = sys.model->activation_layers()[0];
  const NeuronGroup group{layer, {2, 4, 11}};

  // Warm up the index so both paths exercise NTA.
  ASSERT_TRUE((*de)->TopKHighest(group, 1).ok());

  auto highest = (*de)->TopKHighest(group, 8);
  ASSERT_TRUE(highest.ok());
  auto expected_highest =
      BruteForceHighest((*de)->inference(), group, 8, L2Distance());
  ASSERT_TRUE(expected_highest.ok());
  ExpectValidTopK(*expected_highest, *highest, /*smaller_is_better=*/false);

  const uint32_t target = 13;
  auto similar = (*de)->TopKMostSimilar(target, group, 8);
  ASSERT_TRUE(similar.ok());
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK((*de)->inference()->ComputeLayer({target}, layer, &rows));
  std::vector<float> target_acts(group.neurons.size());
  for (size_t i = 0; i < group.neurons.size(); ++i) {
    target_acts[i] = rows[0][static_cast<size_t>(group.neurons[i])];
  }
  auto expected_similar =
      BruteForceMostSimilar((*de)->inference(), group, target_acts, 8,
                            L2Distance(), true, target);
  ASSERT_TRUE(expected_similar.ok());
  ExpectValidTopK(*expected_similar, *similar, /*smaller_is_better=*/true);
}

TEST(DeepEverestTest, TopKHighestIsSimilarityToInfiniteTarget) {
  // Section 2: a top-k highest query equals a most-similar query against a
  // hypothetical target with infinite activations. With l1 distance the
  // orders coincide exactly (ordering by sum of activations).
  TinySystem sys(30, 44, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[0];
  const NeuronGroup group{layer, {0, 3}};

  auto highest = (*de)->TopKHighest(group, 5, DistanceKind::kL1);
  ASSERT_TRUE(highest.ok());

  // Huge-but-finite pseudo-infinite target, expressed as an out-of-dataset
  // target via QuerySpec::target_activations.
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kMostSimilar;
  spec.k = 5;
  spec.layer = layer;
  spec.neurons = group.neurons;
  spec.target_activations = {1e9f, 1e9f};
  spec.distance = DistanceKind::kL1;
  auto as_similar = (*de)->ExecuteSpec(spec);
  ASSERT_TRUE(as_similar.ok());
  ASSERT_EQ(highest->entries.size(), as_similar->entries.size());
  for (size_t i = 0; i < highest->entries.size(); ++i) {
    EXPECT_EQ(highest->entries[i].input_id, as_similar->entries[i].input_id)
        << "rank " << i;
  }
}

TEST(DeepEverestTest, MaximallyActivatedNeuronsAreSortedAndCorrect) {
  TinySystem sys(20, 45, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[0];

  auto top = (*de)->MaximallyActivatedNeurons(4, layer, 5);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 5u);

  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK((*de)->inference()->ComputeLayer({4}, layer, &rows));
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE(rows[0][static_cast<size_t>((*top)[i - 1])],
              rows[0][static_cast<size_t>((*top)[i])]);
  }
  // The first really is the max.
  float max_act = rows[0][0];
  for (float v : rows[0]) max_act = std::max(max_act, v);
  EXPECT_EQ(rows[0][static_cast<size_t>((*top)[0])], max_act);
}

TEST(DeepEverestTest, IqaCacheSpeedsUpRelatedQueries) {
  TinySystem sys(60, 46, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options = SmallOptions();
  options.enable_iqa = true;
  options.iqa_capacity_bytes = 1 << 24;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[1];
  // Warm up: the first query on a layer answers from the incremental index
  // build (a full scan), so NTA — and hence the IQA cache — only engages
  // from the second query on.
  ASSERT_TRUE((*de)->TopKHighest(NeuronGroup{layer, {0}}, 1).ok());
  ASSERT_TRUE((*de)->TopKMostSimilar(3, NeuronGroup{layer, {0, 2, 4}}, 5).ok());
  auto related = (*de)->TopKMostSimilar(3, NeuronGroup{layer, {0, 2, 6}}, 5);
  ASSERT_TRUE(related.ok());
  EXPECT_GT(related->stats.iqa_hits, 0);
}

TEST(DeepEverestTest, ConfigSelectionRespectsBudget) {
  TinySystem sys(64, 47, 4);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 4;
  options.storage_budget_fraction = 0.2;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  const SystemConfig& config = (*de)->config();
  EXPECT_GE(config.num_partitions, 2);

  int64_t total_neurons = 0;
  for (int layer = 0; layer < sys.model->num_layers(); ++layer) {
    total_neurons += sys.model->NeuronCount(layer);
  }
  const uint64_t budget =
      static_cast<uint64_t>(0.2 * (*de)->FullMaterializationBytes());
  EXPECT_LE(NpiCostBytes(total_neurons, sys.dataset.size(),
                         config.num_partitions) +
                MaiCostBytes(total_neurons, sys.dataset.size(),
                             config.mai_ratio),
            budget);
}

TEST(DeepEverestTest, PersistedIndexesStayUnderBudgetAfterFullPreprocess) {
  // At toy scale the per-partition bounds (which the paper's budget formula
  // treats as negligible) would dominate, so pin a modest configuration and
  // use enough inputs for the PID payload to be the main cost.
  TinySystem sys(256, 48, 4);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 4;
  options.storage_budget_fraction = 0.25;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.02;
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());
  DE_ASSERT_OK((*de)->PreprocessAllLayers());
  auto persisted = (*de)->PersistedIndexBytes();
  ASSERT_TRUE(persisted.ok());
  EXPECT_GT(*persisted, 0u);
  EXPECT_LT(*persisted, (*de)->FullMaterializationBytes() / 2);
}

// --------------------------- QueryContext plumbing -------------------------

TEST(DeepEverestQueryContextTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  TinySystem sys(40, 49, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const NeuronGroup group{sys.model->activation_layers()[0], {0, 1}};

  QueryContext ctx;
  ctx.SetDeadlineAfter(-1.0);  // already past
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kHighest;
  spec.k = 5;
  spec.layer = group.layer;
  spec.neurons = group.neurons;
  auto result = (*de)->ExecuteSpec(spec, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Rejected before any inference: the context receipt stays empty.
  EXPECT_EQ(ctx.receipt.inputs_run, 0);
}

TEST(DeepEverestQueryContextTest, CancelledContextReturnsCancelled) {
  TinySystem sys(40, 50, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const NeuronGroup group{sys.model->activation_layers()[0], {0, 1}};

  QueryContext ctx;
  ctx.Cancel();
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kHighest;
  spec.k = 5;
  spec.layer = group.layer;
  spec.neurons = group.neurons;
  auto result = (*de)->ExecuteSpec(spec, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(DeepEverestQueryContextTest, ReceiptAccumulatesQueryCostIncludingBuild) {
  TinySystem sys(40, 51, 8);
  TempDir dir("de");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const NeuronGroup group{sys.model->activation_layers()[1], {1, 3}};

  // Cold layer: the query triggers the §4.6 index build, whose inference is
  // charged to this query's context receipt along with its own.
  QueryContext cold_ctx;
  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kHighest;
  spec.k = 5;
  spec.layer = group.layer;
  spec.neurons = group.neurons;
  auto cold = (*de)->ExecuteSpec(spec, &cold_ctx);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->stats.inputs_run, 40);
  EXPECT_EQ(cold_ctx.receipt.inputs_run, 40);

  // Warm layer: NTA only; result stats equal the receipt delta, and the
  // per-query stats never leak another query's work.
  QueryContext warm_ctx;
  auto warm = (*de)->ExecuteSpec(spec, &warm_ctx);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.inputs_run, warm_ctx.receipt.inputs_run);
  EXPECT_LT(warm->stats.inputs_run, 40);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
