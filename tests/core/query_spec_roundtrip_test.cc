// Seeded-RNG property tests for the canonical QuerySpec encodings: a
// random spec must round-trip bit-identically through (a) its QL text form
// (`ToString()` → `ParseQuery`) and (b) the JSON wire codec
// (`QuerySpecJson` → `ParseJson` → `QuerySpecFromJson`). "Bit-identically"
// includes θ and deadline_ms doubles — both encoders emit 17 significant
// digits precisely so this holds. Also pins the shared validation choke
// point: the same malformed spec is rejected identically from the
// programmatic, QL, and JSON entry points.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "core/ql.h"
#include "core/query_spec.h"
#include "core/query_spec_json.h"

namespace deepeverest {
namespace core {
namespace {

/// A random but always-valid declarative half. Envelope stays default
/// (what QL text can express).
QuerySpec RandomDeclarativeSpec(Rng* rng) {
  QuerySpec spec;
  spec.kind = rng->NextBernoulli(0.5) ? QuerySpec::Kind::kHighest
                                      : QuerySpec::Kind::kMostSimilar;
  spec.k = static_cast<int>(rng->NextInt(1, 50));
  spec.layer = static_cast<int>(rng->NextInt(0, 20));
  if (spec.kind == QuerySpec::Kind::kMostSimilar) {
    spec.target_id = rng->NextInt(0, 499);
  }
  if (rng->NextBernoulli(0.5)) {
    // Explicit group: 1..6 distinct indices.
    std::set<int64_t> picked;
    const int size = static_cast<int>(rng->NextInt(1, 6));
    while (static_cast<int>(picked.size()) < size) {
      picked.insert(rng->NextInt(0, 999));
    }
    spec.neurons.assign(picked.begin(), picked.end());
  } else {
    // Derived group. HIGHEST requires an explicit OF reference.
    spec.top_neurons = static_cast<int>(rng->NextInt(1, 8));
    if (spec.kind == QuerySpec::Kind::kHighest || rng->NextBernoulli(0.5)) {
      spec.top_of = rng->NextInt(0, 499);
    }
  }
  const DistanceKind distances[] = {DistanceKind::kL1, DistanceKind::kL2,
                                    DistanceKind::kLInf};
  spec.distance = distances[rng->NextInt(0, 2)];
  if (rng->NextBernoulli(0.5)) {
    // A full-precision double in (0.05, 1): the hard case for text
    // round-tripping.
    spec.theta = 0.05 + rng->NextDouble() * 0.95;
  }
  return spec;
}

TEST(QuerySpecRoundTripTest, QlTextRoundTripsBitIdentically) {
  Rng rng(20260730);
  for (int i = 0; i < 500; ++i) {
    const QuerySpec spec = RandomDeclarativeSpec(&rng);
    ASSERT_TRUE(ValidateSpec(spec).ok()) << spec.ToString();
    auto reparsed = ParseQuery(spec.ToString());
    ASSERT_TRUE(reparsed.ok())
        << spec.ToString() << " -> " << reparsed.status().ToString();
    EXPECT_EQ(spec, *reparsed) << spec.ToString();
    // And the text form itself is a fixed point.
    EXPECT_EQ(spec.ToString(), reparsed->ToString());
  }
}

TEST(QuerySpecRoundTripTest, JsonWireRoundTripsBitIdentically) {
  Rng rng(20260731);
  for (int i = 0; i < 500; ++i) {
    QuerySpec spec = RandomDeclarativeSpec(&rng);
    // The wire carries the serving envelope too.
    spec.session_id = rng.NextUint64() >> 16;
    const QosClass classes[] = {QosClass::kInteractive, QosClass::kBatch,
                                QosClass::kBestEffort};
    spec.qos = classes[rng.NextInt(0, 2)];
    spec.weight = static_cast<int>(rng.NextInt(1, 9));
    if (rng.NextBernoulli(0.5)) {
      spec.deadline_ms = rng.NextDouble() * 1e6;  // full-precision double
    }
    const std::string encoded = QuerySpecJson(spec);
    auto parsed = ParseJson(encoded);
    ASSERT_TRUE(parsed.ok()) << encoded;
    auto decoded = QuerySpecFromJson(*parsed);
    ASSERT_TRUE(decoded.ok())
        << encoded << " -> " << decoded.status().ToString();
    EXPECT_EQ(spec, *decoded) << encoded;
    // Encoding the decoded spec reproduces the exact byte string.
    EXPECT_EQ(encoded, QuerySpecJson(*decoded));
  }
}

TEST(QuerySpecRoundTripTest, QlAndJsonAgreeOnTheSameSpec) {
  Rng rng(20260801);
  for (int i = 0; i < 100; ++i) {
    const QuerySpec spec = RandomDeclarativeSpec(&rng);
    auto via_ql = ParseQuery(spec.ToString());
    auto json = ParseJson(QuerySpecJson(spec));
    ASSERT_TRUE(via_ql.ok());
    ASSERT_TRUE(json.ok());
    auto via_json = QuerySpecFromJson(*json);
    ASSERT_TRUE(via_json.ok());
    EXPECT_EQ(*via_ql, *via_json) << spec.ToString();
  }
}

// The choke point: the same malformed spec is rejected with the same error
// from every entry point — programmatic ValidateSpec, QL text, JSON wire.
TEST(QuerySpecRoundTripTest, ValidationIsUnifiedAcrossEntryPoints) {
  struct Case {
    const char* what;
    const char* ql;
    const char* json;
    const char* needle;
  };
  const Case cases[] = {
      {"k=0", "SELECT TOPK 0 HIGHEST FOR LAYER 1 NEURONS (1)",
       R"({"kind":"highest","layer":1,"neurons":[1],"k":0})",
       "k must be >= 1"},
      {"duplicate neurons",
       "SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (4, 4)",
       R"({"kind":"highest","layer":1,"neurons":[4,4],"k":5})",
       "duplicate neuron index"},
      {"negative neuron",
       "SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (-1)",
       R"({"kind":"highest","layer":1,"neurons":[-1],"k":5})",
       "neuron index must be >= 0"},
      {"theta out of range",
       "SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1) THETA 1.5",
       R"({"kind":"highest","layer":1,"neurons":[1],"theta":1.5})",
       "theta must be in (0, 1]"},
      {"derived highest without OF",
       "SELECT TOPK 5 HIGHEST FOR LAYER 1 TOP 3 NEURONS",
       R"({"kind":"highest","layer":1,"top_neurons":3})",
       "requires OF"},
  };
  for (const Case& c : cases) {
    auto via_ql = ParseQuery(c.ql);
    ASSERT_FALSE(via_ql.ok()) << c.what;
    auto parsed = ParseJson(c.json);
    ASSERT_TRUE(parsed.ok()) << c.what;
    auto via_json = QuerySpecFromJson(*parsed);
    ASSERT_FALSE(via_json.ok()) << c.what;
    // Same message from both doors (both run ValidateSpec).
    EXPECT_EQ(via_ql.status().message(), via_json.status().message())
        << c.what;
    EXPECT_NE(via_ql.status().message().find(c.needle), std::string::npos)
        << c.what << " -> " << via_ql.status().ToString();
  }
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
