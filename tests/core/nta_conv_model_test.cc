// Oracle tests of NTA over a real convolutional model and image data (the
// TEST_P sweeps use a fast MLP; this exercises the conv/pool/residual code
// paths end to end through the facade, including MAI and incremental
// indexing, on both zoo models).
#include <gtest/gtest.h>

#include "core/deepeverest.h"
#include "core/nta.h"
#include "nn/model_zoo.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::ExpectValidTopK;
using testing_util::TempDir;

data::Dataset SmallImages(uint64_t seed) {
  data::SyntheticImageConfig config;
  config.num_inputs = 60;
  config.seed = seed;
  return data::MakeSyntheticImages(config);
}

class ConvModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConvModelTest, FacadeMatchesBruteForceOnAllActivationLayers) {
  const bool is_vgg = std::string(GetParam()) == "vgg";
  nn::ModelPtr model =
      is_vgg ? nn::MakeMiniVgg(123) : nn::MakeMiniResNet(123);
  data::Dataset dataset = SmallImages(is_vgg ? 7 : 8);
  TempDir dir("conv");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DeepEverestOptions options;
  options.batch_size = 16;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.1;
  auto de = DeepEverest::Create(model.get(), &dataset, &store.value(),
                                options);
  ASSERT_TRUE(de.ok());

  Rng rng(31);
  for (int layer : model->activation_layers()) {
    const uint32_t target =
        static_cast<uint32_t>(rng.NextUint64(dataset.size()));
    auto top_neurons = (*de)->MaximallyActivatedNeurons(target, layer, 3);
    ASSERT_TRUE(top_neurons.ok());
    NeuronGroup group{layer, *top_neurons};

    auto actual = (*de)->TopKMostSimilar(target, group, 8);
    ASSERT_TRUE(actual.ok()) << "layer " << layer;

    std::vector<std::vector<float>> rows;
    DE_ASSERT_OK((*de)->inference()->ComputeLayer({target}, layer, &rows));
    std::vector<float> target_acts(group.neurons.size());
    for (size_t i = 0; i < group.neurons.size(); ++i) {
      target_acts[i] = rows[0][static_cast<size_t>(group.neurons[i])];
    }
    auto expected =
        BruteForceMostSimilar((*de)->inference(), group, target_acts, 8,
                              L2Distance(), true, target);
    ASSERT_TRUE(expected.ok());
    ExpectValidTopK(*expected, *actual, /*smaller_is_better=*/true, 1e-4);

    auto actual_high = (*de)->TopKHighest(group, 8);
    ASSERT_TRUE(actual_high.ok());
    auto expected_high =
        BruteForceHighest((*de)->inference(), group, 8, L2Distance());
    ASSERT_TRUE(expected_high.ok());
    ExpectValidTopK(*expected_high, *actual_high, false, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ConvModelTest,
                         ::testing::Values("vgg", "resnet"));

}  // namespace
}  // namespace core
}  // namespace deepeverest
