// Crash/corruption behavior of the legacy per-layer index persist path:
// writes are write-temp/fsync/rename (a kill can never leave a torn file
// under the live key), every load is checksum-validated, and a corrupt or
// truncated file triggers rebuild-and-rewarn plus cache invalidation —
// never a silently wrong index.
#include "core/index_manager.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::TempDir;
using testing_util::TinySystem;

IndexManagerOptions Opts() {
  IndexManagerOptions options;
  options.layer_config = LayerIndexConfig{4, 0.1};
  options.persist = true;
  return options;
}

void FlipByteAt(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

TEST(IndexManagerCrashTest, PersistLeavesNoTempFiles) {
  TinySystem sys(25, 51, 8);
  TempDir dir("imc");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IndexManager manager(sys.engine.get(), &store.value(), Opts());
  ASSERT_TRUE(manager.EnsureIndex(sys.model->activation_layers()[0]).ok());

  auto keys = store->ListKeys();
  ASSERT_TRUE(keys.ok());
  bool saw_index = false;
  for (const std::string& key : *keys) {
    EXPECT_EQ(key.find(".tmp"), std::string::npos) << key;
    saw_index = saw_index || key.rfind("index/", 0) == 0;
  }
  EXPECT_TRUE(saw_index);
}

TEST(IndexManagerCrashTest, TruncatedIndexFileRebuildsAndInvalidates) {
  TinySystem sys(25, 52, 8);
  TempDir dir("imc-trunc");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  const int layer = sys.model->activation_layers()[0];
  const std::string key = IndexManager::KeyFor(sys.model->name(), layer);

  uint32_t built_inputs = 0;
  {
    IndexManager manager(sys.engine.get(), &store.value(), Opts());
    auto index = manager.EnsureIndex(layer);
    ASSERT_TRUE(index.ok());
    built_inputs = (*index)->num_inputs();
  }
  // Simulate a torn write that somehow landed under the live key (e.g.
  // media failure): halve the file.
  const std::string path = store->root() + "/" + key;
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);

  IndexManager manager(sys.engine.get(), &store.value(), Opts());
  std::vector<int> invalidated;
  manager.set_index_invalidation_hook(
      [&](int l) { invalidated.push_back(l); });
  auto index = manager.EnsureIndex(layer);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->num_inputs(), built_inputs);
  // The rebuild re-ran inference (corrupt bytes are never trusted) and
  // fired the invalidation hook so caches keyed on the old index drop.
  ASSERT_EQ(invalidated.size(), 1u);
  EXPECT_EQ(invalidated[0], layer);

  // The rewritten file must load cleanly in a third manager — no rebuild,
  // no hook.
  IndexManager manager3(sys.engine.get(), &store.value(), Opts());
  bool hook_fired = false;
  manager3.set_index_invalidation_hook([&](int) { hook_fired = true; });
  const int64_t inference_before = sys.engine->stats().inputs_run;
  ASSERT_TRUE(manager3.EnsureIndex(layer).ok());
  EXPECT_FALSE(hook_fired);
  EXPECT_EQ(sys.engine->stats().inputs_run, inference_before);
}

TEST(IndexManagerCrashTest, BitFlippedIndexFileRebuildsAndInvalidates) {
  TinySystem sys(25, 53, 8);
  TempDir dir("imc-flip");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  const int layer = sys.model->activation_layers()[1];
  const std::string key = IndexManager::KeyFor(sys.model->name(), layer);

  {
    IndexManager manager(sys.engine.get(), &store.value(), Opts());
    ASSERT_TRUE(manager.EnsureIndex(layer).ok());
  }
  const std::string path = store->root() + "/" + key;
  FlipByteAt(path, std::filesystem::file_size(path) / 2);

  IndexManager manager(sys.engine.get(), &store.value(), Opts());
  std::vector<int> invalidated;
  manager.set_index_invalidation_hook(
      [&](int l) { invalidated.push_back(l); });
  auto index = manager.EnsureIndex(layer);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_EQ(invalidated.size(), 1u);
  EXPECT_EQ(invalidated[0], layer);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
