#include "core/distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/query.h"

namespace deepeverest {
namespace core {
namespace {

TEST(DistanceTest, L1SumsAbsolutes) {
  auto d = MakeDistance(DistanceKind::kL1);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Aggregate({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ((*d)->Aggregate({}), 0.0);
}

TEST(DistanceTest, L2Euclidean) {
  auto d = MakeDistance(DistanceKind::kL2);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Aggregate({3.0, 4.0}), 5.0);
  EXPECT_EQ((*d)->name(), "l2");
}

TEST(DistanceTest, LInfMax) {
  auto d = MakeDistance(DistanceKind::kLInf);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Aggregate({1.0, 7.0, 2.0}), 7.0);
}

TEST(DistanceTest, WeightedL2) {
  auto d = MakeDistance(DistanceKind::kWeightedL2, {4.0, 1.0});
  ASSERT_TRUE(d.ok());
  // sqrt(4*1 + 1*9) = sqrt(13)
  EXPECT_NEAR((*d)->Aggregate({1.0, 3.0}), std::sqrt(13.0), 1e-12);
}

TEST(DistanceTest, WeightedL2RequiresWeights) {
  EXPECT_FALSE(MakeDistance(DistanceKind::kWeightedL2).ok());
  EXPECT_FALSE(MakeDistance(DistanceKind::kWeightedL2, {-1.0}).ok());
}

TEST(DistanceTest, L2DistanceSingletonIsDefault) {
  DistancePtr a = L2Distance();
  DistancePtr b = L2Distance();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_DOUBLE_EQ(a->Aggregate({6.0, 8.0}), 10.0);
}

// Monotonicity is the correctness prerequisite for NTA (section 2): raising
// any coordinate must not lower the aggregate.
TEST(DistanceTest, MonotonicityPropertyAllKinds) {
  Rng rng(99);
  for (DistanceKind kind :
       {DistanceKind::kL1, DistanceKind::kL2, DistanceKind::kLInf,
        DistanceKind::kWeightedL2}) {
    auto d = MakeDistance(kind, {0.5, 2.0, 1.0, 0.1});
    ASSERT_TRUE(d.ok());
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<double> x(4), y(4);
      for (int i = 0; i < 4; ++i) {
        x[i] = rng.NextDouble() * 10.0;
        y[i] = x[i] + rng.NextDouble();  // y >= x coordinate-wise
      }
      EXPECT_LE((*d)->Aggregate(x), (*d)->Aggregate(y) + 1e-12)
          << DistanceKindToString(kind);
    }
  }
}

TEST(DistanceTest, KindNames) {
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kL1), "l1");
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kL2), "l2");
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kLInf), "linf");
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kWeightedL2),
               "weighted-l2");
}

TEST(NeuronGroupTest, ToString) {
  NeuronGroup g{3, {5, 9}};
  EXPECT_EQ(g.ToString(), "layer 3 {5, 9}");
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
