#include "core/distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/query.h"

namespace deepeverest {
namespace core {
namespace {

TEST(DistanceTest, L1SumsAbsolutes) {
  auto d = MakeDistance(DistanceKind::kL1);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Aggregate({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ((*d)->Aggregate({}), 0.0);
}

TEST(DistanceTest, L2Euclidean) {
  auto d = MakeDistance(DistanceKind::kL2);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Aggregate({3.0, 4.0}), 5.0);
  EXPECT_EQ((*d)->name(), "l2");
}

TEST(DistanceTest, LInfMax) {
  auto d = MakeDistance(DistanceKind::kLInf);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Aggregate({1.0, 7.0, 2.0}), 7.0);
}

// Regression: the max must be seeded from the first element, not 0.0 —
// highest queries aggregate raw activations, and an all-negative vector's
// linf is its largest element, never a phantom zero.
TEST(DistanceTest, LInfAllNegativeValues) {
  auto d = MakeDistance(DistanceKind::kLInf);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->Aggregate({-5.0, -1.5, -9.0}), -1.5);
  EXPECT_DOUBLE_EQ((*d)->Aggregate({-3.25}), -3.25);
  EXPECT_DOUBLE_EQ((*d)->Aggregate({}), 0.0);
}

// The batched entry points must agree with the per-element Aggregate for
// every built-in kind — they are the same math, one virtual call per block.
TEST(DistanceTest, BatchedFormsMatchPerRowAggregate) {
  Rng rng(1234);
  const size_t n = 7;       // odd on purpose: exercises SIMD tails
  const size_t num_rows = 13;
  std::vector<float> rows(num_rows * n), target(n);
  for (float& v : rows) v = static_cast<float>(rng.NextDouble() * 8.0 - 4.0);
  for (float& v : target) v = static_cast<float>(rng.NextDouble() * 8.0 - 4.0);
  std::vector<double> weights;
  for (size_t i = 0; i < n; ++i) weights.push_back(rng.NextDouble() * 2.0);

  for (DistanceKind kind :
       {DistanceKind::kL1, DistanceKind::kL2, DistanceKind::kLInf,
        DistanceKind::kWeightedL2}) {
    auto d = MakeDistance(kind, weights);
    ASSERT_TRUE(d.ok());
    std::vector<double> batched(num_rows);
    (*d)->AggregateAbsDiffMany(rows.data(), n, num_rows, target.data(), n,
                               batched.data());
    std::vector<double> diffs(n);
    for (size_t r = 0; r < num_rows; ++r) {
      for (size_t i = 0; i < n; ++i) {
        diffs[i] = std::abs(static_cast<double>(rows[r * n + i]) -
                            static_cast<double>(target[i]));
      }
      EXPECT_EQ((*d)->Aggregate(diffs.data(), n), batched[r])
          << DistanceKindToString(kind) << " row " << r;
    }

    (*d)->AggregateValuesMany(rows.data(), n, num_rows, n, batched.data());
    std::vector<double> values(n);
    for (size_t r = 0; r < num_rows; ++r) {
      for (size_t i = 0; i < n; ++i) {
        values[i] = static_cast<double>(rows[r * n + i]);
      }
      EXPECT_EQ((*d)->Aggregate(values.data(), n), batched[r])
          << DistanceKindToString(kind) << " row " << r;
    }
  }
}

// Custom (non-built-in) subclasses must keep working through the batched
// entry points via the default per-row fallback.
TEST(DistanceTest, CustomDistanceUsesDefaultBatchedFallback) {
  class SumOfCubes : public DistanceFunction {
   public:
    double Aggregate(const double* values, size_t n) const override {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) sum += values[i] * values[i] * values[i];
      return sum;
    }
    std::string name() const override { return "sum-of-cubes"; }
  };
  SumOfCubes d;
  const float rows[] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float target[] = {0.0f, 0.0f};
  double out[2] = {0.0, 0.0};
  d.AggregateAbsDiffMany(rows, 2, 2, target, 2, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0 + 8.0);
  EXPECT_DOUBLE_EQ(out[1], 27.0 + 64.0);
  d.AggregateValuesMany(rows, 2, 2, 2, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0 + 8.0);
  EXPECT_DOUBLE_EQ(out[1], 27.0 + 64.0);
}

TEST(DistanceTest, WeightedL2) {
  auto d = MakeDistance(DistanceKind::kWeightedL2, {4.0, 1.0});
  ASSERT_TRUE(d.ok());
  // sqrt(4*1 + 1*9) = sqrt(13)
  EXPECT_NEAR((*d)->Aggregate({1.0, 3.0}), std::sqrt(13.0), 1e-12);
}

TEST(DistanceTest, WeightedL2RequiresWeights) {
  EXPECT_FALSE(MakeDistance(DistanceKind::kWeightedL2).ok());
  EXPECT_FALSE(MakeDistance(DistanceKind::kWeightedL2, {-1.0}).ok());
}

TEST(DistanceTest, L2DistanceSingletonIsDefault) {
  DistancePtr a = L2Distance();
  DistancePtr b = L2Distance();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_DOUBLE_EQ(a->Aggregate({6.0, 8.0}), 10.0);
}

// Monotonicity is the correctness prerequisite for NTA (section 2): raising
// any coordinate must not lower the aggregate.
TEST(DistanceTest, MonotonicityPropertyAllKinds) {
  Rng rng(99);
  for (DistanceKind kind :
       {DistanceKind::kL1, DistanceKind::kL2, DistanceKind::kLInf,
        DistanceKind::kWeightedL2}) {
    auto d = MakeDistance(kind, {0.5, 2.0, 1.0, 0.1});
    ASSERT_TRUE(d.ok());
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<double> x(4), y(4);
      for (int i = 0; i < 4; ++i) {
        x[i] = rng.NextDouble() * 10.0;
        y[i] = x[i] + rng.NextDouble();  // y >= x coordinate-wise
      }
      EXPECT_LE((*d)->Aggregate(x), (*d)->Aggregate(y) + 1e-12)
          << DistanceKindToString(kind);
    }
  }
}

TEST(DistanceTest, KindNames) {
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kL1), "l1");
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kL2), "l2");
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kLInf), "linf");
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kWeightedL2),
               "weighted-l2");
}

TEST(NeuronGroupTest, ToString) {
  NeuronGroup g{3, {5, 9}};
  EXPECT_EQ(g.ToString(), "layer 3 {5, 9}");
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
