// Regression tests for tie-complete NTA termination (the §4.6 cold-start
// determinism fix): on exact value ties at the k-th boundary, standard NTA
// may stop before evaluating every tied input and return a valid-but-
// arbitrary tie pick, so the fresh-scan path and NTA could disagree. In
// tie-complete mode NTA keeps going until the k-th value beats the
// threshold strictly, which makes its result equal the full activation scan
// bit-for-bit (canonical (value, input id) order).
//
// The crafted model is an identity "activation" layer over rank-1 inputs,
// so the dataset values ARE the activations and exact float ties can be
// constructed at will — in the extreme, a layer where every input ties.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/npi.h"
#include "core/nta.h"
#include "data/dataset.h"
#include "nn/inference.h"
#include "nn/layer.h"
#include "nn/model.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

/// Identity layer with kind kRelu, so the model treats it as a queryable
/// activation layer and its outputs equal its inputs exactly.
class PassThrough : public nn::Layer {
 public:
  explicit PassThrough(std::string name)
      : Layer(nn::LayerKind::kRelu, std::move(name)) {}

  Result<Shape> OutputShape(const Shape& input) const override {
    return input;
  }
  Status Forward(const Tensor& input, Tensor* out) const override {
    *out = input;
    return Status::OK();
  }
  int64_t MacsFor(const Shape& input) const override {
    return input.NumElements();
  }
};

/// Model + dataset + index where activations of layer 0 are exactly
/// `rows[i][j]` for input i, neuron j.
struct TieFixture {
  TieFixture(const std::vector<std::vector<float>>& rows, int num_partitions,
             double mai_ratio, int batch_size)
      : dataset("ties", Shape({static_cast<int>(rows[0].size())})) {
    const int dims = static_cast<int>(rows[0].size());
    model = std::make_unique<nn::Model>("identity", Shape({dims}));
    model->AddLayer(std::make_unique<PassThrough>("pass"));
    DE_EXPECT_OK(model->Finalize());

    matrix = storage::LayerActivationMatrix::Make(
        static_cast<uint32_t>(rows.size()), static_cast<uint64_t>(dims));
    for (uint32_t i = 0; i < rows.size(); ++i) {
      Tensor input(Shape({dims}));
      for (int d = 0; d < dims; ++d) {
        input.vec()[static_cast<size_t>(d)] = rows[i][static_cast<size_t>(d)];
        matrix.MutableRow(i)[d] = rows[i][static_cast<size_t>(d)];
      }
      dataset.Add(std::move(input), 0);
    }

    engine = std::make_unique<nn::InferenceEngine>(model.get(), &dataset,
                                                   batch_size);
    LayerIndexConfig config;
    config.num_partitions = num_partitions;
    config.mai_ratio = mai_ratio;
    auto built = LayerIndex::Build(matrix, config);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    index = std::make_unique<LayerIndex>(std::move(built.value()));
  }

  nn::ModelPtr model;
  data::Dataset dataset;
  storage::LayerActivationMatrix matrix;
  std::unique_ptr<nn::InferenceEngine> engine;
  std::unique_ptr<LayerIndex> index;
};

void ExpectIdentical(const TopKResult& expected, const TopKResult& actual) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size());
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].input_id, actual.entries[i].input_id)
        << "rank " << i;
    EXPECT_EQ(expected.entries[i].value, actual.entries[i].value)
        << "rank " << i;
  }
}

// A layer where EVERY input has the same activation: the k-th boundary is
// one giant tie. The canonical answer (what ScanHighest returns) is ids
// 0..k-1; tie-complete NTA must refuse to stop early and reproduce it.
TEST(NtaTieCompleteTest, AllTiesHighestMatchesScanExactly) {
  const std::vector<std::vector<float>> rows(40, std::vector<float>{1.0f});
  TieFixture fix(rows, /*num_partitions=*/4, /*mai_ratio=*/0.25,
                 /*batch_size=*/8);
  const NeuronGroup group{0, {0}};
  const TopKResult scan =
      ScanHighest(fix.matrix, group.neurons, /*k=*/5, L2Distance());
  ASSERT_EQ(scan.entries.size(), 5u);
  EXPECT_EQ(scan.entries[0].input_id, 0u);  // canonical tie order: by id

  // Standard termination stops at the first threshold check (k-th value ==
  // threshold == 1.0): a *valid* top-k after one 8-input batch, but blind
  // to the other 32 tied inputs.
  {
    NtaEngine nta(fix.engine.get(), fix.index.get());
    NtaOptions options;
    options.k = 5;
    auto result = nta.Highest(group, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->stats.terminated_early);
    EXPECT_LT(result->stats.inputs_run, 40);
  }

  // Tie-complete termination evaluates the whole tie and lands on the
  // canonical ids.
  {
    NtaEngine nta(fix.engine.get(), fix.index.get());
    NtaOptions options;
    options.k = 5;
    options.tie_complete = true;
    auto result = nta.Highest(group, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats.inputs_run, 40);
    ExpectIdentical(scan, result.value());
  }
}

TEST(NtaTieCompleteTest, AllTiesMostSimilarMatchesScanExactly) {
  const std::vector<std::vector<float>> rows(40, std::vector<float>{2.5f});
  TieFixture fix(rows, /*num_partitions=*/4, /*mai_ratio=*/0.25,
                 /*batch_size=*/8);
  const NeuronGroup group{0, {0}};
  const uint32_t target_id = 7;
  const std::vector<float> target_acts{2.5f};
  const TopKResult scan =
      ScanMostSimilar(fix.matrix, group.neurons, target_acts, /*k=*/4,
                      L2Distance(), /*exclude_target=*/true, target_id);

  NtaEngine nta(fix.engine.get(), fix.index.get());
  NtaOptions options;
  options.k = 4;
  options.tie_complete = true;
  auto result = nta.MostSimilarTo(group, target_id, options);
  ASSERT_TRUE(result.ok());
  // Every input ties at distance 0, so nothing may be skipped (the target
  // pass plus all 39 others).
  EXPECT_EQ(result->stats.inputs_run, 40);
  ExpectIdentical(scan, result.value());
}

// A two-sided tie at the k-th boundary: inputs 0 and 1 sit at exactly the
// same distance from the target, on opposite sides of its activation.
// Standard NTA can stop after meeting either one; tie-complete must see
// both and pick the canonical (smaller id) winner, like the scan does.
TEST(NtaTieCompleteTest, BoundaryTieResolvesToCanonicalId) {
  const std::vector<std::vector<float>> rows = {
      {6.0f}, {4.0f}, {9.0f}, {0.5f}, {9.5f},
      {0.2f}, {8.0f}, {1.5f}, {7.5f}, {5.0f},
  };
  TieFixture fix(rows, /*num_partitions=*/4, /*mai_ratio=*/0.2,
                 /*batch_size=*/2);
  const NeuronGroup group{0, {0}};
  const uint32_t target_id = 9;  // activation 5.0; ids 0 and 1 at dist 1.0
  const std::vector<float> target_acts{5.0f};
  const TopKResult scan =
      ScanMostSimilar(fix.matrix, group.neurons, target_acts, /*k=*/1,
                      L2Distance(), /*exclude_target=*/true, target_id);
  ASSERT_EQ(scan.entries.size(), 1u);
  EXPECT_EQ(scan.entries[0].input_id, 0u);
  EXPECT_EQ(scan.entries[0].value, 1.0);

  NtaEngine nta(fix.engine.get(), fix.index.get());
  NtaOptions options;
  options.k = 1;
  options.tie_complete = true;
  auto result = nta.MostSimilarTo(group, target_id, options);
  ASSERT_TRUE(result.ok());
  ExpectIdentical(scan, result.value());
}

// theta-approximation still composes with tie-complete mode: the guarantee
// weakens to eq. 6's bound, but the strict comparison keeps the run
// deterministic and the returned values valid.
TEST(NtaTieCompleteTest, ThetaApproximationStillTerminates) {
  const std::vector<std::vector<float>> rows(32, std::vector<float>{1.0f});
  TieFixture fix(rows, /*num_partitions=*/4, /*mai_ratio=*/0.25,
                 /*batch_size=*/8);
  const NeuronGroup group{0, {0}};
  NtaEngine nta(fix.engine.get(), fix.index.get());
  NtaOptions options;
  options.k = 3;
  options.theta = 0.5;
  options.tie_complete = true;
  auto result = nta.Highest(group, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 3u);
  for (const ResultEntry& e : result->entries) EXPECT_EQ(e.value, 1.0);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
