#include "core/iqa_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace deepeverest {
namespace core {
namespace {

std::vector<float> Row(float v, size_t n = 8) {
  return std::vector<float>(n, v);
}

// Copy-out lookup helper: returns the row's first value or NaN on miss.
bool Contains(IqaCache* cache, int layer, uint32_t id, float* first = nullptr) {
  std::vector<float> row;
  if (!cache->Lookup(layer, id, &row)) return false;
  if (first != nullptr) *first = row[0];
  return true;
}

TEST(IqaCacheTest, MissThenHit) {
  IqaCache cache(1 << 20);
  EXPECT_FALSE(Contains(&cache, 0, 1));
  cache.Insert(0, 1, Row(1.5f));
  float first = 0.0f;
  ASSERT_TRUE(Contains(&cache, 0, 1, &first));
  EXPECT_EQ(first, 1.5f);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(IqaCacheTest, KeysAreLayerScoped) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 7, Row(1.0f));
  cache.Insert(1, 7, Row(2.0f));
  float a = 0.0f, b = 0.0f;
  ASSERT_TRUE(Contains(&cache, 0, 7, &a));
  ASSERT_TRUE(Contains(&cache, 1, 7, &b));
  EXPECT_EQ(a, 1.0f);
  EXPECT_EQ(b, 2.0f);
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(IqaCacheTest, GatherExtractsSelectedNeurons) {
  IqaCache cache(1 << 20);
  std::vector<float> row = {10.0f, 11.0f, 12.0f, 13.0f};
  cache.Insert(3, 9, row);
  std::vector<float> out;
  ASSERT_TRUE(cache.Gather(3, 9, {2, 0}, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 12.0f);
  EXPECT_EQ(out[1], 10.0f);
  EXPECT_FALSE(cache.Gather(3, 10, {0}, &out));
}

TEST(IqaCacheTest, MruEvictionKeepsOldest) {
  // Rows of 8 floats cost 32 + 64 bookkeeping = 96 bytes; capacity for ~3.
  IqaCache cache(300);
  cache.Insert(0, 1, Row(1.0f));
  cache.Insert(0, 2, Row(2.0f));
  cache.Insert(0, 3, Row(3.0f));
  EXPECT_EQ(cache.entry_count(), 3u);
  // Inserting a 4th must evict the most recently used entry (id 3), keeping
  // the earliest rows — NTA inserts most-similar partitions first, and MRU
  // protects them (section 4.7.3).
  cache.Insert(0, 4, Row(4.0f));
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_TRUE(Contains(&cache, 0, 1));
  EXPECT_TRUE(Contains(&cache, 0, 2));
  EXPECT_FALSE(Contains(&cache, 0, 3));  // evicted
  EXPECT_TRUE(Contains(&cache, 0, 4));
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(IqaCacheTest, LruEvictionKeepsNewest) {
  IqaCache cache(300, /*num_shards=*/1, IqaCache::EvictionPolicy::kLru);
  cache.Insert(0, 1, Row(1.0f));
  cache.Insert(0, 2, Row(2.0f));
  cache.Insert(0, 3, Row(3.0f));
  cache.Insert(0, 4, Row(4.0f));
  EXPECT_FALSE(Contains(&cache, 0, 1));  // least recently used, evicted
  EXPECT_TRUE(Contains(&cache, 0, 2));
  EXPECT_TRUE(Contains(&cache, 0, 3));
  EXPECT_TRUE(Contains(&cache, 0, 4));
}

TEST(IqaCacheTest, LookupRefreshesRecency) {
  IqaCache cache(300);
  cache.Insert(0, 1, Row(1.0f));
  cache.Insert(0, 2, Row(2.0f));
  cache.Insert(0, 3, Row(3.0f));
  // Touch id 1: it becomes the MRU entry and is the eviction victim.
  Contains(&cache, 0, 1);
  cache.Insert(0, 4, Row(4.0f));
  EXPECT_FALSE(Contains(&cache, 0, 1));
  EXPECT_TRUE(Contains(&cache, 0, 2));
  EXPECT_TRUE(Contains(&cache, 0, 3));
}

TEST(IqaCacheTest, ReinsertRefreshesPayload) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 1, Row(1.0f));
  cache.Insert(0, 1, Row(9.0f));
  EXPECT_EQ(cache.entry_count(), 1u);
  float first = 0.0f;
  ASSERT_TRUE(Contains(&cache, 0, 1, &first));
  EXPECT_EQ(first, 9.0f);
}

TEST(IqaCacheTest, OversizedRowNotCached) {
  IqaCache cache(100);
  cache.Insert(0, 1, Row(1.0f, 1000));  // 4 KB > capacity
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(Contains(&cache, 0, 1));
}

TEST(IqaCacheTest, SizeAccounting) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 1, Row(1.0f, 10));
  cache.Insert(0, 2, Row(2.0f, 20));
  EXPECT_EQ(cache.size_bytes(), (10 * 4 + 64) + (20 * 4 + 64));
}

TEST(IqaCacheTest, ClearEmpties) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 1, Row(1.0f));
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_FALSE(Contains(&cache, 0, 1));
}

TEST(IqaCacheTest, ShardCountersSumToTotals) {
  IqaCache cache(1 << 20, /*num_shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4);
  for (uint32_t id = 0; id < 64; ++id) cache.Insert(0, id, Row(1.0f));
  for (uint32_t id = 0; id < 64; ++id) EXPECT_TRUE(Contains(&cache, 0, id));
  for (uint32_t id = 64; id < 80; ++id) EXPECT_FALSE(Contains(&cache, 0, id));

  const IqaCache::Stats total = cache.stats();
  EXPECT_EQ(total.hits, 64);
  EXPECT_EQ(total.misses, 16);
  EXPECT_EQ(total.insertions, 64);

  int64_t shard_hits = 0, shard_misses = 0, shard_inserts = 0;
  size_t shard_entries = 0;
  for (const auto& snap : cache.ShardSnapshots()) {
    shard_hits += snap.hits;
    shard_misses += snap.misses;
    shard_inserts += snap.insertions;
    shard_entries += snap.entry_count;
  }
  EXPECT_EQ(shard_hits, total.hits);
  EXPECT_EQ(shard_misses, total.misses);
  EXPECT_EQ(shard_inserts, total.insertions);
  EXPECT_EQ(shard_entries, cache.entry_count());
}

TEST(IqaCacheTest, ShardingSpreadsEntries) {
  IqaCache cache(1 << 20, /*num_shards=*/8);
  for (uint32_t id = 0; id < 256; ++id) cache.Insert(0, id, Row(1.0f));
  int populated = 0;
  for (const auto& snap : cache.ShardSnapshots()) {
    if (snap.entry_count > 0) ++populated;
  }
  // splitmix64 over 256 sequential ids must touch most of 8 shards.
  EXPECT_GE(populated, 6);
}

TEST(IqaCacheTest, ConcurrentMixedTrafficIsSafeAndCounted) {
  IqaCache cache(1 << 22, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr uint32_t kOpsPerThread = 400;
  std::atomic<int64_t> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      std::vector<float> row;
      for (uint32_t i = 0; i < kOpsPerThread; ++i) {
        const uint32_t id = (static_cast<uint32_t>(t) * 131 + i) % 128;
        cache.Insert(0, id, Row(static_cast<float>(id)));
        if (cache.Lookup(0, id, &row)) {
          observed_hits.fetch_add(1);
          // The row read under the shard lock is always internally
          // consistent: whole-row writes can never be observed torn.
          EXPECT_EQ(row[0], static_cast<float>(id));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const IqaCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ(stats.hits + stats.misses, int64_t{kThreads} * kOpsPerThread);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
