#include "core/iqa_cache.h"

#include <gtest/gtest.h>

namespace deepeverest {
namespace core {
namespace {

std::vector<float> Row(float v, size_t n = 8) {
  return std::vector<float>(n, v);
}

TEST(IqaCacheTest, MissThenHit) {
  IqaCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup(0, 1), nullptr);
  cache.Insert(0, 1, Row(1.5f));
  const std::vector<float>* row = cache.Lookup(0, 1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0], 1.5f);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(IqaCacheTest, KeysAreLayerScoped) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 7, Row(1.0f));
  cache.Insert(1, 7, Row(2.0f));
  EXPECT_EQ((*cache.Lookup(0, 7))[0], 1.0f);
  EXPECT_EQ((*cache.Lookup(1, 7))[0], 2.0f);
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(IqaCacheTest, MruEvictionKeepsOldest) {
  // Rows of 8 floats cost 32 + 64 bookkeeping = 96 bytes; capacity for ~3.
  IqaCache cache(300);
  cache.Insert(0, 1, Row(1.0f));
  cache.Insert(0, 2, Row(2.0f));
  cache.Insert(0, 3, Row(3.0f));
  EXPECT_EQ(cache.entry_count(), 3u);
  // Inserting a 4th must evict the most recently used entry (id 3), keeping
  // the earliest rows — NTA inserts most-similar partitions first, and MRU
  // protects them (section 4.7.3).
  cache.Insert(0, 4, Row(4.0f));
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_NE(cache.Lookup(0, 1), nullptr);
  EXPECT_NE(cache.Lookup(0, 2), nullptr);
  EXPECT_EQ(cache.Lookup(0, 3), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(0, 4), nullptr);
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(IqaCacheTest, LookupRefreshesRecency) {
  IqaCache cache(300);
  cache.Insert(0, 1, Row(1.0f));
  cache.Insert(0, 2, Row(2.0f));
  cache.Insert(0, 3, Row(3.0f));
  // Touch id 1: it becomes the MRU entry and is the eviction victim.
  cache.Lookup(0, 1);
  cache.Insert(0, 4, Row(4.0f));
  EXPECT_EQ(cache.Lookup(0, 1), nullptr);
  EXPECT_NE(cache.Lookup(0, 2), nullptr);
  EXPECT_NE(cache.Lookup(0, 3), nullptr);
}

TEST(IqaCacheTest, ReinsertRefreshesPayload) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 1, Row(1.0f));
  cache.Insert(0, 1, Row(9.0f));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ((*cache.Lookup(0, 1))[0], 9.0f);
}

TEST(IqaCacheTest, OversizedRowNotCached) {
  IqaCache cache(100);
  cache.Insert(0, 1, Row(1.0f, 1000));  // 4 KB > capacity
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.Lookup(0, 1), nullptr);
}

TEST(IqaCacheTest, SizeAccounting) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 1, Row(1.0f, 10));
  cache.Insert(0, 2, Row(2.0f, 20));
  EXPECT_EQ(cache.size_bytes(), (10 * 4 + 64) + (20 * 4 + 64));
}

TEST(IqaCacheTest, ClearEmpties) {
  IqaCache cache(1 << 20);
  cache.Insert(0, 1, Row(1.0f));
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.Lookup(0, 1), nullptr);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
