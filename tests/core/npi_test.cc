#include "core/npi.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

/// The Figure 1 running example: six inputs, three neurons.
storage::LayerActivationMatrix Figure1Matrix() {
  storage::LayerActivationMatrix m = storage::LayerActivationMatrix::Make(6, 3);
  const float values[6][3] = {
      {2.0f, 2.0f, 2.0f}, {2.0f, 1.6f, 1.0f}, {1.5f, 1.8f, 1.6f},
      {1.8f, 1.7f, 1.8f}, {1.2f, 1.2f, 1.1f}, {1.1f, 1.1f, 1.2f},
  };
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint64_t n = 0; n < 3; ++n) m.MutableRow(i)[n] = values[i][n];
  }
  return m;
}

TEST(NpiTest, Figure1PartitionAssignments) {
  auto index = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_partitions(), 3);
  EXPECT_FALSE(index->has_mai());

  // Neuron R1 (index 0): p0={x0,x1}, p1={x3,x2}, p2={x4,x5}.
  EXPECT_EQ(index->GetPid(0, 0), 0u);
  EXPECT_EQ(index->GetPid(0, 1), 0u);
  EXPECT_EQ(index->GetPid(0, 3), 1u);
  EXPECT_EQ(index->GetPid(0, 2), 1u);
  EXPECT_EQ(index->GetPid(0, 4), 2u);
  EXPECT_EQ(index->GetPid(0, 5), 2u);
  // Neuron R2 (index 1): p0={x0,x2}, p1={x3,x1}, p2={x4,x5}.
  EXPECT_EQ(index->GetPid(1, 0), 0u);
  EXPECT_EQ(index->GetPid(1, 2), 0u);
  EXPECT_EQ(index->GetPid(1, 3), 1u);
  EXPECT_EQ(index->GetPid(1, 1), 1u);
  // Neuron R3 (index 2): p0={x0,x3}, p1={x2,x5}, p2={x4,x1}.
  EXPECT_EQ(index->GetPid(2, 0), 0u);
  EXPECT_EQ(index->GetPid(2, 3), 0u);
  EXPECT_EQ(index->GetPid(2, 2), 1u);
  EXPECT_EQ(index->GetPid(2, 5), 1u);
  EXPECT_EQ(index->GetPid(2, 4), 2u);
  EXPECT_EQ(index->GetPid(2, 1), 2u);
}

TEST(NpiTest, Figure1Bounds) {
  auto index = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  // R1: lBnd = 2.0, 1.5, 1.1; uBnd = 2.0, 1.8, 1.2 (Figure 1).
  EXPECT_FLOAT_EQ(index->LowerBound(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(index->LowerBound(0, 1), 1.5f);
  EXPECT_FLOAT_EQ(index->LowerBound(0, 2), 1.1f);
  EXPECT_FLOAT_EQ(index->UpperBound(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(index->UpperBound(0, 1), 1.8f);
  EXPECT_FLOAT_EQ(index->UpperBound(0, 2), 1.2f);
  // R2: lBnd = 1.8, 1.6, 1.1; uBnd = 2.0, 1.7, 1.2.
  EXPECT_FLOAT_EQ(index->LowerBound(1, 0), 1.8f);
  EXPECT_FLOAT_EQ(index->LowerBound(1, 1), 1.6f);
  EXPECT_FLOAT_EQ(index->LowerBound(1, 2), 1.1f);
  EXPECT_FLOAT_EQ(index->UpperBound(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(index->UpperBound(1, 1), 1.7f);
  EXPECT_FLOAT_EQ(index->UpperBound(1, 2), 1.2f);
  // R3: lBnd = 1.8, 1.2, 1.0; uBnd = 2.0, 1.6, 1.1.
  EXPECT_FLOAT_EQ(index->LowerBound(2, 0), 1.8f);
  EXPECT_FLOAT_EQ(index->LowerBound(2, 1), 1.2f);
  EXPECT_FLOAT_EQ(index->LowerBound(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(index->UpperBound(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(index->UpperBound(2, 1), 1.6f);
  EXPECT_FLOAT_EQ(index->UpperBound(2, 2), 1.1f);
}

TEST(NpiTest, GetInputIdsReturnsPartitionMembers) {
  auto index = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  std::vector<uint32_t> ids;
  index->GetInputIds(0, 2, &ids);
  EXPECT_EQ(ids, (std::vector<uint32_t>{4, 5}));
  ids.clear();
  index->GetInputIds(2, 1, &ids);
  EXPECT_EQ(ids, (std::vector<uint32_t>{2, 5}));
}

TEST(NpiTest, PidForActivationInsideAndInGaps) {
  auto index = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  // Inside partition ranges.
  EXPECT_EQ(index->PidForActivation(0, 2.0f), 0u);
  EXPECT_EQ(index->PidForActivation(0, 1.6f), 1u);
  EXPECT_EQ(index->PidForActivation(0, 1.15f), 2u);
  // In the gap between p1 (lBnd 1.5) and p2 (uBnd 1.2): nearer side wins.
  EXPECT_EQ(index->PidForActivation(0, 1.45f), 1u);
  EXPECT_EQ(index->PidForActivation(0, 1.25f), 2u);
  // Outside the global range.
  EXPECT_EQ(index->PidForActivation(0, 99.0f), 0u);
  EXPECT_EQ(index->PidForActivation(0, -99.0f), 2u);
}

TEST(NpiTest, MaiBecomesPartitionZero) {
  // ratio 0.5 of 6 inputs -> 3 MAI entries per neuron = partition 0.
  auto index = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.5});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->has_mai());
  EXPECT_EQ(index->mai_count(), 3u);
  // R1's top-3: x0 (2.0), x1 (2.0), x3 (1.8), descending with id tiebreak.
  const MaiEntry* mai = index->MaiEntries(0);
  EXPECT_EQ(mai[0].input_id, 0u);
  EXPECT_FLOAT_EQ(mai[0].activation, 2.0f);
  EXPECT_EQ(mai[1].input_id, 1u);
  EXPECT_EQ(mai[2].input_id, 3u);
  EXPECT_FLOAT_EQ(mai[2].activation, 1.8f);
  // Those three are partition 0.
  EXPECT_EQ(index->GetPid(0, 0), 0u);
  EXPECT_EQ(index->GetPid(0, 1), 0u);
  EXPECT_EQ(index->GetPid(0, 3), 0u);
  // Remaining three split over partitions 1 and 2 (2 + 1).
  EXPECT_EQ(index->GetPid(0, 2), 1u);
  EXPECT_EQ(index->GetPid(0, 4), 1u);
  EXPECT_EQ(index->GetPid(0, 5), 2u);
}

TEST(NpiTest, EquiDepthSizesDifferByAtMostOne) {
  testing_util::TinySystem sys(53, 5);
  std::vector<uint32_t> ids(53);
  for (uint32_t i = 0; i < 53; ++i) ids[i] = i;
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer(ids, 1, &rows));
  auto matrix = storage::LayerActivationMatrix::Make(53, rows[0].size());
  for (uint32_t i = 0; i < 53; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), matrix.MutableRow(i));
  }
  auto index = LayerIndex::Build(matrix, LayerIndexConfig{8, 0.0});
  ASSERT_TRUE(index.ok());
  for (int64_t n = 0; n < index->num_neurons(); ++n) {
    std::vector<size_t> sizes(8, 0);
    for (uint32_t id = 0; id < 53; ++id) {
      ++sizes[index->GetPid(n, id)];
    }
    size_t lo = sizes[0], hi = sizes[0];
    for (size_t s : sizes) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    EXPECT_LE(hi - lo, 1u) << "neuron " << n;
  }
}

TEST(NpiTest, PartitionZeroHoldsLargestActivations) {
  auto index = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  const auto matrix = Figure1Matrix();
  for (int64_t n = 0; n < 3; ++n) {
    for (int pid = 0; pid + 1 < 3; ++pid) {
      EXPECT_GE(index->LowerBound(n, pid), index->UpperBound(n, pid + 1));
    }
  }
}

TEST(NpiTest, ClampsPartitionCountToInputs) {
  storage::LayerActivationMatrix m = storage::LayerActivationMatrix::Make(4, 2);
  for (uint32_t i = 0; i < 4; ++i) {
    m.MutableRow(i)[0] = static_cast<float>(i);
    m.MutableRow(i)[1] = static_cast<float>(-static_cast<int>(i));
  }
  auto index = LayerIndex::Build(m, LayerIndexConfig{64, 0.0});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_partitions(), 4);
}

TEST(NpiTest, SerializationRoundTrip) {
  auto built = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.5});
  ASSERT_TRUE(built.ok());
  BinaryWriter writer;
  built->Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto loaded = LayerIndex::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_inputs(), built->num_inputs());
  EXPECT_EQ(loaded->num_neurons(), built->num_neurons());
  EXPECT_EQ(loaded->num_partitions(), built->num_partitions());
  EXPECT_EQ(loaded->mai_count(), built->mai_count());
  for (int64_t n = 0; n < 3; ++n) {
    for (uint32_t id = 0; id < 6; ++id) {
      EXPECT_EQ(loaded->GetPid(n, id), built->GetPid(n, id));
    }
    for (int pid = 0; pid < 3; ++pid) {
      EXPECT_EQ(loaded->LowerBound(n, pid), built->LowerBound(n, pid));
      EXPECT_EQ(loaded->UpperBound(n, pid), built->UpperBound(n, pid));
    }
    for (uint32_t r = 0; r < built->mai_count(); ++r) {
      EXPECT_EQ(loaded->MaiEntries(n)[r].input_id,
                built->MaiEntries(n)[r].input_id);
      EXPECT_EQ(loaded->MaiEntries(n)[r].activation,
                built->MaiEntries(n)[r].activation);
    }
  }
}

TEST(NpiTest, CorruptPayloadRejected) {
  auto built = LayerIndex::Build(Figure1Matrix(), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(built.ok());
  BinaryWriter writer;
  built->Serialize(&writer);
  std::vector<uint8_t> bytes = writer.buffer();
  bytes.resize(bytes.size() / 2);  // truncate
  BinaryReader reader(bytes);
  EXPECT_FALSE(LayerIndex::Deserialize(&reader).ok());

  std::vector<uint8_t> garbage(16, 0x5A);
  BinaryReader reader2(garbage);
  EXPECT_TRUE(LayerIndex::Deserialize(&reader2).status().IsIOError());
}

TEST(NpiTest, AnalyticStorageBytesMatchesPaperFormula) {
  // 3 neurons, 6 inputs, 4 partitions (2 bits), no MAI:
  // pid bits = 3*6*2 = 36 bits -> 5 bytes; bounds = 3*4*2*4 = 96 bytes.
  EXPECT_EQ(LayerIndex::AnalyticStorageBytes(3, 6, 4, 0), 5u + 96u);
  // With 2 MAI entries: + 3 neurons * 2 entries * 8 bytes = 48.
  EXPECT_EQ(LayerIndex::AnalyticStorageBytes(3, 6, 4, 2), 5u + 96u + 48u);
}

TEST(NpiTest, StorageFarBelowFullMaterialization) {
  // The paper's §4.3 claim: with 8 partitions a PID costs 3 bits, under 10%
  // of full float32 materialisation (bounds included at the paper's scale).
  const int64_t neurons = 1024;
  const uint32_t inputs = 10000;  // the paper's dataset size
  const uint64_t full = static_cast<uint64_t>(neurons) * inputs * 4;
  EXPECT_LT(LayerIndex::AnalyticStorageBytes(neurons, inputs, 8, 0),
            full / 10);
  // And 64 partitions (6 bits) stays under the 20% budget the evaluation
  // grants DeepEverest.
  EXPECT_LT(LayerIndex::AnalyticStorageBytes(neurons, inputs, 64, 0),
            full / 4);
}

TEST(NpiTest, RejectsInvalidConfigs) {
  const auto m = Figure1Matrix();
  EXPECT_FALSE(LayerIndex::Build(m, LayerIndexConfig{0, 0.0}).ok());
  EXPECT_FALSE(LayerIndex::Build(m, LayerIndexConfig{4, -0.1}).ok());
  EXPECT_FALSE(LayerIndex::Build(m, LayerIndexConfig{4, 1.5}).ok());
  storage::LayerActivationMatrix empty;
  EXPECT_FALSE(LayerIndex::Build(empty, LayerIndexConfig{4, 0.0}).ok());
}

TEST(NpiTest, TiesBrokenDeterministically) {
  // All-equal activations: partition assignment must be by inputID.
  storage::LayerActivationMatrix m = storage::LayerActivationMatrix::Make(6, 1);
  for (uint32_t i = 0; i < 6; ++i) m.MutableRow(i)[0] = 1.0f;
  auto index = LayerIndex::Build(m, LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->GetPid(0, 0), 0u);
  EXPECT_EQ(index->GetPid(0, 1), 0u);
  EXPECT_EQ(index->GetPid(0, 2), 1u);
  EXPECT_EQ(index->GetPid(0, 3), 1u);
  EXPECT_EQ(index->GetPid(0, 4), 2u);
  EXPECT_EQ(index->GetPid(0, 5), 2u);
  // Bounds of every partition collapse to the single value.
  for (int pid = 0; pid < 3; ++pid) {
    EXPECT_FLOAT_EQ(index->LowerBound(0, pid), 1.0f);
    EXPECT_FLOAT_EQ(index->UpperBound(0, pid), 1.0f);
  }
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
