// Resumable execution semantics of NtaEngine::Begin* / NtaExecution and
// DeepEverest::BeginSpec / QueryExecution: a manually stepped execution —
// including one whose steps are split across threads, the park/resume
// handoff shape — must be bit-identical to the run-to-completion
// convenience, and the object must enforce its own protocol (no result
// before done, idempotent terminal state, no stepping without a context).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/deepeverest.h"
#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::TempDir;
using testing_util::TinySystem;

Result<LayerIndex> BuildIndexFor(nn::InferenceEngine* engine, int layer,
                                 const LayerIndexConfig& config) {
  const uint32_t n = engine->dataset().size();
  std::vector<uint32_t> ids(n);
  for (uint32_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::vector<float>> rows;
  DE_RETURN_NOT_OK(engine->ComputeLayer(ids, layer, &rows));
  auto matrix = storage::LayerActivationMatrix::Make(n, rows[0].size());
  for (uint32_t i = 0; i < n; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), matrix.MutableRow(i));
  }
  return LayerIndex::Build(matrix, config);
}

void ExpectIdentical(const TopKResult& expected, const TopKResult& actual) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size());
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].input_id, actual.entries[i].input_id)
        << "rank " << i;
    EXPECT_EQ(expected.entries[i].value, actual.entries[i].value)
        << "rank " << i;
  }
}

NtaOptions ExactOptions(int k) {
  NtaOptions options;
  options.k = k;
  options.tie_complete = true;
  return options;
}

TEST(NtaExecutionTest, ManualStepLoopMatchesRun) {
  TinySystem sys(60, 17, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[1];
  auto index = BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{4, 0.2});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const NeuronGroup group{layer, {0, 2, 5}};

  NtaEngine nta(sys.engine.get(), &index.value());
  const auto reference = nta.MostSimilarTo(group, 7, ExactOptions(8));
  ASSERT_TRUE(reference.ok());

  QueryContext ctx;
  auto begun = nta.BeginMostSimilarTo(group, 7, ExactOptions(8), &ctx);
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  NtaExecution& exec = **begun;
  int steps = 0;
  while (!exec.done()) {
    DE_ASSERT_OK(exec.Step());
    ++steps;
  }
  EXPECT_GT(steps, 1);  // a round-sliced execution, not one opaque blob
  auto stepped = exec.TakeResult();
  ASSERT_TRUE(stepped.ok());
  ExpectIdentical(reference.value(), stepped.value());
  EXPECT_EQ(reference->stats.inputs_run, stepped->stats.inputs_run);
  EXPECT_EQ(reference->stats.rounds, stepped->stats.rounds);
}

TEST(NtaExecutionTest, HighestStepLoopMatchesRun) {
  TinySystem sys(60, 23, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[0];
  auto index = BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{5, 0.3});
  ASSERT_TRUE(index.ok());
  const NeuronGroup group{layer, {1, 3}};

  NtaEngine nta(sys.engine.get(), &index.value());
  const auto reference = nta.Highest(group, ExactOptions(6));
  ASSERT_TRUE(reference.ok());

  QueryContext ctx;
  auto begun = nta.BeginHighest(group, ExactOptions(6), &ctx);
  ASSERT_TRUE(begun.ok());
  while (!(*begun)->done()) DE_ASSERT_OK((*begun)->Step());
  auto stepped = (*begun)->TakeResult();
  ASSERT_TRUE(stepped.ok());
  ExpectIdentical(reference.value(), stepped.value());
  EXPECT_EQ(reference->stats.inputs_run, stepped->stats.inputs_run);
}

TEST(NtaExecutionTest, TakeResultBeforeDoneIsFailedPrecondition) {
  TinySystem sys(40, 29, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[0];
  auto index = BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{4, 0.2});
  ASSERT_TRUE(index.ok());

  NtaEngine nta(sys.engine.get(), &index.value());
  QueryContext ctx;
  auto begun = nta.BeginHighest({layer, {0}}, ExactOptions(5), &ctx);
  ASSERT_TRUE(begun.ok());
  ASSERT_FALSE((*begun)->done());
  auto premature = (*begun)->TakeResult();
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);
  // The failed take must not have corrupted the execution.
  while (!(*begun)->done()) DE_ASSERT_OK((*begun)->Step());
  EXPECT_TRUE((*begun)->TakeResult().ok());
}

TEST(NtaExecutionTest, BeginRequiresContext) {
  TinySystem sys(40, 31, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[0];
  auto index = BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{4, 0.2});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(sys.engine.get(), &index.value());
  auto begun = nta.BeginHighest({layer, {0}}, ExactOptions(5), nullptr);
  ASSERT_FALSE(begun.ok());
  EXPECT_EQ(begun.status().code(), StatusCode::kInvalidArgument);
}

TEST(NtaExecutionTest, RunUntilSlicesThenRunFinishes) {
  TinySystem sys(60, 37, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[1];
  auto index = BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{4, 0.2});
  ASSERT_TRUE(index.ok());
  const NeuronGroup group{layer, {0, 4}};

  NtaEngine nta(sys.engine.get(), &index.value());
  const auto reference = nta.MostSimilarTo(group, 3, ExactOptions(8));
  ASSERT_TRUE(reference.ok());

  QueryContext ctx;
  auto begun = nta.BeginMostSimilarTo(group, 3, ExactOptions(8), &ctx);
  ASSERT_TRUE(begun.ok());
  // Time-sliced: run at most two steps per "episode", as a preemptive
  // scheduler would between parks.
  while (!(*begun)->done()) {
    int budget = 2;
    DE_ASSERT_OK((*begun)->RunUntil([&budget] { return --budget < 0; }));
  }
  auto sliced = (*begun)->TakeResult();
  ASSERT_TRUE(sliced.ok());
  ExpectIdentical(reference.value(), sliced.value());
}

TEST(NtaExecutionTest, StepsSplitAcrossThreadsAreBitIdentical) {
  // The park/resume ownership handoff in miniature: each step runs on a
  // fresh thread (strictly serialized, as the service's mutex serializes
  // park → resume), and the result must equal the single-threaded run.
  TinySystem sys(60, 41, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[1];
  auto index = BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{4, 0.2});
  ASSERT_TRUE(index.ok());
  const NeuronGroup group{layer, {1, 2, 6}};

  NtaEngine nta(sys.engine.get(), &index.value());
  const auto reference = nta.MostSimilarTo(group, 11, ExactOptions(7));
  ASSERT_TRUE(reference.ok());

  QueryContext ctx;
  auto begun = nta.BeginMostSimilarTo(group, 11, ExactOptions(7), &ctx);
  ASSERT_TRUE(begun.ok());
  NtaExecution* exec = begun->get();
  while (!exec->done()) {
    std::thread worker([exec] {
      const Status status = exec->Step();
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
    worker.join();
  }
  auto handed_off = exec->TakeResult();
  ASSERT_TRUE(handed_off.ok());
  ExpectIdentical(reference.value(), handed_off.value());
  EXPECT_EQ(reference->stats.inputs_run, handed_off->stats.inputs_run);
}

// ------------------------- facade-level QueryExecution ---------------------

DeepEverestOptions SmallOptions() {
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.1;
  return options;
}

TEST(QueryExecutionTest, BeginSpecStepLoopMatchesExecuteSpec) {
  TinySystem sys(50, 43, 8);
  TempDir dir("exec");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[0];

  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kMostSimilar;
  spec.k = 6;
  spec.layer = layer;
  spec.neurons = {0, 3, 7};
  spec.target_id = 5;

  // Warm the index so both executions run the same NTA path.
  ASSERT_TRUE((*de)->ExecuteSpec(spec).ok());
  const auto reference = (*de)->ExecuteSpec(spec);
  ASSERT_TRUE(reference.ok());

  QueryContext ctx;
  auto begun = (*de)->BeginSpec(spec, &ctx);
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  int steps = 0;
  while (!(*begun)->done()) {
    DE_ASSERT_OK((*begun)->Step());
    ++steps;
  }
  EXPECT_GT(steps, 2);  // resolve/index phases + at least one NTA round
  auto stepped = (*begun)->TakeResult();
  ASSERT_TRUE(stepped.ok());
  ExpectIdentical(reference.value(), stepped.value());
  EXPECT_EQ(reference->stats.inputs_run, stepped->stats.inputs_run);
}

TEST(QueryExecutionTest, CancelledContextSurfacesBetweenSteps) {
  TinySystem sys(50, 47, 8);
  TempDir dir("exec");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[0];

  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kHighest;
  spec.k = 5;
  spec.layer = layer;
  spec.neurons = {0, 1};
  ASSERT_TRUE((*de)->ExecuteSpec(spec).ok());  // warm

  QueryContext ctx;
  auto begun = (*de)->BeginSpec(spec, &ctx);
  ASSERT_TRUE(begun.ok());
  DE_ASSERT_OK((*begun)->Step());  // resolve
  ctx.Cancel();
  while (!(*begun)->done()) {
    (*begun)->Step();  // must terminate with the cancellation, not hang
  }
  auto result = (*begun)->TakeResult();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(QueryExecutionTest, AbandonedExecutionDestructsCleanly) {
  TinySystem sys(40, 53, 8);
  TempDir dir("exec");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto de = DeepEverest::Create(sys.model.get(), &sys.dataset, &store.value(),
                                SmallOptions());
  ASSERT_TRUE(de.ok());
  const int layer = sys.model->activation_layers()[0];

  QuerySpec spec;
  spec.kind = QuerySpec::Kind::kHighest;
  spec.k = 4;
  spec.layer = layer;
  spec.neurons = {0, 2};
  ASSERT_TRUE((*de)->ExecuteSpec(spec).ok());  // warm

  QueryContext ctx;
  ctx.trace = std::make_shared<Trace>(Trace::NextId());
  auto begun = (*de)->BeginSpec(spec, &ctx);
  ASSERT_TRUE(begun.ok());
  DE_ASSERT_OK((*begun)->Step());
  DE_ASSERT_OK((*begun)->Step());
  begun->reset();  // mid-flight abandonment: spans must be closed, no leak
  ctx.trace->Finish();
  EXPECT_FALSE(ctx.trace->Snapshot().has_open_spans);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
