#include "core/config.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deepeverest {
namespace core {
namespace {

TEST(ConfigCostTest, NpiCostMatchesPaperFormula) {
  // nNeurons * nInputs * log2(nPartitions) / 8 bytes.
  EXPECT_EQ(NpiCostBytes(1000, 10000, 64), 1000ull * 10000 * 6 / 8);
  EXPECT_EQ(NpiCostBytes(1000, 10000, 2), 1000ull * 10000 * 1 / 8);
}

TEST(ConfigCostTest, MaiCostMatchesPaperFormula) {
  // ratio * nInputs * nNeurons * 8 bytes (activation + inputID).
  EXPECT_EQ(MaiCostBytes(1000, 10000, 0.05), 1000ull * 500 * 8);
  EXPECT_EQ(MaiCostBytes(1000, 10000, 0.0), 0u);
}

TEST(ConfigSelectTest, PicksLargestPowerOfTwoUnderBudget) {
  // 100 neurons, 10000 inputs, batch 64 -> partition-size cap allows up to
  // 10000/64 = 156 -> at most 128 partitions. Give a budget that only
  // affords 5 bits (32 partitions): cost(64) = 100*10000*6/8 = 750000.
  const uint64_t budget = 700000;
  const SystemConfig config = SelectConfig(budget, 64, 10000, 100);
  EXPECT_EQ(config.num_partitions, 32);
  // Remaining budget buys MAI: cost(32) = 625000, remaining 75000,
  // per-ratio-unit cost = 100*10000*8 = 8e6 -> ratio ~ 0.009.
  EXPECT_GT(config.mai_ratio, 0.0);
  EXPECT_LT(config.mai_ratio, 0.02);
  // The selected configuration respects the budget overall.
  EXPECT_LE(NpiCostBytes(100, 10000, config.num_partitions) +
                MaiCostBytes(100, 10000, config.mai_ratio),
            budget);
}

TEST(ConfigSelectTest, BatchSizeCapsPartitions) {
  // Huge budget, but nInputs/batchSize = 1000/128 = 7 -> at most 4
  // partitions (largest power of two <= 7).
  const SystemConfig config = SelectConfig(1ull << 40, 128, 1000, 100);
  EXPECT_EQ(config.num_partitions, 4);
}

TEST(ConfigSelectTest, TinyBudgetFloorsAtTwoPartitionsNoMai) {
  const SystemConfig config = SelectConfig(10, 8, 1000, 1000);
  EXPECT_EQ(config.num_partitions, 2);
  EXPECT_EQ(config.mai_ratio, 0.0);
}

TEST(ConfigSelectTest, RatioIsWholeNumberOfEntries) {
  const SystemConfig config = SelectConfig(1 << 20, 8, 333, 50);
  const double entries = config.mai_ratio * 333.0;
  EXPECT_NEAR(entries, std::round(entries), 1e-9);
}

TEST(ConfigSelectTest, RatioCappedAtOne) {
  // Budget far exceeding everything: ratio must not exceed 1.
  const SystemConfig config = SelectConfig(1ull << 50, 2, 64, 4);
  EXPECT_LE(config.mai_ratio, 1.0);
}

TEST(ConfigSelectTest, PaperScaleTwentyPercentBudget) {
  // Roughly the paper's CIFAR10-VGG16 setting: ~300k neurons, 10k inputs,
  // batch 128, budget 20% of full materialisation. The paper reports
  // nPartitions = 64 with a small non-zero ratio.
  const int64_t neurons = 300000;
  const uint32_t inputs = 10000;
  const uint64_t full = static_cast<uint64_t>(neurons) * inputs * 4;
  const SystemConfig config =
      SelectConfig(full / 5, 128, inputs, neurons);
  EXPECT_EQ(config.num_partitions, 64);
  EXPECT_GT(config.mai_ratio, 0.0);
  EXPECT_LT(config.mai_ratio, 0.05);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
