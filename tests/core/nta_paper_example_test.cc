// Encodes the paper's worked examples verbatim:
//  * Figures 1-3 (sections 4.3/4.4): the six-input, three-neuron dataset and
//    the topk(x5, {R1,R2,R3}, 2, l1) query, checking the final answer, the
//    number of rounds, and that x0's inference is never paid for.
//  * Figure 4 (section 4.7.1): the MAI example where
//    topk(x0, {R1,R2,R3}, 1, l1) is answered after inference on x0 and x1
//    only.
#include <gtest/gtest.h>

#include "core/nta.h"
#include "nn/layers.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

/// A model whose single ReLU layer reproduces the input verbatim (all
/// example activations are positive), so the paper's activation tables can
/// be injected as dataset rows.
nn::ModelPtr MakePassthrough(int dims) {
  auto model = std::make_unique<nn::Model>("passthrough", Shape({dims}));
  model->AddLayer(std::make_unique<nn::Relu>("relu"));
  DE_CHECK(model->Finalize().ok());
  return model;
}

data::Dataset TableDataset(const std::vector<std::vector<float>>& rows) {
  data::Dataset dataset("table", Shape({static_cast<int64_t>(rows[0].size())}));
  for (const auto& row : rows) {
    dataset.Add(Tensor(Shape({static_cast<int64_t>(row.size())}), row), 0);
  }
  return dataset;
}

storage::LayerActivationMatrix MatrixOf(
    const std::vector<std::vector<float>>& rows) {
  storage::LayerActivationMatrix m =
      storage::LayerActivationMatrix::Make(rows.size(), rows[0].size());
  for (uint32_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), m.MutableRow(i));
  }
  return m;
}

const std::vector<std::vector<float>>& Figure1Rows() {
  static const auto& rows = *new std::vector<std::vector<float>>{
      {2.0f, 2.0f, 2.0f}, {2.0f, 1.6f, 1.0f}, {1.5f, 1.8f, 1.6f},
      {1.8f, 1.7f, 1.8f}, {1.2f, 1.2f, 1.1f}, {1.1f, 1.1f, 1.2f},
  };
  return rows;
}

class Figure123Test : public ::testing::Test {
 protected:
  Figure123Test()
      : model_(MakePassthrough(3)),
        dataset_(TableDataset(Figure1Rows())),
        engine_(model_.get(), &dataset_, /*batch_size=*/8) {}

  nn::ModelPtr model_;
  data::Dataset dataset_;
  nn::InferenceEngine engine_;
};

TEST_F(Figure123Test, WorkedExampleQuery) {
  auto index =
      LayerIndex::Build(MatrixOf(Figure1Rows()), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(&engine_, &index.value());

  NtaOptions options;
  options.k = 2;
  auto dist = MakeDistance(DistanceKind::kL1);
  ASSERT_TRUE(dist.ok());
  options.dist = *dist;

  std::vector<NtaProgress> progress;
  QueryContext ctx;
  ctx.on_progress = [&](const NtaProgress& p) {
    progress.push_back(p);
    return true;
  };

  auto result = nta.MostSimilarTo(NeuronGroup{0, {0, 1, 2}}, 5, options, &ctx);
  ASSERT_TRUE(result.ok());

  // Final answer: (x4, 0.3), (x2, 1.5).
  ASSERT_EQ(result->entries.size(), 2u);
  EXPECT_EQ(result->entries[0].input_id, 4u);
  EXPECT_NEAR(result->entries[0].value, 0.3, 1e-5);
  EXPECT_EQ(result->entries[1].input_id, 2u);
  EXPECT_NEAR(result->entries[1].value, 1.5, 1e-5);

  // NTA halts after round c=1 via the threshold, never touching x0:
  // inference ran on x5 (target), x4, x2 (c=0), x3, x1 (c=1) = 5 inputs.
  EXPECT_TRUE(result->stats.terminated_early);
  EXPECT_EQ(result->stats.rounds, 2);
  EXPECT_EQ(result->stats.inputs_run, 5);

  // Figure 3's thresholds: t = 0.2 at c=0, t = 1.7 at c=1. The c=1 round
  // terminates before the progress callback fires, so only c=0 reports.
  ASSERT_GE(progress.size(), 1u);
  EXPECT_NEAR(progress[0].threshold, 0.2, 1e-5);
  EXPECT_NEAR(progress[0].kth_value, 1.5, 1e-5);
}

TEST_F(Figure123Test, ExhaustiveScanWhenThresholdNeverFires) {
  // k = 5 of 5 candidates: NTA must return everything except the target.
  auto index =
      LayerIndex::Build(MatrixOf(Figure1Rows()), LayerIndexConfig{3, 0.0});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(&engine_, &index.value());
  NtaOptions options;
  options.k = 5;
  auto dist = MakeDistance(DistanceKind::kL1);
  options.dist = *dist;
  auto result = nta.MostSimilarTo(NeuronGroup{0, {0, 1, 2}}, 5, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 5u);
  // All six inputs ran (target included).
  EXPECT_EQ(result->stats.inputs_run, 6);
  // Best is x4 (0.3), worst is x0 (0.9 + 0.9 + 0.8 = 2.6).
  EXPECT_EQ(result->entries[0].input_id, 4u);
  EXPECT_EQ(result->entries[4].input_id, 0u);
  EXPECT_NEAR(result->entries[4].value, 2.6, 1e-5);
}

TEST(Figure4MaiTest, AnswersAfterTwoInferences) {
  const std::vector<std::vector<float>> rows = {
      {2.0f, 2.0f, 1.1f}, {2.0f, 1.8f, 1.1f}, {1.5f, 1.7f, 1.6f},
      {1.8f, 1.6f, 1.8f}, {1.2f, 1.2f, 1.5f},
  };
  nn::ModelPtr model = MakePassthrough(3);
  data::Dataset dataset = TableDataset(rows);
  nn::InferenceEngine engine(model.get(), &dataset, /*batch_size=*/1);

  // ratio 0.6 of 5 inputs -> 3 MAI entries; the example only shows the MAI
  // partition, so use 2 partitions (MAI + rest).
  auto index = LayerIndex::Build(MatrixOf(rows), LayerIndexConfig{2, 0.6});
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->mai_count(), 3u);

  NtaEngine nta(&engine, &index.value());
  NtaOptions options;
  options.k = 1;
  auto dist = MakeDistance(DistanceKind::kL1);
  ASSERT_TRUE(dist.ok());
  options.dist = *dist;

  auto result = nta.MostSimilarTo(NeuronGroup{0, {0, 1, 2}}, 0, options);
  ASSERT_TRUE(result.ok());

  // Figure 4: the answer is (x1, 0.2) after DNN inference on only x0 and x1.
  ASSERT_EQ(result->entries.size(), 1u);
  EXPECT_EQ(result->entries[0].input_id, 1u);
  EXPECT_NEAR(result->entries[0].value, 0.2, 1e-5);
  EXPECT_EQ(result->stats.inputs_run, 2);
  EXPECT_TRUE(result->stats.terminated_early);
}

TEST(Figure4MaiTest, WithoutMaiRunsMoreInputs) {
  // The same query with MAI disabled must still be correct but needs to
  // process whole partitions.
  const std::vector<std::vector<float>> rows = {
      {2.0f, 2.0f, 1.1f}, {2.0f, 1.8f, 1.1f}, {1.5f, 1.7f, 1.6f},
      {1.8f, 1.6f, 1.8f}, {1.2f, 1.2f, 1.5f},
  };
  nn::ModelPtr model = MakePassthrough(3);
  data::Dataset dataset = TableDataset(rows);
  nn::InferenceEngine engine(model.get(), &dataset, /*batch_size=*/1);
  auto index = LayerIndex::Build(MatrixOf(rows), LayerIndexConfig{2, 0.6});
  ASSERT_TRUE(index.ok());

  NtaEngine nta(&engine, &index.value());
  NtaOptions options;
  options.k = 1;
  auto dist = MakeDistance(DistanceKind::kL1);
  options.dist = *dist;
  options.use_mai = false;

  auto result = nta.MostSimilarTo(NeuronGroup{0, {0, 1, 2}}, 0, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->entries.size(), 1u);
  EXPECT_EQ(result->entries[0].input_id, 1u);
  EXPECT_NEAR(result->entries[0].value, 0.2, 1e-5);
  EXPECT_GT(result->stats.inputs_run, 2);
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
