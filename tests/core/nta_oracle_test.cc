// Property-style oracle tests: across sweeps of dataset seeds, group sizes,
// k, distance functions, partition counts, and MAI ratios, NTA must return
// exactly the same top-k answer (value-wise; ties may swap ids) as a brute
// force scan over every input — with and without the MAI fast path and the
// IQA cache.
#include <tuple>

#include <gtest/gtest.h>

#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace core {
namespace {

using testing_util::ExpectValidTopK;
using testing_util::TinySystem;

Result<LayerIndex> BuildIndexFor(nn::InferenceEngine* engine, int layer,
                                 const LayerIndexConfig& config) {
  const uint32_t n = engine->dataset().size();
  std::vector<uint32_t> ids(n);
  for (uint32_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::vector<float>> rows;
  DE_RETURN_NOT_OK(engine->ComputeLayer(ids, layer, &rows));
  auto matrix = storage::LayerActivationMatrix::Make(n, rows[0].size());
  for (uint32_t i = 0; i < n; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), matrix.MutableRow(i));
  }
  return LayerIndex::Build(matrix, config);
}

// (seed, group_size, k, num_partitions, mai_ratio, distance kind)
using OracleParam = std::tuple<uint64_t, int, int, int, double, DistanceKind>;

class NtaOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(NtaOracleTest, MostSimilarMatchesBruteForce) {
  const auto [seed, group_size, k, num_partitions, mai_ratio, dist_kind] =
      GetParam();
  TinySystem sys(60, seed, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[1];  // 12 neurons

  auto index = BuildIndexFor(sys.engine.get(), layer,
                             LayerIndexConfig{num_partitions, mai_ratio});
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  auto dist = MakeDistance(dist_kind, std::vector<double>(group_size, 1.0));
  ASSERT_TRUE(dist.ok());

  Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 3; ++trial) {
    NeuronGroup group;
    group.layer = layer;
    for (size_t pick : rng.SampleWithoutReplacement(
             static_cast<size_t>(sys.model->NeuronCount(layer)),
             static_cast<size_t>(group_size))) {
      group.neurons.push_back(static_cast<int64_t>(pick));
    }
    const uint32_t target =
        static_cast<uint32_t>(rng.NextUint64(sys.dataset.size()));

    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = k;
    options.dist = *dist;
    auto actual = nta.MostSimilarTo(group, target, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();

    // Oracle.
    std::vector<std::vector<float>> target_rows;
    DE_ASSERT_OK(sys.engine->ComputeLayer({target}, layer, &target_rows));
    std::vector<float> target_acts(group.neurons.size());
    for (size_t i = 0; i < group.neurons.size(); ++i) {
      target_acts[i] = target_rows[0][static_cast<size_t>(group.neurons[i])];
    }
    auto expected = BruteForceMostSimilar(sys.engine.get(), group, target_acts,
                                          k, *dist, /*exclude_target=*/true,
                                          target);
    ASSERT_TRUE(expected.ok());
    ExpectValidTopK(*expected, *actual, /*smaller_is_better=*/true);

    // NTA must never run more inputs than the whole dataset.
    EXPECT_LE(actual->stats.inputs_run,
              static_cast<int64_t>(sys.dataset.size()));
  }
}

TEST_P(NtaOracleTest, HighestMatchesBruteForce) {
  const auto [seed, group_size, k, num_partitions, mai_ratio, dist_kind] =
      GetParam();
  TinySystem sys(60, seed + 1000, /*batch_size=*/8);
  const int layer = sys.model->activation_layers()[0];  // 16 neurons

  auto index = BuildIndexFor(sys.engine.get(), layer,
                             LayerIndexConfig{num_partitions, mai_ratio});
  ASSERT_TRUE(index.ok());
  auto dist = MakeDistance(dist_kind, std::vector<double>(group_size, 1.0));
  ASSERT_TRUE(dist.ok());

  Rng rng(seed * 17 + 3);
  for (int trial = 0; trial < 3; ++trial) {
    NeuronGroup group;
    group.layer = layer;
    for (size_t pick : rng.SampleWithoutReplacement(
             static_cast<size_t>(sys.model->NeuronCount(layer)),
             static_cast<size_t>(group_size))) {
      group.neurons.push_back(static_cast<int64_t>(pick));
    }
    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = k;
    options.dist = *dist;
    auto actual = nta.Highest(group, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    auto expected = BruteForceHighest(sys.engine.get(), group, k, *dist);
    ASSERT_TRUE(expected.ok());
    ExpectValidTopK(*expected, *actual, /*smaller_is_better=*/false);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NtaOracleTest,
    ::testing::Combine(
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}),
        ::testing::Values(1, 3, 6),          // group size
        ::testing::Values(1, 5, 20),         // k
        ::testing::Values(2, 4, 16),         // num partitions
        ::testing::Values(0.0, 0.1, 0.3),    // MAI ratio
        ::testing::Values(DistanceKind::kL1, DistanceKind::kL2,
                          DistanceKind::kLInf)));

TEST(NtaOracleEdgeTest, KLargerThanDatasetReturnsAllButTarget) {
  TinySystem sys(12, 9, 4);
  const int layer = sys.model->activation_layers()[0];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{4, 0.0});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 50;  // > dataset size
  auto result = nta.MostSimilarTo(NeuronGroup{layer, {0, 1}}, 3, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries.size(), 11u);  // 12 inputs minus the target
}

TEST(NtaOracleEdgeTest, SinglePartitionDegeneratesToFullScan) {
  TinySystem sys(30, 10, 8);
  const int layer = sys.model->activation_layers()[0];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{1, 0.0});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 5;
  auto result = nta.MostSimilarTo(NeuronGroup{layer, {0, 3, 5}}, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries.size(), 5u);
  EXPECT_EQ(result->stats.inputs_run, 30);  // everything in one partition
}

TEST(NtaOracleEdgeTest, ConstantNeuronHandled) {
  // A neuron whose activation is identical for every input (dead ReLU) must
  // not break partition ordering or termination.
  TinySystem sys(40, 11, 8);
  const int layer = sys.model->activation_layers()[2];  // late, 8 neurons
  // Find a dead neuron if any; otherwise use neuron 0 anyway.
  std::vector<uint32_t> ids(40);
  for (uint32_t i = 0; i < 40; ++i) ids[i] = i;
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer(ids, layer, &rows));
  int64_t dead = 0;
  for (int64_t n = 0; n < sys.model->NeuronCount(layer); ++n) {
    bool all_zero = true;
    for (uint32_t i = 0; i < 40; ++i) {
      if (rows[i][static_cast<size_t>(n)] != 0.0f) all_zero = false;
    }
    if (all_zero) {
      dead = n;
      break;
    }
  }
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{4, 0.2});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 4;
  NeuronGroup group{layer, {dead, (dead + 1) % 8}};
  auto actual = nta.MostSimilarTo(group, 5, options);
  ASSERT_TRUE(actual.ok());

  std::vector<float> target_acts = {
      rows[5][static_cast<size_t>(group.neurons[0])],
      rows[5][static_cast<size_t>(group.neurons[1])]};
  auto expected =
      BruteForceMostSimilar(sys.engine.get(), group, target_acts, 4,
                            L2Distance(), /*exclude_target=*/true, 5);
  ASSERT_TRUE(expected.ok());
  ExpectValidTopK(*expected, *actual, true);
}

TEST(NtaOracleEdgeTest, ExternalTargetActivations) {
  // Most-similar against an out-of-dataset activation vector.
  TinySystem sys(50, 12, 8);
  const int layer = sys.model->activation_layers()[1];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{8, 0.1});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 7;
  NeuronGroup group{layer, {1, 4, 9}};
  const std::vector<float> probe = {0.5f, 0.0f, 1.25f};
  auto actual = nta.MostSimilar(group, probe, options);
  ASSERT_TRUE(actual.ok());
  auto expected =
      BruteForceMostSimilar(sys.engine.get(), group, probe, 7, L2Distance(),
                            /*exclude_target=*/false, 0);
  ASSERT_TRUE(expected.ok());
  ExpectValidTopK(*expected, *actual, true);
}

TEST(NtaOracleEdgeTest, ValidationErrors) {
  TinySystem sys(10, 13, 4);
  const int layer = sys.model->activation_layers()[0];
  auto index =
      BuildIndexFor(sys.engine.get(), layer, LayerIndexConfig{2, 0.0});
  ASSERT_TRUE(index.ok());
  NtaEngine nta(sys.engine.get(), &index.value());
  NtaOptions options;
  options.k = 3;

  // Empty group.
  EXPECT_FALSE(nta.MostSimilarTo(NeuronGroup{layer, {}}, 0, options).ok());
  // Neuron out of range.
  EXPECT_FALSE(
      nta.MostSimilarTo(NeuronGroup{layer, {99999}}, 0, options).ok());
  // Target out of range.
  EXPECT_FALSE(nta.MostSimilarTo(NeuronGroup{layer, {0}}, 999, options).ok());
  // k < 1.
  options.k = 0;
  EXPECT_FALSE(nta.MostSimilarTo(NeuronGroup{layer, {0}}, 0, options).ok());
  // Bad theta.
  options.k = 3;
  options.theta = 0.0;
  EXPECT_FALSE(nta.MostSimilarTo(NeuronGroup{layer, {0}}, 0, options).ok());
  // Index/layer mismatch.
  options.theta = 1.0;
  const int other_layer = sys.model->activation_layers()[1];
  EXPECT_FALSE(
      nta.MostSimilarTo(NeuronGroup{other_layer, {0}}, 0, options).ok());
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
