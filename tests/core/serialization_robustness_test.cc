// Robustness: deserialising a LayerIndex from a buffer truncated at *every*
// possible offset — and from bit-flipped buffers — must fail cleanly with a
// Status (never crash, never allocate absurd amounts).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/npi.h"

namespace deepeverest {
namespace core {
namespace {

storage::LayerActivationMatrix SmallMatrix() {
  Rng rng(71);
  auto m = storage::LayerActivationMatrix::Make(12, 3);
  for (uint32_t i = 0; i < 12; ++i) {
    for (uint64_t n = 0; n < 3; ++n) {
      m.MutableRow(i)[n] = static_cast<float>(rng.NextGaussian());
    }
  }
  return m;
}

std::vector<uint8_t> SerializedIndex() {
  auto index = LayerIndex::Build(SmallMatrix(), LayerIndexConfig{4, 0.25});
  DE_CHECK(index.ok());
  BinaryWriter writer;
  index->Serialize(&writer);
  return writer.TakeBuffer();
}

TEST(SerializationRobustnessTest, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> bytes = SerializedIndex();
  ASSERT_GT(bytes.size(), 16u);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    BinaryReader reader(bytes.data(), cut);
    auto result = LayerIndex::Deserialize(&reader);
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " parsed";
  }
  // The untruncated buffer still parses.
  BinaryReader reader(bytes);
  EXPECT_TRUE(LayerIndex::Deserialize(&reader).ok());
}

TEST(SerializationRobustnessTest, LengthFieldCorruptionFailsCleanly) {
  // Flip bytes in the header region (magic, geometry, and the first vector
  // length) — all must be rejected or at least parsed without crashing.
  const std::vector<uint8_t> original = SerializedIndex();
  for (size_t pos = 0; pos < std::min<size_t>(original.size(), 40); ++pos) {
    std::vector<uint8_t> corrupted = original;
    corrupted[pos] ^= 0xFF;
    BinaryReader reader(corrupted);
    auto result = LayerIndex::Deserialize(&reader);
    // Either rejected, or the flip hit a benign float payload byte; both
    // are fine — we only require no crash and no misbehaviour.
    if (result.ok()) {
      EXPECT_EQ(result->num_inputs(), 12u);
    }
  }
}

TEST(SerializationRobustnessTest, HugeLengthPrefixRejectedWithoutAllocation) {
  // A crafted buffer claiming 2^40 bounds entries must be rejected by the
  // bounds check in BinaryReader, not die in std::vector::resize.
  BinaryWriter writer;
  writer.WriteU32(0xDEE71DE8);  // magic
  writer.WriteU32(12);          // num_inputs
  writer.WriteI64(3);           // num_neurons
  writer.WriteI32(4);           // num_partitions
  writer.WriteU32(0);           // mai_count
  writer.WriteU64(1ull << 40);  // bogus lower-bounds length
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(LayerIndex::Deserialize(&reader).status().IsIOError());
}

}  // namespace
}  // namespace core
}  // namespace deepeverest
