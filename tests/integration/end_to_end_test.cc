// End-to-end integration tests: a realistic multi-query interpretation
// session through the full stack (facade + incremental indexing + NTA +
// MAI + IQA + persistence), cross-checked against baseline engines, plus
// session restart on a warm store.
#include <gtest/gtest.h>

#include "baselines/reprocess_all.h"
#include "bench_util/query_gen.h"
#include "core/deepeverest.h"
#include "nn/model_zoo.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace {

using testing_util::ExpectValidTopK;
using testing_util::TempDir;

struct Session {
  nn::ModelPtr model;
  data::Dataset dataset;
  std::unique_ptr<storage::FileStore> store;
  std::unique_ptr<core::DeepEverest> de;
  std::unique_ptr<nn::InferenceEngine> reference_engine;
  std::unique_ptr<nn::InferenceEngine> generator_engine;

  explicit Session(const std::string& dir, bool iqa = true)
      : model(nn::MakeMiniVgg(9)), dataset(MakeData()) {
    auto opened = storage::FileStore::Open(dir);
    EXPECT_TRUE(opened.ok());
    store = std::make_unique<storage::FileStore>(std::move(*opened));
    core::DeepEverestOptions options;
    options.batch_size = 16;
    options.storage_budget_fraction = 0.2;
    options.enable_iqa = iqa;
    auto created = core::DeepEverest::Create(model.get(), &dataset,
                                             store.get(), options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    de = std::move(*created);
    reference_engine =
        std::make_unique<nn::InferenceEngine>(model.get(), &dataset, 16);
    generator_engine =
        std::make_unique<nn::InferenceEngine>(model.get(), &dataset, 16);
  }

  static data::Dataset MakeData() {
    data::SyntheticImageConfig config;
    config.num_inputs = 120;
    config.seed = 99;
    return data::MakeSyntheticImages(config);
  }
};

TEST(EndToEndTest, MixedWorkloadMatchesReprocessAllEverywhere) {
  TempDir dir("e2e");
  Session session(dir.path());
  baselines::ReprocessAll reference(session.reference_engine.get());

  bench_util::WorkloadSpec spec;
  spec.num_queries = 12;
  spec.seed = 5;
  const std::vector<int> layers = bench_util::GenerateLayerSequence(
      session.model->activation_layers(), spec);
  Rng rng(77);
  for (size_t q = 0; q < layers.size(); ++q) {
    const uint32_t target =
        static_cast<uint32_t>(rng.NextUint64(session.dataset.size()));
    auto group = bench_util::MakeNeuronGroup(
        session.generator_engine.get(), target, layers[q],
        q % 3 == 0 ? bench_util::GroupKind::kTop
                   : bench_util::GroupKind::kRandHigh,
        3, &rng);
    ASSERT_TRUE(group.ok());

    if (q % 4 == 0) {
      auto actual = session.de->TopKHighest(*group, 10);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      auto expected = reference.TopKHighest(*group, 10, nullptr);
      ASSERT_TRUE(expected.ok());
      ExpectValidTopK(*expected, *actual, /*smaller_is_better=*/false);
    } else {
      auto actual = session.de->TopKMostSimilar(target, *group, 10);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      auto expected = reference.TopKMostSimilar(target, *group, 10, nullptr);
      ASSERT_TRUE(expected.ok());
      ExpectValidTopK(*expected, *actual, /*smaller_is_better=*/true);
    }
  }
}

TEST(EndToEndTest, WarmRestartReusesPersistedIndexes) {
  TempDir dir("e2e-restart");
  const int layer = nn::MakeMiniVgg(9)->activation_layers()[2];
  const core::NeuronGroup group{layer, {4, 77, 300}};

  // Session 1 indexes the layer.
  {
    Session session(dir.path());
    ASSERT_TRUE(session.de->TopKMostSimilar(3, group, 5).ok());
    ASSERT_TRUE(session.de->index_manager()->IsIndexed(layer));
  }
  // Session 2 (fresh objects, same store) must not re-run the indexing
  // pass: its first query touches far fewer inputs than the dataset.
  {
    Session session(dir.path());
    EXPECT_TRUE(session.de->index_manager()->IsIndexed(layer));
    auto result = session.de->TopKMostSimilar(3, group, 5);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->stats.inputs_run,
              static_cast<int64_t>(session.dataset.size()));
  }
}

TEST(EndToEndTest, StatsAccumulateSanely) {
  TempDir dir("e2e-stats");
  Session session(dir.path());
  const int layer = session.model->activation_layers()[3];
  const core::NeuronGroup group{layer, {1, 2, 3}};
  auto first = session.de->TopKMostSimilar(0, group, 5);
  ASSERT_TRUE(first.ok());
  // First query = index build: full dataset + the target pass.
  EXPECT_GE(first->stats.inputs_run,
            static_cast<int64_t>(session.dataset.size()));
  EXPECT_GT(first->stats.wall_seconds, 0.0);
  EXPECT_GT(first->stats.simulated_gpu_seconds, 0.0);

  auto second = session.de->TopKMostSimilar(1, group, 5);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->stats.inputs_run, first->stats.inputs_run);
}

TEST(EndToEndTest, ThetaApproximationThroughFacade) {
  TempDir dir("e2e-theta");
  Session session(dir.path(), /*iqa=*/false);
  const int layer = session.model->activation_layers()[2];
  auto top_neurons = session.de->MaximallyActivatedNeurons(7, layer, 4);
  ASSERT_TRUE(top_neurons.ok());
  const core::NeuronGroup group{layer, *top_neurons};
  ASSERT_TRUE(session.de->TopKHighest(group, 1).ok());  // build index

  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kMostSimilar;
  spec.k = 8;
  spec.layer = group.layer;
  spec.neurons = group.neurons;
  spec.target_id = 7;
  auto exact_result = session.de->ExecuteSpec(spec);
  ASSERT_TRUE(exact_result.ok());

  core::QuerySpec approx = spec;
  approx.theta = 0.6;
  auto approx_result = session.de->ExecuteSpec(approx);
  ASSERT_TRUE(approx_result.ok());
  EXPECT_LE(approx_result->stats.inputs_run, exact_result->stats.inputs_run);
  // θ guarantee against the exact worst distance.
  EXPECT_LE(0.6 * approx_result->entries.back().value,
            exact_result->entries.back().value + 1e-9);
}

}  // namespace
}  // namespace deepeverest
