#ifndef DEEPEVEREST_TESTS_TESTING_TEST_UTIL_H_
#define DEEPEVEREST_TESTS_TESTING_TEST_UTIL_H_

#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nta.h"
#include "core/query.h"
#include "data/dataset.h"
#include "nn/inference.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace testing_util {

/// gtest helpers for Status/Result.
#define DE_ASSERT_OK(expr)                                       \
  do {                                                           \
    const ::deepeverest::Status _st = (expr);                    \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (false)

#define DE_EXPECT_OK(expr)                                       \
  do {                                                           \
    const ::deepeverest::Status _st = (expr);                    \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (false)

/// A dataset of random rank-1 vectors, for fast MLP-based tests.
inline data::Dataset MakeVectorDataset(uint32_t num_inputs, int dims,
                                       uint64_t seed) {
  Rng rng(seed);
  data::Dataset dataset("vec" + std::to_string(num_inputs), Shape({dims}));
  for (uint32_t i = 0; i < num_inputs; ++i) {
    Tensor input(Shape({dims}));
    for (int d = 0; d < dims; ++d) {
      input[d] = static_cast<float>(rng.NextGaussian());
    }
    dataset.Add(std::move(input), static_cast<int>(i % 4));
  }
  return dataset;
}

/// A small, fast system-under-test: TinyMlp over a random vector dataset.
struct TinySystem {
  nn::ModelPtr model;
  data::Dataset dataset;
  std::unique_ptr<nn::InferenceEngine> engine;

  TinySystem(uint32_t num_inputs, uint64_t seed, int batch_size = 16)
      : model(nn::MakeTinyMlp(8, seed)),
        dataset(MakeVectorDataset(num_inputs, 8, seed + 1)),
        engine(std::make_unique<nn::InferenceEngine>(model.get(), &dataset,
                                                     batch_size)) {}
};

/// A scoped temp directory removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    auto dir = storage::MakeTempDir(tag);
    EXPECT_TRUE(dir.ok()) << dir.status().ToString();
    path_ = dir.ok() ? dir.value() : std::string("/tmp/de-test-fallback");
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Asserts `actual` is a *valid* top-k answer relative to `expected`
/// (brute-force oracle): values must match position-wise, and every input
/// whose value is strictly better than the k-th value must be present (ties
/// at the boundary may legitimately differ).
inline void ExpectValidTopK(const core::TopKResult& expected,
                            const core::TopKResult& actual,
                            bool smaller_is_better,
                            double tolerance = 1e-6) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size());
  const size_t k = expected.entries.size();
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(expected.entries[i].value, actual.entries[i].value, tolerance)
        << "rank " << i;
  }
  if (k == 0) return;
  const double kth = expected.entries.back().value;
  // Every strictly-better oracle entry must appear in `actual`.
  for (const core::ResultEntry& e : expected.entries) {
    const bool strictly_better = smaller_is_better
                                     ? e.value < kth - tolerance
                                     : e.value > kth + tolerance;
    if (!strictly_better) continue;
    bool found = false;
    for (const core::ResultEntry& a : actual.entries) {
      if (a.input_id == e.input_id) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "input " << e.input_id << " (value " << e.value
                       << ") missing from result";
  }
}

}  // namespace testing_util
}  // namespace deepeverest

#endif  // DEEPEVEREST_TESTS_TESTING_TEST_UTIL_H_
