// Tests for the cross-query batching scheduler: row correctness vs. direct
// engine calls, exact per-caller receipts, cross-caller coalescing, linger
// flushes of partial batches, and error handling.
#include "nn/batch_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace nn {
namespace {

using testing_util::TinySystem;

std::vector<uint32_t> Ids(uint32_t begin, uint32_t count) {
  std::vector<uint32_t> ids(count);
  std::iota(ids.begin(), ids.end(), begin);
  return ids;
}

TEST(BatchSchedulerTest, SingleCallerMatchesEngineBitExactly) {
  TinySystem sys(50, 901, /*batch_size=*/16);
  const int layer = sys.model->activation_layers()[0];
  const std::vector<uint32_t> ids = Ids(0, 50);

  std::vector<std::vector<float>> direct_rows;
  InferenceReceipt direct_receipt;
  ASSERT_TRUE(
      sys.engine->ComputeLayer(ids, layer, &direct_rows, &direct_receipt)
          .ok());

  BatchSchedulerOptions options;
  options.linger_seconds = 0.001;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);
  std::vector<std::vector<float>> scheduled_rows;
  InferenceReceipt receipt;
  ASSERT_TRUE(
      scheduler.ComputeLayer(ids, layer, &scheduled_rows, &receipt).ok());

  ASSERT_EQ(direct_rows.size(), scheduled_rows.size());
  for (size_t i = 0; i < direct_rows.size(); ++i) {
    EXPECT_EQ(direct_rows[i], scheduled_rows[i]) << "row " << i;
  }
  // A lone caller shares nothing: its receipt equals the direct one —
  // 50 inputs in ceil(50/16) = 4 launches (3 full + 1 lingered flush).
  EXPECT_EQ(receipt.inputs_run, direct_receipt.inputs_run);
  EXPECT_DOUBLE_EQ(receipt.batches_run, direct_receipt.batches_run);
  EXPECT_EQ(receipt.macs, direct_receipt.macs);
  EXPECT_DOUBLE_EQ(receipt.simulated_gpu_seconds,
                   direct_receipt.simulated_gpu_seconds);

  const BatchSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.inputs_dispatched, 50);
  EXPECT_EQ(stats.batches_dispatched, 4);
  EXPECT_EQ(stats.shared_batches, 0);
}

TEST(BatchSchedulerTest, ConcurrentCallersCoalesceWithExactReceipts) {
  TinySystem sys(64, 902, /*batch_size=*/64);
  const int layer = sys.model->activation_layers()[1];

  // Reference rows for every input, computed directly.
  std::vector<std::vector<float>> reference;
  ASSERT_TRUE(
      sys.engine->ComputeLayer(Ids(0, 64), layer, &reference, nullptr).ok());

  // 8 callers x 8 inputs with a generous linger: the dispatcher should pack
  // them into far fewer launches than the 8 a solo run would pay.
  BatchSchedulerOptions options;
  options.linger_seconds = 0.05;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  constexpr int kCallers = 8;
  std::vector<InferenceReceipt> receipts(kCallers);
  std::vector<std::vector<std::vector<float>>> rows(kCallers);
  std::vector<Status> statuses(kCallers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kCallers; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<uint32_t> ids = Ids(static_cast<uint32_t>(c) * 8, 8);
      statuses[static_cast<size_t>(c)] = scheduler.ComputeLayer(
          ids, layer, &rows[static_cast<size_t>(c)],
          &receipts[static_cast<size_t>(c)]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  double total_batches = 0.0;
  for (int c = 0; c < kCallers; ++c) {
    ASSERT_TRUE(statuses[static_cast<size_t>(c)].ok());
    ASSERT_EQ(rows[static_cast<size_t>(c)].size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(rows[static_cast<size_t>(c)][i],
                reference[static_cast<size_t>(c) * 8 + i])
          << "caller " << c << " row " << i;
    }
    // Exact attribution: each caller ran exactly its own 8 inputs.
    EXPECT_EQ(receipts[static_cast<size_t>(c)].inputs_run, 8);
    total_batches += receipts[static_cast<size_t>(c)].batches_run;
  }

  const BatchSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.requests, kCallers);
  EXPECT_EQ(stats.inputs_dispatched, 64);
  // Solo, the 8 callers would launch 8 batches; coalesced they need far
  // fewer (1 when all 8 arrive within the linger window; allow scheduler
  // timing slop).
  EXPECT_LT(stats.batches_dispatched, kCallers);
  EXPECT_GT(stats.shared_batches, 0);
  // Fractional shares are conserved across callers.
  EXPECT_NEAR(total_batches, static_cast<double>(stats.batches_dispatched),
              1e-9);
}

TEST(BatchSchedulerTest, LingerWindowFlushesPartialBatch) {
  TinySystem sys(30, 903, /*batch_size=*/16);
  const int layer = sys.model->activation_layers()[0];
  BatchSchedulerOptions options;
  options.linger_seconds = 0.01;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  // 3 inputs can never fill a 16-lane batch; only the linger timeout can
  // dispatch them. The call returning at all proves the flush fires.
  std::vector<std::vector<float>> rows;
  InferenceReceipt receipt;
  ASSERT_TRUE(scheduler.ComputeLayer(Ids(5, 3), layer, &rows, &receipt).ok());
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(receipt.inputs_run, 3);
  EXPECT_DOUBLE_EQ(receipt.batches_run, 1.0);

  const BatchSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.batches_dispatched, 1);
  EXPECT_EQ(stats.linger_flushes, 1);
}

TEST(BatchSchedulerTest, OversizedRequestSpansMultipleBatches) {
  TinySystem sys(60, 904, /*batch_size=*/16);
  const int layer = sys.model->activation_layers()[0];
  BatchSchedulerOptions options;
  options.linger_seconds = 0.002;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  std::vector<std::vector<float>> direct_rows;
  ASSERT_TRUE(
      sys.engine->ComputeLayer(Ids(0, 60), layer, &direct_rows, nullptr).ok());

  std::vector<std::vector<float>> rows;
  InferenceReceipt receipt;
  ASSERT_TRUE(scheduler.ComputeLayer(Ids(0, 60), layer, &rows, &receipt).ok());
  ASSERT_EQ(rows.size(), 60u);
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i], direct_rows[i]);
  EXPECT_EQ(receipt.inputs_run, 60);
  EXPECT_DOUBLE_EQ(receipt.batches_run, 4.0);  // ceil(60/16)
}

TEST(BatchSchedulerTest, RejectsInvalidInputsSynchronously) {
  TinySystem sys(20, 905, /*batch_size=*/8);
  BatchingInferenceScheduler scheduler(sys.engine.get());
  std::vector<std::vector<float>> rows;

  Status bad_id = scheduler.ComputeLayer(
      {5, 99}, sys.model->activation_layers()[0], &rows, nullptr);
  EXPECT_FALSE(bad_id.ok());
  EXPECT_TRUE(bad_id.IsOutOfRange());

  Status bad_layer = scheduler.ComputeLayer({0}, 12345, &rows, nullptr);
  EXPECT_FALSE(bad_layer.ok());
  EXPECT_TRUE(bad_layer.IsOutOfRange());

  // An out-of-range class would index past the per-class linger/stat
  // arrays; it must be rejected before touching any of them.
  Status bad_class =
      scheduler.ComputeLayer({0}, sys.model->activation_layers()[0], &rows,
                             nullptr, static_cast<QosClass>(7));
  EXPECT_FALSE(bad_class.ok());
  EXPECT_TRUE(bad_class.IsInvalidArgument());

  // Empty request: trivially OK, no batch launched.
  EXPECT_TRUE(scheduler
                  .ComputeLayer({}, sys.model->activation_layers()[0], &rows,
                                nullptr)
                  .ok());
  EXPECT_EQ(scheduler.stats().batches_dispatched, 0);
}

// Starvation regression: sustained full-batch traffic on one layer must
// not postpone an expired partial request on another layer — ready queues
// are served oldest-head-first across layers. The hot threads stop as soon
// as the small request completes; if it were starved until the hot traffic
// drained, they would run to their iteration cap instead.
TEST(BatchSchedulerTest, ExpiredPartialIsNotStarvedByFullBatches) {
  TinySystem sys(48, 907, /*batch_size=*/16);
  const std::vector<int>& layers = sys.model->activation_layers();
  ASSERT_GE(layers.size(), 2u);
  BatchSchedulerOptions options;
  options.linger_seconds = 0.001;
  options.num_dispatchers = 1;  // a single dispatcher must still be fair
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  constexpr int kMaxIters = 500;
  std::atomic<bool> small_done{false};
  std::vector<int> iters(3, 0);
  std::vector<std::thread> hot;
  for (int t = 0; t < 3; ++t) {
    hot.emplace_back([&, t] {
      // Each request is exactly one full batch, keeping the hot layer's
      // queue dispatchable without ever waiting on the linger window.
      std::vector<std::vector<float>> rows;
      for (int& i = iters[static_cast<size_t>(t)];
           i < kMaxIters && !small_done.load(); ++i) {
        ASSERT_TRUE(scheduler
                        .ComputeLayer(Ids(static_cast<uint32_t>(t) * 16, 16),
                                      layers[0], &rows, nullptr)
                        .ok());
      }
    });
  }

  // Let the hot traffic establish, then file a 3-input request on a quiet
  // layer: it can only be dispatched via the linger flush. (The sleep is
  // kept well below the hot threads' total running time so they cannot
  // drain their iteration budget before the small request even arrives.)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::vector<std::vector<float>> rows;
  InferenceReceipt receipt;
  ASSERT_TRUE(
      scheduler.ComputeLayer(Ids(0, 3), layers[1], &rows, &receipt).ok());
  small_done.store(true);
  for (std::thread& thread : hot) thread.join();

  EXPECT_EQ(receipt.inputs_run, 3);
  // The hot threads must have exited because the small request finished,
  // not because they exhausted their iteration budget (which is what
  // happens when full batches always preempt expired partials).
  for (int t = 0; t < 3; ++t) {
    EXPECT_LT(iters[static_cast<size_t>(t)], kMaxIters)
        << "hot thread " << t << " drained completely: starvation";
  }
}

// QoS: an interactive request with a zero linger window does not wait out
// anyone's window — it flushes (seals) immediately, while a lone batch
// request on the same scheduler only leaves via the linger timeout.
TEST(BatchSchedulerTest, InteractiveRequestSealsPartialBatchImmediately) {
  TinySystem sys(40, 908, /*batch_size=*/16);
  const int layer = sys.model->activation_layers()[0];
  BatchSchedulerOptions options;
  // A linger far above the test's runtime budget: if the interactive
  // request waited out a window, the call would take >200 ms and the
  // elapsed check below would fail.
  options.linger_seconds = 0.2;
  options.best_effort_linger_seconds = 0.2;
  options.interactive_linger_seconds = 0.0;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  Stopwatch watch;
  std::vector<std::vector<float>> rows;
  InferenceReceipt receipt;
  ASSERT_TRUE(scheduler
                  .ComputeLayer(Ids(0, 3), layer, &rows, &receipt,
                                QosClass::kInteractive)
                  .ok());
  EXPECT_LT(watch.ElapsedSeconds(), 0.1)
      << "interactive request waited out a linger window";
  EXPECT_EQ(receipt.inputs_run, 3);

  const BatchSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.sealed_by_interactive, 1);
  const BatchSchedulerClassStats& interactive =
      stats.per_class[QosIndex(QosClass::kInteractive)];
  EXPECT_EQ(interactive.requests, 1);
  EXPECT_EQ(interactive.inputs_dispatched, 3);
  EXPECT_EQ(interactive.batches_joined, 1);
}

// Per-class stats attribute rows to the class that requested them, and a
// shared batch counts once per class aboard.
TEST(BatchSchedulerTest, PerClassStatsSplitSharedBatches) {
  TinySystem sys(40, 909, /*batch_size=*/32);
  const int layer = sys.model->activation_layers()[0];
  BatchSchedulerOptions options;
  // Both classes linger long enough to meet in one batch; the interactive
  // arrival then seals it.
  options.linger_seconds = 0.05;
  options.interactive_linger_seconds = 0.0;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  Status batch_status, interactive_status;
  std::vector<std::vector<float>> batch_rows, interactive_rows;
  std::thread batch_caller([&] {
    batch_status = scheduler.ComputeLayer(Ids(0, 5), layer, &batch_rows,
                                          nullptr, QosClass::kBatch);
  });
  // Give the batch request time to enqueue (and start lingering) first.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::thread interactive_caller([&] {
    interactive_status =
        scheduler.ComputeLayer(Ids(10, 4), layer, &interactive_rows, nullptr,
                               QosClass::kInteractive);
  });
  batch_caller.join();
  interactive_caller.join();
  ASSERT_TRUE(batch_status.ok());
  ASSERT_TRUE(interactive_status.ok());

  const BatchSchedulerStats stats = scheduler.stats();
  const BatchSchedulerClassStats& batch =
      stats.per_class[QosIndex(QosClass::kBatch)];
  const BatchSchedulerClassStats& interactive =
      stats.per_class[QosIndex(QosClass::kInteractive)];
  EXPECT_EQ(batch.requests, 1);
  EXPECT_EQ(interactive.requests, 1);
  EXPECT_EQ(batch.inputs_dispatched, 5);
  EXPECT_EQ(interactive.inputs_dispatched, 4);
  // Whether the two calls met in one sealed batch or (on a slow machine)
  // dispatched separately, per-class inputs are exact and every batch each
  // class joined is counted.
  EXPECT_GE(batch.batches_joined, 1);
  EXPECT_GE(interactive.batches_joined, 1);
  EXPECT_EQ(stats.inputs_dispatched,
            batch.inputs_dispatched + interactive.inputs_dispatched);
}

// qos_aware = false restores uniform lingering: an interactive request
// behaves exactly like a batch one (and in particular cannot seal).
TEST(BatchSchedulerTest, QosUnawareModeIgnoresClassForScheduling) {
  TinySystem sys(40, 910, /*batch_size=*/16);
  const int layer = sys.model->activation_layers()[0];
  BatchSchedulerOptions options;
  options.linger_seconds = 0.02;
  options.interactive_linger_seconds = 0.0;
  options.qos_aware = false;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  Stopwatch watch;
  std::vector<std::vector<float>> rows;
  ASSERT_TRUE(scheduler
                  .ComputeLayer(Ids(0, 3), layer, &rows, nullptr,
                                QosClass::kInteractive)
                  .ok());
  // The partial batch had to wait out the uniform window.
  EXPECT_GE(watch.ElapsedSeconds(), 0.02);
  const BatchSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.sealed_by_interactive, 0);
  EXPECT_EQ(stats.linger_flushes, 1);
  // Per-class accounting still works in unaware mode.
  EXPECT_EQ(stats.per_class[QosIndex(QosClass::kInteractive)].requests, 1);
}

TEST(BatchSchedulerTest, ManyThreadsManyLayersStress) {
  TinySystem sys(48, 906, /*batch_size=*/16);
  const std::vector<int>& layers = sys.model->activation_layers();
  BatchSchedulerOptions options;
  options.linger_seconds = 0.0005;
  options.num_dispatchers = 2;
  BatchingInferenceScheduler scheduler(sys.engine.get(), options);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        const int layer = layers[static_cast<size_t>((t + round) %
                                                     layers.size())];
        const std::vector<uint32_t> ids =
            Ids(static_cast<uint32_t>((t * 5 + round) % 24), 17);
        std::vector<std::vector<float>> rows;
        InferenceReceipt receipt;
        if (!scheduler.ComputeLayer(ids, layer, &rows, &receipt).ok() ||
            rows.size() != ids.size() || receipt.inputs_run != 17) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const BatchSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.requests, 48);
  EXPECT_EQ(stats.inputs_enqueued, stats.inputs_dispatched);
}

}  // namespace
}  // namespace nn
}  // namespace deepeverest
