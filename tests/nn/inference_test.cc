#include "nn/inference.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace deepeverest {
namespace nn {
namespace {

using testing_util::TinySystem;

TEST(InferenceEngineTest, ComputeLayerMatchesDirectForward) {
  TinySystem sys(20, 1);
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer({3, 7, 11}, 1, &rows));
  ASSERT_EQ(rows.size(), 3u);
  Tensor direct;
  DE_ASSERT_OK(sys.model->ForwardTo(sys.dataset.input(7), 1, &direct));
  ASSERT_EQ(rows[1].size(), static_cast<size_t>(direct.NumElements()));
  for (int64_t i = 0; i < direct.NumElements(); ++i) {
    EXPECT_EQ(rows[1][static_cast<size_t>(i)], direct[i]);
  }
}

TEST(InferenceEngineTest, StatsCountInputsAndBatches) {
  TinySystem sys(50, 2, /*batch_size=*/16);
  std::vector<std::vector<float>> rows;
  std::vector<uint32_t> ids(50);
  for (uint32_t i = 0; i < 50; ++i) ids[i] = i;
  DE_ASSERT_OK(sys.engine->ComputeLayer(ids, 1, &rows));
  EXPECT_EQ(sys.engine->stats().inputs_run, 50);
  EXPECT_EQ(sys.engine->stats().batches_run, 4);  // ceil(50/16)
  EXPECT_GT(sys.engine->stats().macs, 0);
  EXPECT_GT(sys.engine->stats().simulated_gpu_seconds, 0.0);
}

TEST(InferenceEngineTest, ResetStatsZeroes) {
  TinySystem sys(10, 3);
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer({0, 1}, 0, &rows));
  EXPECT_GT(sys.engine->stats().inputs_run, 0);
  sys.engine->ResetStats();
  EXPECT_EQ(sys.engine->stats().inputs_run, 0);
  EXPECT_EQ(sys.engine->stats().batches_run, 0);
}

TEST(InferenceEngineTest, EmptyRequestIsFreeAndOk) {
  TinySystem sys(10, 4);
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer({}, 0, &rows));
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(sys.engine->stats().inputs_run, 0);
}

TEST(InferenceEngineTest, OutOfRangeInputId) {
  TinySystem sys(10, 5);
  std::vector<std::vector<float>> rows;
  EXPECT_TRUE(sys.engine->ComputeLayer({99}, 0, &rows).IsOutOfRange());
}

TEST(InferenceEngineTest, ComputeAllLayersMatchesPerLayer) {
  TinySystem sys(10, 6);
  std::vector<Tensor> outputs;
  DE_ASSERT_OK(sys.engine->ComputeAllLayers(4, &outputs));
  ASSERT_EQ(outputs.size(), static_cast<size_t>(sys.model->num_layers()));
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer({4}, 3, &rows));
  for (size_t i = 0; i < rows[0].size(); ++i) {
    EXPECT_EQ(rows[0][i], outputs[3][static_cast<int64_t>(i)]);
  }
}

TEST(GpuCostModelTest, FullBatchesScaleLinearly) {
  GpuCostModel cost;
  const double one = cost.BatchSeconds(64, 64, 1000000);
  const double two = cost.BatchSeconds(128, 64, 1000000);
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
}

TEST(GpuCostModelTest, SmallBatchCostsLikeFullBatch) {
  // The Figure 7 plateau: a batch of 1 launches the same kernel as a batch
  // of 64, so tiny partitions stop paying off.
  GpuCostModel cost;
  EXPECT_EQ(cost.BatchSeconds(1, 64, 1000000),
            cost.BatchSeconds(64, 64, 1000000));
}

TEST(GpuCostModelTest, SimulatedTimeGrowsWithLayerDepth) {
  TinySystem sys(20, 7);
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer({0, 1, 2}, 0, &rows));
  const double shallow = sys.engine->stats().simulated_gpu_seconds;
  sys.engine->ResetStats();
  DE_ASSERT_OK(
      sys.engine->ComputeLayer({0, 1, 2}, sys.model->num_layers() - 1, &rows));
  EXPECT_GT(sys.engine->stats().simulated_gpu_seconds, shallow);
}

}  // namespace
}  // namespace nn
}  // namespace deepeverest
