#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace deepeverest {
namespace nn {
namespace {

TEST(ReluTest, ClampsNegatives) {
  Relu relu("relu");
  Tensor in(Shape({4}), {-1.0f, 0.0f, 2.0f, -0.5f});
  Tensor out;
  ASSERT_TRUE(relu.Forward(in, &out).ok());
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 2.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(ReluTest, ShapePreserved) {
  Relu relu("relu");
  auto shape = relu.OutputShape(Shape({3, 3, 2}));
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(*shape, Shape({3, 3, 2}));
}

TEST(DenseTest, KnownLinearCombination) {
  Rng rng(1);
  Dense dense("fc", 2, 1, &rng);
  // With random weights we can't assert exact values, but linearity must
  // hold: f(2x) - f(0) == 2 * (f(x) - f(0)).
  Tensor zero(Shape({2}), {0.0f, 0.0f});
  Tensor x(Shape({2}), {1.0f, -1.0f});
  Tensor x2(Shape({2}), {2.0f, -2.0f});
  Tensor f0, fx, fx2;
  ASSERT_TRUE(dense.Forward(zero, &f0).ok());
  ASSERT_TRUE(dense.Forward(x, &fx).ok());
  ASSERT_TRUE(dense.Forward(x2, &fx2).ok());
  EXPECT_NEAR(fx2[0] - f0[0], 2.0f * (fx[0] - f0[0]), 1e-5);
}

TEST(DenseTest, RejectsWrongInputWidth) {
  Rng rng(1);
  Dense dense("fc", 4, 2, &rng);
  EXPECT_FALSE(dense.OutputShape(Shape({5})).ok());
  EXPECT_FALSE(dense.OutputShape(Shape({4, 1})).ok());
}

TEST(Conv2DTest, OutputShapeSamePadding) {
  Rng rng(2);
  Conv2D conv("conv", 3, 8, 3, &rng);
  auto shape = conv.OutputShape(Shape({16, 16, 3}));
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(*shape, Shape({16, 16, 8}));
}

TEST(Conv2DTest, RejectsChannelMismatch) {
  Rng rng(2);
  Conv2D conv("conv", 3, 8, 3, &rng);
  EXPECT_FALSE(conv.OutputShape(Shape({16, 16, 4})).ok());
}

TEST(Conv2DTest, TranslationEquivarianceInInterior) {
  // A 1x1 kernel conv must be a per-pixel linear map: shifting the input
  // shifts the output identically.
  Rng rng(3);
  Conv2D conv("conv", 1, 1, 1, &rng);
  Tensor a(Shape({4, 4, 1}));
  a.At(1, 1, 0) = 1.0f;
  Tensor b(Shape({4, 4, 1}));
  b.At(2, 2, 0) = 1.0f;
  Tensor fa, fb;
  ASSERT_TRUE(conv.Forward(a, &fa).ok());
  ASSERT_TRUE(conv.Forward(b, &fb).ok());
  EXPECT_NEAR(fa.At(1, 1, 0), fb.At(2, 2, 0), 1e-6);
}

TEST(Conv2DTest, LinearityInInput) {
  Rng rng(4);
  Conv2D conv("conv", 2, 3, 3, &rng);
  Rng data_rng(5);
  Tensor x(Shape({6, 6, 2})), y(Shape({6, 6, 2}));
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    x[i] = static_cast<float>(data_rng.NextGaussian());
    y[i] = static_cast<float>(data_rng.NextGaussian());
  }
  Tensor sum(Shape({6, 6, 2}));
  for (int64_t i = 0; i < x.NumElements(); ++i) sum[i] = x[i] + y[i];
  Tensor fx, fy, fsum, fzero;
  Tensor zero(Shape({6, 6, 2}));
  ASSERT_TRUE(conv.Forward(x, &fx).ok());
  ASSERT_TRUE(conv.Forward(y, &fy).ok());
  ASSERT_TRUE(conv.Forward(sum, &fsum).ok());
  ASSERT_TRUE(conv.Forward(zero, &fzero).ok());
  for (int64_t i = 0; i < fsum.NumElements(); ++i) {
    // f(x+y) = f(x) + f(y) - f(0)  (bias counted once)
    ASSERT_NEAR(fsum[i], fx[i] + fy[i] - fzero[i], 1e-4);
  }
}

TEST(MaxPoolTest, TakesWindowMax) {
  MaxPool2D pool("pool");
  Tensor in(Shape({2, 2, 1}));
  in.At(0, 0, 0) = 1.0f;
  in.At(0, 1, 0) = 4.0f;
  in.At(1, 0, 0) = -2.0f;
  in.At(1, 1, 0) = 3.0f;
  Tensor out;
  ASSERT_TRUE(pool.Forward(in, &out).ok());
  EXPECT_EQ(out.shape(), Shape({1, 1, 1}));
  EXPECT_EQ(out.At(0, 0, 0), 4.0f);
}

TEST(MaxPoolTest, RejectsOddSpatialDims) {
  MaxPool2D pool("pool");
  EXPECT_FALSE(pool.OutputShape(Shape({3, 4, 1})).ok());
}

TEST(GlobalAvgPoolTest, AveragesPerChannel) {
  GlobalAvgPool gap("gap");
  Tensor in(Shape({2, 2, 2}));
  // Channel 0: 1,2,3,4 -> mean 2.5; channel 1: all 8 -> mean 8.
  in.At(0, 0, 0) = 1.0f;
  in.At(0, 1, 0) = 2.0f;
  in.At(1, 0, 0) = 3.0f;
  in.At(1, 1, 0) = 4.0f;
  for (int h = 0; h < 2; ++h) {
    for (int w = 0; w < 2; ++w) in.At(h, w, 1) = 8.0f;
  }
  Tensor out;
  ASSERT_TRUE(gap.Forward(in, &out).ok());
  EXPECT_EQ(out.shape(), Shape({2}));
  EXPECT_NEAR(out[0], 2.5f, 1e-6);
  EXPECT_NEAR(out[1], 8.0f, 1e-6);
}

TEST(BatchNormTest, AffinePerChannel) {
  Rng rng(6);
  BatchNorm bn("bn", 2, &rng);
  Tensor zero(Shape({1, 1, 2}));
  Tensor one(Shape({1, 1, 2}));
  one.At(0, 0, 0) = 1.0f;
  one.At(0, 0, 1) = 1.0f;
  Tensor two(Shape({1, 1, 2}));
  two.At(0, 0, 0) = 2.0f;
  two.At(0, 0, 1) = 2.0f;
  Tensor f0, f1, f2;
  ASSERT_TRUE(bn.Forward(zero, &f0).ok());
  ASSERT_TRUE(bn.Forward(one, &f1).ok());
  ASSERT_TRUE(bn.Forward(two, &f2).ok());
  // Affine: f(2) - f(1) == f(1) - f(0) per channel.
  EXPECT_NEAR(f2[0] - f1[0], f1[0] - f0[0], 1e-6);
  EXPECT_NEAR(f2[1] - f1[1], f1[1] - f0[1], 1e-6);
}

TEST(FlattenTest, PreservesValuesRowMajor) {
  Flatten flatten("flatten");
  Tensor in(Shape({2, 1, 2}), {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor out;
  ASSERT_TRUE(flatten.Forward(in, &out).ok());
  EXPECT_EQ(out.shape(), Shape({4}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(SoftmaxTest, SumsToOneAndOrders) {
  Softmax softmax("softmax");
  Tensor in(Shape({3}), {1.0f, 3.0f, 2.0f});
  Tensor out;
  ASSERT_TRUE(softmax.Forward(in, &out).ok());
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0f, 1e-6);
  EXPECT_GT(out[1], out[2]);
  EXPECT_GT(out[2], out[0]);
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Softmax softmax("softmax");
  Tensor in(Shape({2}), {1000.0f, 1001.0f});
  Tensor out;
  ASSERT_TRUE(softmax.Forward(in, &out).ok());
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_NEAR(out[0] + out[1], 1.0f, 1e-6);
}

TEST(ResidualBlockTest, ShapeAndNonNegativity) {
  Rng rng(7);
  ResidualBlock block("block", 2, 4, &rng);
  auto shape = block.OutputShape(Shape({4, 4, 2}));
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(*shape, Shape({4, 4, 4}));

  Rng data_rng(8);
  Tensor in(Shape({4, 4, 2}));
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    in[i] = static_cast<float>(data_rng.NextGaussian());
  }
  Tensor out;
  ASSERT_TRUE(block.Forward(in, &out).ok());
  for (int64_t i = 0; i < out.NumElements(); ++i) {
    EXPECT_GE(out[i], 0.0f);  // final ReLU
  }
}

TEST(ResidualBlockTest, IdentitySkipWhenChannelsMatch) {
  // Same in/out channels: no projection; MacsFor must count both convs.
  Rng rng(9);
  ResidualBlock block("block", 3, 3, &rng);
  const Shape in({4, 4, 3});
  // 2 convs (3x3) + 2 bn + add.
  const int64_t conv_macs = 4 * 4 * 9 * 3 * 3;
  EXPECT_EQ(block.MacsFor(in), 2 * conv_macs + 2 * (4 * 4 * 3) + 4 * 4 * 3);
}

TEST(MacsTest, ConvAndDenseFormulas) {
  Rng rng(10);
  Conv2D conv("conv", 3, 8, 3, &rng);
  EXPECT_EQ(conv.MacsFor(Shape({32, 32, 3})), 32 * 32 * 9 * 3 * 8);
  Dense dense("fc", 100, 10, &rng);
  EXPECT_EQ(dense.MacsFor(Shape({100})), 1000);
}

}  // namespace
}  // namespace nn
}  // namespace deepeverest
