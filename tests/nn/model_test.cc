#include "nn/model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"

namespace deepeverest {
namespace nn {
namespace {

TEST(ModelTest, FinalizeComputesShapesAndCosts) {
  ModelPtr model = MakeTinyMlp(8, 1);
  EXPECT_TRUE(model->finalized());
  EXPECT_EQ(model->num_layers(), 8);
  EXPECT_EQ(model->layer_output_shape(0), Shape({16}));  // fc1
  EXPECT_EQ(model->layer_output_shape(1), Shape({16}));  // relu1
  EXPECT_EQ(model->layer_output_shape(7), Shape({4}));   // softmax
  // Cumulative MACs strictly increase through dense layers.
  EXPECT_GT(model->CumulativeMacs(2), model->CumulativeMacs(0));
  EXPECT_GT(model->CumulativeMacs(7), model->CumulativeMacs(6) - 1);
}

TEST(ModelTest, ActivationLayersAreRelus) {
  ModelPtr model = MakeTinyMlp(8, 1);
  const std::vector<int> expected = {1, 3, 5};
  EXPECT_EQ(model->activation_layers(), expected);
}

TEST(ModelTest, ForwardToMatchesForwardAll) {
  ModelPtr model = MakeTinyMlp(8, 2);
  Rng rng(3);
  Tensor input(Shape({8}));
  for (int i = 0; i < 8; ++i) {
    input[i] = static_cast<float>(rng.NextGaussian());
  }
  std::vector<Tensor> all;
  ASSERT_TRUE(model->ForwardAll(input, &all).ok());
  ASSERT_EQ(all.size(), 8u);
  for (int layer = 0; layer < model->num_layers(); ++layer) {
    Tensor out;
    ASSERT_TRUE(model->ForwardTo(input, layer, &out).ok());
    ASSERT_EQ(out.NumElements(), all[layer].NumElements());
    for (int64_t i = 0; i < out.NumElements(); ++i) {
      ASSERT_EQ(out[i], all[static_cast<size_t>(layer)][i])
          << "layer " << layer << " element " << i;
    }
  }
}

TEST(ModelTest, DeterministicAcrossInstances) {
  ModelPtr a = MakeTinyMlp(8, 7);
  ModelPtr b = MakeTinyMlp(8, 7);
  Tensor input(Shape({8}));
  input.Fill(0.3f);
  Tensor out_a, out_b;
  ASSERT_TRUE(a->ForwardTo(input, 5, &out_a).ok());
  ASSERT_TRUE(b->ForwardTo(input, 5, &out_b).ok());
  for (int64_t i = 0; i < out_a.NumElements(); ++i) {
    EXPECT_EQ(out_a[i], out_b[i]);
  }
}

TEST(ModelTest, DifferentSeedsDifferentWeights) {
  ModelPtr a = MakeTinyMlp(8, 7);
  ModelPtr b = MakeTinyMlp(8, 8);
  Tensor input(Shape({8}));
  input.Fill(0.3f);
  Tensor out_a, out_b;
  ASSERT_TRUE(a->ForwardTo(input, 0, &out_a).ok());
  ASSERT_TRUE(b->ForwardTo(input, 0, &out_b).ok());
  bool any_diff = false;
  for (int64_t i = 0; i < out_a.NumElements(); ++i) {
    if (out_a[i] != out_b[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ModelTest, RejectsBadLayerIndex) {
  ModelPtr model = MakeTinyMlp(8, 1);
  Tensor input(Shape({8}));
  Tensor out;
  EXPECT_TRUE(model->ForwardTo(input, -1, &out).IsOutOfRange());
  EXPECT_TRUE(model->ForwardTo(input, 99, &out).IsOutOfRange());
}

TEST(ModelTest, RejectsWrongInputShape) {
  ModelPtr model = MakeTinyMlp(8, 1);
  Tensor input(Shape({9}));
  Tensor out;
  EXPECT_TRUE(model->ForwardTo(input, 0, &out).IsInvalidArgument());
}

TEST(ModelTest, FinalizeRejectsIncompatibleLayers) {
  Rng rng(1);
  Model model("bad", Shape({8}));
  model.AddLayer(std::make_unique<Dense>("fc", 4, 2, &rng));  // expects 4
  EXPECT_TRUE(model.Finalize().IsInvalidArgument());
}

TEST(ModelZooTest, MiniVggGeometry) {
  ModelPtr model = MakeMiniVgg(1);
  EXPECT_EQ(model->input_shape(), Shape({32, 32, 3}));
  // Five ReLU activation layers.
  EXPECT_EQ(model->activation_layers().size(), 5u);
  // Early activation layer: 32x32x8 = 8192 neurons.
  EXPECT_EQ(model->NeuronCount(model->activation_layers().front()), 8192);
  // Late activation layer: 64 neurons.
  EXPECT_EQ(model->NeuronCount(model->activation_layers().back()), 64);
}

TEST(ModelZooTest, MiniResNetGeometryAndCost) {
  ModelPtr vgg = MakeMiniVgg(1);
  ModelPtr resnet = MakeMiniResNet(1);
  EXPECT_EQ(resnet->input_shape(), Shape({32, 32, 3}));
  EXPECT_EQ(resnet->activation_layers().size(), 4u);
  // MiniResNet is the costlier model, mirroring ResNet50 vs VGG16-on-CIFAR.
  EXPECT_GT(resnet->CumulativeMacs(resnet->num_layers() - 1),
            vgg->CumulativeMacs(vgg->num_layers() - 1));
}

TEST(ModelZooTest, MiniVggForwardProducesFiniteOutputs) {
  ModelPtr model = MakeMiniVgg(3);
  Rng rng(4);
  Tensor input(Shape({32, 32, 3}));
  for (int64_t i = 0; i < input.NumElements(); ++i) {
    input[i] = static_cast<float>(rng.NextGaussian());
  }
  Tensor out;
  ASSERT_TRUE(model->ForwardTo(input, model->num_layers() - 1, &out).ok());
  float sum = 0.0f;
  for (int64_t i = 0; i < out.NumElements(); ++i) {
    ASSERT_TRUE(std::isfinite(out[i]));
    sum += out[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4);  // softmax head
}

}  // namespace
}  // namespace nn
}  // namespace deepeverest
