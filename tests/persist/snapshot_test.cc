// Crash- and corruption-injection tests for the snapshot tier: a kill at
// ANY point inside the writer must leave a store that loads as the old or
// the new snapshot, never a hybrid; and a single flipped bit anywhere must
// fail the load (so recovery falls back to a rebuild instead of serving
// silently wrong indexes).
#include "persist/snapshot.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace persist {
namespace {

using testing_util::TempDir;

storage::LayerActivationMatrix MakeActs(uint32_t num_inputs,
                                        uint64_t num_neurons, uint64_t seed) {
  Rng rng(seed);
  storage::LayerActivationMatrix acts;
  acts.num_inputs = num_inputs;
  acts.num_neurons = num_neurons;
  acts.values.resize(static_cast<size_t>(num_inputs) * num_neurons);
  for (float& v : acts.values) v = static_cast<float>(rng.NextGaussian());
  return acts;
}

core::LayerIndex BuildIndex(uint32_t num_inputs, uint64_t seed) {
  auto index = core::LayerIndex::Build(MakeActs(num_inputs, 6, seed),
                                       core::LayerIndexConfig{4, 0.25});
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index.value());
}

/// Writes one snapshot holding layers {1, 2} built over `num_inputs` rows.
Status WriteState(storage::FileStore* store, uint32_t num_inputs,
                  const Failpoint& failpoint = nullptr) {
  const core::LayerIndex a = BuildIndex(num_inputs, 7);
  const core::LayerIndex b = BuildIndex(num_inputs, 9);
  return WriteSnapshot(store, "m", "d", num_inputs, {{1, &a}, {2, &b}},
                       /*created_unix_seconds=*/1234, failpoint)
      .status();
}

TEST(SnapshotTest, RoundTrip) {
  TempDir dir("snap");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(WriteState(&store.value(), 20));

  auto loaded = LoadSnapshot(&store.value(), "m");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->manifest.model, "m");
  EXPECT_EQ(loaded->manifest.dataset, "d");
  EXPECT_EQ(loaded->manifest.dataset_size, 20u);
  EXPECT_EQ(loaded->manifest.created_unix_seconds, 1234u);
  ASSERT_EQ(loaded->indexes.size(), 2u);
  for (const auto& [layer, index] : loaded->indexes) {
    EXPECT_TRUE(layer == 1 || layer == 2);
    EXPECT_EQ(index.num_inputs(), 20u);
  }
  EXPECT_GT(loaded->total_bytes, 0u);
}

TEST(SnapshotTest, MissingSnapshotIsNotFound) {
  TempDir dir("snap");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto loaded = LoadSnapshot(&store.value(), "m");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

/// Asserts the loaded snapshot is EXACTLY state `20` or state `30`: one
/// generation throughout, every watermark equal to the manifest's size.
void ExpectOldOrNew(storage::FileStore* store) {
  auto loaded = LoadSnapshot(store, "m");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const uint32_t size = loaded->manifest.dataset_size;
  EXPECT_TRUE(size == 20u || size == 30u) << "hybrid dataset size " << size;
  ASSERT_EQ(loaded->indexes.size(), 2u);
  for (const SegmentInfo& seg : loaded->manifest.segments) {
    EXPECT_EQ(seg.watermark, size) << seg.key;
    // Every referenced segment carries the manifest's generation stamp.
    EXPECT_NE(seg.key.find(".g" + std::to_string(loaded->manifest.generation) +
                           ".seg"),
              std::string::npos)
        << seg.key << " not from generation " << loaded->manifest.generation;
  }
  for (const auto& [layer, index] : loaded->indexes) {
    (void)layer;
    EXPECT_EQ(index.num_inputs(), size);
  }
}

TEST(SnapshotTest, KillPointSweepYieldsOldOrNewNeverHybrid) {
  // Enumerate every failpoint a clean old->new overwrite passes through.
  std::vector<std::string> points;
  {
    TempDir dir("snap-enum");
    auto store = storage::FileStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    DE_ASSERT_OK(WriteState(&store.value(), 20));
    DE_ASSERT_OK(WriteState(&store.value(), 30, [&](const std::string& p) {
      points.push_back(p);
      return false;
    }));
  }
  ASSERT_GE(points.size(), 6u);  // 2 per segment + 2 manifest + gc

  for (const std::string& point : points) {
    SCOPED_TRACE("kill at " + point);
    TempDir dir("snap-kill");
    auto store = storage::FileStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    DE_ASSERT_OK(WriteState(&store.value(), 20));

    const Status aborted =
        WriteState(&store.value(), 30,
                   [&](const std::string& p) { return p == point; });
    EXPECT_EQ(aborted.code(), StatusCode::kCancelled);

    // The store must load as exactly one committed state.
    ExpectOldOrNew(&store.value());

    // And a retry must commit the new state cleanly, reclaiming every
    // orphan the aborted attempt left behind.
    DE_ASSERT_OK(WriteState(&store.value(), 30));
    auto loaded = LoadSnapshot(&store.value(), "m");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->manifest.dataset_size, 30u);
    auto keys = store->ListKeys();
    ASSERT_TRUE(keys.ok());
    std::set<std::string> referenced = {ManifestKeyFor("m")};
    for (const SegmentInfo& seg : loaded->manifest.segments) {
      referenced.insert(seg.key);
    }
    for (const std::string& key : *keys) {
      if (key.rfind("snapshot/m/", 0) == 0) {
        EXPECT_TRUE(referenced.count(key)) << "orphan survived GC: " << key;
      }
    }
  }
}

void FlipByteAt(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

TEST(SnapshotTest, BitFlippedSegmentFailsLoad) {
  TempDir dir("snap-flip");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(WriteState(&store.value(), 20));
  auto loaded = LoadSnapshot(&store.value(), "m");
  ASSERT_TRUE(loaded.ok());

  for (const SegmentInfo& seg : loaded->manifest.segments) {
    SCOPED_TRACE(seg.key);
    const std::string path = store->root() + "/" + seg.key;
    // Flip one bit in the middle of the payload, then restore it.
    FlipByteAt(path, seg.bytes / 2);
    EXPECT_FALSE(LoadSnapshot(&store.value(), "m").ok());
    FlipByteAt(path, seg.bytes / 2);
    EXPECT_TRUE(LoadSnapshot(&store.value(), "m").ok());
  }
}

TEST(SnapshotTest, BitFlippedManifestFailsLoad) {
  TempDir dir("snap-flipm");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(WriteState(&store.value(), 20));
  const std::string path = store->root() + "/" + ManifestKeyFor("m");
  const auto size = std::filesystem::file_size(path);
  FlipByteAt(path, static_cast<size_t>(size) / 2);
  EXPECT_FALSE(LoadSnapshot(&store.value(), "m").ok());
}

TEST(SnapshotTest, TruncatedSegmentFailsLoad) {
  TempDir dir("snap-trunc");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(WriteState(&store.value(), 20));
  auto loaded = LoadSnapshot(&store.value(), "m");
  ASSERT_TRUE(loaded.ok());
  const SegmentInfo& seg = loaded->manifest.segments.front();
  std::filesystem::resize_file(store->root() + "/" + seg.key,
                               seg.bytes / 2);
  EXPECT_FALSE(LoadSnapshot(&store.value(), "m").ok());
}

}  // namespace
}  // namespace persist
}  // namespace deepeverest
