// Warm restart from a committed snapshot: a second process over the same
// store must serve its first query from the snapshot's indexes — zero
// dataset inference at startup, first-query cost exactly equal to a warm
// query in the first process, answers bit-identical.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/ingest.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace persist {
namespace {

using testing_util::MakeVectorDataset;
using testing_util::TempDir;

constexpr uint64_t kSeed = 83;
constexpr int kDims = 8;

core::DeepEverestOptions SmallOptions() {
  core::DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.1;
  return options;
}

TEST(WarmRestartTest, FirstQueryRunsNoDatasetInference) {
  TempDir dir("warm");
  auto model = nn::MakeTinyMlp(kDims, kSeed);
  const int layer = model->activation_layers()[0];
  const core::NeuronGroup group{layer, {2, 5}};

  core::TopKResult expected;
  int64_t warm_query_inputs = 0;
  size_t preprocessed_layers = 0;

  // First life: preprocess everything, commit a snapshot, and measure what
  // the first post-preprocess query costs on a warm engine.
  {
    auto store = storage::FileStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    data::Dataset dataset = MakeVectorDataset(30, kDims, kSeed + 1);
    auto engine = core::DeepEverest::Create(model.get(), &dataset,
                                            &store.value(), SmallOptions());
    ASSERT_TRUE(engine.ok());
    DE_ASSERT_OK((*engine)->PreprocessAllLayers());
    preprocessed_layers = (*engine)->index_manager()->LoadedLayers().size();

    auto queue =
        IngestQueue::Create(engine->get(), &dataset, &store.value(), {});
    ASSERT_TRUE(queue.ok()) << queue.status().ToString();
    DE_ASSERT_OK((*queue)->SaveSnapshot());

    auto warm = (*engine)->TopKHighest(group, 5);
    ASSERT_TRUE(warm.ok());
    expected = std::move(warm.value());
    warm_query_inputs = expected.stats.inputs_run;
    EXPECT_LT(warm_query_inputs, 30);  // index-guided, not a full scan
    (*queue)->Shutdown();
  }

  // Remove the legacy per-layer index files so the restart can only be
  // warm through the snapshot tier.
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  auto keys = store->ListKeys();
  ASSERT_TRUE(keys.ok());
  for (const std::string& key : *keys) {
    if (key.rfind("index/", 0) == 0) DE_ASSERT_OK(store->Remove(key));
  }

  // Second life: no preprocessing call anywhere.
  data::Dataset dataset = MakeVectorDataset(30, kDims, kSeed + 1);
  auto engine = core::DeepEverest::Create(model.get(), &dataset,
                                          &store.value(), SmallOptions());
  ASSERT_TRUE(engine.ok());
  auto queue =
      IngestQueue::Create(engine->get(), &dataset, &store.value(), {});
  ASSERT_TRUE(queue.ok()) << queue.status().ToString();
  EXPECT_EQ((*queue)->recovered_layers(), preprocessed_layers);

  // Startup ran zero inference: recovery is deserialization, not compute.
  EXPECT_EQ((*engine)->inference()->stats().inputs_run, 0);

  auto first = (*engine)->TopKHighest(group, 5);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The first query costs exactly what a warm query costs — the full
  // 30-input preprocessing pass never ran.
  EXPECT_EQ(first->stats.inputs_run, warm_query_inputs);
  EXPECT_EQ((*engine)->inference()->stats().inputs_run, warm_query_inputs);

  ASSERT_EQ(first->entries.size(), expected.entries.size());
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(first->entries[i].input_id, expected.entries[i].input_id);
    EXPECT_EQ(first->entries[i].value, expected.entries[i].value);
  }

  (*queue)->Shutdown();
}

}  // namespace
}  // namespace persist
}  // namespace deepeverest
