// Exactly-once incremental ingest: log replay semantics, admission
// control, ingest-while-query bit-equality against a fresh engine over the
// same prefix, and crash recovery (log + snapshot) indexing every input
// exactly once.
#include "persist/ingest.h"

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "persist/ingest_log.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace persist {
namespace {

using testing_util::MakeVectorDataset;
using testing_util::TempDir;

constexpr uint64_t kSeed = 61;
constexpr int kDims = 8;

core::DeepEverestOptions SmallOptions() {
  core::DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.1;
  return options;
}

/// Deterministic post-base inputs: ingesting MakeExtras(n) after the base
/// dataset must equal a fresh dataset holding base + extras.
std::vector<service::IngestInput> MakeExtras(uint32_t count) {
  Rng rng(kSeed + 1000);
  std::vector<service::IngestInput> extras;
  for (uint32_t i = 0; i < count; ++i) {
    service::IngestInput input;
    input.values.resize(kDims);
    for (float& v : input.values) v = static_cast<float>(rng.NextGaussian());
    input.label = static_cast<int>(i % 4);
    extras.push_back(std::move(input));
  }
  return extras;
}

/// The reference: base + the first `extra_count` extras as one dataset.
data::Dataset MakeReferenceDataset(uint32_t base, uint32_t extra_count) {
  data::Dataset dataset = MakeVectorDataset(base, kDims, kSeed + 1);
  for (const service::IngestInput& extra : MakeExtras(extra_count)) {
    dataset.Add(Tensor(Shape({kDims}), extra.values), extra.label);
  }
  return dataset;
}

void ExpectSameEntries(const core::TopKResult& a, const core::TopKResult& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].input_id, b.entries[i].input_id) << "rank " << i;
    EXPECT_EQ(a.entries[i].value, b.entries[i].value) << "rank " << i;
  }
}

TEST(IngestLogTest, ReplayDropsTornTail) {
  TempDir dir("ilog");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IngestLog log(&store.value(), "m");

  for (uint32_t i = 0; i < 3; ++i) {
    IngestRecord record;
    record.input_id = i;
    record.label = static_cast<int>(i);
    record.values = {1.0f * i, 2.0f * i};
    DE_ASSERT_OK(log.Append(record));
  }
  // A crash mid-append leaves a torn frame at the tail.
  DE_ASSERT_OK(store->Append(IngestLog::KeyFor("m"),
                             std::vector<uint8_t>{0xde, 0xad, 0xbe}));

  auto replayed = log.Replay();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*replayed)[i].input_id, i);
    EXPECT_EQ((*replayed)[i].values.size(), 2u);
  }

  // The torn tail must also not poison later appends: recovery truncates
  // logically (replay stops), and the exactly-once contract only covers
  // acknowledged records — all 3 of which survived.
}

TEST(IngestLogTest, ReplayDropsTruncatedLastRecord) {
  TempDir dir("ilog-t");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  IngestLog log(&store.value(), "m");
  for (uint32_t i = 0; i < 2; ++i) {
    IngestRecord record;
    record.input_id = i;
    record.values = {3.0f, 4.0f, 5.0f};
    DE_ASSERT_OK(log.Append(record));
  }
  const std::string path = store->root() + "/" + IngestLog::KeyFor("m");
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  auto replayed = log.Replay();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 1u);
  EXPECT_EQ((*replayed)[0].input_id, 0u);
}

TEST(IngestQueueTest, RejectsWhenBatchExceedsBacklogBound) {
  TempDir dir("iq-backlog");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  data::Dataset dataset = MakeVectorDataset(10, kDims, kSeed + 1);
  auto model = nn::MakeTinyMlp(kDims, kSeed);
  auto engine = core::DeepEverest::Create(model.get(), &dataset,
                                          &store.value(), SmallOptions());
  ASSERT_TRUE(engine.ok());

  IngestQueueOptions options;
  options.max_backlog = 2;
  auto queue = IngestQueue::Create(engine->get(), &dataset, &store.value(),
                                   options);
  ASSERT_TRUE(queue.ok()) << queue.status().ToString();

  auto ack = (*queue)->Ingest(MakeExtras(3));  // 3 > max_backlog
  EXPECT_EQ(ack.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*queue)->Stats().rejected_total, 1);

  // Shape validation happens before anything becomes durable.
  std::vector<service::IngestInput> bad(1);
  bad[0].values = {1.0f};
  EXPECT_EQ((*queue)->Ingest(bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*queue)->Stats().dataset_size, 10u);
}

TEST(IngestQueueTest, IngestWhileQueryingIsBitIdenticalToFreshScan) {
  TempDir dir("iq-live");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  data::Dataset dataset = MakeVectorDataset(40, kDims, kSeed + 1);
  auto model = nn::MakeTinyMlp(kDims, kSeed);
  auto engine = core::DeepEverest::Create(model.get(), &dataset,
                                          &store.value(), SmallOptions());
  ASSERT_TRUE(engine.ok());

  const int layer = model->activation_layers()[0];
  const core::NeuronGroup group{layer, {0, 3, 6}};

  // Build the index at 40 and pin a baseline answer.
  auto at40 = (*engine)->TopKHighest(group, 5);
  ASSERT_TRUE(at40.ok()) << at40.status().ToString();
  EXPECT_EQ(at40->stats.dataset_version, 40);

  auto queue =
      IngestQueue::Create(engine->get(), &dataset, &store.value(), {});
  ASSERT_TRUE(queue.ok()) << queue.status().ToString();

  // Ingest in small batches with queries interleaved: every answer must be
  // consistent with the dataset version it reports.
  const std::vector<service::IngestInput> extras = MakeExtras(12);
  for (size_t start = 0; start < extras.size(); start += 4) {
    const std::vector<service::IngestInput> batch(
        extras.begin() + static_cast<ptrdiff_t>(start),
        extras.begin() + static_cast<ptrdiff_t>(start + 4));
    auto ack = (*queue)->Ingest(batch);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_EQ(ack->first_id, 40u + start);
    auto during = (*engine)->TopKHighest(group, 5);
    ASSERT_TRUE(during.ok()) << during.status().ToString();
    EXPECT_GE(during->stats.dataset_version, 40);
    EXPECT_LE(during->stats.dataset_version, static_cast<int64_t>(52));
  }
  ASSERT_TRUE((*queue)->WaitIdle(30.0));

  const service::IngestStats stats = (*queue)->Stats();
  EXPECT_EQ(stats.dataset_size, 52u);
  EXPECT_EQ(stats.ingested_total, 12);
  EXPECT_EQ(stats.min_watermark, 52u);

  auto at52 = (*engine)->TopKHighest(group, 5);
  ASSERT_TRUE(at52.ok());
  EXPECT_EQ(at52->stats.dataset_version, 52);

  // The merged index must answer exactly like a fresh engine built over
  // the same 52 inputs from scratch.
  TempDir fresh_dir("iq-fresh");
  auto fresh_store = storage::FileStore::Open(fresh_dir.path());
  ASSERT_TRUE(fresh_store.ok());
  data::Dataset fresh_dataset = MakeReferenceDataset(40, 12);
  auto fresh_engine = core::DeepEverest::Create(
      model.get(), &fresh_dataset, &fresh_store.value(), SmallOptions());
  ASSERT_TRUE(fresh_engine.ok());
  auto fresh = (*fresh_engine)->TopKHighest(group, 5);
  ASSERT_TRUE(fresh.ok());
  ExpectSameEntries(*fresh, *at52);

  // Most-similar queries take the same guarantee.
  auto similar = (*engine)->TopKMostSimilar(45, group, 4);
  auto fresh_similar = (*fresh_engine)->TopKMostSimilar(45, group, 4);
  ASSERT_TRUE(similar.ok());
  ASSERT_TRUE(fresh_similar.ok());
  ExpectSameEntries(*fresh_similar, *similar);

  (*queue)->Shutdown();
}

TEST(IngestQueueTest, RecoversFromLogAndSnapshotExactlyOnce) {
  TempDir dir("iq-recover");
  auto model = nn::MakeTinyMlp(kDims, kSeed);
  const int layer = model->activation_layers()[1];
  const core::NeuronGroup group{layer, {1, 4, 7}};

  // First life: build, ingest 8, snapshot, ingest 5 more, then "crash"
  // (drop everything without a final snapshot — the last 5 live only in
  // the ingest log + the snapshot covers only the first 8).
  {
    auto store = storage::FileStore::Open(dir.path());
    ASSERT_TRUE(store.ok());
    data::Dataset dataset = MakeVectorDataset(30, kDims, kSeed + 1);
    auto engine = core::DeepEverest::Create(model.get(), &dataset,
                                            &store.value(), SmallOptions());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->TopKHighest(group, 5).ok());  // builds the index

    auto queue =
        IngestQueue::Create(engine->get(), &dataset, &store.value(), {});
    ASSERT_TRUE(queue.ok()) << queue.status().ToString();
    const std::vector<service::IngestInput> extras = MakeExtras(13);
    ASSERT_TRUE(
        (*queue)
            ->Ingest({extras.begin(), extras.begin() + 8})
            .ok());
    ASSERT_TRUE((*queue)->WaitIdle(30.0));
    DE_ASSERT_OK((*queue)->SaveSnapshot());
    ASSERT_TRUE(
        (*queue)->Ingest({extras.begin() + 8, extras.end()}).ok());
    ASSERT_TRUE((*queue)->WaitIdle(30.0));
    (*queue)->Shutdown();
  }

  // Second life over the same store: replay + snapshot install + catch-up.
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  data::Dataset dataset = MakeVectorDataset(30, kDims, kSeed + 1);
  auto engine = core::DeepEverest::Create(model.get(), &dataset,
                                          &store.value(), SmallOptions());
  ASSERT_TRUE(engine.ok());
  auto queue =
      IngestQueue::Create(engine->get(), &dataset, &store.value(), {});
  ASSERT_TRUE(queue.ok()) << queue.status().ToString();
  EXPECT_EQ((*queue)->recovered_inputs(), 13u);
  EXPECT_EQ((*queue)->recovered_layers(), 1u);
  ASSERT_TRUE((*queue)->WaitIdle(30.0));

  const service::IngestStats stats = (*queue)->Stats();
  EXPECT_EQ(stats.dataset_size, 43u);
  // Exactly-once: the watermark reaches 43 with no input double-merged —
  // a double apply would leave the index claiming more inputs than the
  // dataset holds, and the query below would fail validation.
  EXPECT_EQ(stats.min_watermark, 43u);

  auto recovered = (*engine)->TopKHighest(group, 6);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->stats.dataset_version, 43);

  TempDir fresh_dir("iq-recover-fresh");
  auto fresh_store = storage::FileStore::Open(fresh_dir.path());
  ASSERT_TRUE(fresh_store.ok());
  data::Dataset fresh_dataset = MakeReferenceDataset(30, 13);
  auto fresh_engine = core::DeepEverest::Create(
      model.get(), &fresh_dataset, &fresh_store.value(), SmallOptions());
  ASSERT_TRUE(fresh_engine.ok());
  auto fresh = (*fresh_engine)->TopKHighest(group, 6);
  ASSERT_TRUE(fresh.ok());
  ExpectSameEntries(*fresh, *recovered);

  (*queue)->Shutdown();
}

}  // namespace
}  // namespace persist
}  // namespace deepeverest
