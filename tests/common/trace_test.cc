// Trace primitives: implicit LIFO parenting, typed attrs, the bounded-span
// cap with drop counting, Finish/EndSpan idempotence, null-trace SpanScope
// no-ops, and the TraceRing's newest-wins eviction.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace deepeverest {
namespace {

TEST(TraceTest, NextIdIsUniqueAndIncreasing) {
  const uint64_t a = Trace::NextId();
  const uint64_t b = Trace::NextId();
  EXPECT_LT(a, b);
}

TEST(TraceTest, SpansNestToInnermostOpenSpan) {
  Trace trace(1);
  const int root = trace.StartSpan("query");
  const int child = trace.StartSpan("execute");
  const int grandchild = trace.StartSpan("nta.round");
  trace.EndSpan(grandchild);
  const int sibling = trace.StartSpan("serialize");
  trace.EndSpan(sibling);
  trace.EndSpan(child);
  trace.EndSpan(root);

  const Trace::Data data = trace.Snapshot();
  ASSERT_EQ(data.spans.size(), 4u);
  EXPECT_FALSE(data.has_open_spans);
  EXPECT_EQ(data.spans[0].name, "query");
  EXPECT_EQ(data.spans[0].parent, -1);
  EXPECT_EQ(data.spans[1].name, "execute");
  EXPECT_EQ(data.spans[1].parent, root);
  EXPECT_EQ(data.spans[2].name, "nta.round");
  EXPECT_EQ(data.spans[2].parent, child);
  // The sibling opened after the grandchild closed, so it parents to the
  // still-open child, not the closed grandchild.
  EXPECT_EQ(data.spans[3].name, "serialize");
  EXPECT_EQ(data.spans[3].parent, child);
  for (const TraceSpan& span : data.spans) {
    EXPECT_GE(span.duration_nanos, 0);
    EXPECT_GE(span.start_nanos, 0);
  }
}

TEST(TraceTest, ChildDurationsNestWithinParent) {
  Trace trace(2);
  const int root = trace.StartSpan("query");
  const int child = trace.StartSpan("execute");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.EndSpan(child);
  trace.EndSpan(root);

  const Trace::Data data = trace.Snapshot();
  ASSERT_EQ(data.spans.size(), 2u);
  EXPECT_GE(data.spans[1].start_nanos, data.spans[0].start_nanos);
  EXPECT_LE(data.spans[1].start_nanos + data.spans[1].duration_nanos,
            data.spans[0].start_nanos + data.spans[0].duration_nanos);
  EXPECT_GE(data.spans[1].duration_nanos, 1'000'000);  // slept 2ms
}

TEST(TraceTest, TypedAttrsRoundTrip) {
  Trace trace(3);
  const int span = trace.StartSpan("nta.round");
  trace.AddInt(span, "inputs_run", 42);
  trace.AddDouble(span, "threshold", 0.625);
  trace.EndSpan(span);

  const Trace::Data data = trace.Snapshot();
  ASSERT_EQ(data.spans[0].attrs.size(), 2u);
  EXPECT_EQ(data.spans[0].attrs[0].key, "inputs_run");
  EXPECT_TRUE(data.spans[0].attrs[0].is_int);
  EXPECT_EQ(data.spans[0].attrs[0].int_value, 42);
  EXPECT_EQ(data.spans[0].attrs[1].key, "threshold");
  EXPECT_FALSE(data.spans[0].attrs[1].is_int);
  EXPECT_EQ(data.spans[0].attrs[1].double_value, 0.625);
}

TEST(TraceTest, SpanCapDropsAndCounts) {
  Trace trace(4, /*max_spans=*/2);
  const int a = trace.StartSpan("a");
  const int b = trace.StartSpan("b");
  const int dropped = trace.StartSpan("c");
  EXPECT_EQ(dropped, -1);
  // Operations on the dropped index are safe no-ops.
  trace.AddInt(dropped, "x", 1);
  trace.EndSpan(dropped);
  trace.EndSpan(b);
  trace.EndSpan(a);

  const Trace::Data data = trace.Snapshot();
  EXPECT_EQ(data.spans.size(), 2u);
  EXPECT_EQ(data.dropped_spans, 1);
}

TEST(TraceTest, SnapshotReportsProvisionalDurationForOpenSpans) {
  Trace trace(5);
  trace.StartSpan("query");
  const Trace::Data data = trace.Snapshot();
  EXPECT_TRUE(data.has_open_spans);
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_GE(data.spans[0].duration_nanos, 0);
}

TEST(TraceTest, FinishClosesEverythingAndIsIdempotent) {
  Trace trace(6);
  trace.StartSpan("query");
  trace.StartSpan("execute");
  trace.Finish();
  trace.Finish();
  const Trace::Data data = trace.Snapshot();
  EXPECT_FALSE(data.has_open_spans);
  for (const TraceSpan& span : data.spans) {
    EXPECT_GE(span.duration_nanos, 0);
  }
  // A later StartSpan parents to the (now empty) root level again.
  const int late = trace.StartSpan("late");
  EXPECT_EQ(trace.Snapshot().spans[static_cast<size_t>(late)].parent, -1);
}

TEST(TraceTest, EndSpanIsIdempotent) {
  Trace trace(7);
  const int span = trace.StartSpan("query");
  trace.EndSpan(span);
  const int64_t duration = trace.Snapshot().spans[0].duration_nanos;
  trace.EndSpan(span);  // must not reset or re-close
  EXPECT_EQ(trace.Snapshot().spans[0].duration_nanos, duration);
}

TEST(TraceTest, NullTraceSpanScopeIsANoOp) {
  SpanScope scope(nullptr, "anything");
  scope.AddInt("k", 1);
  scope.AddDouble("d", 2.0);
  EXPECT_EQ(scope.index(), -1);
}

TEST(TraceTest, SpanScopeClosesOnDestruction) {
  Trace trace(8);
  {
    SpanScope scope(&trace, "query");
    EXPECT_EQ(scope.index(), 0);
    scope.AddInt("session", 9);
  }
  const Trace::Data data = trace.Snapshot();
  EXPECT_FALSE(data.has_open_spans);
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].attrs[0].int_value, 9);
}

TEST(TraceRingTest, FindsRecentAndEvictsOldest) {
  TraceRing ring(2);
  auto a = std::make_shared<Trace>(100);
  auto b = std::make_shared<Trace>(101);
  auto c = std::make_shared<Trace>(102);
  ring.Push(a);
  ring.Push(b);
  EXPECT_EQ(ring.Find(100), a);
  EXPECT_EQ(ring.Find(101), b);
  ring.Push(c);  // wraps: evicts the oldest (a)
  EXPECT_EQ(ring.Find(100), nullptr);
  EXPECT_EQ(ring.Find(101), b);
  EXPECT_EQ(ring.Find(102), c);
}

TEST(TraceRingTest, ZeroCapacityKeepsNothing) {
  TraceRing ring(0);
  ring.Push(std::make_shared<Trace>(200));
  EXPECT_EQ(ring.Find(200), nullptr);
}

}  // namespace
}  // namespace deepeverest
