// Tests for the annotated mutex/condvar wrappers (common/mutex.h): mutual
// exclusion, try-lock semantics, reader/writer sharing, timed waits, and
// predicate wakes. The threaded cases double as TSan targets — the wrappers
// are what every lock in src/ goes through, so a bug here is a bug
// everywhere.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace deepeverest {
namespace common {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::thread contender([&] {
    const bool acquired = mu.TryLock();
    if (acquired) mu.Unlock();
    EXPECT_FALSE(acquired);
  });
  contender.join();
  mu.Unlock();

  // Uncontended, TryLock must succeed.
  const bool acquired = mu.TryLock();
  EXPECT_TRUE(acquired);
  if (acquired) mu.Unlock();
}

TEST(CondVarTest, TimedWaitTimesOutWithoutNotification) {
  Mutex mu;
  CondVar cv;
  mu.Lock();
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(10)));
  EXPECT_FALSE(cv.WaitUntil(&mu, std::chrono::steady_clock::now() +
                                     std::chrono::milliseconds(10)));
  mu.Unlock();
}

TEST(CondVarTest, ExplicitLoopWakesOnGuardedFlag) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // protected by mu
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    // The explicit-loop idiom src/ uses for guarded predicates.
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, PredicateOverloadWakesOnUnguardedFlag) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> go{false};
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    go.store(true, std::memory_order_release);
    MutexLock lock(&mu);  // pair the notify with the waiter's mutex
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    cv.Wait(&mu, [&] { return go.load(std::memory_order_acquire); });
  }
  EXPECT_TRUE(go.load());
  producer.join();
}

TEST(CondVarTest, PredicateTimedWaitReportsPredicateValue) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> never{false};
  {
    MutexLock lock(&mu);
    EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(10),
                            [&] { return never.load(); }));
  }
  std::atomic<bool> already{true};
  {
    MutexLock lock(&mu);
    EXPECT_TRUE(cv.WaitFor(&mu, std::chrono::milliseconds(10),
                           [&] { return already.load(); }));
  }
}

TEST(SharedMutexTest, ReadersOverlapWritersExclude) {
  SharedMutex mu;
  int value = 0;  // protected by mu
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers_inside{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        {
          ReaderMutexLock lock(&mu);
          const int inside = readers_inside.fetch_add(1) + 1;
          int seen = max_readers_inside.load();
          while (inside > seen &&
                 !max_readers_inside.compare_exchange_weak(seen, inside)) {
          }
          EXPECT_GE(value, 0);
          readers_inside.fetch_sub(1);
        }
        // Pause OFF the lock: continuously-held read locks starve writers
        // on reader-preferring rwlock implementations (glibc), and this
        // test must terminate, not demonstrate that.
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    });
  }

  constexpr int kWriters = 2;
  constexpr int kWrites = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        WriterMutexLock lock(&mu);
        // No reader may be inside while a writer holds the lock.
        EXPECT_EQ(readers_inside.load(), 0);
        ++value;
      }
    });
  }
  for (std::thread& thread : writers) thread.join();
  for (std::thread& thread : readers) thread.join();

  WriterMutexLock lock(&mu);
  EXPECT_EQ(value, kWriters * kWrites);
  EXPECT_GE(max_readers_inside.load(), 1);
}

TEST(SharedMutexTest, TryLockRespectsHolders) {
  SharedMutex mu;
  mu.LockShared();
  std::thread contender([&] {
    // A reader blocks writers but admits more readers.
    const bool exclusive = mu.TryLock();
    if (exclusive) mu.Unlock();
    EXPECT_FALSE(exclusive);
    // try_lock_shared may fail spuriously per the standard, so only a
    // success is asserted on (by releasing what was taken).
    if (mu.TryLockShared()) mu.UnlockShared();
  });
  contender.join();
  mu.UnlockShared();
}

}  // namespace
}  // namespace common
}  // namespace deepeverest
