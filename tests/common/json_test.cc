// Tests for the hand-rolled JSON writer/reader: round-tripping (including
// bit-exact doubles — the property the network bit-equality checks rest
// on), escaping, and rejection of malformed documents.
#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace deepeverest {
namespace {

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("top-k");
  w.Key("k");
  w.Int(20);
  w.Key("ok");
  w.Bool(true);
  w.Key("none");
  w.Null();
  w.Key("entries");
  w.BeginArray();
  w.BeginObject();
  w.Key("id");
  w.Int(1);
  w.EndObject();
  w.Int(-3);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"name":"top-k","k":20,"ok":true,"none":null,)"
            R"("entries":[{"id":1},-3]})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\nd\te\x01");
  EXPECT_EQ(w.str(), R"("a\"b\\c\nd\te\u0001")");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.Key("b");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":[],"b":{}})");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("42")->int_value(), 42);
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e3")->number_value(), -2500.0);
  EXPECT_EQ(ParseJson(R"("hi")")->string_value(), "hi");
}

TEST(JsonParseTest, ParsesNestedDocument) {
  auto parsed = ParseJson(
      R"({"entries":[{"input_id":3,"value":1.25}],"stats":{"rounds":2}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* entries = parsed->Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->array_items().size(), 1u);
  EXPECT_EQ(entries->array_items()[0].Find("input_id")->int_value(), 3);
  EXPECT_DOUBLE_EQ(entries->array_items()[0].Find("value")->number_value(),
                   1.25);
  EXPECT_EQ(parsed->Find("stats")->Find("rounds")->int_value(), 2);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto parsed = ParseJson(R"("a\"b\\c\/d\nAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "a\"b\\c/d\nA\xc3\xa9");
}

TEST(JsonParseTest, SurrogatePairs) {
  auto parsed = ParseJson(R"("😀")");  // 😀 U+1F600
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "\xf0\x9f\x98\x80");
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());    // unpaired high
  EXPECT_FALSE(ParseJson(R"("\ude00")").ok());    // unpaired low
  EXPECT_FALSE(ParseJson(R"("\ud83dxx")").ok());  // high w/o \u
}

TEST(JsonParseTest, RejectsMalformed) {
  const char* bad[] = {
      "",        "{",          "}",        "[1,",    "[1,]",
      "{\"a\"}", "{\"a\":}",   "{a:1}",    "tru",    "nul",
      "01",      "+1",         ".5",       "1.",     "1e",
      "\"\x01\"", "\"unterminated", "[1] garbage", "{\"a\":1,}",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonRoundTripTest, DoublesAreBitExact) {
  const double values[] = {0.0,
                           1.0,
                           -1.0 / 3.0,
                           3.14159265358979323846,
                           1e-300,
                           -1.7976931348623157e308,
                           5.0,
                           0.1,
                           123456789.123456789};
  for (const double value : values) {
    JsonWriter w;
    w.Double(value);
    auto parsed = ParseJson(w.str());
    ASSERT_TRUE(parsed.ok()) << w.str();
    // Bit-exact, not approximately equal: %.17g + strtod round-trips.
    EXPECT_EQ(parsed->number_value(), value) << w.str();
  }
}

TEST(JsonValueTest, IntValueSaturatesInsteadOfOverflowing) {
  // A plain static_cast of these would be UB; int_value() must saturate.
  EXPECT_EQ(ParseJson("1e300")->int_value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseJson("-1e300")->int_value(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(ParseJson("1e20")->int_value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseJson("2.75")->int_value(), 2);  // truncation toward zero
  EXPECT_EQ(ParseJson("-2.75")->int_value(), -2);
}

TEST(JsonRoundTripTest, StringsSurvive) {
  const std::string ugly = "quote\" back\\slash \n\t\r ctrl\x02 utf8 \xc3\xa9";
  JsonWriter w;
  w.String(ugly);
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), ugly);
}

}  // namespace
}  // namespace deepeverest
