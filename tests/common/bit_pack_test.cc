#include "common/bit_pack.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace deepeverest {
namespace {

TEST(BitsForTest, MinimalWidths) {
  EXPECT_EQ(PackedIntArray::BitsFor(1), 1);
  EXPECT_EQ(PackedIntArray::BitsFor(2), 1);
  EXPECT_EQ(PackedIntArray::BitsFor(3), 2);
  EXPECT_EQ(PackedIntArray::BitsFor(4), 2);
  EXPECT_EQ(PackedIntArray::BitsFor(5), 3);
  EXPECT_EQ(PackedIntArray::BitsFor(8), 3);
  EXPECT_EQ(PackedIntArray::BitsFor(9), 4);
  EXPECT_EQ(PackedIntArray::BitsFor(256), 8);
  EXPECT_EQ(PackedIntArray::BitsFor(257), 9);
}

TEST(PackedIntArrayTest, ZeroInitialized) {
  PackedIntArray arr(100, 5);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(arr.Get(i), 0u);
  }
}

TEST(PackedIntArrayTest, SetGetRoundTrip) {
  PackedIntArray arr(64, 3);
  for (size_t i = 0; i < 64; ++i) {
    arr.Set(i, i % 8);
  }
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(arr.Get(i), i % 8) << "index " << i;
  }
}

TEST(PackedIntArrayTest, ValuesSpanningWordBoundaries) {
  // 7-bit values: indices 9 (bits 63..69) and 18 (bits 126..132) straddle
  // word boundaries.
  PackedIntArray arr(30, 7);
  for (size_t i = 0; i < 30; ++i) {
    arr.Set(i, (i * 31) % 128);
  }
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(arr.Get(i), (i * 31) % 128) << "index " << i;
  }
}

TEST(PackedIntArrayTest, OverwriteDoesNotCorruptNeighbours) {
  PackedIntArray arr(10, 6);
  for (size_t i = 0; i < 10; ++i) arr.Set(i, 63);
  arr.Set(5, 0);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(arr.Get(i), i == 5 ? 0u : 63u);
  }
}

TEST(PackedIntArrayTest, FullWidth64) {
  PackedIntArray arr(5, 64);
  arr.Set(0, ~0ull);
  arr.Set(4, 0x0123456789ABCDEFull);
  EXPECT_EQ(arr.Get(0), ~0ull);
  EXPECT_EQ(arr.Get(4), 0x0123456789ABCDEFull);
}

TEST(PackedIntArrayTest, SizeBytesMatchesFormula) {
  // 1000 values * 6 bits = 6000 bits = 94 words of 64 bits.
  PackedIntArray arr(1000, 6);
  EXPECT_EQ(arr.SizeBytes(), ((1000 * 6 + 63) / 64) * 8u);
}

TEST(PackedIntArrayTest, RandomizedRoundTripAllWidths) {
  Rng rng(42);
  for (int bits = 1; bits <= 17; ++bits) {
    const size_t n = 257;
    PackedIntArray arr(n, bits);
    std::vector<uint64_t> expected(n);
    const uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
    for (size_t i = 0; i < n; ++i) {
      expected[i] = rng.NextUint64() & mask;
      arr.Set(i, expected[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(arr.Get(i), expected[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

// GetMany must agree with per-element Get at every width/offset, including
// values straddling 64-bit word boundaries (7 and 33 bits) and the SIMD
// widths that divide a word (1 bit, 64 bits uses whole words).
TEST(PackedIntArrayTest, GetManyMatchesGetAcrossWordBoundaries) {
  Rng rng(7);
  for (int bits : {1, 7, 33, 64}) {
    const size_t n = 301;
    PackedIntArray arr(n, bits);
    const uint64_t mask = bits >= 64 ? ~0ull : (1ull << bits) - 1;
    for (size_t i = 0; i < n; ++i) arr.Set(i, rng.NextUint64() & mask);

    // Whole-array unpack.
    std::vector<uint64_t> out(n, ~0ull);
    arr.GetMany(0, n, out.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], arr.Get(i)) << "bits=" << bits << " i=" << i;
    }

    // Unaligned sub-ranges: every (begin, count) near word boundaries.
    for (size_t begin : {size_t{0}, size_t{1}, size_t{9}, size_t{63},
                         size_t{64}, size_t{65}, size_t{200}}) {
      for (size_t count : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                           size_t{101}}) {
        if (begin + count > n) continue;
        std::vector<uint64_t> part(count, ~0ull);
        arr.GetMany(begin, count, part.data());
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(part[i], arr.Get(begin + i))
              << "bits=" << bits << " begin=" << begin << " count=" << count
              << " i=" << i;
        }
      }
    }
  }
}

TEST(PackedIntArrayTest, SerializationViaWords) {
  PackedIntArray arr(50, 9);
  for (size_t i = 0; i < 50; ++i) arr.Set(i, (i * 7) % 512);

  PackedIntArray restored;
  *restored.mutable_words() = arr.words();
  restored.RestoreGeometry(50, 9);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(restored.Get(i), (i * 7) % 512);
  }
}

}  // namespace
}  // namespace deepeverest
