#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace deepeverest {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // same multiset
  EXPECT_NE(v, orig);       // astronomically unlikely to be identity
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (size_t count : {size_t{1}, size_t{5}, size_t{50}, size_t{100}}) {
    const std::vector<size_t> sample =
        rng.SampleWithoutReplacement(100, count);
    EXPECT_EQ(sample.size(), count);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(23);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace deepeverest
