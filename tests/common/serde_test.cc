#include "common/serde.h"

#include <gtest/gtest.h>

namespace deepeverest {
namespace {

TEST(SerdeTest, PrimitiveRoundTrip) {
  BinaryWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteI64(-1234567890123ll);
  writer.WriteF32(3.5f);
  writer.WriteF64(-2.25);

  BinaryReader reader(writer.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  float f32;
  double f64;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadF32(&f32).ok());
  ASSERT_TRUE(reader.ReadF64(&f64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f32, 3.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerdeTest, StringAndVectors) {
  BinaryWriter writer;
  writer.WriteString("deepeverest");
  writer.WriteF32Vector({1.0f, -2.0f, 0.5f});
  writer.WriteU32Vector({7, 8, 9});
  writer.WriteU64Vector({});

  BinaryReader reader(writer.buffer());
  std::string s;
  std::vector<float> f;
  std::vector<uint32_t> u32s;
  std::vector<uint64_t> u64s;
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadF32Vector(&f).ok());
  ASSERT_TRUE(reader.ReadU32Vector(&u32s).ok());
  ASSERT_TRUE(reader.ReadU64Vector(&u64s).ok());
  EXPECT_EQ(s, "deepeverest");
  EXPECT_EQ(f, (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_EQ(u32s, (std::vector<uint32_t>{7, 8, 9}));
  EXPECT_TRUE(u64s.empty());
}

TEST(SerdeTest, TruncatedBufferIsIOError) {
  BinaryWriter writer;
  writer.WriteU64(1);
  BinaryReader reader(writer.buffer().data(), 4);  // only half the u64
  uint64_t v;
  EXPECT_TRUE(reader.ReadU64(&v).IsIOError());
}

TEST(SerdeTest, CorruptLengthPrefixIsIOError) {
  // A length prefix claiming more elements than the buffer can hold must be
  // rejected rather than causing a huge allocation.
  BinaryWriter writer;
  writer.WriteU64(1ull << 40);  // bogus element count
  writer.WriteU32(0);
  BinaryReader reader(writer.buffer());
  std::vector<float> f;
  EXPECT_TRUE(reader.ReadF32Vector(&f).IsIOError());
}

TEST(SerdeTest, EmptyBufferAtEnd) {
  BinaryReader reader(nullptr, 0);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(reader.remaining(), 0u);
  uint8_t v;
  EXPECT_TRUE(reader.ReadU8(&v).IsIOError());
}

}  // namespace
}  // namespace deepeverest
