// Compile-time smoke for common/thread_annotations.h. The annotations are
// only meaningful to clang; this test pins the other half of the contract:
// on every non-clang compiler each macro must expand to *nothing*, so the
// GCC -Werror matrix leg never sees an unknown attribute. Checked by
// stringizing after expansion — an empty expansion stringizes to "".
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

namespace {

#if !defined(__clang__)
#define DE_TEST_STRINGIZE_INNER(...) #__VA_ARGS__
#define DE_TEST_STRINGIZE(...) DE_TEST_STRINGIZE_INNER(__VA_ARGS__)
static_assert(sizeof(DE_TEST_STRINGIZE(CAPABILITY("mutex"))) == 1,
              "CAPABILITY must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(SCOPED_CAPABILITY)) == 1,
              "SCOPED_CAPABILITY must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(GUARDED_BY(mu_))) == 1,
              "GUARDED_BY must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(PT_GUARDED_BY(mu_))) == 1,
              "PT_GUARDED_BY must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(REQUIRES(a_, b_))) == 1,
              "REQUIRES must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(REQUIRES_SHARED(mu_))) == 1,
              "REQUIRES_SHARED must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(ACQUIRE())) == 1,
              "ACQUIRE must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(RELEASE())) == 1,
              "RELEASE must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(TRY_ACQUIRE(true))) == 1,
              "TRY_ACQUIRE must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(EXCLUDES(mu_))) == 1,
              "EXCLUDES must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(RETURN_CAPABILITY(mu_))) == 1,
              "RETURN_CAPABILITY must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(ASSERT_CAPABILITY(mu_))) == 1,
              "ASSERT_CAPABILITY must be a no-op off clang");
static_assert(sizeof(DE_TEST_STRINGIZE(NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "NO_THREAD_SAFETY_ANALYSIS must be a no-op off clang");
#undef DE_TEST_STRINGIZE
#undef DE_TEST_STRINGIZE_INNER
#endif  // !defined(__clang__)

// A fully annotated toy type must compile — and behave — identically on
// every compiler (on clang the annotations are additionally checked).
class CAPABILITY("mutex") FakeMutex {
 public:
  void Lock() ACQUIRE() {}
  void Unlock() RELEASE() {}
  bool TryLock() TRY_ACQUIRE(true) { return true; }
};

class Annotated {
 public:
  int Increment() {
    fake_mu_.Lock();
    const int value = ++guarded_;
    fake_mu_.Unlock();
    return value;
  }

 private:
  FakeMutex fake_mu_;
  int guarded_ GUARDED_BY(fake_mu_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedTypeCompilesAndRunsEverywhere) {
  Annotated annotated;
  EXPECT_EQ(annotated.Increment(), 1);
  EXPECT_EQ(annotated.Increment(), 2);
}

}  // namespace
