#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace deepeverest {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, PredicatesAreExclusive) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsIOError());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = []() -> Status {
    DE_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);

  auto succeeds = []() -> Status {
    DE_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("fell through");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("io");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    DE_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsIOError());
}

TEST(ResultTest, MoveOnlyTypes) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(9);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

}  // namespace
}  // namespace deepeverest
