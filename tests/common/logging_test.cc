// Logging runtime: pluggable sink capture, min-level filtering (including
// that filtered statements never format their operands), level
// configuration, and macro hygiene inside unbraced if/else.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace deepeverest {
namespace {

using internal_logging::LogEnabled;
using internal_logging::LogLevel;
using internal_logging::MinLogLevel;
using internal_logging::SetLogSink;
using internal_logging::SetMinLogLevel;

struct CapturedLine {
  LogLevel level;
  std::string file;
  int line;
  std::string message;
};

/// Installs a capturing sink for the test's lifetime; restores the default
/// sink and level afterwards so later tests (and other suites in this
/// binary) see stock behaviour.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = MinLogLevel();
    SetMinLogLevel(LogLevel::kInfo);
    SetLogSink([this](LogLevel level, const char* file, int line,
                      const std::string& message) {
      lines_.push_back({level, file, line, message});
    });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetMinLogLevel(previous_level_);
  }

  std::vector<CapturedLine> lines_;
  LogLevel previous_level_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, SinkReceivesFormattedMessageAndLocation) {
  DE_LOG_INFO << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].level, LogLevel::kInfo);
  EXPECT_EQ(lines_[0].message, "hello 42");
  EXPECT_NE(lines_[0].file.find("logging_test.cc"), std::string::npos);
  EXPECT_GT(lines_[0].line, 0);
}

TEST_F(LoggingTest, MinLevelFiltersLowerLevels) {
  SetMinLogLevel(LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kWarning));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  DE_LOG_INFO << "filtered";
  DE_LOG_WARNING << "filtered";
  DE_LOG_ERROR << "kept";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].level, LogLevel::kError);
  EXPECT_EQ(lines_[0].message, "kept");
}

TEST_F(LoggingTest, FatalIsNeverFiltered) {
  SetMinLogLevel(LogLevel::kFatal);
  EXPECT_TRUE(LogEnabled(LogLevel::kFatal));
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
}

TEST_F(LoggingTest, FilteredStatementsDoNotEvaluateOperands) {
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "formatted";
  };
  DE_LOG_INFO << expensive();
  EXPECT_EQ(evaluations, 0);
  DE_LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MacroIsSafeInUnbracedIfElse) {
  // A macro expanding to a bare `if` would bind this else to the wrong
  // branch (or not compile); the statement below must log exactly once.
  const bool flag = true;
  if (flag)
    DE_LOG_INFO << "then";
  else
    DE_LOG_INFO << "else";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].message, "then");
}

TEST_F(LoggingTest, SetMinLogLevelRoundTrips) {
  SetMinLogLevel(LogLevel::kWarning);
  EXPECT_EQ(MinLogLevel(), LogLevel::kWarning);
  SetMinLogLevel(LogLevel::kInfo);
  EXPECT_EQ(MinLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace deepeverest
