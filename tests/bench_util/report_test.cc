#include "bench_util/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace deepeverest {
namespace bench_util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // Every line has equal width.
  std::istringstream lines(text);
  std::string line, first;
  std::getline(lines, first);
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.size(), first.size());
  }
  EXPECT_NE(text.find("long-name"), std::string::npos);
}

TEST(FormatSecondsTest, UnitSelection) {
  EXPECT_EQ(FormatSeconds(2.5), "2.500 s");
  EXPECT_EQ(FormatSeconds(0.0235), "23.50 ms");
  EXPECT_EQ(FormatSeconds(12e-6), "12 us");
}

TEST(FormatBytesTest, UnitSelection) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.05 KB");
  EXPECT_EQ(FormatBytes(37800000000ull), "37.80 GB");
  EXPECT_EQ(FormatBytes(1350000000000ull), "1.35 TB");
}

TEST(FormatMiscTest, DoubleAndSpeedup) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatSpeedup(63.5), "63.50x");
}

TEST(BannerTest, PrintsTitleAndSubtitle) {
  std::ostringstream out;
  PrintBanner(out, "Title", "Sub");
  EXPECT_NE(out.str().find("=== Title ==="), std::string::npos);
  EXPECT_NE(out.str().find("Sub"), std::string::npos);
}

}  // namespace
}  // namespace bench_util
}  // namespace deepeverest
