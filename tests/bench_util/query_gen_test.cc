#include "bench_util/query_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace deepeverest {
namespace bench_util {
namespace {

using testing_util::TinySystem;

TEST(PickLayerTest, EarlyMidLateAreDistinctActivationLayers) {
  TinySystem sys(10, 81, 8);
  const int early = PickLayer(*sys.model, LayerDepth::kEarly);
  const int mid = PickLayer(*sys.model, LayerDepth::kMid);
  const int late = PickLayer(*sys.model, LayerDepth::kLate);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, late);
  const auto& layers = sys.model->activation_layers();
  for (int layer : {early, mid, late}) {
    EXPECT_NE(std::find(layers.begin(), layers.end(), layer), layers.end());
  }
}

TEST(MakeNeuronGroupTest, TopPicksMaximallyActivated) {
  TinySystem sys(20, 82, 8);
  const int layer = sys.model->activation_layers()[0];
  Rng rng(1);
  auto group = MakeNeuronGroup(sys.engine.get(), 3, layer, GroupKind::kTop, 4,
                               &rng);
  ASSERT_TRUE(group.ok());
  ASSERT_EQ(group->neurons.size(), 4u);

  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer({3}, layer, &rows));
  // Each group member's activation must be >= every non-member's.
  std::set<int64_t> members(group->neurons.begin(), group->neurons.end());
  float min_member = 1e30f;
  for (int64_t m : group->neurons) {
    min_member = std::min(min_member, rows[0][static_cast<size_t>(m)]);
  }
  for (size_t n = 0; n < rows[0].size(); ++n) {
    if (members.count(static_cast<int64_t>(n)) == 0) {
      EXPECT_LE(rows[0][n], min_member);
    }
  }
}

TEST(MakeNeuronGroupTest, RandHighPicksFromUpperHalf) {
  TinySystem sys(20, 83, 8);
  const int layer = sys.model->activation_layers()[0];
  Rng rng(2);
  auto group = MakeNeuronGroup(sys.engine.get(), 5, layer,
                               GroupKind::kRandHigh, 3, &rng);
  ASSERT_TRUE(group.ok());
  ASSERT_EQ(group->neurons.size(), 3u);
  // Distinct neurons, all within the layer.
  std::set<int64_t> unique(group->neurons.begin(), group->neurons.end());
  EXPECT_EQ(unique.size(), 3u);
  for (int64_t n : group->neurons) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, sys.model->NeuronCount(layer));
  }
}

TEST(MakeNeuronGroupTest, RejectsOversizedGroups) {
  TinySystem sys(10, 84, 8);
  const int layer = sys.model->activation_layers()[2];  // 8 neurons
  Rng rng(3);
  EXPECT_FALSE(MakeNeuronGroup(sys.engine.get(), 0, layer, GroupKind::kTop,
                               99, &rng)
                   .ok());
  EXPECT_FALSE(MakeNeuronGroup(sys.engine.get(), 0, layer, GroupKind::kTop, 0,
                               &rng)
                   .ok());
}

TEST(GenerateQueryTest, TypesMapToGroupKinds) {
  TinySystem sys(30, 85, 8);
  Rng rng(4);
  for (QueryType type :
       {QueryType::kFireMax, QueryType::kSimTop, QueryType::kSimHigh}) {
    auto query = GenerateQuery(sys.engine.get(), type, LayerDepth::kMid, 3,
                               &rng);
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(query->type, type);
    EXPECT_EQ(query->group.neurons.size(), 3u);
    EXPECT_EQ(query->group.layer, PickLayer(*sys.model, LayerDepth::kMid));
    EXPECT_LT(query->target_id, sys.dataset.size());
    EXPECT_FALSE(query->label.empty());
  }
}

TEST(WorkloadTest, TransitionProbabilitiesRoughlyHold) {
  const std::vector<int> layers = {1, 3, 5, 7, 9};
  WorkloadSpec spec;
  spec.p_same = 0.5;
  spec.p_prev = 0.3;
  spec.p_new = 0.2;
  spec.num_queries = 4000;
  spec.seed = 5;
  const std::vector<int> sequence = GenerateLayerSequence(layers, spec);
  ASSERT_EQ(sequence.size(), 4000u);
  int same = 0;
  for (size_t i = 1; i < sequence.size(); ++i) {
    if (sequence[i] == sequence[i - 1]) ++same;
  }
  // p_same = 0.5 within sampling noise.
  EXPECT_NEAR(static_cast<double>(same) / 3999.0, 0.5, 0.05);
  // All layers eventually visited (p_new > 0).
  std::set<int> seen(sequence.begin(), sequence.end());
  EXPECT_EQ(seen.size(), layers.size());
}

TEST(WorkloadTest, UniformWorkloadVisitsAllLayers) {
  const std::vector<int> layers = {0, 2, 4};
  WorkloadSpec spec;
  spec.p_same = 0.0;
  spec.p_prev = 0.0;
  spec.p_new = 1.0;
  spec.num_queries = 50;
  spec.seed = 6;
  const std::vector<int> sequence = GenerateLayerSequence(layers, spec);
  std::set<int> seen(sequence.begin(), sequence.end());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  const std::vector<int> layers = {1, 2, 3};
  WorkloadSpec spec;
  spec.num_queries = 100;
  spec.seed = 7;
  EXPECT_EQ(GenerateLayerSequence(layers, spec),
            GenerateLayerSequence(layers, spec));
}

TEST(IqaSequenceTest, ReplacesExactlyNReplaceNeurons) {
  TinySystem sys(30, 86, 8);
  const int layer = sys.model->activation_layers()[0];  // 16 neurons
  Rng rng(8);
  auto sequence = GenerateIqaSequence(sys.engine.get(), 2, layer,
                                      /*group_size=*/5, /*num_replace=*/1,
                                      /*length=*/10, &rng);
  ASSERT_TRUE(sequence.ok());
  ASSERT_EQ(sequence->size(), 10u);
  for (size_t q = 1; q < sequence->size(); ++q) {
    const auto& prev = (*sequence)[q - 1].neurons;
    const auto& cur = (*sequence)[q].neurons;
    EXPECT_EQ(cur.size(), 5u);
    std::set<int64_t> prev_set(prev.begin(), prev.end());
    int kept = 0;
    for (int64_t n : cur) {
      if (prev_set.count(n) != 0) ++kept;
    }
    EXPECT_GE(kept, 4) << "query " << q;  // at most 1 replaced
  }
}

TEST(IqaSequenceTest, RejectsBadParams) {
  TinySystem sys(10, 87, 8);
  Rng rng(9);
  EXPECT_FALSE(GenerateIqaSequence(sys.engine.get(), 0,
                                   sys.model->activation_layers()[0], 3, 5, 4,
                                   &rng)
                   .ok());
}

}  // namespace
}  // namespace bench_util
}  // namespace deepeverest
