#include "data/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deepeverest {
namespace data {
namespace {

SyntheticImageConfig SmallConfig() {
  SyntheticImageConfig config;
  config.num_inputs = 40;
  config.height = 8;
  config.width = 8;
  config.channels = 3;
  config.num_classes = 4;
  config.seed = 11;
  return config;
}

TEST(DatasetTest, AddAndAccess) {
  Dataset d("test", Shape({4}));
  const uint32_t id = d.Add(Tensor(Shape({4}), {1, 2, 3, 4}), 2);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.label(0), 2);
  EXPECT_EQ(d.input(0)[3], 4.0f);
}

TEST(SyntheticImagesTest, GeometryAndDeterminism) {
  const Dataset a = MakeSyntheticImages(SmallConfig());
  const Dataset b = MakeSyntheticImages(SmallConfig());
  ASSERT_EQ(a.size(), 40u);
  EXPECT_EQ(a.input_shape(), Shape({8, 8, 3}));
  for (uint32_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    for (int64_t j = 0; j < a.input(i).NumElements(); ++j) {
      ASSERT_EQ(a.input(i)[j], b.input(i)[j]) << "input " << i;
    }
  }
}

TEST(SyntheticImagesTest, DifferentSeedsDiffer) {
  SyntheticImageConfig c1 = SmallConfig();
  SyntheticImageConfig c2 = SmallConfig();
  c2.seed = 12;
  const Dataset a = MakeSyntheticImages(c1);
  const Dataset b = MakeSyntheticImages(c2);
  bool any_diff = false;
  for (int64_t j = 0; j < a.input(0).NumElements(); ++j) {
    if (a.input(0)[j] != b.input(0)[j]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticImagesTest, LabelsCoverClasses) {
  SyntheticImageConfig config = SmallConfig();
  config.num_inputs = 200;
  const Dataset d = MakeSyntheticImages(config);
  std::vector<int> counts(static_cast<size_t>(config.num_classes), 0);
  for (uint32_t i = 0; i < d.size(); ++i) {
    ASSERT_GE(d.label(i), 0);
    ASSERT_LT(d.label(i), config.num_classes);
    ++counts[static_cast<size_t>(d.label(i))];
  }
  for (int c = 0; c < config.num_classes; ++c) {
    EXPECT_GT(counts[static_cast<size_t>(c)], 0) << "class " << c;
  }
}

TEST(SyntheticImagesTest, IntraClassCloserThanInterClassOnAverage) {
  // The class-pattern structure must survive the noise: mean pixel distance
  // within a class should be smaller than across classes.
  SyntheticImageConfig config = SmallConfig();
  config.num_inputs = 120;
  config.noise_stddev = 0.2f;
  const Dataset d = MakeSyntheticImages(config);

  auto pixel_dist = [&](uint32_t a, uint32_t b) {
    double sum = 0.0;
    for (int64_t j = 0; j < d.input(a).NumElements(); ++j) {
      const double diff = d.input(a)[j] - d.input(b)[j];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  };
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (uint32_t a = 0; a < d.size(); ++a) {
    for (uint32_t b = a + 1; b < d.size(); ++b) {
      if (d.label(a) == d.label(b)) {
        intra += pixel_dist(a, b);
        ++intra_n;
      } else {
        inter += pixel_dist(a, b);
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0);
  ASSERT_GT(inter_n, 0);
  EXPECT_LT(intra / intra_n, inter / inter_n);
}

TEST(SyntheticImagesTest, ValuesAreFinite) {
  const Dataset d = MakeSyntheticImages(SmallConfig());
  for (uint32_t i = 0; i < d.size(); ++i) {
    for (int64_t j = 0; j < d.input(i).NumElements(); ++j) {
      ASSERT_TRUE(std::isfinite(d.input(i)[j]));
    }
  }
}

}  // namespace
}  // namespace data
}  // namespace deepeverest
