// Preemptive park/resume scheduling of the QueryService: a worker stepping
// a non-interactive query parks it between NTA rounds when interactive work
// arrives, runs the interactive query, and the parked query resumes later —
// on any worker — with a bit-identical answer. Also pins the deadline
// semantics around parking (expired-while-parked counts as
// deadline_exceeded, never rejected_past_deadline, and never burns worker
// time on resume) and the cancel/shutdown interactions. The multi-worker
// stress at the bottom is the TSan target for the single-owner execution
// handoff.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "core/deepeverest.h"
#include "service/query_service.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace service {
namespace {

using core::DeepEverest;
using core::DeepEverestOptions;
using core::TopKResult;
using testing_util::TempDir;
using testing_util::TinySystem;

DeepEverestOptions EngineOptions() {
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 8;  // more rounds = more park points
  options.mai_ratio_override = 0.1;
  options.enable_iqa = false;  // keep per-query inputs_run deterministic
  return options;
}

struct PreemptFixture {
  PreemptFixture(uint32_t num_inputs, uint64_t seed)
      : sys(num_inputs, seed, 8), dir("preempt_svc") {
    auto opened = storage::FileStore::Open(dir.path());
    EXPECT_TRUE(opened.ok());
    store = std::make_unique<storage::FileStore>(std::move(opened.value()));
    auto created = DeepEverest::Create(sys.model.get(), &sys.dataset,
                                       store.get(), EngineOptions());
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    engine = std::move(created.value());
  }

  /// Warm every index, then make each device batch cost `launch_seconds` of
  /// real time — bulk queries become long enough that interactive work
  /// reliably arrives mid-flight.
  void MakeQueriesSlow(double launch_seconds) {
    ASSERT_TRUE(engine->PreprocessAllLayers().ok());
    engine->inference()->mutable_cost_model()->launch_overhead_seconds =
        launch_seconds;
    engine->inference()->set_simulate_device_latency(true);
  }

  core::QuerySpec MakeQuery(uint64_t session, QosClass qos,
                            double deadline_seconds = 0.0) const {
    core::QuerySpec query;
    query.kind = core::QuerySpec::Kind::kMostSimilar;
    query.layer = sys.model->activation_layers()[0];
    query.neurons = {0, 1, 2};
    query.k = 8;
    query.target_id = 3;
    query.session_id = session;
    query.qos = qos;
    if (deadline_seconds > 0.0) query.deadline_ms = deadline_seconds * 1e3;
    return query;
  }

  /// The uninterrupted ground truth for MakeQuery's result, computed
  /// engine-direct (same warm index, no service in the way).
  Result<TopKResult> Reference(uint64_t session) const {
    return engine->ExecuteSpec(MakeQuery(session, QosClass::kBatch));
  }

  TinySystem sys;
  TempDir dir;
  std::unique_ptr<storage::FileStore> store;
  std::unique_ptr<DeepEverest> engine;
};

using Future = std::future<Result<TopKResult>>;

Future MustSubmit(QueryService* service, core::QuerySpec query) {
  auto submitted = service->Submit(std::move(query));
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  return std::move(submitted.value());
}

void WaitUntilInFlight(QueryService* service) {
  while (service->Snapshot().inflight == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ExpectIdentical(const TopKResult& expected, const TopKResult& actual) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size());
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].input_id, actual.entries[i].input_id)
        << "rank " << i;
    EXPECT_EQ(expected.entries[i].value, actual.entries[i].value)
        << "rank " << i;
  }
}

TEST(PreemptionTest, InteractivePreemptsBulkAndBulkStaysBitIdentical) {
  PreemptFixture fix(80, 201);
  fix.MakeQueriesSlow(0.004);
  const auto reference = fix.Reference(1);
  ASSERT_TRUE(reference.ok());

  QueryServiceOptions options;
  options.num_workers = 1;
  options.slow_query_seconds = 0.0;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  Future bulk =
      MustSubmit(service->get(), fix.MakeQuery(1, QosClass::kBestEffort));
  WaitUntilInFlight(service->get());
  Future interactive =
      MustSubmit(service->get(), fix.MakeQuery(2, QosClass::kInteractive));

  auto interactive_result = interactive.get();
  ASSERT_TRUE(interactive_result.ok())
      << interactive_result.status().ToString();
  auto bulk_result = bulk.get();
  ASSERT_TRUE(bulk_result.ok()) << bulk_result.status().ToString();

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_GE(stats.parked_total, 1);
  EXPECT_GE(stats.resumed_total, 1);
  EXPECT_GE(stats.preemptions, 1);
  EXPECT_EQ(stats.parked, 0u);  // nothing left behind
  EXPECT_EQ(stats.completed, 2);

  // The preempted run answers exactly like the uninterrupted one — same
  // entries bit-for-bit AND the same exact inference charge.
  ExpectIdentical(reference.value(), bulk_result.value());
  EXPECT_EQ(reference->stats.inputs_run, bulk_result->stats.inputs_run);
  EXPECT_EQ(reference->stats.rounds, bulk_result->stats.rounds);
}

TEST(PreemptionTest, PreemptionDisabledNeverParks) {
  PreemptFixture fix(80, 203);
  fix.MakeQueriesSlow(0.002);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.enable_preemption = false;
  options.slow_query_seconds = 0.0;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  Future bulk =
      MustSubmit(service->get(), fix.MakeQuery(1, QosClass::kBestEffort));
  WaitUntilInFlight(service->get());
  Future interactive =
      MustSubmit(service->get(), fix.MakeQuery(2, QosClass::kInteractive));
  ASSERT_TRUE(bulk.get().ok());
  ASSERT_TRUE(interactive.get().ok());

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.parked_total, 0);
  EXPECT_EQ(stats.resumed_total, 0);
  EXPECT_EQ(stats.preemptions, 0);
}

TEST(PreemptionTest, DeadlineExpiredWhileParkedCountsAsDeadlineExceeded) {
  PreemptFixture fix(80, 205);
  fix.MakeQueriesSlow(0.004);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 256;
  options.slow_query_seconds = 0.0;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  // A bulk query that cannot finish inside its deadline, parked under a
  // steady interactive load that outlives the deadline. Whether the clock
  // runs out while it is parked (the common case here) or between rounds,
  // it EXECUTED — so it must count as deadline_exceeded, and must never be
  // mistaken for a queued-only rejected_past_deadline.
  Future bulk = MustSubmit(
      service->get(),
      fix.MakeQuery(1, QosClass::kBestEffort, /*deadline_seconds=*/0.15));
  WaitUntilInFlight(service->get());

  // Keep at least two interactive queries outstanding until well past the
  // deadline, so the worker never gets back to the parked bulk early.
  const auto hold_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  std::deque<Future> outstanding;
  uint64_t session = 10;
  while (std::chrono::steady_clock::now() < hold_until) {
    while (outstanding.size() < 2) {
      outstanding.push_back(MustSubmit(
          service->get(), fix.MakeQuery(session++, QosClass::kInteractive)));
    }
    ASSERT_TRUE(outstanding.front().get().ok());
    outstanding.pop_front();
  }
  while (!outstanding.empty()) {
    ASSERT_TRUE(outstanding.front().get().ok());
    outstanding.pop_front();
  }

  auto bulk_result = bulk.get();
  ASSERT_FALSE(bulk_result.ok());
  EXPECT_EQ(bulk_result.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_GE(stats.parked_total, 1);
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.rejected_past_deadline, 0);
  EXPECT_EQ(stats.parked, 0u);
}

TEST(PreemptionTest, FreshQueryPastDeadlineStillRejectedWithoutExecuting) {
  // The flip side of the parked-deadline fix: a query whose deadline passed
  // while it only ever sat in the queue is still a rejection, not an abort.
  PreemptFixture fix(40, 207);
  fix.MakeQueriesSlow(0.001);
  QueryServiceOptions options;
  options.num_workers = 1;
  options.slow_query_seconds = 0.0;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  core::QuerySpec doomed = fix.MakeQuery(1, QosClass::kBatch);
  doomed.deadline_ms = 0.0;  // already due at admission
  Future future = MustSubmit(service->get(), std::move(doomed));
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.rejected_past_deadline, 1);
  EXPECT_EQ(stats.deadline_exceeded, 0);
}

TEST(PreemptionTest, CancelWhileParkedSurfacesAsCancelled) {
  PreemptFixture fix(80, 209);
  fix.MakeQueriesSlow(0.004);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.slow_query_seconds = 0.0;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  auto bulk = (*service)->SubmitWithControl(
      fix.MakeQuery(1, QosClass::kBestEffort));
  ASSERT_TRUE(bulk.ok());
  WaitUntilInFlight(service->get());

  // Force a park and hold it parked with a drip of interactive work.
  std::deque<Future> outstanding;
  uint64_t session = 20;
  for (int i = 0; i < 4; ++i) {
    outstanding.push_back(MustSubmit(
        service->get(), fix.MakeQuery(session++, QosClass::kInteractive)));
  }
  while ((*service)->Snapshot().parked == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(bulk->context->lifecycle(),
            core::QueryContext::Lifecycle::kParked);
  bulk->context->Cancel();

  while (!outstanding.empty()) {
    ASSERT_TRUE(outstanding.front().get().ok());
    outstanding.pop_front();
  }
  auto bulk_result = bulk->result.get();
  ASSERT_FALSE(bulk_result.ok());
  EXPECT_EQ(bulk_result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(bulk->context->lifecycle(),
            core::QueryContext::Lifecycle::kFinished);

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_GE(stats.parked_total, 1);
  EXPECT_EQ(stats.parked, 0u);
}

TEST(PreemptionTest, ShutdownCancelsParkedQuery) {
  PreemptFixture fix(80, 211);
  fix.MakeQueriesSlow(0.004);

  QueryServiceOptions options;
  options.num_workers = 1;
  options.slow_query_seconds = 0.0;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  Future bulk =
      MustSubmit(service->get(), fix.MakeQuery(1, QosClass::kBestEffort));
  WaitUntilInFlight(service->get());
  std::vector<Future> interactive;
  for (uint64_t s = 0; s < 3; ++s) {
    interactive.push_back(MustSubmit(
        service->get(), fix.MakeQuery(30 + s, QosClass::kInteractive)));
  }
  while ((*service)->Snapshot().parked == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  (*service)->Shutdown();

  auto bulk_result = bulk.get();
  ASSERT_FALSE(bulk_result.ok());
  EXPECT_EQ(bulk_result.status().code(), StatusCode::kCancelled);
  // Interactive futures all resolved one way or the other (no hang).
  for (Future& f : interactive) f.get();
  EXPECT_EQ((*service)->Snapshot().parked, 0u);
}

TEST(PreemptionTest, MultiWorkerParkResumeStressStaysBitIdentical) {
  // Two workers, two long bulk queries, a burst of interactive traffic, a
  // concurrent Snapshot poller: parked executions hand off between workers
  // (any worker may resume either bulk query) while stats are read. Run
  // under TSan this is the ownership-protocol proof; everywhere it is the
  // bit-equality proof under real contention.
  PreemptFixture fix(80, 213);
  fix.MakeQueriesSlow(0.002);
  const auto ref1 = fix.Reference(1);
  const auto ref2 = fix.Reference(2);
  ASSERT_TRUE(ref1.ok());
  ASSERT_TRUE(ref2.ok());

  QueryServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 256;
  options.slow_query_seconds = 0.0;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ServiceStats stats = (*service)->Snapshot();
      EXPECT_LE(stats.parked, static_cast<size_t>(2));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  Future bulk1 =
      MustSubmit(service->get(), fix.MakeQuery(1, QosClass::kBestEffort));
  Future bulk2 =
      MustSubmit(service->get(), fix.MakeQuery(2, QosClass::kBatch));
  // Both workers occupied before the interactive burst.
  while ((*service)->Snapshot().inflight < 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::vector<Future> interactive;
  for (uint64_t s = 0; s < 8; ++s) {
    interactive.push_back(MustSubmit(
        service->get(), fix.MakeQuery(40 + s, QosClass::kInteractive)));
  }

  for (Future& f : interactive) ASSERT_TRUE(f.get().ok());
  auto result1 = bulk1.get();
  auto result2 = bulk2.get();
  stop.store(true, std::memory_order_relaxed);
  poller.join();

  ASSERT_TRUE(result1.ok()) << result1.status().ToString();
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();
  ExpectIdentical(ref1.value(), result1.value());
  ExpectIdentical(ref2.value(), result2.value());
  EXPECT_EQ(ref1->stats.inputs_run, result1->stats.inputs_run);
  EXPECT_EQ(ref2->stats.inputs_run, result2->stats.inputs_run);

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_GE(stats.parked_total, 1);
  EXPECT_EQ(stats.parked_total, stats.resumed_total);
  EXPECT_EQ(stats.parked, 0u);
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
