// Parity of the declarative entry point with engine-direct execution: QL
// text parsed to a QuerySpec and submitted through the QueryService must
// return bit-identical entries AND identical exact per-query inputs_run to
// the same spec run engine-direct via ExecuteSpec on an identical twin
// engine — including derived `TOP m NEURONS [OF x]` groups, whose
// resolution now runs inside the service path (metered, cancellable).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/deepeverest.h"
#include "core/ql.h"
#include "service/query_service.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace service {
namespace {

using core::DeepEverest;
using core::DeepEverestOptions;
using testing_util::TempDir;
using testing_util::TinySystem;

struct Twin {
  Twin(uint32_t num_inputs, uint64_t seed, const char* dir_tag)
      : sys(num_inputs, seed, 8), dir(dir_tag) {
    auto opened = storage::FileStore::Open(dir.path());
    EXPECT_TRUE(opened.ok());
    store = std::make_unique<storage::FileStore>(std::move(opened.value()));
    DeepEverestOptions options;
    options.batch_size = 8;
    options.num_partitions_override = 4;
    auto created = DeepEverest::Create(sys.model.get(), &sys.dataset,
                                       store.get(), options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    engine = std::move(created.value());
  }

  TinySystem sys;
  TempDir dir;
  std::unique_ptr<storage::FileStore> store;
  std::unique_ptr<DeepEverest> engine;
};

TEST(QlServiceParityTest, QlOverServiceMatchesEngineDirectBitForBit) {
  constexpr uint32_t kInputs = 50;
  constexpr uint64_t kSeed = 67;
  // Two identical engines built from the same seed: the reference twin
  // runs engine-direct, the serving twin runs through the full service
  // path (admission, workers, batching scheduler).
  Twin reference(kInputs, kSeed, "parity_ref");
  Twin serving(kInputs, kSeed, "parity_svc");
  QueryServiceOptions options;
  options.num_workers = 4;
  auto service = QueryService::Create(serving.engine.get(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const int early = reference.sys.model->activation_layers()[0];
  const int late = reference.sys.model->activation_layers().back();
  const std::vector<std::string> texts = {
      "SELECT TOPK 7 HIGHEST FOR LAYER " + std::to_string(early) +
          " NEURONS (0, 3, 5)",
      "SELECT TOPK 5 SIMILAR TO 13 FOR LAYER " + std::to_string(late) +
          " NEURONS (1, 4) USING L1",
      // Derived groups — the queries that could previously only run
      // engine-direct (the service/wire could not express them).
      "SELECT TOPK 6 SIMILAR TO 8 FOR LAYER " + std::to_string(early) +
          " TOP 3 NEURONS",
      "SELECT TOPK 4 HIGHEST FOR LAYER " + std::to_string(late) +
          " TOP 2 NEURONS OF 11",
      "SELECT TOPK 5 SIMILAR TO 9 FOR LAYER " + std::to_string(late) +
          " TOP 4 NEURONS OF 3 USING LINF",
  };

  for (const std::string& text : texts) {
    auto spec = core::ParseQuery(text);
    ASSERT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();

    auto direct = reference.engine->ExecuteSpec(*spec);
    ASSERT_TRUE(direct.ok()) << text << ": " << direct.status().ToString();

    core::QuerySpec submitted = *spec;
    submitted.session_id = 3;
    submitted.qos = QosClass::kInteractive;
    auto served = (*service)->Execute(std::move(submitted));
    ASSERT_TRUE(served.ok()) << text << ": " << served.status().ToString();

    ASSERT_EQ(direct->entries.size(), served->entries.size()) << text;
    for (size_t i = 0; i < direct->entries.size(); ++i) {
      EXPECT_EQ(direct->entries[i].input_id, served->entries[i].input_id)
          << text << " rank " << i;
      EXPECT_EQ(direct->entries[i].value, served->entries[i].value)
          << text << " rank " << i;
    }
    // Exact attribution: the served query paid exactly what the
    // engine-direct run paid, derived-group resolution included.
    EXPECT_EQ(direct->stats.inputs_run, served->stats.inputs_run) << text;
  }
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
