// Tests for the concurrent query service: result equivalence with
// sequential execution, admission backpressure, session fairness, and
// IQA shard accounting.
#include "service/query_service.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/deepeverest.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace service {
namespace {

using core::DeepEverest;
using core::DeepEverestOptions;
using core::TopKResult;
using testing_util::TempDir;
using testing_util::TinySystem;

DeepEverestOptions EngineOptions(int iqa_shards = 0) {
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.1;
  if (iqa_shards > 0) {
    options.enable_iqa = true;
    options.iqa_capacity_bytes = 1 << 24;
    options.iqa_shards = iqa_shards;
  }
  return options;
}

/// Engine + store + workload fixture shared by the tests.
struct ServiceFixture {
  ServiceFixture(uint32_t num_inputs, uint64_t seed,
                 const DeepEverestOptions& options)
      : sys(num_inputs, seed, options.batch_size), dir("svc") {
    auto opened = storage::FileStore::Open(dir.path());
    EXPECT_TRUE(opened.ok());
    store = std::make_unique<storage::FileStore>(std::move(opened.value()));
    auto created =
        DeepEverest::Create(sys.model.get(), &sys.dataset, store.get(),
                            options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    engine = std::move(created.value());
  }

  TinySystem sys;
  TempDir dir;
  std::unique_ptr<storage::FileStore> store;
  std::unique_ptr<DeepEverest> engine;
};

/// Runs one query directly on the engine through the same canonical
/// ExecuteSpec path the service uses (tie-complete NTA termination),
/// giving the canonical sequential reference: identical entries AND
/// identical per-query inference stats are expected from the service,
/// regardless of worker count or batching.
Result<TopKResult> RunCanonical(DeepEverest* engine,
                                const core::QuerySpec& query) {
  return engine->ExecuteSpec(query);
}

/// A deterministic mixed workload across three layers and several sessions.
std::vector<core::QuerySpec> MakeWorkload(const nn::Model& model, int count) {
  const std::vector<int>& layers = model.activation_layers();
  std::vector<core::QuerySpec> workload;
  workload.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::QuerySpec query;
    const int layer = layers[static_cast<size_t>(i) % layers.size()];
    query.layer = layer;
    query.neurons = {i % 4, (i % 4 + 2) % 8};
    query.k = 5 + i % 3;
    query.session_id = static_cast<uint64_t>(i % 5);
    if (i % 2 == 0) {
      query.kind = core::QuerySpec::Kind::kHighest;
    } else {
      query.kind = core::QuerySpec::Kind::kMostSimilar;
      query.target_id = static_cast<uint32_t>(i % 20);
    }
    workload.push_back(std::move(query));
  }
  return workload;
}

void ExpectSameEntries(const TopKResult& expected, const TopKResult& actual,
                       int query_index) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size())
      << "query " << query_index;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].input_id, actual.entries[i].input_id)
        << "query " << query_index << " rank " << i;
    EXPECT_EQ(expected.entries[i].value, actual.entries[i].value)
        << "query " << query_index << " rank " << i;
  }
}

TEST(QueryServiceTest, CreateValidatesOptions) {
  ServiceFixture fix(30, 71, EngineOptions());
  QueryServiceOptions bad;
  bad.num_workers = 0;
  EXPECT_FALSE(QueryService::Create(fix.engine.get(), bad).ok());
  bad = QueryServiceOptions();
  bad.max_queue_depth = 0;
  EXPECT_FALSE(QueryService::Create(fix.engine.get(), bad).ok());
  EXPECT_FALSE(QueryService::Create(nullptr, QueryServiceOptions()).ok());
}

TEST(QueryServiceTest, SubmitValidatesQueries) {
  ServiceFixture fix(30, 72, EngineOptions());
  auto service =
      QueryService::Create(fix.engine.get(), QueryServiceOptions());
  ASSERT_TRUE(service.ok());
  core::QuerySpec query;  // empty neuron group
  query.k = 5;
  EXPECT_FALSE((*service)->Submit(query).ok());
  query.neurons = {0};
  query.k = 0;
  EXPECT_FALSE((*service)->Submit(query).ok());
  query.k = 5;
  query.theta = 1.5;
  EXPECT_FALSE((*service)->Submit(query).ok());
}

TEST(QueryServiceTest, OutOfRangeNeuronOnColdLayerFailsCleanly) {
  ServiceFixture fix(30, 70, EngineOptions());
  auto service =
      QueryService::Create(fix.engine.get(), QueryServiceOptions());
  ASSERT_TRUE(service.ok());
  // The layer is unindexed, so without up-front validation this query would
  // reach the §4.6 fresh-scan path and read the activation matrix out of
  // bounds; it must instead resolve to OutOfRange.
  core::QuerySpec query;
  query.layer = fix.sys.model->activation_layers()[0];
  query.neurons = {999999};
  query.k = 5;
  auto result = (*service)->Execute(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

// The tentpole contract: N threads x M queries produce exactly the results
// sequential execution produces. Both engines are warm-started
// (PreprocessAllLayers), the serving deployment configuration: with indexes
// in place every query runs the NTA path, whose result is deterministic
// regardless of scheduling and cache state (ties break on input id).
TEST(QueryServiceTest, ConcurrentResultsMatchSequential) {
  // Sequential reference on its own engine (fresh store, fresh caches).
  ServiceFixture seq_fix(60, 73, EngineOptions(/*iqa_shards=*/1));
  ASSERT_TRUE(seq_fix.engine->PreprocessAllLayers().ok());
  const std::vector<core::QuerySpec> workload =
      MakeWorkload(*seq_fix.sys.model, 40);
  std::vector<TopKResult> expected;
  for (const core::QuerySpec& query : workload) {
    auto result = RunCanonical(seq_fix.engine.get(), query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(std::move(result.value()));
  }

  // Concurrent run on an identical engine behind the service.
  ServiceFixture fix(60, 73, EngineOptions(/*iqa_shards=*/8));
  ASSERT_TRUE(fix.engine->PreprocessAllLayers().ok());
  QueryServiceOptions service_options;
  service_options.num_workers = 8;
  service_options.max_queue_depth = workload.size();
  auto service = QueryService::Create(fix.engine.get(), service_options);
  ASSERT_TRUE(service.ok());

  std::vector<std::future<Result<TopKResult>>> futures;
  for (const core::QuerySpec& query : workload) {
    auto submitted = (*service)->Submit(query);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted.value()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<TopKResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameEntries(expected[i], result.value(), static_cast<int>(i));
  }

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(workload.size()));
  EXPECT_EQ(stats.completed, static_cast<int64_t>(workload.size()));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.iqa_shards.size(), 8u);
}

// Cold start: concurrent queries race on incremental index builds — the
// winner of a layer's build race answers from the fresh activation scan
// (§4.6) while the losers run NTA. With tie-complete termination (the
// service's execution mode) both paths resolve exact value ties at the
// top-k boundary identically, so even cold-start results are bit-identical
// to the canonical sequential run. (Before the tie-complete mode this test
// could only use a validity oracle.)
TEST(QueryServiceTest, ColdStartConcurrentResultsMatchCanonical) {
  ServiceFixture seq_fix(60, 79, EngineOptions(/*iqa_shards=*/1));
  const std::vector<core::QuerySpec> workload =
      MakeWorkload(*seq_fix.sys.model, 24);
  std::vector<TopKResult> expected;
  for (const core::QuerySpec& query : workload) {
    auto result = RunCanonical(seq_fix.engine.get(), query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(std::move(result.value()));
  }

  ServiceFixture fix(60, 79, EngineOptions(/*iqa_shards=*/8));
  QueryServiceOptions service_options;
  service_options.num_workers = 8;
  service_options.max_queue_depth = workload.size();
  auto service = QueryService::Create(fix.engine.get(), service_options);
  ASSERT_TRUE(service.ok());
  std::vector<std::future<Result<TopKResult>>> futures;
  for (const core::QuerySpec& query : workload) {
    auto submitted = (*service)->Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted.value()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<TopKResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameEntries(expected[i], result.value(), static_cast<int>(i));
  }
}

TEST(QueryServiceTest, BoundedQueueRejectsWithBackpressure) {
  ServiceFixture fix(40, 74, EngineOptions());
  QueryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_queue_depth = 4;
  auto service = QueryService::Create(fix.engine.get(), service_options);
  ASSERT_TRUE(service.ok());

  const int layer = fix.sys.model->activation_layers()[0];
  core::QuerySpec query;
  query.layer = layer;
  query.neurons = {0, 1};
  query.k = 5;

  // Flood far beyond worker + queue capacity; some must be rejected with
  // ResourceExhausted and the rest must all complete.
  std::vector<std::future<Result<TopKResult>>> futures;
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    auto submitted = (*service)->Submit(query);
    if (submitted.ok()) {
      futures.push_back(std::move(submitted.value()));
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted)
          << submitted.status().ToString();
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  for (auto& future : futures) {
    auto result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.rejected_queue_full, rejected);
  EXPECT_EQ(stats.completed, static_cast<int64_t>(futures.size()));
}

TEST(QueryServiceTest, PerSessionLimitKeepsOtherSessionsAdmitted) {
  ServiceFixture fix(40, 75, EngineOptions());
  QueryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_queue_depth = 64;
  service_options.max_queued_per_session = 2;
  auto service = QueryService::Create(fix.engine.get(), service_options);
  ASSERT_TRUE(service.ok());

  const int layer = fix.sys.model->activation_layers()[0];
  core::QuerySpec query;
  query.layer = layer;
  query.neurons = {0, 1};
  query.k = 5;

  // One bulk session hammers; a second session must still get in.
  std::vector<std::future<Result<TopKResult>>> futures;
  int session_rejected = 0;
  for (int i = 0; i < 32; ++i) {
    query.session_id = 1;
    auto submitted = (*service)->Submit(query);
    if (submitted.ok()) {
      futures.push_back(std::move(submitted.value()));
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
      ++session_rejected;
    }
  }
  EXPECT_GT(session_rejected, 0);  // the bulk session hit its bound

  query.session_id = 2;
  auto other = (*service)->Submit(query);
  EXPECT_TRUE(other.ok()) << other.status().ToString();

  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  EXPECT_TRUE(other->get().ok());
  EXPECT_EQ((*service)->Snapshot().rejected_session_limit, session_rejected);
}

// Satellite contract: with ample capacity the shard hit counters sum to the
// sequential single-cache hit count — sharding must not change what the IQA
// cache can serve.
TEST(QueryServiceTest, ShardHitCountersSumToSequentialHitCount) {
  const int kQueries = 36;

  // Sequential run, single-shard cache, in the service's execution mode so
  // the evaluation (and therefore cache hit) pattern is identical.
  ServiceFixture seq_fix(50, 76, EngineOptions(/*iqa_shards=*/1));
  const std::vector<core::QuerySpec> workload =
      MakeWorkload(*seq_fix.sys.model, kQueries);
  for (const core::QuerySpec& query : workload) {
    ASSERT_TRUE(RunCanonical(seq_fix.engine.get(), query).ok());
  }
  const auto seq_stats = seq_fix.engine->iqa_cache()->stats();
  ASSERT_GT(seq_stats.hits, 0);

  // Same workload, same engine config, 8-shard cache, submitted through the
  // service one at a time (sequential schedule, sharded data structure).
  ServiceFixture fix(50, 76, EngineOptions(/*iqa_shards=*/8));
  QueryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_queue_depth = 64;
  auto service = QueryService::Create(fix.engine.get(), service_options);
  ASSERT_TRUE(service.ok());
  for (const core::QuerySpec& query : workload) {
    ASSERT_TRUE((*service)->Execute(query).ok());
  }

  int64_t shard_hits = 0;
  const ServiceStats stats = (*service)->Snapshot();
  ASSERT_EQ(stats.iqa_shards.size(), 8u);
  for (const auto& shard : stats.iqa_shards) shard_hits += shard.hits;
  EXPECT_EQ(shard_hits, seq_stats.hits);
  EXPECT_EQ(shard_hits, fix.engine->iqa_cache()->stats().hits);
}

TEST(QueryServiceTest, DrainWaitsAndShutdownCancelsQueued) {
  ServiceFixture fix(40, 77, EngineOptions());
  QueryServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.max_queue_depth = 64;
  auto service = QueryService::Create(fix.engine.get(), service_options);
  ASSERT_TRUE(service.ok());

  const int layer = fix.sys.model->activation_layers()[0];
  core::QuerySpec query;
  query.layer = layer;
  query.neurons = {0, 1};
  query.k = 5;
  std::vector<std::future<Result<TopKResult>>> futures;
  for (int i = 0; i < 12; ++i) {
    auto submitted = (*service)->Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted.value()));
  }
  (*service)->Drain();
  const ServiceStats drained = (*service)->Snapshot();
  EXPECT_EQ(drained.queue_depth, 0u);
  EXPECT_EQ(drained.inflight, 0u);
  EXPECT_EQ(drained.completed, 12);
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  (*service)->Shutdown();
  EXPECT_FALSE((*service)->Submit(query).ok());  // admission closed
}

// The attribution contract: under 8 concurrent sessions with cross-query
// batching enabled, every query's entries AND its `inputs_run` equal the
// canonical sequential run exactly. The old before/after stats() delta
// failed this (it absorbed other threads' inference); receipts cannot.
TEST(QueryServiceTest, BatchingKeepsResultsAndAttributionExact) {
  // Canonical reference on a warm engine, no IQA (cache state would make
  // per-query inputs_run schedule-dependent, which is not an attribution
  // question).
  ServiceFixture seq_fix(60, 80, EngineOptions());
  ASSERT_TRUE(seq_fix.engine->PreprocessAllLayers().ok());
  std::vector<core::QuerySpec> workload = MakeWorkload(*seq_fix.sys.model, 40);
  for (size_t i = 0; i < workload.size(); ++i) {
    workload[i].session_id = static_cast<uint64_t>(i % 8);  // 8 sessions
  }
  std::vector<TopKResult> expected;
  for (const core::QuerySpec& query : workload) {
    auto result = RunCanonical(seq_fix.engine.get(), query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(std::move(result.value()));
  }

  ServiceFixture fix(60, 80, EngineOptions());
  ASSERT_TRUE(fix.engine->PreprocessAllLayers().ok());
  QueryServiceOptions service_options;
  service_options.num_workers = 8;
  service_options.max_queue_depth = workload.size();
  service_options.enable_cross_query_batching = true;
  // A generous linger so concurrent queries reliably co-schedule.
  service_options.batch_linger_seconds = 0.005;
  auto service = QueryService::Create(fix.engine.get(), service_options);
  ASSERT_TRUE(service.ok());

  std::vector<std::future<Result<TopKResult>>> futures;
  for (const core::QuerySpec& query : workload) {
    auto submitted = (*service)->Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted.value()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<TopKResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameEntries(expected[i], result.value(), static_cast<int>(i));
    EXPECT_EQ(expected[i].stats.inputs_run, result->stats.inputs_run)
        << "query " << i << ": per-query attribution must be exact";
  }

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_TRUE(stats.batching_enabled);
  EXPECT_GT(stats.batch_size, 0);
  EXPECT_GT(stats.batching.requests, 0);
  EXPECT_GT(stats.batching.batches_dispatched, 0);
  EXPECT_EQ(stats.batching.inputs_enqueued, stats.batching.inputs_dispatched);
}

// Coalescing must actually happen: with 8 workers co-scheduling queries
// into shared device batches, the total number of launched batches is
// strictly below what the same workload pays when every query dispatches
// alone (the unbatched service), at bit-identical results.
TEST(QueryServiceTest, BatchingCoalescesAcrossQueries) {
  std::vector<core::QuerySpec> workload;
  auto run_total_batches = [&workload](bool batching, double* total_batches,
                                       int64_t* dispatched,
                                       std::vector<TopKResult>* results) {
    ServiceFixture fix(60, 81, EngineOptions());
    ASSERT_TRUE(fix.engine->PreprocessAllLayers().ok());
    if (workload.empty()) workload = MakeWorkload(*fix.sys.model, 32);
    QueryServiceOptions service_options;
    service_options.num_workers = 8;
    service_options.max_queue_depth = workload.size();
    service_options.enable_cross_query_batching = batching;
    service_options.batch_linger_seconds = 0.005;
    auto service = QueryService::Create(fix.engine.get(), service_options);
    ASSERT_TRUE(service.ok());
    std::vector<std::future<Result<TopKResult>>> futures;
    for (const core::QuerySpec& query : workload) {
      auto submitted = (*service)->Submit(query);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted.value()));
    }
    *total_batches = 0.0;
    for (auto& future : futures) {
      Result<TopKResult> result = future.get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      *total_batches += result->stats.batches_run;
      results->push_back(std::move(result.value()));
    }
    const ServiceStats stats = (*service)->Snapshot();
    *dispatched = stats.batching_enabled
                      ? stats.batching.batches_dispatched
                      : int64_t{0};
    if (batching) {
      EXPECT_GT(stats.batching.shared_batches, 0)
          << "8 workers over shared layers should have merged batches";
      // Fractional shares are conserved: summed over queries they equal the
      // number of physical launches.
      EXPECT_NEAR(*total_batches,
                  static_cast<double>(stats.batching.batches_dispatched),
                  1e-6);
    }
  };

  double solo_batches = 0.0, shared_batches = 0.0;
  int64_t solo_dispatched = 0, shared_dispatched = 0;
  std::vector<TopKResult> solo_results, shared_results;
  run_total_batches(false, &solo_batches, &solo_dispatched, &solo_results);
  run_total_batches(true, &shared_batches, &shared_dispatched,
                    &shared_results);

  EXPECT_LT(shared_batches, solo_batches)
      << "shared batches_run must be strictly below the sum of solo runs";
  ASSERT_EQ(solo_results.size(), shared_results.size());
  for (size_t i = 0; i < solo_results.size(); ++i) {
    ExpectSameEntries(solo_results[i], shared_results[i],
                      static_cast<int>(i));
    EXPECT_EQ(solo_results[i].stats.inputs_run,
              shared_results[i].stats.inputs_run);
  }
}

TEST(QueryServiceTest, LatencyPercentilesAreRecorded) {
  ServiceFixture fix(40, 78, EngineOptions());
  auto service =
      QueryService::Create(fix.engine.get(), QueryServiceOptions());
  ASSERT_TRUE(service.ok());
  const int layer = fix.sys.model->activation_layers()[0];
  core::QuerySpec query;
  query.layer = layer;
  query.neurons = {0, 1, 2};
  query.k = 5;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE((*service)->Execute(query).ok());
  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_GT(stats.p50_latency_seconds, 0.0);
  EXPECT_GE(stats.p99_latency_seconds, stats.p50_latency_seconds);
  EXPECT_GT(stats.worker_busy_seconds, 0.0);
  EXPECT_GT(stats.worker_utilization, 0.0);
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
