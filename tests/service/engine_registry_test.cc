// Tests for the EngineRegistry: registration rules, routing lookups,
// default-model semantics, and that two registered models serve queries
// from their own engines (independent stats, different answers).
#include "service/engine_registry.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/deepeverest.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace service {
namespace {

using core::DeepEverest;
using core::DeepEverestOptions;
using testing_util::TempDir;
using testing_util::TinySystem;

/// One self-contained serving stack over a TinyMlp engine.
struct Stack {
  Stack(uint32_t num_inputs, uint64_t seed, const char* dir_tag)
      : sys(num_inputs, seed, 8), dir(dir_tag) {
    auto opened = storage::FileStore::Open(dir.path());
    EXPECT_TRUE(opened.ok());
    store = std::make_unique<storage::FileStore>(std::move(opened.value()));
    DeepEverestOptions options;
    options.batch_size = 8;
    auto created = DeepEverest::Create(sys.model.get(), &sys.dataset,
                                       store.get(), options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    engine = std::move(created.value());
    auto svc = QueryService::Create(engine.get(), QueryServiceOptions());
    EXPECT_TRUE(svc.ok()) << svc.status().ToString();
    service = std::move(svc.value());
  }

  TinySystem sys;
  TempDir dir;
  std::unique_ptr<storage::FileStore> store;
  std::unique_ptr<DeepEverest> engine;
  std::unique_ptr<QueryService> service;
};

TEST(EngineRegistryTest, RegistrationRules) {
  Stack stack(20, 41, "reg1");
  EngineRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.DefaultService(), nullptr);
  EXPECT_EQ(registry.default_model(), "");

  EXPECT_FALSE(registry.Register("", stack.service.get()).ok());
  EXPECT_FALSE(registry.Register("m", nullptr).ok());
  DE_ASSERT_OK(registry.Register("m", stack.service.get()));
  auto duplicate = registry.Register("m", stack.service.get());
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);

  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Find("m"), stack.service.get());
  EXPECT_EQ(registry.Find("absent"), nullptr);
  EXPECT_EQ(registry.DefaultService(), stack.service.get());
  EXPECT_EQ(registry.default_model(), "m");
}

TEST(EngineRegistryTest, RoutesToIndependentServingStacks) {
  // Different seeds: different weights and datasets, so the same spec has
  // different answers — a routing mistake is observable.
  Stack a(30, 42, "reg_a");
  Stack b(30, 43, "reg_b");
  EngineRegistry registry;
  DE_ASSERT_OK(registry.Register("model-a", a.service.get()));
  DE_ASSERT_OK(registry.Register("model-b", b.service.get()));
  ASSERT_EQ(registry.ModelNames(),
            (std::vector<std::string>{"model-a", "model-b"}));
  EXPECT_EQ(registry.default_model(), "model-a");

  core::QuerySpec spec;
  spec.layer = a.sys.model->activation_layers()[0];
  spec.neurons = {0, 1};
  spec.k = 5;

  auto via_a = registry.Find("model-a")->Execute(spec);
  auto via_b = registry.Find("model-b")->Execute(spec);
  ASSERT_TRUE(via_a.ok()) << via_a.status().ToString();
  ASSERT_TRUE(via_b.ok()) << via_b.status().ToString();

  // Each routed query matches its own engine's direct reference...
  auto ref_a = a.engine->ExecuteSpec(spec);
  auto ref_b = b.engine->ExecuteSpec(spec);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(ref_b.ok());
  ASSERT_EQ(via_a->entries.size(), ref_a->entries.size());
  for (size_t i = 0; i < via_a->entries.size(); ++i) {
    EXPECT_EQ(via_a->entries[i].input_id, ref_a->entries[i].input_id);
    EXPECT_EQ(via_a->entries[i].value, ref_a->entries[i].value);
  }
  // ...and the two models disagree somewhere.
  bool differ = via_a->entries.size() != via_b->entries.size();
  for (size_t i = 0; !differ && i < via_a->entries.size(); ++i) {
    differ = via_a->entries[i].input_id != via_b->entries[i].input_id ||
             via_a->entries[i].value != via_b->entries[i].value;
  }
  EXPECT_TRUE(differ);

  // Stats stay per model: only the queried service's counters move.
  EXPECT_EQ(a.service->Snapshot().completed, 1);
  EXPECT_EQ(b.service->Snapshot().completed, 1);
  EXPECT_EQ(a.service->Snapshot().submitted, 1);
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
