// Tests for per-Submit streaming progress and per-query control: ordered
// progress events through core::QuerySpec::on_progress, early stop via the
// callback's return value, and cooperative cancellation through the
// SubmitWithControl handle (reflected in ServiceStats.cancelled).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util/demo_system.h"
#include "service/query_service.h"

namespace deepeverest {
namespace service {
namespace {

using bench_util::DemoSystem;
using bench_util::DemoSystemOptions;

/// A query with enough NTA rounds to observe several progress events on
/// the 200-input demo system (batch size 8).
core::QuerySpec MultiRoundQuery(const nn::Model& model) {
  core::QuerySpec query;
  query.kind = core::QuerySpec::Kind::kHighest;
  query.layer = model.activation_layers().front();
  query.neurons = {0, 1, 2, 3};
  query.k = 10;
  return query;
}

TEST(StreamingProgressTest, EventsArriveInConfirmedCountOrder) {
  auto system = DemoSystem::Make(DemoSystemOptions());
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  QueryServiceOptions options;
  options.num_workers = 2;
  auto service = QueryService::Create((*system)->engine(), options);
  ASSERT_TRUE(service.ok());

  core::QuerySpec query = MultiRoundQuery(*(*system)->model());
  // All sink invocations happen on the worker thread executing the query
  // and happen-before the future resolves, so this vector needs no lock.
  std::vector<core::NtaProgress> events;
  query.on_progress = [&events](const core::NtaProgress& progress) {
    events.push_back(progress);
    return true;
  };
  auto submitted = (*service)->Submit(std::move(query));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto result = submitted->get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_GE(events.size(), 2u) << "expected a multi-round query";
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].round, events[i - 1].round) << "event " << i;
    // For kHighest the confirmed set grows monotonically: thresholds only
    // tighten and entries only improve.
    EXPECT_GE(events[i].confirmed.size(), events[i - 1].confirmed.size())
        << "event " << i;
  }
  // Every confirmed entry is final: it appears in the result with the
  // same value.
  for (const core::NtaProgress& progress : events) {
    for (const core::ResultEntry& confirmed : progress.confirmed) {
      bool found = false;
      for (const core::ResultEntry& entry : result->entries) {
        if (entry.input_id == confirmed.input_id &&
            entry.value == confirmed.value) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "confirmed input " << confirmed.input_id
                         << " missing from the final result";
    }
  }
}

TEST(StreamingProgressTest, CallbackReturningFalseStopsEarly) {
  auto system = DemoSystem::Make(DemoSystemOptions());
  ASSERT_TRUE(system.ok());
  QueryServiceOptions options;
  options.num_workers = 1;
  auto service = QueryService::Create((*system)->engine(), options);
  ASSERT_TRUE(service.ok());

  // Baseline: count the full run's progress events.
  size_t full_run_events = 0;
  {
    core::QuerySpec query = MultiRoundQuery(*(*system)->model());
    query.on_progress = [&full_run_events](const core::NtaProgress&) {
      ++full_run_events;
      return true;
    };
    auto result = (*service)->Execute(std::move(query));
    ASSERT_TRUE(result.ok());
  }
  ASSERT_GE(full_run_events, 2u);

  // Early stop after the first event: still an OK result (the current
  // θ-guaranteed top-k), with strictly fewer events.
  size_t events = 0;
  core::QuerySpec query = MultiRoundQuery(*(*system)->model());
  query.on_progress = [&events](const core::NtaProgress&) {
    ++events;
    return false;
  };
  auto result = (*service)->Execute(std::move(query));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(events, 1u);
  // One round in, the top set may not be full yet — but whatever is there
  // is a valid prefix.
  EXPECT_GE(result->entries.size(), 1u);
  EXPECT_LE(result->entries.size(), 10u);

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.completed, 2);  // early stop is completion, not an error
  EXPECT_EQ(stats.cancelled, 0);
}

TEST(StreamingProgressTest, CancelMidFlightCountsAsCancelled) {
  DemoSystemOptions demo_options;
  demo_options.device_latency_scale = 8.0;  // slow enough to cancel into
  auto system = DemoSystem::Make(demo_options);
  ASSERT_TRUE(system.ok());
  QueryServiceOptions options;
  options.num_workers = 2;
  auto service = QueryService::Create((*system)->engine(), options);
  ASSERT_TRUE(service.ok());

  core::QuerySpec query = MultiRoundQuery(*(*system)->model());
  std::mutex mu;
  std::condition_variable cv;
  bool first_event = false;
  query.on_progress = [&](const core::NtaProgress&) {
    {
      std::lock_guard<std::mutex> lock(mu);
      first_event = true;
    }
    cv.notify_all();
    return true;
  };
  auto submitted = (*service)->SubmitWithControl(std::move(query));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return first_event; }))
        << "query produced no progress to cancel after";
  }
  submitted->context->Cancel();
  auto result = submitted->result.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.per_class[QosIndex(QosClass::kBatch)].cancelled, 1);
  EXPECT_EQ(stats.completed, 0);
}

TEST(StreamingProgressTest, CancelWhileQueuedNeverRuns) {
  DemoSystemOptions demo_options;
  demo_options.device_latency_scale = 4.0;
  auto system = DemoSystem::Make(demo_options);
  ASSERT_TRUE(system.ok());
  QueryServiceOptions options;
  options.num_workers = 1;  // one worker: the second query must queue
  auto service = QueryService::Create((*system)->engine(), options);
  ASSERT_TRUE(service.ok());

  // Block the only worker with a slow query.
  auto blocker =
      (*service)->Submit(MultiRoundQuery(*(*system)->model()));
  ASSERT_TRUE(blocker.ok());

  auto queued =
      (*service)->SubmitWithControl(MultiRoundQuery(*(*system)->model()));
  ASSERT_TRUE(queued.ok());
  queued->context->Cancel();

  auto result = queued->result.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  // Rejected at dispatch: the cancelled query never ran any inference.
  EXPECT_EQ(queued->context->receipt.inputs_run, 0);

  ASSERT_TRUE(blocker->get().ok());
  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(StreamingProgressTest, ProgressSinkComposesWithQosAndDeadlines) {
  auto system = DemoSystem::Make(DemoSystemOptions());
  ASSERT_TRUE(system.ok());
  QueryServiceOptions options;
  options.num_workers = 2;
  auto service = QueryService::Create((*system)->engine(), options);
  ASSERT_TRUE(service.ok());

  core::QuerySpec query = MultiRoundQuery(*(*system)->model());
  query.qos = QosClass::kInteractive;
  query.deadline_ms = 30000.0;  // generous: must not fire
  std::atomic<int> events{0};
  query.on_progress = [&events](const core::NtaProgress&) {
    ++events;
    return true;
  };
  auto result = (*service)->Execute(std::move(query));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(events.load(), 1);
  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.per_class[QosIndex(QosClass::kInteractive)].completed, 1);
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
