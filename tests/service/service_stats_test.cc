// Direct tests for the service stats primitives — above all the
// LatencyHistogram, which every latency percentile in ServiceStats (overall
// and per QoS class) is computed from: bucket clamping at both ends,
// percentile monotonicity, accuracy on known distributions, and concurrent
// recording.
#include "service/service_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace deepeverest {
namespace service {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.PercentileSeconds(0.0), 0.0);
  EXPECT_EQ(histogram.PercentileSeconds(0.5), 0.0);
  EXPECT_EQ(histogram.PercentileSeconds(1.0), 0.0);
}

TEST(LatencyHistogramTest, CountTracksRecords) {
  LatencyHistogram histogram;
  for (int i = 0; i < 17; ++i) histogram.Record(1e-3);
  EXPECT_EQ(histogram.count(), 17);
}

// The histogram spans 1 µs .. ~10^4 s. Anything at or below the floor —
// including zero and (defensively) negative durations — must clamp into the
// first bucket rather than index out of range.
TEST(LatencyHistogramTest, SubMicrosecondClampsToFirstBucket) {
  LatencyHistogram histogram;
  histogram.Record(1e-9);
  histogram.Record(0.0);
  histogram.Record(-1.0);
  EXPECT_EQ(histogram.count(), 3);
  const double p = histogram.PercentileSeconds(0.5);
  // First bucket's midpoint: just above the 1 µs floor.
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 2e-6);
}

// Anything beyond the top of the range (>10^4 s) clamps into the last
// bucket: reported as huge, but never lost or out of bounds.
TEST(LatencyHistogramTest, HugeLatencyClampsToLastBucket) {
  LatencyHistogram histogram;
  histogram.Record(1e9);
  histogram.Record(1e5);
  EXPECT_EQ(histogram.count(), 2);
  const double p = histogram.PercentileSeconds(1.0);
  EXPECT_GT(p, 5e3);   // unmistakably "huge"
  EXPECT_LT(p, 2e4);   // but still within the representable decade
}

TEST(LatencyHistogramTest, PercentileIsMonotoneInQ) {
  LatencyHistogram histogram;
  // A wide geometric spread across many buckets.
  double v = 2e-6;
  for (int i = 0; i < 40; ++i) {
    histogram.Record(v);
    v *= 1.6;
  }
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double p = histogram.PercentileSeconds(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

// The geometric buckets promise ~±10% estimates; check p50/p99 against a
// known bimodal distribution with slack for the bucket width.
TEST(LatencyHistogramTest, PercentilesMatchKnownDistribution) {
  LatencyHistogram histogram;
  // 900 fast queries at 1 ms, 100 slow at 1 s.
  for (int i = 0; i < 900; ++i) histogram.Record(1e-3);
  for (int i = 0; i < 100; ++i) histogram.Record(1.0);
  EXPECT_EQ(histogram.count(), 1000);

  const double p50 = histogram.PercentileSeconds(0.50);
  EXPECT_GT(p50, 0.75e-3);
  EXPECT_LT(p50, 1.25e-3);

  const double p99 = histogram.PercentileSeconds(0.99);
  EXPECT_GT(p99, 0.75);
  EXPECT_LT(p99, 1.25);

  // The p90 boundary sits exactly at the fast/slow split; either side of
  // the split is a defensible answer, anything else is not.
  const double p90 = histogram.PercentileSeconds(0.90);
  const bool near_fast = p90 > 0.75e-3 && p90 < 1.25e-3;
  const bool near_slow = p90 > 0.75 && p90 < 1.25;
  EXPECT_TRUE(near_fast || near_slow) << "p90=" << p90;
}

TEST(LatencyHistogramTest, SingleValueAllQuantilesAgree) {
  LatencyHistogram histogram;
  histogram.Record(0.02);
  const double p0 = histogram.PercentileSeconds(0.0);
  const double p100 = histogram.PercentileSeconds(1.0);
  EXPECT_EQ(p0, p100);
  EXPECT_GT(p0, 0.015);
  EXPECT_LT(p0, 0.025);
}

// Record() is advertised as a relaxed fetch_add, safe from any thread; the
// total count must be exact under concurrency (TSan runs this too).
TEST(LatencyHistogramTest, ConcurrentRecordsAreAllCounted) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(1e-4 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

TEST(LatencyHistogramTest, BucketUpperBoundsIncreaseAndEndAtInfinity) {
  double prev = 0.0;
  for (int i = 0; i < LatencyHistogram::num_buckets() - 1; ++i) {
    const double upper = LatencyHistogram::BucketUpperSeconds(i);
    EXPECT_GT(upper, prev) << "bucket " << i;
    prev = upper;
  }
  EXPECT_TRUE(std::isinf(LatencyHistogram::BucketUpperSeconds(
      LatencyHistogram::num_buckets() - 1)));
}

TEST(LatencyHistogramTest, BucketCountsMatchRecordedValues) {
  LatencyHistogram histogram;
  histogram.Record(1e-3);
  histogram.Record(1e-3);
  histogram.Record(1.0);
  int64_t total = 0;
  for (int i = 0; i < LatencyHistogram::num_buckets(); ++i) {
    const int64_t n = histogram.BucketCount(i);
    EXPECT_GE(n, 0);
    if (n > 0) {
      // Each populated bucket's range must contain the value we put there:
      // upper bound above the value, lower bound (previous upper) below it.
      const double upper = LatencyHistogram::BucketUpperSeconds(i);
      const double lower =
          i == 0 ? 0.0 : LatencyHistogram::BucketUpperSeconds(i - 1);
      const bool holds_fast = lower <= 1e-3 && 1e-3 <= upper;
      const bool holds_slow = lower <= 1.0 && 1.0 <= upper;
      EXPECT_TRUE(holds_fast || holds_slow) << "bucket " << i;
    }
    total += n;
  }
  EXPECT_EQ(total, 3);
  EXPECT_EQ(total, histogram.count());
}

TEST(LatencyHistogramTest, MergeAddsBucketsAndCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 5; ++i) a.Record(1e-3);
  for (int i = 0; i < 3; ++i) b.Record(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 8);
  int64_t total = 0;
  for (int i = 0; i < LatencyHistogram::num_buckets(); ++i) {
    total += a.BucketCount(i);
  }
  EXPECT_EQ(total, 8);
  // The merged histogram's p99 now reflects b's slow tail.
  EXPECT_GT(a.PercentileSeconds(0.99), 0.5);
  // b itself is untouched.
  EXPECT_EQ(b.count(), 3);
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram a;
  LatencyHistogram empty;
  a.Record(2e-3);
  const double before = a.PercentileSeconds(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.PercentileSeconds(0.5), before);

  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.PercentileSeconds(0.5), before);
}

TEST(LatencyHistogramTest, MaxBucketOverflowStaysInLastBucket) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(1e300);
  EXPECT_EQ(histogram.count(), 100);
  EXPECT_EQ(histogram.BucketCount(LatencyHistogram::num_buckets() - 1), 100);
  // ApproxSumSeconds uses the last bucket's midpoint — finite, not inf.
  EXPECT_TRUE(std::isfinite(histogram.ApproxSumSeconds()));
}

TEST(LatencyHistogramTest, ApproxSumTracksRecordedMass) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.ApproxSumSeconds(), 0.0);
  for (int i = 0; i < 10; ++i) histogram.Record(0.1);
  // Midpoint-rule estimate: within the bucket's ~±10% of the true 1.0 s.
  EXPECT_GT(histogram.ApproxSumSeconds(), 0.8);
  EXPECT_LT(histogram.ApproxSumSeconds(), 1.25);
}

TEST(QosClassStatsTest, DefaultsAreZeroForAllClasses) {
  ServiceStats stats;
  ASSERT_EQ(stats.per_class.size(), static_cast<size_t>(kNumQosClasses));
  for (const QosClassStats& cls : stats.per_class) {
    EXPECT_EQ(cls.submitted, 0);
    EXPECT_EQ(cls.completed, 0);
    EXPECT_EQ(cls.deadline_exceeded, 0);
    EXPECT_EQ(cls.rejected_past_deadline, 0);
    EXPECT_EQ(cls.batch_fill, 0.0);
  }
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
