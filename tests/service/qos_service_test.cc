// QoS behaviour of the QueryService: strict class priority at dispatch,
// EDF within a class, weighted round-robin across sessions, deadline
// enforcement (queued-past-deadline rejection, in-flight cooperative
// abort), split completion counters, and Submit racing Drain()/Shutdown()
// with mixed classes.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/deepeverest.h"
#include "service/query_service.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace service {
namespace {

using core::DeepEverest;
using core::DeepEverestOptions;
using core::TopKResult;
using testing_util::TempDir;
using testing_util::TinySystem;

DeepEverestOptions EngineOptions() {
  DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  options.mai_ratio_override = 0.1;
  return options;
}

struct QosFixture {
  QosFixture(uint32_t num_inputs, uint64_t seed)
      : sys(num_inputs, seed, 8), dir("qos_svc") {
    auto opened = storage::FileStore::Open(dir.path());
    EXPECT_TRUE(opened.ok());
    store = std::make_unique<storage::FileStore>(std::move(opened.value()));
    auto created = DeepEverest::Create(sys.model.get(), &sys.dataset,
                                       store.get(), EngineOptions());
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    engine = std::move(created.value());
  }

  /// Warm every index, then turn each device batch into `launch_seconds` of
  /// real blocking time — queries become slow enough that dispatch order is
  /// observable through their queue waits.
  void MakeQueriesSlow(double launch_seconds) {
    ASSERT_TRUE(engine->PreprocessAllLayers().ok());
    engine->inference()->mutable_cost_model()->launch_overhead_seconds =
        launch_seconds;
    engine->inference()->set_simulate_device_latency(true);
  }

  /// `deadline_seconds` converts to the spec's deadline_ms; 0 keeps the
  /// spec's no-deadline default.
  core::QuerySpec MakeQuery(uint64_t session, QosClass qos,
                            double deadline_seconds = 0.0,
                            int weight = 1) const {
    core::QuerySpec query;
    query.layer = sys.model->activation_layers()[0];
    query.neurons = {0, 1};
    query.k = 5;
    query.session_id = session;
    query.qos = qos;
    if (deadline_seconds > 0.0) query.deadline_ms = deadline_seconds * 1e3;
    query.weight = weight;
    return query;
  }

  TinySystem sys;
  TempDir dir;
  std::unique_ptr<storage::FileStore> store;
  std::unique_ptr<DeepEverest> engine;
};

using Future = std::future<Result<TopKResult>>;

Future MustSubmit(QueryService* service, core::QuerySpec query) {
  auto submitted = service->Submit(std::move(query));
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  return std::move(submitted.value());
}

/// The ordering tests park a blocker query on the single worker and then
/// queue contenders behind it; the blocker must actually be *in flight*
/// first, or a higher-priority contender would legitimately jump it.
void WaitUntilInFlight(QueryService* service) {
  while (service->Snapshot().inflight == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

TEST(QosServiceTest, SubmitValidatesQosFields) {
  QosFixture fix(20, 90);
  auto service =
      QueryService::Create(fix.engine.get(), QueryServiceOptions());
  ASSERT_TRUE(service.ok());
  core::QuerySpec query = fix.MakeQuery(1, QosClass::kBatch);
  query.deadline_ms = 1e12;  // over the ~3-year bound ValidateSpec enforces
  EXPECT_FALSE((*service)->Submit(query).ok());
  query = fix.MakeQuery(1, QosClass::kBatch);
  query.neurons = {0, 0};  // duplicate neuron: same error as QL/the wire
  EXPECT_FALSE((*service)->Submit(query).ok());
  query = fix.MakeQuery(1, QosClass::kBatch);
  query.weight = 0;
  EXPECT_FALSE((*service)->Submit(query).ok());
  query = fix.MakeQuery(1, static_cast<QosClass>(7));
  EXPECT_FALSE((*service)->Submit(query).ok());
}

// The heart of the QoS contract: with a single worker held busy while both
// classes queue up, every interactive query is dispatched before any batch
// query — even though the batch queries were admitted first. Queue waits
// make the order observable: each batch query must have waited through all
// interactive executions.
TEST(QosServiceTest, QueuedInteractiveBeatsQueuedBatchDuringDrain) {
  QosFixture fix(40, 91);
  fix.MakeQueriesSlow(0.02);
  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 64;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  // Occupy the worker, then queue batch before interactive.
  Future blocker =
      MustSubmit(service->get(), fix.MakeQuery(99, QosClass::kBatch));
  WaitUntilInFlight(service->get());
  std::vector<Future> batch, interactive;
  for (uint64_t s = 0; s < 4; ++s) {
    batch.push_back(
        MustSubmit(service->get(), fix.MakeQuery(10 + s, QosClass::kBatch)));
  }
  for (uint64_t s = 0; s < 4; ++s) {
    interactive.push_back(MustSubmit(
        service->get(), fix.MakeQuery(20 + s, QosClass::kInteractive)));
  }
  (*service)->Drain();

  ASSERT_TRUE(blocker.get().ok());
  double max_interactive_wait = 0.0;
  for (Future& future : interactive) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    max_interactive_wait =
        std::max(max_interactive_wait, result->stats.queue_seconds);
  }
  for (Future& future : batch) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->stats.queue_seconds, max_interactive_wait)
        << "a batch query was dispatched before a queued interactive query";
  }

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.per_class[QosIndex(QosClass::kInteractive)].completed, 4);
  EXPECT_EQ(stats.per_class[QosIndex(QosClass::kBatch)].completed, 5);
}

// Within a class, deadline-carrying queries run earliest-deadline-first,
// ahead of deadline-free work — regardless of submission order.
TEST(QosServiceTest, EarliestDeadlineFirstWithinClass) {
  QosFixture fix(40, 92);
  fix.MakeQueriesSlow(0.02);
  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 64;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  Future blocker =
      MustSubmit(service->get(), fix.MakeQuery(99, QosClass::kBatch));
  WaitUntilInFlight(service->get());
  // Submission order: no deadline, generous deadline, tighter deadline.
  Future no_deadline =
      MustSubmit(service->get(), fix.MakeQuery(1, QosClass::kBatch));
  Future loose = MustSubmit(service->get(),
                            fix.MakeQuery(2, QosClass::kBatch, /*dl=*/30.0));
  Future tight = MustSubmit(service->get(),
                            fix.MakeQuery(3, QosClass::kBatch, /*dl=*/10.0));
  (*service)->Drain();

  ASSERT_TRUE(blocker.get().ok());
  auto tight_result = tight.get();
  auto loose_result = loose.get();
  auto fifo_result = no_deadline.get();
  ASSERT_TRUE(tight_result.ok());
  ASSERT_TRUE(loose_result.ok());
  ASSERT_TRUE(fifo_result.ok());
  EXPECT_LT(tight_result->stats.queue_seconds,
            loose_result->stats.queue_seconds);
  EXPECT_LT(loose_result->stats.queue_seconds,
            fifo_result->stats.queue_seconds);
}

// Weighted round-robin across sessions within a class: a weight-4 session
// submitting 4 queries gets its whole turn before a weight-1 session's
// queries start.
TEST(QosServiceTest, SessionWeightsGiveProportionalTurns) {
  QosFixture fix(40, 93);
  fix.MakeQueriesSlow(0.02);
  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 64;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  Future blocker =
      MustSubmit(service->get(), fix.MakeQuery(99, QosClass::kBatch));
  WaitUntilInFlight(service->get());
  std::vector<Future> heavy, light;
  for (int i = 0; i < 4; ++i) {
    heavy.push_back(MustSubmit(
        service->get(),
        fix.MakeQuery(1, QosClass::kBatch, /*dl=*/0.0, /*weight=*/4)));
  }
  for (int i = 0; i < 4; ++i) {
    light.push_back(MustSubmit(
        service->get(),
        fix.MakeQuery(2, QosClass::kBatch, /*dl=*/0.0, /*weight=*/1)));
  }
  (*service)->Drain();

  ASSERT_TRUE(blocker.get().ok());
  double max_heavy_wait = 0.0;
  for (Future& future : heavy) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    max_heavy_wait = std::max(max_heavy_wait, result->stats.queue_seconds);
  }
  for (Future& future : light) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->stats.queue_seconds, max_heavy_wait)
        << "weight-1 session dispatched inside the weight-4 session's turn";
  }
}

// A query whose deadline passes while it is still queued resolves to
// DeadlineExceeded without ever running — it lands in
// rejected_past_deadline, not deadline_exceeded, and burns no worker time.
TEST(QosServiceTest, QueuedPastDeadlineIsRejectedWithoutRunning) {
  QosFixture fix(40, 94);
  fix.MakeQueriesSlow(0.03);
  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 64;
  // This test pins the *queued*-expiry taxonomy: the doomed query must sit
  // behind the blocker until its deadline lapses. With preemption on, the
  // interactive arrival can park the batch blocker at a round boundary and
  // dispatch the doomed query before its 1 ms deadline expires.
  // preemption_test.cc covers the same taxonomy with preemption enabled.
  options.enable_preemption = false;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  Future blocker =
      MustSubmit(service->get(), fix.MakeQuery(99, QosClass::kBatch));
  WaitUntilInFlight(service->get());
  // 1 ms deadline behind a >=30 ms blocker: expires while queued.
  Future doomed = MustSubmit(
      service->get(), fix.MakeQuery(1, QosClass::kInteractive, /*dl=*/0.001));
  (*service)->Drain();

  ASSERT_TRUE(blocker.get().ok());
  auto result = doomed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.rejected_past_deadline, 1);
  EXPECT_EQ(stats.deadline_exceeded, 0);
  EXPECT_EQ(stats.completed, 1);  // the blocker
  const QosClassStats& cls =
      stats.per_class[QosIndex(QosClass::kInteractive)];
  EXPECT_EQ(cls.rejected_past_deadline, 1);
  EXPECT_EQ(cls.completed, 0);
}

// A deadline that expires mid-execution aborts cooperatively between NTA
// rounds: the future resolves to DeadlineExceeded well before the query
// would have finished, and it counts under deadline_exceeded.
TEST(QosServiceTest, InFlightDeadlineAbortsBetweenRounds) {
  QosFixture fix(60, 95);
  // Every device batch blocks 50 ms; a k=30 most-similar query needs many
  // rounds, so its full runtime is far beyond the 60 ms deadline while the
  // deadline comfortably survives dispatch.
  fix.MakeQueriesSlow(0.05);
  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 8;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  core::QuerySpec query = fix.MakeQuery(1, QosClass::kInteractive, /*dl=*/0.06);
  query.kind = core::QuerySpec::Kind::kMostSimilar;
  query.target_id = 5;
  query.k = 30;
  Future future = MustSubmit(service->get(), query);
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.rejected_past_deadline, 0);
  EXPECT_EQ(
      stats.per_class[QosIndex(QosClass::kInteractive)].deadline_exceeded, 1);
}

// Mixed classes still complete (and count correctly) with QoS disabled —
// the legacy flat round-robin policy remains a valid configuration.
TEST(QosServiceTest, MixedClassesCompleteWithQosDisabled) {
  QosFixture fix(40, 96);
  ASSERT_TRUE(fix.engine->PreprocessAllLayers().ok());
  QueryServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 64;
  options.enable_qos = false;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  std::vector<Future> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(MustSubmit(
        service->get(),
        fix.MakeQuery(static_cast<uint64_t>(i % 3),
                      static_cast<QosClass>(i % kNumQosClasses))));
  }
  for (Future& future : futures) EXPECT_TRUE(future.get().ok());

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_FALSE(stats.qos_enabled);
  EXPECT_EQ(stats.completed, 12);
  int64_t per_class_completed = 0;
  for (const QosClassStats& cls : stats.per_class) {
    per_class_completed += cls.completed;
  }
  EXPECT_EQ(per_class_completed, 12);  // classes still recorded
}

// Submit racing Drain() and Shutdown() with mixed classes and deadlines:
// no future may hang, and the split completion counters must account for
// every admitted query exactly once (overall and per class).
TEST(QosServiceTest, SubmitRacingDrainAndShutdownKeepsCountersConsistent) {
  QosFixture fix(40, 97);
  ASSERT_TRUE(fix.engine->PreprocessAllLayers().ok());
  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue_depth = 32;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 40;
  std::vector<std::vector<Future>> futures(kSubmitters);
  std::vector<std::thread> submitters;
  std::atomic<int> admitted{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        core::QuerySpec query = fix.MakeQuery(
            static_cast<uint64_t>(t * 10 + i % 3),
            static_cast<QosClass>(i % kNumQosClasses),
            // A few absurdly tight deadlines to exercise the rejection
            // path under load.
            i % 7 == 0 ? 1e-6 : 0.0);
        auto submitted = (*service)->Submit(query);
        if (submitted.ok()) {
          futures[static_cast<size_t>(t)].push_back(
              std::move(submitted.value()));
          admitted.fetch_add(1);
        } else if (submitted.status().IsFailedPrecondition()) {
          return;  // service shut down mid-burst; expected
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  (*service)->Drain();
  (*service)->Shutdown();
  for (std::thread& submitter : submitters) submitter.join();

  // Every admitted future must resolve (to OK, DeadlineExceeded, or
  // Cancelled) — none may hang.
  for (auto& lane : futures) {
    for (Future& future : lane) {
      auto result = future.get();
      if (!result.ok()) {
        const StatusCode code = result.status().code();
        EXPECT_TRUE(code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kCancelled)
            << result.status().ToString();
      }
    }
  }

  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.submitted, admitted.load());
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.failed + stats.cancelled +
                stats.deadline_exceeded + stats.rejected_past_deadline);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.inflight, 0u);

  // Per-class slices sum to the totals, field by field.
  int64_t submitted = 0, completed = 0, cancelled = 0, deadline_exceeded = 0,
          rejected_past_deadline = 0;
  for (const QosClassStats& cls : stats.per_class) {
    submitted += cls.submitted;
    completed += cls.completed;
    cancelled += cls.cancelled;
    deadline_exceeded += cls.deadline_exceeded;
    rejected_past_deadline += cls.rejected_past_deadline;
  }
  EXPECT_EQ(submitted, stats.submitted);
  EXPECT_EQ(completed, stats.completed);
  EXPECT_EQ(cancelled, stats.cancelled);
  EXPECT_EQ(deadline_exceeded, stats.deadline_exceeded);
  EXPECT_EQ(rejected_past_deadline, stats.rejected_past_deadline);
}

// Per-class latency histograms are recorded separately: a class that never
// ran reports zero percentiles while active classes report real ones.
TEST(QosServiceTest, PerClassLatencyPercentilesAreRecorded) {
  QosFixture fix(40, 98);
  ASSERT_TRUE(fix.engine->PreprocessAllLayers().ok());
  QueryServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 64;
  auto service = QueryService::Create(fix.engine.get(), options);
  ASSERT_TRUE(service.ok());

  std::vector<Future> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(MustSubmit(
        service->get(), fix.MakeQuery(1, QosClass::kInteractive)));
    futures.push_back(
        MustSubmit(service->get(), fix.MakeQuery(2, QosClass::kBatch)));
  }
  for (Future& future : futures) EXPECT_TRUE(future.get().ok());

  const ServiceStats stats = (*service)->Snapshot();
  const QosClassStats& interactive =
      stats.per_class[QosIndex(QosClass::kInteractive)];
  const QosClassStats& batch = stats.per_class[QosIndex(QosClass::kBatch)];
  const QosClassStats& best_effort =
      stats.per_class[QosIndex(QosClass::kBestEffort)];
  EXPECT_EQ(interactive.completed, 6);
  EXPECT_EQ(batch.completed, 6);
  EXPECT_GT(interactive.p50_latency_seconds, 0.0);
  EXPECT_GT(batch.p50_latency_seconds, 0.0);
  EXPECT_GE(batch.p99_latency_seconds, batch.p50_latency_seconds);
  EXPECT_EQ(best_effort.completed, 0);
  EXPECT_EQ(best_effort.p50_latency_seconds, 0.0);
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
