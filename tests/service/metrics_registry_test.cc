// MetricsEmitter/MetricsRegistry: family grouping (one HELP/TYPE per family
// across many labelled series), histogram rendering (+Inf bucket, _sum,
// _count), label escaping, collector add/remove, and the exposition-format
// validator both accepting our output and rejecting malformed text.
#include "service/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>

namespace deepeverest {
namespace service {
namespace {

TEST(MetricsEmitterTest, CounterAndGaugeRender) {
  MetricsEmitter emitter;
  emitter.Counter("requests_total", "Requests seen.", {{"model", "demo"}},
                  42.0);
  emitter.Gauge("queue_depth", "Queued work.", {}, 3.0);
  const std::string text = emitter.Render();
  EXPECT_NE(text.find("# HELP requests_total Requests seen.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{model=\"demo\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3\n"), std::string::npos);
  EXPECT_TRUE(ValidatePrometheusText(text).ok());
}

TEST(MetricsEmitterTest, OneHeaderPerFamilyAcrossLabelledSeries) {
  MetricsEmitter emitter;
  emitter.Counter("queries_total", "Queries.", {{"model", "a"}}, 1.0);
  emitter.Counter("queries_total", "Queries.", {{"model", "b"}}, 2.0);
  const std::string text = emitter.Render();
  size_t first = text.find("# TYPE queries_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE queries_total", first + 1), std::string::npos);
  // Both series render, adjacent under the one header.
  EXPECT_NE(text.find("queries_total{model=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("queries_total{model=\"b\"} 2\n"), std::string::npos);
  EXPECT_TRUE(ValidatePrometheusText(text).ok());
}

TEST(MetricsEmitterTest, HistogramGetsInfBucketSumAndCount) {
  MetricsEmitter emitter;
  emitter.Histogram("latency_seconds", "Latency.", {{"class", "interactive"}},
                    {{0.1, 3}, {1.0, 5}}, 1.75, 6);
  const std::string text = emitter.Render();
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("latency_seconds_bucket{class=\"interactive\",le=\"0.1\"} 3"),
      std::string::npos);
  EXPECT_NE(
      text.find("latency_seconds_bucket{class=\"interactive\",le=\"1\"} 5"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "latency_seconds_bucket{class=\"interactive\",le=\"+Inf\"} 6"),
      std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum{class=\"interactive\"} 1.75"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count{class=\"interactive\"} 6"),
            std::string::npos);
  EXPECT_TRUE(ValidatePrometheusText(text).ok());
}

TEST(MetricsEmitterTest, LabelValuesAreEscaped) {
  MetricsEmitter emitter;
  emitter.Gauge("build_info", "Build.", {{"flags", "a\\b \"q\"\nend"}}, 1.0);
  const std::string text = emitter.Render();
  EXPECT_NE(text.find("build_info{flags=\"a\\\\b \\\"q\\\"\\nend\"} 1\n"),
            std::string::npos);
  EXPECT_TRUE(ValidatePrometheusText(text).ok());
}

TEST(MetricsRegistryTest, CollectorsRunAndRemove) {
  MetricsRegistry registry;
  const int64_t keep = registry.AddCollector([](MetricsEmitter* emitter) {
    emitter->Counter("kept_total", "Kept.", {}, 1.0);
  });
  const int64_t removed = registry.AddCollector([](MetricsEmitter* emitter) {
    emitter->Counter("removed_total", "Removed.", {}, 1.0);
  });
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("kept_total 1"), std::string::npos);
  EXPECT_NE(text.find("removed_total 1"), std::string::npos);

  registry.RemoveCollector(removed);
  text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("kept_total 1"), std::string::npos);
  EXPECT_EQ(text.find("removed_total"), std::string::npos);
  registry.RemoveCollector(keep);
}

TEST(ValidatePrometheusTextTest, RejectsMalformedExpositions) {
  // Sample before its TYPE header.
  EXPECT_FALSE(ValidatePrometheusText("orphan_total 1\n").ok());
  // Missing trailing newline.
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE a counter\na 1").ok());
  // Bad metric name (leading digit).
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE 9bad counter\n9bad 1\n").ok());
  // Unterminated label value.
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE a counter\na{l=\"x} 1\n").ok());
  // Non-numeric value.
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE a counter\na twelve\n").ok());
  // Histogram without a +Inf bucket.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE h histogram\n"
                                      "h_bucket{le=\"1\"} 2\n"
                                      "h_sum 1\nh_count 2\n")
                   .ok());
  // Histogram buckets that shrink (not cumulative).
  EXPECT_FALSE(ValidatePrometheusText("# TYPE h histogram\n"
                                      "h_bucket{le=\"1\"} 5\n"
                                      "h_bucket{le=\"2\"} 3\n"
                                      "h_bucket{le=\"+Inf\"} 5\n")
                   .ok());
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE h histogram\n"
                                      "h_bucket{le=\"+Inf\"} 5\n"
                                      "h_count 7\n")
                   .ok());
  // Duplicate TYPE for one family.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE a counter\n"
                                      "# TYPE a counter\na 1\n")
                   .ok());
}

TEST(ValidatePrometheusTextTest, AcceptsWellFormedHistogramSeries) {
  const std::string text =
      "# HELP h Latency.\n"
      "# TYPE h histogram\n"
      "h_bucket{model=\"a\",le=\"0.5\"} 1\n"
      "h_bucket{model=\"a\",le=\"+Inf\"} 4\n"
      "h_sum{model=\"a\"} 2.5\n"
      "h_count{model=\"a\"} 4\n"
      "h_bucket{model=\"b\",le=\"0.5\"} 7\n"
      "h_bucket{model=\"b\",le=\"+Inf\"} 7\n"
      "h_sum{model=\"b\"} 1.1\n"
      "h_count{model=\"b\"} 7\n";
  EXPECT_TRUE(ValidatePrometheusText(text).ok())
      << ValidatePrometheusText(text).ToString();
}

}  // namespace
}  // namespace service
}  // namespace deepeverest
