#include "baselines/deepeverest_engine.h"

#include <gtest/gtest.h>

#include "baselines/reprocess_all.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace baselines {
namespace {

using testing_util::ExpectValidTopK;
using testing_util::TempDir;
using testing_util::TinySystem;

TEST(DeepEverestEngineTest, BehavesLikeAnyOtherEngine) {
  TinySystem sys(40, 79, 8);
  TempDir dir("dee");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  core::DeepEverestOptions options;
  options.batch_size = 8;
  options.num_partitions_override = 4;
  auto de = core::DeepEverest::Create(sys.model.get(), &sys.dataset,
                                      &store.value(), options);
  ASSERT_TRUE(de.ok());

  DeepEverestEngine engine(de->get());
  ReprocessAll reference(sys.engine.get());
  EXPECT_EQ(engine.name(), "DeepEverest");
  DE_ASSERT_OK(engine.Preprocess());

  const int layer = sys.model->activation_layers()[1];
  const core::NeuronGroup group{layer, {0, 5, 11}};

  auto high = engine.TopKHighest(group, 6, nullptr);
  ASSERT_TRUE(high.ok());
  auto expected_high = reference.TopKHighest(group, 6, nullptr);
  ASSERT_TRUE(expected_high.ok());
  ExpectValidTopK(*expected_high, *high, /*smaller_is_better=*/false);

  auto sim = engine.TopKMostSimilar(2, group, 6, nullptr);
  ASSERT_TRUE(sim.ok());
  auto expected_sim = reference.TopKMostSimilar(2, group, 6, nullptr);
  ASSERT_TRUE(expected_sim.ok());
  ExpectValidTopK(*expected_sim, *sim, /*smaller_is_better=*/true);

  auto bytes = engine.StorageBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);  // preprocessed: indexes persisted
}

}  // namespace
}  // namespace baselines
}  // namespace deepeverest
