#include "baselines/cta.h"

#include <gtest/gtest.h>

#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace baselines {
namespace {

using core::DistanceKind;
using core::MakeDistance;

storage::LayerActivationMatrix RandomMatrix(uint32_t inputs, uint64_t neurons,
                                            uint64_t seed) {
  Rng rng(seed);
  auto m = storage::LayerActivationMatrix::Make(inputs, neurons);
  for (uint32_t i = 0; i < inputs; ++i) {
    for (uint64_t n = 0; n < neurons; ++n) {
      m.MutableRow(i)[n] =
          std::max(0.0f, static_cast<float>(rng.NextGaussian()));
    }
  }
  return m;
}

TEST(CtaTest, MostSimilarMatchesScan) {
  const auto matrix = RandomMatrix(200, 10, 51);
  const std::vector<int64_t> neurons = {1, 4, 7};
  const std::vector<float> target = {0.5f, 1.0f, 0.0f};
  for (DistanceKind kind :
       {DistanceKind::kL1, DistanceKind::kL2, DistanceKind::kLInf}) {
    auto dist = MakeDistance(kind);
    ASSERT_TRUE(dist.ok());
    const CtaResult cta =
        CtaMostSimilar(matrix, neurons, target, 15, *dist, false, 0);
    const core::TopKResult scan =
        core::ScanMostSimilar(matrix, neurons, target, 15, *dist, false, 0);
    ASSERT_EQ(cta.top.entries.size(), scan.entries.size());
    for (size_t i = 0; i < scan.entries.size(); ++i) {
      EXPECT_NEAR(cta.top.entries[i].value, scan.entries[i].value, 1e-9)
          << "rank " << i;
    }
  }
}

TEST(CtaTest, HighestMatchesScan) {
  const auto matrix = RandomMatrix(150, 8, 52);
  const std::vector<int64_t> neurons = {0, 3};
  auto dist = MakeDistance(DistanceKind::kL2);
  ASSERT_TRUE(dist.ok());
  const CtaResult cta = CtaHighest(matrix, neurons, 10, *dist);
  const core::TopKResult scan = core::ScanHighest(matrix, neurons, 10, *dist);
  ASSERT_EQ(cta.top.entries.size(), scan.entries.size());
  for (size_t i = 0; i < scan.entries.size(); ++i) {
    EXPECT_NEAR(cta.top.entries[i].value, scan.entries[i].value, 1e-9);
  }
}

TEST(CtaTest, HaltsBeforeExhaustionOnEasyInstances) {
  // One input is far closer than the rest on every list: CTA should stop
  // long before depth n.
  auto matrix = storage::LayerActivationMatrix::Make(100, 2);
  for (uint32_t i = 0; i < 100; ++i) {
    matrix.MutableRow(i)[0] = 10.0f + static_cast<float>(i);
    matrix.MutableRow(i)[1] = 10.0f + static_cast<float>(i);
  }
  auto dist = MakeDistance(DistanceKind::kL1);
  const CtaResult cta = CtaMostSimilar(matrix, {0, 1}, {10.0f, 10.0f}, 1,
                                       *dist, false, 0);
  EXPECT_EQ(cta.top.entries[0].input_id, 0u);
  EXPECT_LT(cta.sorted_depth, 100);
}

TEST(CtaTest, ExcludeTargetOmitsIt) {
  const auto matrix = RandomMatrix(50, 4, 53);
  const std::vector<int64_t> neurons = {0, 1, 2, 3};
  std::vector<float> target(4);
  for (int i = 0; i < 4; ++i) target[i] = matrix.At(7, i);
  auto dist = MakeDistance(DistanceKind::kL2);
  const CtaResult cta =
      CtaMostSimilar(matrix, neurons, target, 5, *dist, true, 7);
  for (const auto& e : cta.top.entries) {
    EXPECT_NE(e.input_id, 7u);
  }
}

TEST(CtaTest, DepthIsAtMostN) {
  const auto matrix = RandomMatrix(60, 3, 54);
  auto dist = MakeDistance(DistanceKind::kLInf);
  const CtaResult cta = CtaMostSimilar(matrix, {0, 1, 2}, {0.0f, 0.0f, 0.0f},
                                       60, *dist, false, 0);
  EXPECT_LE(cta.sorted_depth, 60);
  EXPECT_EQ(cta.top.entries.size(), 60u);
}

}  // namespace
}  // namespace baselines
}  // namespace deepeverest
