// Empirical check of Theorem 4.1: NTA's input accesses are bounded by
// d + 2R, where d is CTA's maximal sorted-access depth on the same query
// over the AbsDiff relation and R is the NPI partition size.
#include <gtest/gtest.h>

#include "baselines/cta.h"
#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace baselines {
namespace {

using core::LayerIndex;
using core::LayerIndexConfig;
using core::NeuronGroup;
using core::NtaEngine;
using core::NtaOptions;
using testing_util::TinySystem;

class InstanceOptimalityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(InstanceOptimalityTest, NtaAccessesBoundedByCtaDepthPlusTwoR) {
  const auto [seed, num_partitions, group_size] = GetParam();
  const uint32_t n = 120;
  TinySystem sys(n, seed, /*batch_size=*/4);
  const int layer = sys.model->activation_layers()[1];

  // Materialise the layer for CTA and for index construction.
  std::vector<uint32_t> ids(n);
  for (uint32_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::vector<float>> rows;
  DE_ASSERT_OK(sys.engine->ComputeLayer(ids, layer, &rows));
  auto matrix = storage::LayerActivationMatrix::Make(n, rows[0].size());
  for (uint32_t i = 0; i < n; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), matrix.MutableRow(i));
  }
  auto index =
      LayerIndex::Build(matrix, LayerIndexConfig{num_partitions, 0.0});
  ASSERT_TRUE(index.ok());

  Rng rng(seed + 5);
  for (int trial = 0; trial < 4; ++trial) {
    NeuronGroup group;
    group.layer = layer;
    for (size_t pick : rng.SampleWithoutReplacement(
             rows[0].size(), static_cast<size_t>(group_size))) {
      group.neurons.push_back(static_cast<int64_t>(pick));
    }
    const uint32_t target = static_cast<uint32_t>(rng.NextUint64(n));
    std::vector<float> target_acts(group.neurons.size());
    for (size_t i = 0; i < group.neurons.size(); ++i) {
      target_acts[i] = matrix.At(target, group.neurons[i]);
    }

    // CTA depth d over the AbsDiff relation.
    const CtaResult cta = CtaMostSimilar(matrix, group.neurons, target_acts,
                                         10, core::L2Distance(),
                                         /*exclude_target=*/true, target);

    // NTA access count (excluding the target's own inference).
    NtaEngine nta(sys.engine.get(), &index.value());
    NtaOptions options;
    options.k = 10;
    auto result = nta.MostSimilarTo(group, target, options);
    ASSERT_TRUE(result.ok());

    // Partition size R (largest partition).
    const uint32_t r =
        (n + static_cast<uint32_t>(num_partitions) - 1) /
        static_cast<uint32_t>(num_partitions);

    // Theorem 4.1 bound, per neuron: accesses <= d + 2R. NTA's total
    // accesses are the union over the group, so the safe aggregate bound is
    // group_size * (d + 2R) — but the meaningful check (and what makes NTA
    // instance optimal with the group size as the constant) is against
    // |G| * (d + 2R).
    const int64_t bound =
        static_cast<int64_t>(group.neurons.size()) *
        (cta.sorted_depth + 2 * static_cast<int64_t>(r));
    EXPECT_LE(result->stats.inputs_run - 1, bound)
        << "seed=" << seed << " partitions=" << num_partitions
        << " group=" << group_size << " d=" << cta.sorted_depth
        << " R=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InstanceOptimalityTest,
    ::testing::Combine(::testing::Values(uint64_t{101}, uint64_t{202},
                                         uint64_t{303}),
                       ::testing::Values(4, 8, 24),    // partitions
                       ::testing::Values(1, 2, 4)));   // group size

}  // namespace
}  // namespace baselines
}  // namespace deepeverest
