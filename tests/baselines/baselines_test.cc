// Cross-checks every baseline engine against ReprocessAll (the reference)
// and verifies their storage / caching behaviours.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/lru_cache.h"
#include "baselines/preprocess_all.h"
#include "baselines/priority_cache.h"
#include "baselines/reprocess_all.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace baselines {
namespace {

using core::NeuronGroup;
using testing_util::ExpectValidTopK;
using testing_util::TempDir;
using testing_util::TinySystem;

TEST(PreprocessAllTest, QueriesRequireNoInferenceAfterPreprocess) {
  TinySystem sys(30, 71, 8);
  TempDir dir("pa");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  PreprocessAll engine(sys.engine.get(), &store.value());
  DE_ASSERT_OK(engine.Preprocess());
  EXPECT_GT(engine.preprocess_inference_seconds(), 0.0);

  const int64_t after_preprocess = sys.engine->stats().inputs_run;
  EXPECT_EQ(after_preprocess, 30);  // one pass over the dataset

  const int layer = sys.model->activation_layers()[1];
  auto result = engine.TopKMostSimilar(2, NeuronGroup{layer, {0, 3}}, 5,
                                       nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sys.engine->stats().inputs_run, after_preprocess);  // no new
  EXPECT_EQ(result->entries.size(), 5u);
}

TEST(PreprocessAllTest, QueryBeforePreprocessFails) {
  TinySystem sys(10, 72, 8);
  TempDir dir("pa");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  PreprocessAll engine(sys.engine.get(), &store.value());
  const int layer = sys.model->activation_layers()[0];
  EXPECT_TRUE(engine.TopKHighest(NeuronGroup{layer, {0}}, 3, nullptr)
                  .status()
                  .IsFailedPrecondition());
}

TEST(PreprocessAllTest, StorageIsFullMaterialization) {
  TinySystem sys(20, 73, 8);
  TempDir dir("pa");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  PreprocessAll engine(sys.engine.get(), &store.value());
  DE_ASSERT_OK(engine.Preprocess());
  int64_t total_neurons = 0;
  for (int layer = 0; layer < sys.model->num_layers(); ++layer) {
    total_neurons += sys.model->NeuronCount(layer);
  }
  auto bytes = engine.StorageBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_GE(*bytes, static_cast<uint64_t>(total_neurons) * 20 * 4);
}

TEST(AllEnginesTest, AgreeOnBothQueryTypes) {
  TinySystem sys(40, 74, 8);
  TempDir dir("all");
  auto store_pa = storage::FileStore::Open(dir.path() + "/pa");
  auto store_lru = storage::FileStore::Open(dir.path() + "/lru");
  auto store_pri = storage::FileStore::Open(dir.path() + "/pri");
  ASSERT_TRUE(store_pa.ok());
  ASSERT_TRUE(store_lru.ok());
  ASSERT_TRUE(store_pri.ok());

  ReprocessAll reference(sys.engine.get());
  PreprocessAll preprocess(sys.engine.get(), &store_pa.value());
  LruCacheEngine lru(sys.engine.get(), &store_lru.value(), 1 << 24);
  PriorityCacheEngine priority(sys.engine.get(), &store_pri.value(), 1 << 20);
  DE_ASSERT_OK(preprocess.Preprocess());
  DE_ASSERT_OK(priority.Preprocess());

  std::vector<QueryEngine*> engines = {&preprocess, &lru, &priority};
  const int layer = sys.model->activation_layers()[1];
  const NeuronGroup group{layer, {2, 5, 8}};

  auto expected_high = reference.TopKHighest(group, 7, nullptr);
  ASSERT_TRUE(expected_high.ok());
  auto expected_sim = reference.TopKMostSimilar(6, group, 7, nullptr);
  ASSERT_TRUE(expected_sim.ok());
  for (QueryEngine* engine : engines) {
    auto high = engine->TopKHighest(group, 7, nullptr);
    ASSERT_TRUE(high.ok()) << engine->name();
    ExpectValidTopK(*expected_high, *high, /*smaller_is_better=*/false);
    auto sim = engine->TopKMostSimilar(6, group, 7, nullptr);
    ASSERT_TRUE(sim.ok()) << engine->name();
    ExpectValidTopK(*expected_sim, *sim, /*smaller_is_better=*/true);
  }
}

TEST(LruCacheTest, HitAvoidsInferenceMissPaysFullPass) {
  TinySystem sys(25, 75, 8);
  TempDir dir("lru");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  LruCacheEngine lru(sys.engine.get(), &store.value(), 1 << 24);

  const int layer = sys.model->activation_layers()[0];
  const NeuronGroup group{layer, {0, 1}};
  auto first = lru.TopKHighest(group, 3, nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.inputs_run, 25);  // miss: full pass
  EXPECT_EQ(lru.misses(), 1);

  auto second = lru.TopKHighest(group, 3, nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.inputs_run, 0);  // hit: disk only
  EXPECT_EQ(lru.hits(), 1);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedLayer) {
  TinySystem sys(25, 76, 8);
  TempDir dir("lru");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  // Budget for roughly one layer (first activation layer: 16 neurons
  // * 25 inputs * 4 bytes = 1600 payload + header).
  LruCacheEngine lru(sys.engine.get(), &store.value(), 2000);

  const int layer_a = sys.model->activation_layers()[0];  // 16 neurons
  const int layer_b = sys.model->activation_layers()[1];  // 12 neurons
  ASSERT_TRUE(lru.TopKHighest(NeuronGroup{layer_a, {0}}, 3, nullptr).ok());
  EXPECT_TRUE(lru.IsCached(layer_a));
  ASSERT_TRUE(lru.TopKHighest(NeuronGroup{layer_b, {0}}, 3, nullptr).ok());
  // layer_b displaced layer_a under the small budget.
  EXPECT_TRUE(lru.IsCached(layer_b));
  EXPECT_FALSE(lru.IsCached(layer_a));
  // A budget violation never persists.
  auto bytes = lru.StorageBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_LE(*bytes, 2000u);
}

TEST(LruCacheTest, ReadmissionAfterEvictionKeepsAccountingExact) {
  TinySystem sys(25, 78, 8);
  TempDir dir("lru");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  LruCacheEngine lru(sys.engine.get(), &store.value(), 2000);

  const int layer_a = sys.model->activation_layers()[0];
  const int layer_b = sys.model->activation_layers()[1];
  // Thrash a <-> b under a one-layer budget; recorded bytes must enter and
  // leave symmetrically, so the total never drifts and never exceeds the
  // budget at rest.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(lru.TopKHighest(NeuronGroup{layer_a, {0}}, 3, nullptr).ok());
    ASSERT_TRUE(lru.TopKHighest(NeuronGroup{layer_b, {0}}, 3, nullptr).ok());
  }
  EXPECT_TRUE(lru.IsCached(layer_b));
  EXPECT_FALSE(lru.IsCached(layer_a));
  auto bytes = lru.StorageBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_LE(*bytes, 2000u);
  // Exactly one resident layer: its recorded size, not an accumulation.
  EXPECT_EQ(*bytes, storage::ActivationStore::PersistedBytes(
                        sys.dataset.size(),
                        static_cast<uint64_t>(
                            sys.model->NeuronCount(layer_b))));
  // Evicting everything returns the accounting to zero.
  ASSERT_TRUE(lru.TopKHighest(NeuronGroup{layer_a, {0}}, 3, nullptr).ok());
  EXPECT_FALSE(lru.IsCached(layer_b));
}

TEST(LruCacheTest, ConcurrentQueriesAreSafeAndCorrect) {
  TinySystem sys(30, 79, 8);
  TempDir dir("lru");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  LruCacheEngine lru(sys.engine.get(), &store.value(), 1 << 24);

  const std::vector<int>& layers = sys.model->activation_layers();
  auto expected_a = lru.TopKHighest(NeuronGroup{layers[0], {0, 1}}, 5,
                                    nullptr);
  auto expected_b = lru.TopKHighest(NeuronGroup{layers[1], {0, 1}}, 5,
                                    nullptr);
  ASSERT_TRUE(expected_a.ok());
  ASSERT_TRUE(expected_b.ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        auto result = lru.TopKHighest(
            NeuronGroup{use_a ? layers[0] : layers[1], {0, 1}}, 5, nullptr);
        ASSERT_TRUE(result.ok());
        const auto& expected = use_a ? *expected_a : *expected_b;
        ASSERT_EQ(result->entries.size(), expected.entries.size());
        for (size_t r = 0; r < expected.entries.size(); ++r) {
          EXPECT_EQ(result->entries[r].input_id,
                    expected.entries[r].input_id);
          EXPECT_EQ(result->entries[r].value, expected.entries[r].value);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(lru.hits() + lru.misses(), 2 + 4 * 8);
}

TEST(PriorityCacheTest, ChoosesLayersUnderBudgetByBenefit) {
  TinySystem sys(30, 77, 8);
  TempDir dir("pri");
  auto store = storage::FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  PriorityCacheEngine priority(sys.engine.get(), &store.value(), 3000);
  DE_ASSERT_OK(priority.Preprocess());
  // Something was chosen, and the chosen layers respect the budget.
  EXPECT_FALSE(priority.chosen_layers().empty());
  auto bytes = priority.StorageBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_LE(*bytes, 3000u);

  // Stored layers answer without inference; others recompute.
  const int stored = priority.chosen_layers().front();
  const int64_t before = sys.engine->stats().inputs_run;
  ASSERT_TRUE(
      priority.TopKHighest(NeuronGroup{stored, {0}}, 3, nullptr).ok());
  EXPECT_EQ(sys.engine->stats().inputs_run, before);

  int missing = -1;
  for (int layer = 0; layer < sys.model->num_layers(); ++layer) {
    if (!priority.IsStored(layer)) missing = layer;
  }
  ASSERT_GE(missing, 0);
  ASSERT_TRUE(
      priority.TopKHighest(NeuronGroup{missing, {0}}, 3, nullptr).ok());
  EXPECT_EQ(sys.engine->stats().inputs_run, before + 30);
}

TEST(ReprocessAllTest, EveryQueryPaysFullInference) {
  TinySystem sys(20, 78, 8);
  ReprocessAll engine(sys.engine.get());
  const int layer = sys.model->activation_layers()[0];
  auto r1 = engine.TopKHighest(NeuronGroup{layer, {0, 1}}, 3, nullptr);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->stats.inputs_run, 20);
  auto r2 = engine.TopKMostSimilar(1, NeuronGroup{layer, {0, 1}}, 3, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.inputs_run, 21);  // target pass + full scan
}

}  // namespace
}  // namespace baselines
}  // namespace deepeverest
