#include "baselines/kd_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nta.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace baselines {
namespace {

PointMatrix RandomPoints(uint32_t n, uint32_t dims, uint64_t seed) {
  Rng rng(seed);
  PointMatrix points;
  points.num_points = n;
  points.dims = dims;
  points.values.resize(static_cast<size_t>(n) * dims);
  for (float& v : points.values) {
    v = static_cast<float>(rng.NextGaussian());
  }
  return points;
}

std::vector<core::ResultEntry> BruteKnn(const PointMatrix& points,
                                        const float* target, int k,
                                        int64_t exclude) {
  std::vector<core::ResultEntry> all;
  for (uint32_t i = 0; i < points.num_points; ++i) {
    if (exclude >= 0 && static_cast<int64_t>(i) == exclude) continue;
    double d2 = 0.0;
    for (uint32_t d = 0; d < points.dims; ++d) {
      const double diff = points.Row(i)[d] - target[d];
      d2 += diff * diff;
    }
    all.push_back(core::ResultEntry{i, std::sqrt(d2)});
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.input_id < b.input_id;
  });
  all.resize(std::min<size_t>(all.size(), static_cast<size_t>(k)));
  return all;
}

class TreeParamTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, int>> {};

TEST_P(TreeParamTest, KdTreeMatchesBruteForce) {
  const auto [n, dims, k] = GetParam();
  const PointMatrix points = RandomPoints(n, dims, 61 + n + dims);
  KdTree tree{PointMatrix(points)};
  Rng rng(n * 7 + dims);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> target(dims);
    for (auto& v : target) v = static_cast<float>(rng.NextGaussian());
    const auto actual = tree.Query(target.data(), k);
    const auto expected = BruteKnn(points, target.data(), k, -1);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(actual[i].value, expected[i].value, 1e-5)
          << "n=" << n << " dims=" << dims << " k=" << k << " rank=" << i;
    }
  }
}

TEST_P(TreeParamTest, BallTreeMatchesBruteForce) {
  const auto [n, dims, k] = GetParam();
  const PointMatrix points = RandomPoints(n, dims, 62 + n + dims);
  BallTree tree{PointMatrix(points)};
  Rng rng(n * 11 + dims);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> target(dims);
    for (auto& v : target) v = static_cast<float>(rng.NextGaussian());
    const auto actual = tree.Query(target.data(), k);
    const auto expected = BruteKnn(points, target.data(), k, -1);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(actual[i].value, expected[i].value, 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeParamTest,
    ::testing::Combine(::testing::Values(10u, 100u, 500u),  // points
                       ::testing::Values(1u, 3u, 10u),      // dimensions
                       ::testing::Values(1, 5, 20)));       // k

TEST(KdTreeTest, ExcludeSkipsPoint) {
  const PointMatrix points = RandomPoints(50, 3, 63);
  KdTree tree{PointMatrix(points)};
  const float* self = points.Row(20);
  const auto with = tree.Query(self, 1);
  EXPECT_EQ(with[0].input_id, 20u);  // nearest to itself
  const auto without = tree.Query(self, 1, /*exclude=*/20);
  EXPECT_NE(without[0].input_id, 20u);
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  PointMatrix points;
  points.num_points = 40;
  points.dims = 2;
  points.values.assign(80, 1.0f);  // all identical
  KdTree tree{PointMatrix(points)};
  const float target[2] = {1.0f, 1.0f};
  const auto result = tree.Query(target, 5);
  ASSERT_EQ(result.size(), 5u);
  for (const auto& e : result) EXPECT_NEAR(e.value, 0.0, 1e-9);
}

TEST(BallTreeTest, DuplicatePointsHandled) {
  PointMatrix points;
  points.num_points = 40;
  points.dims = 2;
  points.values.assign(80, 2.0f);
  BallTree tree{PointMatrix(points)};
  const float target[2] = {0.0f, 0.0f};
  const auto result = tree.Query(target, 3);
  ASSERT_EQ(result.size(), 3u);
  for (const auto& e : result) EXPECT_NEAR(e.value, std::sqrt(8.0), 1e-5);
}

TEST(MakePointMatrixTest, RestrictsToGroupDims) {
  auto matrix = storage::LayerActivationMatrix::Make(3, 5);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint64_t n = 0; n < 5; ++n) {
      matrix.MutableRow(i)[n] = static_cast<float>(i * 10 + n);
    }
  }
  const PointMatrix points = MakePointMatrix(matrix, {4, 1});
  EXPECT_EQ(points.num_points, 3u);
  EXPECT_EQ(points.dims, 2u);
  EXPECT_EQ(points.Row(2)[0], 24.0f);  // input 2, neuron 4
  EXPECT_EQ(points.Row(2)[1], 21.0f);  // input 2, neuron 1
}

}  // namespace
}  // namespace baselines
}  // namespace deepeverest
