#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace deepeverest {
namespace {

TEST(ShapeTest, BasicProperties) {
  const Shape s({32, 32, 3});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 32);
  EXPECT_EQ(s.dim(2), 3);
  EXPECT_EQ(s.NumElements(), 32 * 32 * 3);
  EXPECT_EQ(s.ToString(), "[32, 32, 3]");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({4, 5}), Shape({4, 5}));
  EXPECT_NE(Shape({4, 5}), Shape({5, 4}));
  EXPECT_NE(Shape({4}), Shape({4, 1}));
}

TEST(ShapeTest, EmptyShapeIsScalar) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape({2, 3, 4}));
  EXPECT_EQ(t.NumElements(), 24);
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, HwcIndexingIsRowMajor) {
  Tensor t(Shape({2, 3, 4}));
  t.At(1, 2, 3) = 9.0f;
  // Flat offset: (1*3 + 2)*4 + 3 = 23.
  EXPECT_EQ(t[23], 9.0f);
  t[0] = 1.5f;
  EXPECT_EQ(t.At(0, 0, 0), 1.5f);
}

TEST(TensorTest, ConstructFromData) {
  Tensor t(Shape({4}), {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t[2], 3.0f);
}

TEST(TensorTest, FillOverwrites) {
  Tensor t(Shape({5}));
  t.Fill(2.5f);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a(Shape({3}), {1.0f, 2.0f, 3.0f});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 99.0f);
}

TEST(TensorTest, ToStringTruncatesLongTensors) {
  Tensor t(Shape({100}));
  const std::string s = t.ToString();
  EXPECT_NE(s.find("(100 elements)"), std::string::npos);
}

}  // namespace
}  // namespace deepeverest
