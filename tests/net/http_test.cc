// Tests for the socket-free HTTP wire-format helpers: request parsing
// (incremental, keep-alive, malformed input), chunked decoding, and URL
// decoding. This is the raw-byte attack surface, so it also runs under the
// ASan+UBSan CI job.
#include "net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace deepeverest {
namespace net {
namespace {

Status FeedAll(HttpRequestParser* parser, const std::string& bytes) {
  return parser->Feed(bytes.data(), bytes.size());
}

TEST(HttpRequestParserTest, ParsesGetWithQuery) {
  HttpRequestParser parser;
  ASSERT_TRUE(FeedAll(&parser,
                      "GET /v1/query?stream=1&neurons=0%2C2&k=5 HTTP/1.1\r\n"
                      "Host: x\r\nAccept: */*\r\n\r\n")
                  .ok());
  ASSERT_TRUE(parser.complete());
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/v1/query");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.query.at("stream"), "1");
  EXPECT_EQ(request.query.at("neurons"), "0,2");  // %2C decoded
  EXPECT_EQ(request.query.at("k"), "5");
  EXPECT_EQ(request.HeaderOrEmpty("host"), "x");      // lowercased name
  EXPECT_EQ(request.HeaderOrEmpty("absent"), "");
  EXPECT_EQ(request.body, "");
}

TEST(HttpRequestParserTest, ParsesPostBodyIncrementally) {
  HttpRequestParser parser;
  const std::string request_bytes =
      "POST /v1/query HTTP/1.1\r\nContent-Length: 11\r\n"
      "Content-Type: application/json\r\n\r\n{\"layer\":1}";
  // One byte at a time: no chunk boundary may confuse the parser.
  for (const char c : request_bytes) {
    ASSERT_TRUE(parser.Feed(&c, 1).ok());
  }
  ASSERT_TRUE(parser.complete());
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"layer\":1}");
}

TEST(HttpRequestParserTest, KeepAlivePipelining) {
  HttpRequestParser parser;
  ASSERT_TRUE(FeedAll(&parser,
                      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
                  .ok());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.TakeRequest().path, "/a");
  // The second pipelined request is already buffered.
  ASSERT_TRUE(FeedAll(&parser, "").ok());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.TakeRequest().path, "/b");
}

TEST(HttpRequestParserTest, RejectsMalformed) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",
      "GET /\r\n\r\n",                         // missing version
      "GET / HTTP/2.0\r\n\r\n",                // unsupported version
      "GET noslash HTTP/1.1\r\n\r\n",          // target must start with /
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
      "GET / HTTP/1.1\r\nName : v\r\n\r\n",    // space before colon
      "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
      "GET /%zz HTTP/1.1\r\n\r\n",             // bad percent escape
  };
  for (const char* text : bad) {
    HttpRequestParser parser;
    EXPECT_FALSE(FeedAll(&parser, text).ok()) << "accepted: " << text;
  }
}

TEST(HttpRequestParserTest, EnforcesHeadLimit) {
  HttpRequestParser parser;
  std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
  huge.append(kMaxHeaderBytes, 'a');
  const Status fed = FeedAll(&parser, huge);
  EXPECT_FALSE(fed.ok());
  EXPECT_EQ(fed.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(parser.body_too_large());  // head guard → 431, not 413
}

TEST(HttpRequestParserTest, EnforcesBodyLimit) {
  HttpRequestParser parser;
  const Status fed = FeedAll(
      &parser, "POST / HTTP/1.1\r\nContent-Length: " +
                   std::to_string(kMaxBodyBytes + 1) + "\r\n\r\n");
  EXPECT_FALSE(fed.ok());
  EXPECT_EQ(fed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(parser.body_too_large());  // body guard → 413
}

TEST(HttpRequestParserTest, PoisonedAfterError) {
  HttpRequestParser parser;
  ASSERT_FALSE(FeedAll(&parser, "BAD\r\n\r\n").ok());
  EXPECT_FALSE(FeedAll(&parser, "GET / HTTP/1.1\r\n\r\n").ok());
}

TEST(PercentDecodeTest, DecodesEscapes) {
  EXPECT_EQ(PercentDecode("a%20b%2Fc", false).value(), "a b/c");
  EXPECT_EQ(PercentDecode("a+b", true).value(), "a b");
  EXPECT_EQ(PercentDecode("a+b", false).value(), "a+b");  // '+' literal in paths
  EXPECT_FALSE(PercentDecode("%", false).ok());
  EXPECT_FALSE(PercentDecode("%1", false).ok());
  EXPECT_FALSE(PercentDecode("%gg", false).ok());
}

TEST(ParseQueryStringTest, SplitsPairs) {
  auto params = ParseQueryString("a=1&b=x%20y&flag&empty=");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->at("a"), "1");
  EXPECT_EQ(params->at("b"), "x y");
  EXPECT_EQ(params->at("flag"), "");
  EXPECT_EQ(params->at("empty"), "");
}

TEST(ChunkedDecoderTest, DecodesChunks) {
  ChunkedDecoder decoder;
  const std::string wire = "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  EXPECT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.TakeOutput(), "hello world");
}

TEST(ChunkedDecoderTest, DecodesBytewise) {
  ChunkedDecoder decoder;
  const std::string wire = "3\r\nabc\r\nA\r\n0123456789\r\n0\r\n\r\n";
  for (const char c : wire) {
    ASSERT_TRUE(decoder.Feed(&c, 1).ok());
  }
  EXPECT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.TakeOutput(), "abc0123456789");
}

TEST(ChunkedDecoderTest, IgnoresExtensionsAndTrailers) {
  ChunkedDecoder decoder;
  const std::string wire =
      "4;ext=1\r\ndata\r\n0\r\nX-Trailer: v\r\n\r\n";
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  EXPECT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.TakeOutput(), "data");
}

TEST(ChunkedDecoderTest, BoundsEndlessTrailer) {
  ChunkedDecoder decoder;
  const std::string start = "0\r\n";
  ASSERT_TRUE(decoder.Feed(start.data(), start.size()).ok());
  // A trailer line that never ends must be rejected, not buffered forever.
  const std::string filler(4096, 'x');
  Status fed = Status::OK();
  for (int i = 0; i < 8 && fed.ok(); ++i) {
    fed = decoder.Feed(filler.data(), filler.size());
  }
  EXPECT_FALSE(fed.ok());
}

TEST(ChunkedDecoderTest, RejectsMalformed) {
  {
    ChunkedDecoder decoder;
    const std::string wire = "zz\r\nxx\r\n";
    EXPECT_FALSE(decoder.Feed(wire.data(), wire.size()).ok());
  }
  {
    ChunkedDecoder decoder;
    const std::string wire = "3\r\nabcXX";  // missing CRLF after data
    EXPECT_FALSE(decoder.Feed(wire.data(), wire.size()).ok());
  }
}

TEST(FormatResponseHeadTest, FormatsStatusLineAndHeaders) {
  const std::string head =
      FormatResponseHead(404, {{"Content-Length", "0"}});
  EXPECT_EQ(head, "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
}

}  // namespace
}  // namespace net
}  // namespace deepeverest
