// Tests for the socket server + blocking client pair: request routing,
// keep-alive, concurrent connections, chunked streaming, error paths, and
// clean shutdown. Everything runs over real loopback sockets on
// kernel-assigned ports.
#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"

namespace deepeverest {
namespace net {
namespace {

Result<std::unique_ptr<HttpServer>> StartEcho() {
  HttpServerOptions options;  // port 0: kernel-assigned
  return HttpServer::Start(
      options, [](const HttpRequest& request, HttpResponseWriter* writer) {
        if (request.path == "/echo") {
          writer->WriteResponse(200, "text/plain",
                                request.method + " " + request.body);
          return;
        }
        if (request.path == "/stream") {
          if (!writer->BeginChunked(200, "application/x-ndjson")) return;
          for (int i = 0; i < 5; ++i) {
            writer->WriteChunk("line " + std::to_string(i) + "\n");
          }
          writer->EndChunked();
          return;
        }
        if (request.path == "/silent") {
          return;  // handler writes nothing: the server must answer 500
        }
        writer->WriteResponse(404, "text/plain", "nope\n");
      });
}

TEST(HttpServerTest, ServesSimpleRequests) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto get = client->Get("/echo");
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(get->status, 200);
  EXPECT_EQ(get->body, "GET ");
  EXPECT_EQ(get->HeaderOrEmpty("content-type"), "text/plain");

  auto post = client->Post("/echo", "payload");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 200);
  EXPECT_EQ(post->body, "POST payload");

  auto missing = client->Get("/nothing");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST(HttpServerTest, KeepAliveReusesOneConnection) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 10; ++i) {
    auto response = client->Post("/echo", std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->body, "POST " + std::to_string(i));
  }
  EXPECT_TRUE(client->connected());
}

TEST(HttpServerTest, StreamsChunkedResponses) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  std::vector<std::string> lines;
  auto response = client->GetStream("/stream", [&](const std::string& line) {
    lines.push_back(line);
    return true;
  });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->HeaderOrEmpty("transfer-encoding"), "chunked");
  ASSERT_EQ(lines.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lines[static_cast<size_t>(i)], "line " + std::to_string(i));
  }
  // The connection survives a completed stream (keep-alive).
  auto follow_up = client->Get("/echo");
  ASSERT_TRUE(follow_up.ok());
  EXPECT_EQ(follow_up->status, 200);
}

TEST(HttpServerTest, AbandonedStreamClosesConnection) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  int seen = 0;
  auto response = client->GetStream("/stream", [&](const std::string&) {
    ++seen;
    return false;  // abandon after the first line
  });
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(seen, 1);
  EXPECT_FALSE(client->connected());
}

TEST(HttpServerTest, ConcurrentConnections) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  constexpr int kThreads = 8;
  constexpr int kRequests = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        const std::string payload = std::to_string(t * 1000 + i);
        auto response = client->Post("/echo", payload);
        if (!response.ok() || response->status != 200 ||
            response->body != "POST " + payload) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(HttpServerTest, SilentHandlerYields500) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto response = client->Get("/silent");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 500);
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  // Raw garbage straight through the client's socket is awkward; instead
  // use a target with a broken percent escape, which fails head parsing.
  auto response = client->Get("/bad%zz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 400);
}

TEST(HttpServerTest, ShutdownUnblocksAndRejects) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();
  auto client = HttpClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  (*server)->Shutdown();
  // The held connection is closed and new connections are refused.
  auto after = client->Get("/echo");
  EXPECT_FALSE(after.ok());
  auto fresh = HttpClient::Connect("127.0.0.1", port);
  if (fresh.ok()) {
    EXPECT_FALSE(fresh->Get("/echo").ok());
  }
}

TEST(HttpServerTest, ServesPipelinedRequestsFromOneWrite) {
  auto server = StartEcho();
  ASSERT_TRUE(server.ok());
  // The HttpClient never pipelines, so speak raw sockets: two complete
  // requests in one send() must yield two responses without further input.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string two_requests =
      "GET /echo HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /echo HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, two_requests.data(), two_requests.size(), 0),
            static_cast<ssize_t>(two_requests.size()));
  // Connection: close on the second request means the server closes when
  // both responses are out — read to EOF and count status lines.
  std::string received;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    received.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t responses = 0;
  for (size_t pos = received.find("HTTP/1.1 200");
       pos != std::string::npos;
       pos = received.find("HTTP/1.1 200", pos + 1)) {
    ++responses;
  }
  EXPECT_EQ(responses, 2u) << received;
}

// Regression: the writer's state accessors take the same mutex as the
// write path. They used to read mu_-guarded fields without the lock —
// benign only while every caller respected the result-future's
// happens-before protocol. Polling the accessors while another thread
// streams chunks makes TSan fail should that lock ever disappear again.
TEST(HttpServerTest, WriterAccessorsAreSafeDuringConcurrentChunks) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  HttpResponseWriter writer(fds[0]);

  std::atomic<bool> stop{false};
  std::thread drainer([&] {  // keep SendAll from blocking on a full buffer
    char buf[4096];
    while (::read(fds[1], buf, sizeof(buf)) > 0) {
    }
  });
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)writer.response_started();
      (void)writer.status();
      (void)writer.keep_alive();
      writer.set_keep_alive(true);
    }
  });

  ASSERT_TRUE(writer.BeginChunked(200, "application/x-ndjson"));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(writer.WriteChunk("tick " + std::to_string(i) + "\n"));
  }
  EXPECT_TRUE(writer.EndChunked());
  stop.store(true, std::memory_order_release);
  poller.join();
  ::close(fds[0]);
  drainer.join();

  EXPECT_TRUE(writer.response_started());
  EXPECT_EQ(writer.status(), 200);
  EXPECT_TRUE(writer.keep_alive());  // stream terminated cleanly
}

TEST(HttpServerTest, StartValidatesOptions) {
  HttpServerOptions options;
  EXPECT_FALSE(HttpServer::Start(options, nullptr).ok());
  options.bind_address = "not-an-ip";
  EXPECT_FALSE(HttpServer::Start(options, [](const HttpRequest&,
                                             HttpResponseWriter*) {})
                   .ok());
}

}  // namespace
}  // namespace net
}  // namespace deepeverest
