// End-to-end tests for the HTTP query API over real loopback sockets:
// bit-identical results vs. the in-process sequential reference, URL and
// JSON encodings, model routing through the EngineRegistry (/v1/models,
// unknown-model 404, per-model /v1/stats), declarative queries over
// /v1/ql, NDJSON streaming with progress-before-result ordering,
// client-disconnect cancellation (reflected in ServiceStats.cancelled),
// deadline_ms=0 rejection without inference, and the error-status mapping.
#include "net/query_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/demo_system.h"
#include "common/json.h"
#include "core/query_spec_json.h"
#include "net/http.h"
#include "net/http_client.h"

namespace deepeverest {
namespace net {
namespace {

using bench_util::DemoSystem;
using bench_util::DemoSystemOptions;

/// Demo system + service + registry + server + connected client, on a
/// kernel port. `second_model` registers an independent second system (its
/// own engine and service over a different seed) under "twin".
struct ServerFixture {
  explicit ServerFixture(DemoSystemOptions demo_options = {},
                         service::QueryServiceOptions service_options = {},
                         bool second_model = false) {
    auto made = DemoSystem::Make(demo_options);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    system = std::move(made.value());
    auto created =
        service::QueryService::Create(system->engine(), service_options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    service = std::move(created.value());
    EXPECT_TRUE(registry.Register(system->model_name(), service.get()).ok());
    if (second_model) {
      DemoSystemOptions second_options = demo_options;
      second_options.seed = demo_options.seed + 555;
      auto second_made = DemoSystem::Make(second_options);
      EXPECT_TRUE(second_made.ok());
      second_system = std::move(second_made.value());
      auto second_created = service::QueryService::Create(
          second_system->engine(), service_options);
      EXPECT_TRUE(second_created.ok());
      second_service = std::move(second_created.value());
      EXPECT_TRUE(registry.Register("twin", second_service.get()).ok());
    }
    QueryServerOptions server_options;
    auto started = QueryServer::Start(&registry, server_options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(started.value());
  }

  ~ServerFixture() {
    if (server != nullptr) server->Shutdown();
    if (service != nullptr) service->Shutdown();
    if (second_service != nullptr) second_service->Shutdown();
  }

  Result<HttpClient> Connect() {
    return HttpClient::Connect("127.0.0.1", server->port());
  }

  /// Engine-direct reference through the same canonical ExecuteSpec path.
  Result<core::TopKResult> Reference(const core::QuerySpec& spec) {
    return system->engine()->ExecuteSpec(spec);
  }

  std::unique_ptr<DemoSystem> system;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<DemoSystem> second_system;
  std::unique_ptr<service::QueryService> second_service;
  service::EngineRegistry registry;
  std::unique_ptr<QueryServer> server;
};

void ExpectEntriesMatch(const JsonValue& entries,
                        const core::TopKResult& expected) {
  ASSERT_TRUE(entries.is_array());
  ASSERT_EQ(entries.array_items().size(), expected.entries.size());
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    const JsonValue& entry = entries.array_items()[i];
    ASSERT_NE(entry.Find("input_id"), nullptr);
    ASSERT_NE(entry.Find("value"), nullptr);
    EXPECT_EQ(entry.Find("input_id")->int_value(),
              static_cast<int64_t>(expected.entries[i].input_id));
    // Bit-identical: %.17g round-trips doubles exactly.
    EXPECT_EQ(entry.Find("value")->number_value(),
              expected.entries[i].value);
  }
}

/// The /v1/stats section of `model`; nullptr when absent.
const JsonValue* FindModelStats(const JsonValue& stats,
                                const std::string& model) {
  const JsonValue* models = stats.Find("models");
  if (models == nullptr || !models->is_array()) return nullptr;
  for (const JsonValue& section : models->array_items()) {
    const JsonValue* name = section.Find("model");
    if (name != nullptr && name->is_string() &&
        name->string_value() == model) {
      return &section;
    }
  }
  return nullptr;
}

TEST(QueryServerTest, PostQueryMatchesSequentialReference) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  const std::vector<int>& layers = fix.system->model()->activation_layers();
  for (int i = 0; i < 8; ++i) {
    core::QuerySpec spec;
    spec.layer = layers[static_cast<size_t>(i) % layers.size()];
    spec.neurons = {i % 4, (i % 4 + 2) % 8};
    spec.k = 5;
    spec.session_id = static_cast<uint64_t>(i % 3);
    spec.qos = i % 2 == 0 ? QosClass::kInteractive : QosClass::kBatch;
    if (i % 2 == 1) {
      spec.kind = core::QuerySpec::Kind::kMostSimilar;
      spec.target_id = i;
    }
    auto reference = fix.Reference(spec);
    ASSERT_TRUE(reference.ok());

    auto response = client->Post("/v1/query", core::QuerySpecJson(spec));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
    auto body = ParseJson(response->body);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    ASSERT_NE(body->Find("entries"), nullptr);
    ExpectEntriesMatch(*body->Find("entries"), reference.value());
    const JsonValue* stats = body->Find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->Find("inputs_run")->int_value(),
              reference->stats.inputs_run);
  }
}

TEST(QueryServerTest, GetQueryViaUrlParameters) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 2, 4};
  spec.k = 5;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  auto response = client->Get(
      "/v1/query?kind=highest&layer=" + std::to_string(spec.layer) +
      "&neurons=0,2,4&k=5&qos=interactive&session_id=7");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());
  ExpectEntriesMatch(*body->Find("entries"), reference.value());
}

// The model field routes between registered models: the same query
// addressed to each model returns that model's own (different) answer,
// and the answers are bit-identical to each engine's direct reference.
TEST(QueryServerTest, ModelFieldRoutesBetweenEngines) {
  ServerFixture fix({}, {}, /*second_model=*/true);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1, 2};
  spec.k = 5;
  auto reference_a = fix.Reference(spec);
  auto reference_b = fix.second_system->engine()->ExecuteSpec(spec);
  ASSERT_TRUE(reference_a.ok());
  ASSERT_TRUE(reference_b.ok());

  struct Arm {
    std::string model;
    const core::TopKResult* expected;
  };
  const Arm arms[] = {{fix.system->model_name(), &reference_a.value()},
                      {"twin", &reference_b.value()},
                      // No model field -> the default (first registered).
                      {"", &reference_a.value()}};
  for (const Arm& arm : arms) {
    auto response =
        client->Post("/v1/query", core::QuerySpecJson(spec, arm.model));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto body = ParseJson(response->body);
    ASSERT_TRUE(body.ok());
    ExpectEntriesMatch(*body->Find("entries"), *arm.expected);
  }

  // The two models must actually disagree somewhere, or routing would be
  // unobservable.
  bool differ =
      reference_a->entries.size() != reference_b->entries.size();
  for (size_t i = 0; !differ && i < reference_a->entries.size(); ++i) {
    differ = reference_a->entries[i].input_id !=
                 reference_b->entries[i].input_id ||
             reference_a->entries[i].value != reference_b->entries[i].value;
  }
  EXPECT_TRUE(differ);

  // Per-model stats: each arm's queries landed on its own service.
  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto parsed = ParseJson(stats->body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* a = FindModelStats(*parsed, fix.system->model_name());
  const JsonValue* b = FindModelStats(*parsed, "twin");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->Find("completed")->int_value(), 2);  // named + default
  EXPECT_EQ(b->Find("completed")->int_value(), 1);
}

TEST(QueryServerTest, ModelsEndpointListsRegistry) {
  ServerFixture fix({}, {}, /*second_model=*/true);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  auto response = client->Get("/v1/models");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());
  const JsonValue* models = body->Find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_TRUE(models->is_array());
  ASSERT_EQ(models->array_items().size(), 2u);
  EXPECT_EQ(models->array_items()[0].string_value(),
            fix.system->model_name());
  EXPECT_EQ(models->array_items()[1].string_value(), "twin");
  EXPECT_EQ(body->Find("default")->string_value(),
            fix.system->model_name());
}

// Declarative text over the wire: POST /v1/ql and GET /v1/ql?ql=... run
// the QL front end through the full service path — same result, same
// exact attribution as the structured encoding.
TEST(QueryServerTest, QlEndpointExecutesDeclarativeText) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  // A derived-group query — previously inexpressible over the wire.
  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kHighest;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.top_neurons = 3;
  spec.top_of = 5;
  spec.k = 6;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  // POST body form.
  JsonWriter w;
  w.BeginObject();
  w.Key("ql");
  w.String(spec.ToString());
  w.Key("qos");
  w.String("interactive");
  w.EndObject();
  auto post = client->Post("/v1/ql", w.TakeString());
  ASSERT_TRUE(post.ok());
  ASSERT_EQ(post->status, 200) << post->body;
  auto post_body = ParseJson(post->body);
  ASSERT_TRUE(post_body.ok());
  ExpectEntriesMatch(*post_body->Find("entries"), reference.value());
  EXPECT_EQ(post_body->Find("stats")->Find("inputs_run")->int_value(),
            reference->stats.inputs_run);

  // GET parameter form (percent-encoded QL text).
  auto get = client->Get("/v1/ql?ql=" + PercentEncode(spec.ToString()));
  ASSERT_TRUE(get.ok());
  ASSERT_EQ(get->status, 200) << get->body;
  auto get_body = ParseJson(get->body);
  ASSERT_TRUE(get_body.ok());
  ExpectEntriesMatch(*get_body->Find("entries"), reference.value());

  // The structured wire encoding of the same derived-group spec agrees.
  auto structured = client->Post("/v1/query", core::QuerySpecJson(spec));
  ASSERT_TRUE(structured.ok());
  ASSERT_EQ(structured->status, 200) << structured->body;
  auto structured_body = ParseJson(structured->body);
  ASSERT_TRUE(structured_body.ok());
  ExpectEntriesMatch(*structured_body->Find("entries"), reference.value());

  // ql + structured query fields is a contradiction, not a merge.
  auto conflict = client->Post(
      "/v1/ql",
      R"json({"ql":"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1)","k":9})json");
  ASSERT_TRUE(conflict.ok());
  EXPECT_EQ(conflict->status, 400);
  // /v1/ql without ql text is an error, not an empty query.
  auto missing = client->Post("/v1/ql", R"({"qos":"batch"})");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);
}

TEST(QueryServerTest, StreamingEmitsProgressThenResult) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kHighest;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1, 2, 3};
  spec.k = 10;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  int progress_events = 0;
  int result_events = 0;
  int64_t last_round = -1;
  size_t last_confirmed = 0;
  bool progress_after_result = false;
  auto response = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string(spec.layer) + "&neurons=0,1,2,3&k=10",
      [&](const std::string& line) {
        auto event = ParseJson(line);
        EXPECT_TRUE(event.ok()) << line;
        if (!event.ok()) return true;
        const std::string kind = event->Find("event")->string_value();
        if (kind == "progress") {
          if (result_events > 0) progress_after_result = true;
          ++progress_events;
          EXPECT_GT(event->Find("round")->int_value(), last_round);
          last_round = event->Find("round")->int_value();
          const size_t confirmed =
              event->Find("confirmed")->array_items().size();
          EXPECT_GE(confirmed, last_confirmed);
          last_confirmed = confirmed;
        } else if (kind == "result") {
          ++result_events;
          ExpectEntriesMatch(*event->Find("entries"), reference.value());
        }
        return true;
      });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->HeaderOrEmpty("content-type"), "application/x-ndjson");
  EXPECT_GE(progress_events, 1);
  EXPECT_EQ(result_events, 1);
  EXPECT_FALSE(progress_after_result);
}

// Streaming composes with the declarative endpoint: a POST /v1/ql body
// carrying "stream":1 (the body form of the flag, like "model") delivers
// NDJSON progress for QL text.
TEST(QueryServerTest, StreamingQlQuery) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kHighest;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1, 2, 3};
  spec.k = 10;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  JsonWriter w;
  w.BeginObject();
  w.Key("ql");
  w.String(spec.ToString());
  w.Key("stream");
  w.Int(1);
  w.EndObject();
  int progress_events = 0;
  int result_events = 0;
  bool final_matches = false;
  auto response = client->PostStream(
      "/v1/ql", w.TakeString(), [&](const std::string& line) {
        auto event = ParseJson(line);
        if (!event.ok()) return true;
        const JsonValue* kind = event->Find("event");
        if (kind == nullptr) return true;
        if (kind->string_value() == "progress") ++progress_events;
        if (kind->string_value() == "result") {
          ++result_events;
          const JsonValue* entries = event->Find("entries");
          final_matches = entries != nullptr;
          if (final_matches) {
            ExpectEntriesMatch(*entries, reference.value());
          }
        }
        return true;
      });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_GE(progress_events, 1);
  EXPECT_EQ(result_events, 1);
  EXPECT_TRUE(final_matches);
}

TEST(QueryServerTest, DisconnectCancelsStreamingQuery) {
  DemoSystemOptions demo_options;
  demo_options.device_latency_scale = 8.0;  // slow: the stream outlives us
  ServerFixture fix(demo_options);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  int seen = 0;
  auto response = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string(fix.system->model()->activation_layers().front()) +
          "&neurons=0,1,2,3&k=10",
      [&](const std::string&) {
        ++seen;
        return false;  // hard-disconnect after the first event
      });
  ASSERT_TRUE(response.ok());
  ASSERT_GE(seen, 1);
  EXPECT_FALSE(client->connected());

  // The server notices at its next failed chunk write, flips the query's
  // context to cancelled, and NTA aborts between rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int64_t cancelled = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    cancelled = fix.service->Snapshot().cancelled;
    if (cancelled > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(cancelled, 1)
      << "disconnect did not surface as a cancelled query";
}

TEST(QueryServerTest, DeadlineZeroRejectedWithoutInference) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  const std::string body =
      R"({"kind":"highest","layer":)" +
      std::to_string(fix.system->model()->activation_layers().front()) +
      R"(,"neurons":[0,1],"k":3,"deadline_ms":0})";
  auto response = client->Post("/v1/query", body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504) << response->body;
  auto parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("error")->Find("code")->string_value(),
            "DeadlineExceeded");

  const service::ServiceStats stats = fix.service->Snapshot();
  EXPECT_EQ(stats.rejected_past_deadline, 1);  // never ran
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.deadline_exceeded, 0);  // not a mid-query abort
}

TEST(QueryServerTest, ErrorStatusMapping) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  struct Case {
    const char* name;
    const char* target;
    const char* body;  // nullptr = GET
    int expected_status;
  };
  const std::string valid_layer =
      std::to_string(fix.system->model()->activation_layers().front());
  const std::string bad_k_body =
      R"({"kind":"highest","layer":)" + valid_layer +
      R"(,"neurons":[0],"k":0})";
  const std::string wrong_model_body =
      R"({"model":"NotServed","kind":"highest","layer":)" + valid_layer +
      R"(,"neurons":[0],"k":3})";
  const std::string bad_layer_body =
      R"({"kind":"highest","layer":9999,"neurons":[0],"k":3})";
  const Case cases[] = {
      {"unknown route", "/v1/nope", nullptr, 404},
      {"bad JSON", "/v1/query", "{not json", 400},
      {"non-object body", "/v1/query", "[1,2]", 400},
      {"missing layer", "/v1/query", R"({"neurons":[0]})", 400},
      {"missing neurons", "/v1/query", R"({"layer":1})", 400},
      {"k=0", "/v1/query", bad_k_body.c_str(), 400},
      {"wrong model", "/v1/query", wrong_model_body.c_str(), 404},
      {"unknown layer", "/v1/query", bad_layer_body.c_str(), 400},
      {"most_similar without target", "/v1/query",
       R"({"kind":"most_similar","layer":1,"neurons":[0]})", 400},
      {"bad qos", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"qos":"urgent"})", 400},
      // Unified validation: duplicate and negative neuron indices are the
      // same InvalidArgument every entry point produces.
      {"duplicate neuron", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[2,2],"k":3})", 400},
      {"negative neuron", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[-3],"k":3})", 400},
      {"explicit + derived group", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"top_neurons":2,)"
       R"("top_of":1,"k":3})", 400},
      // top_of on an explicit group would be silently ignored — the
      // caller almost certainly dropped top_neurons; reject, don't guess.
      {"top_of without top_neurons", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"top_of":7,"k":3})",
       400},
      // target_id on a highest query would be silently ignored — the
      // caller almost certainly forgot kind=most_similar.
      {"target_id on highest", "/v1/query",
       R"({"layer":1,"neurons":[0],"target_id":7,"k":3})", 400},
      {"bad distance", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"distance":"cosine"})",
       400},
      // Out-of-int64-range and fractional integers must 400, not be
      // truncated into a different (or UB-producing) query.
      {"huge layer", "/v1/query",
       R"({"kind":"highest","layer":1e300,"neurons":[0],"k":3})", 400},
      {"fractional k", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"k":2.5})", 400},
      // 2^32+2 fits int64 but wraps int: must 400, not become k=2.
      {"int-wrapping k", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"k":4294967298})", 400},
      {"fractional neuron", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[1.9],"k":3})", 400},
  };
  for (const Case& c : cases) {
    auto response = c.body == nullptr
                        ? client->Get(c.target)
                        : client->Post(c.target, c.body);
    ASSERT_TRUE(response.ok()) << c.name;
    EXPECT_EQ(response->status, c.expected_status)
        << c.name << ": " << response->body;
  }

  // Wrong method on a fixed route.
  auto bad_method = client->Post("/v1/stats", "{}");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method->status, 405);
  auto bad_models_method = client->Post("/v1/models", "{}");
  ASSERT_TRUE(bad_models_method.ok());
  EXPECT_EQ(bad_models_method->status, 405);
}

TEST(QueryServerTest, StatsEndpointReportsPerModelSections) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  // Run one query so the counters move.
  const std::string body =
      R"({"kind":"highest","layer":)" +
      std::to_string(fix.system->model()->activation_layers().front()) +
      R"(,"neurons":[0,1],"k":3,"qos":"interactive"})";
  ASSERT_EQ(client->Post("/v1/query", body)->status, 200);

  auto response = client->Get("/v1/stats");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto stats = ParseJson(response->body);
  ASSERT_TRUE(stats.ok()) << response->body;
  EXPECT_EQ(stats->Find("default_model")->string_value(),
            fix.system->model_name());
  const JsonValue* section =
      FindModelStats(*stats, fix.system->model_name());
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->Find("submitted")->int_value(), 1);
  EXPECT_EQ(section->Find("completed")->int_value(), 1);
  EXPECT_TRUE(section->Find("qos_enabled")->bool_value());
  const JsonValue* per_class = section->Find("per_class");
  ASSERT_NE(per_class, nullptr);
  ASSERT_EQ(per_class->array_items().size(),
            static_cast<size_t>(kNumQosClasses));
  EXPECT_EQ(per_class->array_items()[0].Find("class")->string_value(),
            "interactive");
  EXPECT_EQ(per_class->array_items()[0].Find("completed")->int_value(), 1);
}

TEST(QueryServerTest, HealthzAndModelName) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());
  auto health = client->Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  // Matching model name is accepted.
  const std::string body = R"({"model":")" + fix.system->model_name() +
                           R"(","kind":"highest","layer":)" +
                           std::to_string(fix.system->model()
                                              ->activation_layers()
                                              .front()) +
                           R"(,"neurons":[0],"k":3})";
  EXPECT_EQ(client->Post("/v1/query", body)->status, 200);
}

}  // namespace
}  // namespace net
}  // namespace deepeverest
