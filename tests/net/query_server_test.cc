// End-to-end tests for the HTTP query API over real loopback sockets:
// bit-identical results vs. the in-process sequential reference, URL and
// JSON encodings, model routing through the EngineRegistry (/v1/models,
// unknown-model 404, per-model /v1/stats), declarative queries over
// /v1/ql, NDJSON streaming with progress-before-result ordering,
// client-disconnect cancellation (reflected in ServiceStats.cancelled),
// deadline_ms=0 rejection without inference, and the error-status mapping.
#include "net/query_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/demo_system.h"
#include "common/json.h"
#include "common/logging.h"
#include "core/query_spec_json.h"
#include "net/http.h"
#include "net/http_client.h"
#include "service/metrics_registry.h"

namespace deepeverest {
namespace net {
namespace {

using bench_util::DemoSystem;
using bench_util::DemoSystemOptions;

/// Demo system + service + registry + server + connected client, on a
/// kernel port. `second_model` registers an independent second system (its
/// own engine and service over a different seed) under "twin".
struct ServerFixture {
  explicit ServerFixture(DemoSystemOptions demo_options = {},
                         service::QueryServiceOptions service_options = {},
                         bool second_model = false) {
    auto made = DemoSystem::Make(demo_options);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    system = std::move(made.value());
    auto created =
        service::QueryService::Create(system->engine(), service_options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    service = std::move(created.value());
    EXPECT_TRUE(registry.Register(system->model_name(), service.get()).ok());
    if (second_model) {
      DemoSystemOptions second_options = demo_options;
      second_options.seed = demo_options.seed + 555;
      auto second_made = DemoSystem::Make(second_options);
      EXPECT_TRUE(second_made.ok());
      second_system = std::move(second_made.value());
      auto second_created = service::QueryService::Create(
          second_system->engine(), service_options);
      EXPECT_TRUE(second_created.ok());
      second_service = std::move(second_created.value());
      EXPECT_TRUE(registry.Register("twin", second_service.get()).ok());
    }
    QueryServerOptions server_options;
    auto started = QueryServer::Start(&registry, server_options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(started.value());
  }

  ~ServerFixture() {
    if (server != nullptr) server->Shutdown();
    if (service != nullptr) service->Shutdown();
    if (second_service != nullptr) second_service->Shutdown();
  }

  Result<HttpClient> Connect() {
    return HttpClient::Connect("127.0.0.1", server->port());
  }

  /// Engine-direct reference through the same canonical ExecuteSpec path.
  Result<core::TopKResult> Reference(const core::QuerySpec& spec) {
    return system->engine()->ExecuteSpec(spec);
  }

  std::unique_ptr<DemoSystem> system;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<DemoSystem> second_system;
  std::unique_ptr<service::QueryService> second_service;
  service::EngineRegistry registry;
  std::unique_ptr<QueryServer> server;
};

void ExpectEntriesMatch(const JsonValue& entries,
                        const core::TopKResult& expected) {
  ASSERT_TRUE(entries.is_array());
  ASSERT_EQ(entries.array_items().size(), expected.entries.size());
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    const JsonValue& entry = entries.array_items()[i];
    ASSERT_NE(entry.Find("input_id"), nullptr);
    ASSERT_NE(entry.Find("value"), nullptr);
    EXPECT_EQ(entry.Find("input_id")->int_value(),
              static_cast<int64_t>(expected.entries[i].input_id));
    // Bit-identical: %.17g round-trips doubles exactly.
    EXPECT_EQ(entry.Find("value")->number_value(),
              expected.entries[i].value);
  }
}

/// The /v1/stats section of `model`; nullptr when absent.
const JsonValue* FindModelStats(const JsonValue& stats,
                                const std::string& model) {
  const JsonValue* models = stats.Find("models");
  if (models == nullptr || !models->is_array()) return nullptr;
  for (const JsonValue& section : models->array_items()) {
    const JsonValue* name = section.Find("model");
    if (name != nullptr && name->is_string() &&
        name->string_value() == model) {
      return &section;
    }
  }
  return nullptr;
}

TEST(QueryServerTest, PostQueryMatchesSequentialReference) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  const std::vector<int>& layers = fix.system->model()->activation_layers();
  for (int i = 0; i < 8; ++i) {
    core::QuerySpec spec;
    spec.layer = layers[static_cast<size_t>(i) % layers.size()];
    spec.neurons = {i % 4, (i % 4 + 2) % 8};
    spec.k = 5;
    spec.session_id = static_cast<uint64_t>(i % 3);
    spec.qos = i % 2 == 0 ? QosClass::kInteractive : QosClass::kBatch;
    if (i % 2 == 1) {
      spec.kind = core::QuerySpec::Kind::kMostSimilar;
      spec.target_id = i;
    }
    auto reference = fix.Reference(spec);
    ASSERT_TRUE(reference.ok());

    auto response = client->Post("/v1/query", core::QuerySpecJson(spec));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
    auto body = ParseJson(response->body);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    ASSERT_NE(body->Find("entries"), nullptr);
    ExpectEntriesMatch(*body->Find("entries"), reference.value());
    const JsonValue* stats = body->Find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->Find("inputs_run")->int_value(),
              reference->stats.inputs_run);
  }
}

TEST(QueryServerTest, GetQueryViaUrlParameters) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 2, 4};
  spec.k = 5;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  auto response = client->Get(
      "/v1/query?kind=highest&layer=" + std::to_string(spec.layer) +
      "&neurons=0,2,4&k=5&qos=interactive&session_id=7");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());
  ExpectEntriesMatch(*body->Find("entries"), reference.value());
}

// The model field routes between registered models: the same query
// addressed to each model returns that model's own (different) answer,
// and the answers are bit-identical to each engine's direct reference.
TEST(QueryServerTest, ModelFieldRoutesBetweenEngines) {
  ServerFixture fix({}, {}, /*second_model=*/true);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1, 2};
  spec.k = 5;
  auto reference_a = fix.Reference(spec);
  auto reference_b = fix.second_system->engine()->ExecuteSpec(spec);
  ASSERT_TRUE(reference_a.ok());
  ASSERT_TRUE(reference_b.ok());

  struct Arm {
    std::string model;
    const core::TopKResult* expected;
  };
  const Arm arms[] = {{fix.system->model_name(), &reference_a.value()},
                      {"twin", &reference_b.value()},
                      // No model field -> the default (first registered).
                      {"", &reference_a.value()}};
  for (const Arm& arm : arms) {
    auto response =
        client->Post("/v1/query", core::QuerySpecJson(spec, arm.model));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto body = ParseJson(response->body);
    ASSERT_TRUE(body.ok());
    ExpectEntriesMatch(*body->Find("entries"), *arm.expected);
  }

  // The two models must actually disagree somewhere, or routing would be
  // unobservable.
  bool differ =
      reference_a->entries.size() != reference_b->entries.size();
  for (size_t i = 0; !differ && i < reference_a->entries.size(); ++i) {
    differ = reference_a->entries[i].input_id !=
                 reference_b->entries[i].input_id ||
             reference_a->entries[i].value != reference_b->entries[i].value;
  }
  EXPECT_TRUE(differ);

  // Per-model stats: each arm's queries landed on its own service.
  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto parsed = ParseJson(stats->body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* a = FindModelStats(*parsed, fix.system->model_name());
  const JsonValue* b = FindModelStats(*parsed, "twin");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->Find("completed")->int_value(), 2);  // named + default
  EXPECT_EQ(b->Find("completed")->int_value(), 1);
}

TEST(QueryServerTest, ModelsEndpointListsRegistry) {
  ServerFixture fix({}, {}, /*second_model=*/true);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  auto response = client->Get("/v1/models");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());
  const JsonValue* models = body->Find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_TRUE(models->is_array());
  ASSERT_EQ(models->array_items().size(), 2u);
  EXPECT_EQ(models->array_items()[0].string_value(),
            fix.system->model_name());
  EXPECT_EQ(models->array_items()[1].string_value(), "twin");
  EXPECT_EQ(body->Find("default")->string_value(),
            fix.system->model_name());
}

// Declarative text over the wire: POST /v1/ql and GET /v1/ql?ql=... run
// the QL front end through the full service path — same result, same
// exact attribution as the structured encoding.
TEST(QueryServerTest, QlEndpointExecutesDeclarativeText) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  // A derived-group query — previously inexpressible over the wire.
  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kHighest;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.top_neurons = 3;
  spec.top_of = 5;
  spec.k = 6;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  // POST body form.
  JsonWriter w;
  w.BeginObject();
  w.Key("ql");
  w.String(spec.ToString());
  w.Key("qos");
  w.String("interactive");
  w.EndObject();
  auto post = client->Post("/v1/ql", w.TakeString());
  ASSERT_TRUE(post.ok());
  ASSERT_EQ(post->status, 200) << post->body;
  auto post_body = ParseJson(post->body);
  ASSERT_TRUE(post_body.ok());
  ExpectEntriesMatch(*post_body->Find("entries"), reference.value());
  EXPECT_EQ(post_body->Find("stats")->Find("inputs_run")->int_value(),
            reference->stats.inputs_run);

  // GET parameter form (percent-encoded QL text).
  auto get = client->Get("/v1/ql?ql=" + PercentEncode(spec.ToString()));
  ASSERT_TRUE(get.ok());
  ASSERT_EQ(get->status, 200) << get->body;
  auto get_body = ParseJson(get->body);
  ASSERT_TRUE(get_body.ok());
  ExpectEntriesMatch(*get_body->Find("entries"), reference.value());

  // The structured wire encoding of the same derived-group spec agrees.
  auto structured = client->Post("/v1/query", core::QuerySpecJson(spec));
  ASSERT_TRUE(structured.ok());
  ASSERT_EQ(structured->status, 200) << structured->body;
  auto structured_body = ParseJson(structured->body);
  ASSERT_TRUE(structured_body.ok());
  ExpectEntriesMatch(*structured_body->Find("entries"), reference.value());

  // ql + structured query fields is a contradiction, not a merge.
  auto conflict = client->Post(
      "/v1/ql",
      R"json({"ql":"SELECT TOPK 5 HIGHEST FOR LAYER 1 NEURONS (1)","k":9})json");
  ASSERT_TRUE(conflict.ok());
  EXPECT_EQ(conflict->status, 400);
  // /v1/ql without ql text is an error, not an empty query.
  auto missing = client->Post("/v1/ql", R"({"qos":"batch"})");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);
}

TEST(QueryServerTest, StreamingEmitsProgressThenResult) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kHighest;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1, 2, 3};
  spec.k = 10;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  int progress_events = 0;
  int result_events = 0;
  int64_t last_round = -1;
  size_t last_confirmed = 0;
  bool progress_after_result = false;
  auto response = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string(spec.layer) + "&neurons=0,1,2,3&k=10",
      [&](const std::string& line) {
        auto event = ParseJson(line);
        EXPECT_TRUE(event.ok()) << line;
        if (!event.ok()) return true;
        const std::string kind = event->Find("event")->string_value();
        if (kind == "progress") {
          if (result_events > 0) progress_after_result = true;
          ++progress_events;
          EXPECT_GT(event->Find("round")->int_value(), last_round);
          last_round = event->Find("round")->int_value();
          const size_t confirmed =
              event->Find("confirmed")->array_items().size();
          EXPECT_GE(confirmed, last_confirmed);
          last_confirmed = confirmed;
        } else if (kind == "result") {
          ++result_events;
          ExpectEntriesMatch(*event->Find("entries"), reference.value());
        }
        return true;
      });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->HeaderOrEmpty("content-type"), "application/x-ndjson");
  EXPECT_GE(progress_events, 1);
  EXPECT_EQ(result_events, 1);
  EXPECT_FALSE(progress_after_result);
}

// Streaming composes with the declarative endpoint: a POST /v1/ql body
// carrying "stream":1 (the body form of the flag, like "model") delivers
// NDJSON progress for QL text.
TEST(QueryServerTest, StreamingQlQuery) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kHighest;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1, 2, 3};
  spec.k = 10;
  auto reference = fix.Reference(spec);
  ASSERT_TRUE(reference.ok());

  JsonWriter w;
  w.BeginObject();
  w.Key("ql");
  w.String(spec.ToString());
  w.Key("stream");
  w.Int(1);
  w.EndObject();
  int progress_events = 0;
  int result_events = 0;
  bool final_matches = false;
  auto response = client->PostStream(
      "/v1/ql", w.TakeString(), [&](const std::string& line) {
        auto event = ParseJson(line);
        if (!event.ok()) return true;
        const JsonValue* kind = event->Find("event");
        if (kind == nullptr) return true;
        if (kind->string_value() == "progress") ++progress_events;
        if (kind->string_value() == "result") {
          ++result_events;
          const JsonValue* entries = event->Find("entries");
          final_matches = entries != nullptr;
          if (final_matches) {
            ExpectEntriesMatch(*entries, reference.value());
          }
        }
        return true;
      });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_GE(progress_events, 1);
  EXPECT_EQ(result_events, 1);
  EXPECT_TRUE(final_matches);
}

TEST(QueryServerTest, DisconnectCancelsStreamingQuery) {
  DemoSystemOptions demo_options;
  demo_options.device_latency_scale = 8.0;  // slow: the stream outlives us
  ServerFixture fix(demo_options);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  int seen = 0;
  auto response = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string(fix.system->model()->activation_layers().front()) +
          "&neurons=0,1,2,3&k=10",
      [&](const std::string&) {
        ++seen;
        return false;  // hard-disconnect after the first event
      });
  ASSERT_TRUE(response.ok());
  ASSERT_GE(seen, 1);
  EXPECT_FALSE(client->connected());

  // The server notices at its next failed chunk write, flips the query's
  // context to cancelled, and NTA aborts between rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int64_t cancelled = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    cancelled = fix.service->Snapshot().cancelled;
    if (cancelled > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(cancelled, 1)
      << "disconnect did not surface as a cancelled query";
}

TEST(QueryServerTest, DeadlineZeroRejectedWithoutInference) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  const std::string body =
      R"({"kind":"highest","layer":)" +
      std::to_string(fix.system->model()->activation_layers().front()) +
      R"(,"neurons":[0,1],"k":3,"deadline_ms":0})";
  auto response = client->Post("/v1/query", body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504) << response->body;
  auto parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("error")->Find("code")->string_value(),
            "DeadlineExceeded");

  const service::ServiceStats stats = fix.service->Snapshot();
  EXPECT_EQ(stats.rejected_past_deadline, 1);  // never ran
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.deadline_exceeded, 0);  // not a mid-query abort
}

TEST(QueryServerTest, ErrorStatusMapping) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  struct Case {
    const char* name;
    const char* target;
    const char* body;  // nullptr = GET
    int expected_status;
  };
  const std::string valid_layer =
      std::to_string(fix.system->model()->activation_layers().front());
  const std::string bad_k_body =
      R"({"kind":"highest","layer":)" + valid_layer +
      R"(,"neurons":[0],"k":0})";
  const std::string wrong_model_body =
      R"({"model":"NotServed","kind":"highest","layer":)" + valid_layer +
      R"(,"neurons":[0],"k":3})";
  const std::string bad_layer_body =
      R"({"kind":"highest","layer":9999,"neurons":[0],"k":3})";
  const Case cases[] = {
      {"unknown route", "/v1/nope", nullptr, 404},
      {"bad JSON", "/v1/query", "{not json", 400},
      {"non-object body", "/v1/query", "[1,2]", 400},
      {"missing layer", "/v1/query", R"({"neurons":[0]})", 400},
      {"missing neurons", "/v1/query", R"({"layer":1})", 400},
      {"k=0", "/v1/query", bad_k_body.c_str(), 400},
      {"wrong model", "/v1/query", wrong_model_body.c_str(), 404},
      {"unknown layer", "/v1/query", bad_layer_body.c_str(), 400},
      {"most_similar without target", "/v1/query",
       R"({"kind":"most_similar","layer":1,"neurons":[0]})", 400},
      {"bad qos", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"qos":"urgent"})", 400},
      // Unified validation: duplicate and negative neuron indices are the
      // same InvalidArgument every entry point produces.
      {"duplicate neuron", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[2,2],"k":3})", 400},
      {"negative neuron", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[-3],"k":3})", 400},
      {"explicit + derived group", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"top_neurons":2,)"
       R"("top_of":1,"k":3})", 400},
      // top_of on an explicit group would be silently ignored — the
      // caller almost certainly dropped top_neurons; reject, don't guess.
      {"top_of without top_neurons", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"top_of":7,"k":3})",
       400},
      // target_id on a highest query would be silently ignored — the
      // caller almost certainly forgot kind=most_similar.
      {"target_id on highest", "/v1/query",
       R"({"layer":1,"neurons":[0],"target_id":7,"k":3})", 400},
      {"bad distance", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"distance":"cosine"})",
       400},
      // Out-of-int64-range and fractional integers must 400, not be
      // truncated into a different (or UB-producing) query.
      {"huge layer", "/v1/query",
       R"({"kind":"highest","layer":1e300,"neurons":[0],"k":3})", 400},
      {"fractional k", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"k":2.5})", 400},
      // 2^32+2 fits int64 but wraps int: must 400, not become k=2.
      {"int-wrapping k", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"k":4294967298})", 400},
      {"fractional neuron", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[1.9],"k":3})", 400},
  };
  for (const Case& c : cases) {
    auto response = c.body == nullptr
                        ? client->Get(c.target)
                        : client->Post(c.target, c.body);
    ASSERT_TRUE(response.ok()) << c.name;
    EXPECT_EQ(response->status, c.expected_status)
        << c.name << ": " << response->body;
  }

  // Wrong method on a fixed route.
  auto bad_method = client->Post("/v1/stats", "{}");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method->status, 405);
  auto bad_models_method = client->Post("/v1/models", "{}");
  ASSERT_TRUE(bad_models_method.ok());
  EXPECT_EQ(bad_models_method->status, 405);
}

TEST(QueryServerTest, StatsEndpointReportsPerModelSections) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  // Run one query so the counters move.
  const std::string body =
      R"({"kind":"highest","layer":)" +
      std::to_string(fix.system->model()->activation_layers().front()) +
      R"(,"neurons":[0,1],"k":3,"qos":"interactive"})";
  ASSERT_EQ(client->Post("/v1/query", body)->status, 200);

  auto response = client->Get("/v1/stats");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto stats = ParseJson(response->body);
  ASSERT_TRUE(stats.ok()) << response->body;
  EXPECT_EQ(stats->Find("default_model")->string_value(),
            fix.system->model_name());
  const JsonValue* section =
      FindModelStats(*stats, fix.system->model_name());
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->Find("submitted")->int_value(), 1);
  EXPECT_EQ(section->Find("completed")->int_value(), 1);
  EXPECT_TRUE(section->Find("qos_enabled")->bool_value());
  const JsonValue* per_class = section->Find("per_class");
  ASSERT_NE(per_class, nullptr);
  ASSERT_EQ(per_class->array_items().size(),
            static_cast<size_t>(kNumQosClasses));
  EXPECT_EQ(per_class->array_items()[0].Find("class")->string_value(),
            "interactive");
  EXPECT_EQ(per_class->array_items()[0].Find("completed")->int_value(), 1);
}

/// Sum of the `inputs_run` attrs across the spans that partition a query's
/// inference (nta.round / nta.target / index.ensure / resolve_group —
/// compute_layer spans use the key `inputs` precisely so they are not
/// double-counted here).
int64_t SumInputsRunAttrs(const JsonValue& trace) {
  int64_t sum = 0;
  for (const JsonValue& span : trace.Find("spans")->array_items()) {
    const JsonValue* attrs = span.Find("attrs");
    if (attrs == nullptr) continue;
    const JsonValue* inputs_run = attrs->Find("inputs_run");
    if (inputs_run != nullptr) sum += inputs_run->int_value();
  }
  return sum;
}

TEST(QueryServerTest, TraceFlagReturnsSpanTreeWithExactAttribution) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  core::QuerySpec spec;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1, 2};
  spec.k = 8;
  auto response =
      client->Post("/v1/query?trace=1", core::QuerySpecJson(spec));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());

  const JsonValue* trace = body->Find("trace");
  ASSERT_NE(trace, nullptr) << response->body;
  EXPECT_TRUE(trace->Find("complete")->bool_value());
  EXPECT_EQ(trace->Find("dropped_spans")->int_value(), 0);
  const uint64_t trace_id =
      static_cast<uint64_t>(trace->Find("trace_id")->int_value());
  EXPECT_GT(trace_id, 0u);

  const std::vector<JsonValue>& spans = trace->Find("spans")->array_items();
  ASSERT_GE(spans.size(), 4u);  // query, queue_wait, execute, serialize
  EXPECT_EQ(spans[0].Find("name")->string_value(), "query");
  EXPECT_EQ(spans[0].Find("parent")->int_value(), -1);

  // The root's direct children (queue_wait + execute + serialize) must
  // cover nearly all of the query's wall time — the point of the trace is
  // that no phase goes unaccounted. 0.90 here (0.95 in the unsanitized
  // e2e client) leaves slop for sanitizer scheduling noise.
  const int64_t root_duration = spans[0].Find("duration_nanos")->int_value();
  ASSERT_GT(root_duration, 0);
  int64_t child_duration = 0;
  bool saw_execute = false;
  bool saw_serialize = false;
  for (const JsonValue& span : spans) {
    if (span.Find("parent")->int_value() == 0) {
      child_duration += span.Find("duration_nanos")->int_value();
      const std::string& name = span.Find("name")->string_value();
      if (name == "execute") saw_execute = true;
      if (name == "serialize") saw_serialize = true;
    }
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_serialize);
  EXPECT_GE(static_cast<double>(child_duration),
            0.90 * static_cast<double>(root_duration))
      << "children cover " << child_duration << " of " << root_duration;

  // Per-span inputs_run attrs partition the query's receipt total exactly.
  EXPECT_EQ(SumInputsRunAttrs(*trace),
            body->Find("stats")->Find("inputs_run")->int_value());

  // The finished trace is also retrievable from the ring by id.
  auto by_id = client->Get("/v1/trace/" + std::to_string(trace_id));
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->status, 200) << by_id->body;
  auto ring_copy = ParseJson(by_id->body);
  ASSERT_TRUE(ring_copy.ok());
  EXPECT_EQ(static_cast<uint64_t>(
                ring_copy->Find("trace_id")->int_value()),
            trace_id);

  // Unknown id → 404; non-numeric id → 400.
  EXPECT_EQ(client->Get("/v1/trace/999999999999")->status, 404);
  EXPECT_EQ(client->Get("/v1/trace/abc")->status, 400);
}

TEST(QueryServerTest, TraceIsNotInlinedWithoutTheFlag) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());
  core::QuerySpec spec;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0};
  spec.k = 3;
  auto response = client->Post("/v1/query", core::QuerySpecJson(spec));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Find("trace"), nullptr);
}

TEST(QueryServerTest, StreamingTraceEventArrivesAfterResult) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  std::vector<std::string> event_order;
  int64_t traced_spans = 0;
  auto response = client->GetStream(
      "/v1/query?stream=1&trace=1&kind=highest&layer=" +
          std::to_string(fix.system->model()->activation_layers().front()) +
          "&neurons=0,1,2,3&k=10",
      [&](const std::string& line) {
        auto event = ParseJson(line);
        EXPECT_TRUE(event.ok()) << line;
        if (!event.ok()) return true;
        event_order.push_back(event->Find("event")->string_value());
        if (event_order.back() == "trace") {
          const JsonValue* trace = event->Find("trace");
          EXPECT_NE(trace, nullptr);
          if (trace != nullptr) {
            traced_spans = static_cast<int64_t>(
                trace->Find("spans")->array_items().size());
            EXPECT_TRUE(trace->Find("complete")->bool_value());
          }
        }
        return true;
      });
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  ASSERT_GE(event_order.size(), 2u);
  EXPECT_EQ(event_order[event_order.size() - 2], "result");
  EXPECT_EQ(event_order.back(), "trace");
  EXPECT_GE(traced_spans, 4);
}

TEST(QueryServerTest, MetricsEndpointServesValidPrometheusText) {
  ServerFixture fix({}, {}, /*second_model=*/true);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  // Complete one query so the counters have something to say.
  core::QuerySpec spec;
  spec.layer = fix.system->model()->activation_layers().front();
  spec.neurons = {0, 1};
  spec.k = 5;
  ASSERT_EQ(client->Post("/v1/query", core::QuerySpecJson(spec))->status,
            200);

  auto response = client->Get("/v1/metrics");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->HeaderOrEmpty("content-type").rfind("text/plain", 0),
            0u);
  const Status valid = service::ValidatePrometheusText(response->body);
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  // Per-model counters for both registered models.
  EXPECT_NE(response->body.find("deepeverest_queries_completed_total{model=\"" +
                                fix.system->model_name() + "\"} 1"),
            std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find(
                "deepeverest_queries_completed_total{model=\"twin\"} 0"),
            std::string::npos);
  // Latency histogram series per QoS class, HTTP counters, build info.
  EXPECT_NE(response->body.find("deepeverest_query_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(response->body.find("deepeverest_http_requests_total"),
            std::string::npos);
  EXPECT_NE(response->body.find("deepeverest_build_info{"),
            std::string::npos);
  // This test made only successful requests: the 5xx family reads 0.
  EXPECT_NE(
      response->body.find("deepeverest_http_responses_total{code=\"5xx\"} 0"),
      std::string::npos);
}

TEST(QueryServerTest, SlowQueryEmitsStructuredLogLine) {
  namespace log = internal_logging;
  std::mutex mu;
  std::vector<std::string> lines;
  log::SetLogSink([&mu, &lines](log::LogLevel level, const char*, int,
                                const std::string& message) {
    if (level == log::LogLevel::kWarning) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(message);
    }
  });

  {
    service::QueryServiceOptions service_options;
    // Every query is "slow" at this threshold, so one query suffices.
    service_options.slow_query_seconds = 1e-9;
    ServerFixture fix({}, service_options);
    auto client = fix.Connect();
    ASSERT_TRUE(client.ok());
    core::QuerySpec spec;
    spec.layer = fix.system->model()->activation_layers().front();
    spec.neurons = {0, 1};
    spec.k = 5;
    spec.session_id = 77;
    ASSERT_EQ(client->Post("/v1/query", core::QuerySpecJson(spec))->status,
              200);
  }
  log::SetLogSink(nullptr);

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(lines.size(), 1u);
  const std::string& line = lines.front();
  EXPECT_EQ(line.rfind("slow_query trace_id=", 0), 0u) << line;
  EXPECT_NE(line.find("session=77"), std::string::npos) << line;
  EXPECT_NE(line.find("status=OK"), std::string::npos) << line;
  EXPECT_NE(line.find("latency_s="), std::string::npos) << line;
  EXPECT_NE(line.find("spans=\""), std::string::npos) << line;
}

TEST(QueryServerTest, HealthzAndModelName) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());
  auto health = client->Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  auto health_json = ParseJson(health->body);
  ASSERT_TRUE(health_json.ok());
  EXPECT_EQ(health_json->Find("status")->string_value(), "ok");
  EXPECT_GE(health_json->Find("uptime_seconds")->number_value(), 0.0);
  EXPECT_GT(health_json->Find("start_unix_seconds")->number_value(), 0.0);
  const JsonValue* build = health_json->Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->Find("compiler")->string_value().empty());
  EXPECT_FALSE(build->Find("build_type")->string_value().empty());

  // Matching model name is accepted.
  const std::string body = R"({"model":")" + fix.system->model_name() +
                           R"(","kind":"highest","layer":)" +
                           std::to_string(fix.system->model()
                                              ->activation_layers()
                                              .front()) +
                           R"(,"neurons":[0],"k":3})";
  EXPECT_EQ(client->Post("/v1/query", body)->status, 200);
}

// Every result carries its query_id, and per-model /v1/stats sections carry
// the live-state breakdown plus the preemption counters.
TEST(QueryServerTest, ResultCarriesQueryIdAndStatsCarryStates) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  const std::string body =
      R"({"kind":"highest","layer":)" +
      std::to_string(fix.system->model()->activation_layers().front()) +
      R"(,"neurons":[0,1],"k":3})";
  auto response = client->Post("/v1/query", body);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* query_id = parsed->Find("query_id");
  ASSERT_NE(query_id, nullptr);
  EXPECT_GT(query_id->int_value(), 0);
  // The id is the trace id: the span tree is fetchable under it.
  auto trace = client->Get("/v1/trace/" +
                           std::to_string(query_id->int_value()));
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->status, 200) << trace->body;

  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->status, 200);
  auto stats_json = ParseJson(stats->body);
  ASSERT_TRUE(stats_json.ok());
  const JsonValue* section =
      FindModelStats(*stats_json, fix.system->model_name());
  ASSERT_NE(section, nullptr);
  const JsonValue* states = section->Find("states");
  ASSERT_NE(states, nullptr);
  EXPECT_EQ(states->Find("queued")->int_value(), 0);
  EXPECT_EQ(states->Find("running")->int_value(), 0);
  EXPECT_EQ(states->Find("parked")->int_value(), 0);
  EXPECT_EQ(section->Find("parked")->int_value(), 0);
  ASSERT_NE(section->Find("parked_total"), nullptr);
  ASSERT_NE(section->Find("resumed_total"), nullptr);
  ASSERT_NE(section->Find("preemptions"), nullptr);
}

// DELETE /v1/query/<id> cancels a live streaming query: the stream's
// `accepted` event names the id, a second connection deletes it, and the
// stream terminates with a Cancelled error event.
TEST(QueryServerTest, DeleteCancelsLiveQueryById) {
  DemoSystemOptions demo_options;
  demo_options.device_latency_scale = 8.0;  // slow enough to cancel mid-run
  ServerFixture fix(demo_options);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());
  auto canceller = fix.Connect();
  ASSERT_TRUE(canceller.ok());

  uint64_t query_id = 0;
  std::string final_event;
  auto response = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string(fix.system->model()->activation_layers().front()) +
          "&neurons=0,1,2,3&k=10",
      [&](const std::string& line) {
        auto event = ParseJson(line);
        EXPECT_TRUE(event.ok()) << line;
        if (!event.ok()) return true;
        const std::string kind = event->Find("event")->string_value();
        if (kind == "accepted") {
          query_id =
              static_cast<uint64_t>(event->Find("query_id")->int_value());
          EXPECT_GT(query_id, 0u);
          auto cancel = canceller->Request(
              "DELETE", "/v1/query/" + std::to_string(query_id));
          EXPECT_TRUE(cancel.ok());
          EXPECT_EQ(cancel->status, 200) << cancel->body;
          auto body = ParseJson(cancel->body);
          EXPECT_TRUE(body.ok());
          EXPECT_TRUE(body->Find("cancel_requested")->bool_value());
        } else if (kind == "error" || kind == "result") {
          final_event = line;
        }
        return true;
      });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_GT(query_id, 0u);
  auto final_json = ParseJson(final_event);
  ASSERT_TRUE(final_json.ok()) << final_event;
  EXPECT_EQ(final_json->Find("event")->string_value(), "error");
  ASSERT_NE(final_json->Find("code"), nullptr) << final_event;
  EXPECT_EQ(final_json->Find("code")->string_value(), "Cancelled");
  EXPECT_EQ(fix.service->Snapshot().cancelled, 1);

  // Once finished the id is no longer live: a second DELETE is 404. A
  // non-numeric id is a 400, an unknown numeric id a 404.
  EXPECT_EQ(canceller
                ->Request("DELETE", "/v1/query/" + std::to_string(query_id))
                ->status,
            404);
  EXPECT_EQ(canceller->Request("DELETE", "/v1/query/bogus")->status, 400);
  EXPECT_EQ(canceller->Request("DELETE", "/v1/query/999999999")->status, 404);
  // Other methods on the route are rejected.
  EXPECT_EQ(canceller->Get("/v1/query/" + std::to_string(query_id))->status,
            405);
}

}  // namespace
}  // namespace net
}  // namespace deepeverest
