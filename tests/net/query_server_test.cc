// End-to-end tests for the HTTP query API over real loopback sockets:
// bit-identical results vs. the in-process sequential reference, URL and
// JSON encodings, NDJSON streaming with progress-before-result ordering,
// client-disconnect cancellation (reflected in ServiceStats.cancelled),
// deadline_ms=0 rejection without inference, and the error-status mapping.
#include "net/query_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/demo_system.h"
#include "common/json.h"
#include "net/http_client.h"

namespace deepeverest {
namespace net {
namespace {

using bench_util::DemoSystem;
using bench_util::DemoSystemOptions;

/// Demo system + service + server + connected client, on a kernel port.
struct ServerFixture {
  explicit ServerFixture(DemoSystemOptions demo_options = {},
                         service::QueryServiceOptions service_options = {}) {
    auto made = DemoSystem::Make(demo_options);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    system = std::move(made.value());
    auto created =
        service::QueryService::Create(system->engine(), service_options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    service = std::move(created.value());
    QueryServerOptions server_options;
    server_options.model_name = system->model_name();
    auto started = QueryServer::Start(service.get(), server_options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(started.value());
  }

  ~ServerFixture() {
    if (server != nullptr) server->Shutdown();
    if (service != nullptr) service->Shutdown();
  }

  Result<HttpClient> Connect() {
    return HttpClient::Connect("127.0.0.1", server->port());
  }

  Result<core::TopKResult> Reference(const service::TopKQuery& query) {
    core::NtaOptions options;
    options.k = query.k;
    options.theta = query.theta;
    options.tie_complete = true;
    if (query.kind == service::TopKQuery::Kind::kHighest) {
      return system->engine()->TopKHighestWithOptions(query.group,
                                                      std::move(options));
    }
    return system->engine()->TopKMostSimilarWithOptions(
        query.target_id, query.group, std::move(options));
  }

  std::unique_ptr<DemoSystem> system;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<QueryServer> server;
};

void ExpectEntriesMatch(const JsonValue& entries,
                        const core::TopKResult& expected) {
  ASSERT_TRUE(entries.is_array());
  ASSERT_EQ(entries.array_items().size(), expected.entries.size());
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    const JsonValue& entry = entries.array_items()[i];
    ASSERT_NE(entry.Find("input_id"), nullptr);
    ASSERT_NE(entry.Find("value"), nullptr);
    EXPECT_EQ(entry.Find("input_id")->int_value(),
              static_cast<int64_t>(expected.entries[i].input_id));
    // Bit-identical: %.17g round-trips doubles exactly.
    EXPECT_EQ(entry.Find("value")->number_value(),
              expected.entries[i].value);
  }
}

TEST(QueryServerTest, PostQueryMatchesSequentialReference) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  const std::vector<int>& layers = fix.system->model()->activation_layers();
  for (int i = 0; i < 8; ++i) {
    service::TopKQuery query;
    query.group.layer = layers[static_cast<size_t>(i) % layers.size()];
    query.group.neurons = {i % 4, (i % 4 + 2) % 8};
    query.k = 5;
    if (i % 2 == 1) {
      query.kind = service::TopKQuery::Kind::kMostSimilar;
      query.target_id = static_cast<uint32_t>(i);
    }
    auto reference = fix.Reference(query);
    ASSERT_TRUE(reference.ok());

    JsonWriter w;
    w.BeginObject();
    w.Key("kind");
    w.String(i % 2 == 1 ? "most_similar" : "highest");
    w.Key("layer");
    w.Int(query.group.layer);
    w.Key("neurons");
    w.BeginArray();
    for (const int64_t n : query.group.neurons) w.Int(n);
    w.EndArray();
    w.Key("k");
    w.Int(query.k);
    if (i % 2 == 1) {
      w.Key("target_id");
      w.Uint(query.target_id);
    }
    w.Key("session_id");
    w.Int(i % 3);
    w.Key("qos");
    w.String(i % 2 == 0 ? "interactive" : "batch");
    w.EndObject();

    auto response = client->Post("/v1/query", w.TakeString());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
    auto body = ParseJson(response->body);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    ASSERT_NE(body->Find("entries"), nullptr);
    ExpectEntriesMatch(*body->Find("entries"), reference.value());
    const JsonValue* stats = body->Find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->Find("inputs_run")->int_value(),
              reference->stats.inputs_run);
  }
}

TEST(QueryServerTest, GetQueryViaUrlParameters) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  service::TopKQuery query;
  query.group.layer = fix.system->model()->activation_layers().front();
  query.group.neurons = {0, 2, 4};
  query.k = 5;
  auto reference = fix.Reference(query);
  ASSERT_TRUE(reference.ok());

  auto response = client->Get(
      "/v1/query?kind=highest&layer=" + std::to_string(query.group.layer) +
      "&neurons=0,2,4&k=5&qos=interactive&session_id=7");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());
  ExpectEntriesMatch(*body->Find("entries"), reference.value());
}

TEST(QueryServerTest, StreamingEmitsProgressThenResult) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  service::TopKQuery query;
  query.kind = service::TopKQuery::Kind::kHighest;
  query.group.layer = fix.system->model()->activation_layers().front();
  query.group.neurons = {0, 1, 2, 3};
  query.k = 10;
  auto reference = fix.Reference(query);
  ASSERT_TRUE(reference.ok());

  int progress_events = 0;
  int result_events = 0;
  int64_t last_round = -1;
  size_t last_confirmed = 0;
  bool progress_after_result = false;
  auto response = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string(query.group.layer) + "&neurons=0,1,2,3&k=10",
      [&](const std::string& line) {
        auto event = ParseJson(line);
        EXPECT_TRUE(event.ok()) << line;
        if (!event.ok()) return true;
        const std::string kind = event->Find("event")->string_value();
        if (kind == "progress") {
          if (result_events > 0) progress_after_result = true;
          ++progress_events;
          EXPECT_GT(event->Find("round")->int_value(), last_round);
          last_round = event->Find("round")->int_value();
          const size_t confirmed =
              event->Find("confirmed")->array_items().size();
          EXPECT_GE(confirmed, last_confirmed);
          last_confirmed = confirmed;
        } else if (kind == "result") {
          ++result_events;
          ExpectEntriesMatch(*event->Find("entries"), reference.value());
        }
        return true;
      });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->HeaderOrEmpty("content-type"), "application/x-ndjson");
  EXPECT_GE(progress_events, 1);
  EXPECT_EQ(result_events, 1);
  EXPECT_FALSE(progress_after_result);
}

TEST(QueryServerTest, DisconnectCancelsStreamingQuery) {
  DemoSystemOptions demo_options;
  demo_options.device_latency_scale = 8.0;  // slow: the stream outlives us
  ServerFixture fix(demo_options);
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  int seen = 0;
  auto response = client->GetStream(
      "/v1/query?stream=1&kind=highest&layer=" +
          std::to_string(fix.system->model()->activation_layers().front()) +
          "&neurons=0,1,2,3&k=10",
      [&](const std::string&) {
        ++seen;
        return false;  // hard-disconnect after the first event
      });
  ASSERT_TRUE(response.ok());
  ASSERT_GE(seen, 1);
  EXPECT_FALSE(client->connected());

  // The server notices at its next failed chunk write, flips the query's
  // context to cancelled, and NTA aborts between rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int64_t cancelled = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    cancelled = fix.service->Snapshot().cancelled;
    if (cancelled > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(cancelled, 1)
      << "disconnect did not surface as a cancelled query";
}

TEST(QueryServerTest, DeadlineZeroRejectedWithoutInference) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  const std::string body =
      R"({"kind":"highest","layer":)" +
      std::to_string(fix.system->model()->activation_layers().front()) +
      R"(,"neurons":[0,1],"k":3,"deadline_ms":0})";
  auto response = client->Post("/v1/query", body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504) << response->body;
  auto parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("error")->Find("code")->string_value(),
            "DeadlineExceeded");

  const service::ServiceStats stats = fix.service->Snapshot();
  EXPECT_EQ(stats.rejected_past_deadline, 1);  // never ran
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.deadline_exceeded, 0);  // not a mid-query abort
}

TEST(QueryServerTest, ErrorStatusMapping) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  struct Case {
    const char* name;
    const char* target;
    const char* body;  // nullptr = GET
    int expected_status;
  };
  const std::string valid_layer =
      std::to_string(fix.system->model()->activation_layers().front());
  const std::string bad_k_body =
      R"({"kind":"highest","layer":)" + valid_layer +
      R"(,"neurons":[0],"k":0})";
  const std::string wrong_model_body =
      R"({"model":"NotServed","kind":"highest","layer":)" + valid_layer +
      R"(,"neurons":[0],"k":3})";
  const std::string bad_layer_body =
      R"({"kind":"highest","layer":9999,"neurons":[0],"k":3})";
  const Case cases[] = {
      {"unknown route", "/v1/nope", nullptr, 404},
      {"bad JSON", "/v1/query", "{not json", 400},
      {"non-object body", "/v1/query", "[1,2]", 400},
      {"missing layer", "/v1/query", R"({"neurons":[0]})", 400},
      {"missing neurons", "/v1/query", R"({"layer":1})", 400},
      {"k=0", "/v1/query", bad_k_body.c_str(), 400},
      {"wrong model", "/v1/query", wrong_model_body.c_str(), 404},
      {"unknown layer", "/v1/query", bad_layer_body.c_str(), 400},
      {"most_similar without target", "/v1/query",
       R"({"kind":"most_similar","layer":1,"neurons":[0]})", 400},
      {"bad qos", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"qos":"urgent"})", 400},
      // Out-of-int64-range and fractional integers must 400, not be
      // truncated into a different (or UB-producing) query.
      {"huge layer", "/v1/query",
       R"({"kind":"highest","layer":1e300,"neurons":[0],"k":3})", 400},
      {"fractional k", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"k":2.5})", 400},
      // 2^32+2 fits int64 but wraps int: must 400, not become k=2.
      {"int-wrapping k", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[0],"k":4294967298})", 400},
      {"fractional neuron", "/v1/query",
       R"({"kind":"highest","layer":1,"neurons":[1.9],"k":3})", 400},
  };
  for (const Case& c : cases) {
    auto response = c.body == nullptr
                        ? client->Get(c.target)
                        : client->Post(c.target, c.body);
    ASSERT_TRUE(response.ok()) << c.name;
    EXPECT_EQ(response->status, c.expected_status)
        << c.name << ": " << response->body;
  }

  // Wrong method on a fixed route.
  auto bad_method = client->Post("/v1/stats", "{}");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method->status, 405);
}

TEST(QueryServerTest, StatsEndpointReportsService) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());

  // Run one query so the counters move.
  const std::string body =
      R"({"kind":"highest","layer":)" +
      std::to_string(fix.system->model()->activation_layers().front()) +
      R"(,"neurons":[0,1],"k":3,"qos":"interactive"})";
  ASSERT_EQ(client->Post("/v1/query", body)->status, 200);

  auto response = client->Get("/v1/stats");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto stats = ParseJson(response->body);
  ASSERT_TRUE(stats.ok()) << response->body;
  EXPECT_EQ(stats->Find("submitted")->int_value(), 1);
  EXPECT_EQ(stats->Find("completed")->int_value(), 1);
  EXPECT_TRUE(stats->Find("qos_enabled")->bool_value());
  const JsonValue* per_class = stats->Find("per_class");
  ASSERT_NE(per_class, nullptr);
  ASSERT_EQ(per_class->array_items().size(),
            static_cast<size_t>(kNumQosClasses));
  EXPECT_EQ(per_class->array_items()[0].Find("class")->string_value(),
            "interactive");
  EXPECT_EQ(per_class->array_items()[0].Find("completed")->int_value(), 1);
}

TEST(QueryServerTest, HealthzAndModelName) {
  ServerFixture fix;
  auto client = fix.Connect();
  ASSERT_TRUE(client.ok());
  auto health = client->Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  // Matching model name is accepted.
  const std::string body = R"({"model":")" + fix.system->model_name() +
                           R"(","kind":"highest","layer":)" +
                           std::to_string(fix.system->model()
                                              ->activation_layers()
                                              .front()) +
                           R"(,"neurons":[0],"k":3})";
  EXPECT_EQ(client->Post("/v1/query", body)->status, 200);
}

}  // namespace
}  // namespace net
}  // namespace deepeverest
