#include "storage/file_store.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace deepeverest {
namespace storage {
namespace {

using testing_util::TempDir;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(FileStoreTest, WriteReadRoundTrip) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("a.bin", Bytes("hello")));
  auto data = store->Read("a.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "hello");
}

TEST(FileStoreTest, NestedKeysCreateDirectories) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("index/model/layer_3.npi", Bytes("xyz")));
  EXPECT_TRUE(store->Exists("index/model/layer_3.npi"));
  auto size = store->SizeOf("index/model/layer_3.npi");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 3u);
}

TEST(FileStoreTest, MissingKeyIsNotFound) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Exists("nope"));
  EXPECT_TRUE(store->Read("nope").status().IsNotFound());
  EXPECT_TRUE(store->SizeOf("nope").status().IsNotFound());
}

TEST(FileStoreTest, OverwriteReplaces) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("k", Bytes("first-longer")));
  DE_ASSERT_OK(store->Write("k", Bytes("2nd")));
  auto data = store->Read("k");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "2nd");
}

TEST(FileStoreTest, RemoveIsIdempotent) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("k", Bytes("v")));
  DE_ASSERT_OK(store->Remove("k"));
  EXPECT_FALSE(store->Exists("k"));
  DE_ASSERT_OK(store->Remove("k"));  // second removal still OK
}

TEST(FileStoreTest, TotalBytesAndListKeys) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("a", Bytes("12345")));
  DE_ASSERT_OK(store->Write("sub/b", Bytes("123")));
  auto total = store->TotalBytes();
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 8u);
  auto keys = store->ListKeys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{"a", "sub/b"}));
}

TEST(FileStoreTest, ClearEmptiesStore) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("a", Bytes("1")));
  DE_ASSERT_OK(store->Write("x/y/z", Bytes("2")));
  DE_ASSERT_OK(store->Clear());
  auto keys = store->ListKeys();
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

TEST(FileStoreTest, SyncedWriteSucceeds) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("synced", Bytes("durable"), /*sync=*/true));
  EXPECT_TRUE(store->Exists("synced"));
}

TEST(FileStoreTest, EmptyPayload) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  DE_ASSERT_OK(store->Write("empty", {}));
  auto data = store->Read("empty");
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->empty());
}

TEST(FileStoreTest, TrafficCountersTrackPayloadBytes) {
  TempDir dir("fs");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->bytes_written(), 0u);
  EXPECT_EQ(store->bytes_read(), 0u);
  DE_ASSERT_OK(store->Write("a", Bytes("12345")));
  EXPECT_EQ(store->bytes_written(), 5u);
  ASSERT_TRUE(store->Read("a").ok());
  EXPECT_EQ(store->bytes_read(), 5u);
  ASSERT_TRUE(store->Read("a").ok());
  EXPECT_EQ(store->bytes_read(), 10u);  // accumulates per read
  store->ResetTraffic();
  EXPECT_EQ(store->bytes_written(), 0u);
  EXPECT_EQ(store->bytes_read(), 0u);
}

TEST(MakeTempDirTest, CreatesDistinctDirs) {
  auto a = MakeTempDir("t");
  auto b = MakeTempDir("t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  std::error_code ec;
  std::filesystem::remove_all(*a, ec);
  std::filesystem::remove_all(*b, ec);
}

}  // namespace
}  // namespace storage
}  // namespace deepeverest
