#include "storage/quantized_store.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testing/test_util.h"

namespace deepeverest {
namespace storage {
namespace {

using testing_util::TempDir;

LayerActivationMatrix RandomMatrix(uint32_t inputs, uint64_t neurons,
                                   uint64_t seed) {
  Rng rng(seed);
  auto m = LayerActivationMatrix::Make(inputs, neurons);
  for (uint32_t i = 0; i < inputs; ++i) {
    for (uint64_t n = 0; n < neurons; ++n) {
      // Skewed, ReLU-like values.
      m.MutableRow(i)[n] = std::max(
          0.0f, static_cast<float>(rng.NextGaussian() * (n + 1)));
    }
  }
  return m;
}

TEST(QuantizeTest, ErrorWithinHalfStep) {
  const auto matrix = RandomMatrix(100, 8, 91);
  const auto q = QuantizedActivationMatrix::Quantize(matrix);
  for (uint64_t n = 0; n < 8; ++n) {
    const float max_error = q.MaxErrorOf(n) + 1e-5f;
    for (uint32_t i = 0; i < 100; ++i) {
      EXPECT_LE(std::abs(q.At(i, n) - matrix.At(i, n)), max_error)
          << "input " << i << " neuron " << n;
    }
  }
}

TEST(QuantizeTest, ConstantNeuronIsLossless) {
  auto matrix = LayerActivationMatrix::Make(10, 2);
  for (uint32_t i = 0; i < 10; ++i) {
    matrix.MutableRow(i)[0] = 3.25f;
    matrix.MutableRow(i)[1] = static_cast<float>(i);
  }
  const auto q = QuantizedActivationMatrix::Quantize(matrix);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.At(i, 0), 3.25f);
  }
  // Range endpoints are exactly representable.
  EXPECT_EQ(q.At(0, 1), 0.0f);
  EXPECT_EQ(q.At(9, 1), 9.0f);
}

TEST(QuantizeTest, PayloadIsRoughlyQuarterOfFloat32) {
  const auto matrix = RandomMatrix(200, 16, 92);
  const auto q = QuantizedActivationMatrix::Quantize(matrix);
  const uint64_t full = 200ull * 16 * 4;
  EXPECT_LT(q.PayloadBytes(), full / 3);  // 1/4 + per-neuron ranges
}

TEST(QuantizeTest, DequantizeRoundTripsWithinError) {
  const auto matrix = RandomMatrix(50, 4, 93);
  const auto q = QuantizedActivationMatrix::Quantize(matrix);
  const LayerActivationMatrix back = q.Dequantize();
  ASSERT_EQ(back.num_inputs, 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    for (uint64_t n = 0; n < 4; ++n) {
      EXPECT_LE(std::abs(back.At(i, n) - matrix.At(i, n)),
                q.MaxErrorOf(n) + 1e-5f);
    }
  }
}

TEST(QuantizedStoreTest, SaveLoadRoundTrip) {
  TempDir dir("q8");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  QuantizedActivationStore qstore(&store.value());
  const auto matrix = RandomMatrix(30, 5, 94);
  const auto q = QuantizedActivationMatrix::Quantize(matrix);
  DE_ASSERT_OK(qstore.Save("m", 3, q));
  ASSERT_TRUE(qstore.Contains("m", 3));
  auto loaded = qstore.Load("m", 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_inputs, 30u);
  EXPECT_EQ(loaded->num_neurons, 5u);
  for (uint32_t i = 0; i < 30; ++i) {
    for (uint64_t n = 0; n < 5; ++n) {
      EXPECT_EQ(loaded->At(i, n), q.At(i, n));
    }
  }
}

TEST(QuantizedStoreTest, FileIsSmallerThanFloat32File) {
  TempDir dir("q8");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  const auto matrix = RandomMatrix(200, 32, 95);
  ActivationStore full(&store.value());
  QuantizedActivationStore quantized(&store.value());
  DE_ASSERT_OK(full.Save("m", 0, matrix));
  DE_ASSERT_OK(
      quantized.Save("m", 0, QuantizedActivationMatrix::Quantize(matrix)));
  auto full_size = store->SizeOf(ActivationStore::KeyFor("m", 0));
  auto q_size = store->SizeOf(QuantizedActivationStore::KeyFor("m", 0));
  ASSERT_TRUE(full_size.ok());
  ASSERT_TRUE(q_size.ok());
  EXPECT_LT(*q_size * 3, *full_size);
}

TEST(QuantizedStoreTest, CorruptFileRejected) {
  TempDir dir("q8");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  QuantizedActivationStore qstore(&store.value());
  DE_ASSERT_OK(store->Write(QuantizedActivationStore::KeyFor("m", 1),
                            {1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_FALSE(qstore.Load("m", 1).ok());
  EXPECT_TRUE(qstore.Load("m", 7).status().IsNotFound());
}

TEST(QuantizedStoreTest, GeometryMismatchRejectedOnSave) {
  TempDir dir("q8");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  QuantizedActivationStore qstore(&store.value());
  QuantizedActivationMatrix bad;
  bad.num_inputs = 4;
  bad.num_neurons = 4;
  bad.codes.resize(3);
  EXPECT_TRUE(qstore.Save("m", 0, bad).IsInvalidArgument());
}

}  // namespace
}  // namespace storage
}  // namespace deepeverest
