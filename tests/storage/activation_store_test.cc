#include "storage/activation_store.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace deepeverest {
namespace storage {
namespace {

using testing_util::TempDir;

LayerActivationMatrix SampleMatrix() {
  LayerActivationMatrix m = LayerActivationMatrix::Make(3, 4);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint64_t n = 0; n < 4; ++n) {
      m.MutableRow(i)[n] = static_cast<float>(i * 10 + n);
    }
  }
  return m;
}

TEST(ActivationStoreTest, SaveLoadRoundTrip) {
  TempDir dir("acts");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ActivationStore acts(&store.value());
  DE_ASSERT_OK(acts.Save("m", 2, SampleMatrix()));
  ASSERT_TRUE(acts.Contains("m", 2));
  auto loaded = acts.Load("m", 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_inputs, 3u);
  EXPECT_EQ(loaded->num_neurons, 4u);
  EXPECT_EQ(loaded->At(2, 3), 23.0f);
}

TEST(ActivationStoreTest, MissingLayerIsNotFound) {
  TempDir dir("acts");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ActivationStore acts(&store.value());
  EXPECT_FALSE(acts.Contains("m", 0));
  EXPECT_TRUE(acts.Load("m", 0).status().IsNotFound());
}

TEST(ActivationStoreTest, RemoveDeletesFile) {
  TempDir dir("acts");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ActivationStore acts(&store.value());
  DE_ASSERT_OK(acts.Save("m", 1, SampleMatrix()));
  DE_ASSERT_OK(acts.Remove("m", 1));
  EXPECT_FALSE(acts.Contains("m", 1));
}

TEST(ActivationStoreTest, PersistedBytesMatchesFileSize) {
  TempDir dir("acts");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ActivationStore acts(&store.value());
  const LayerActivationMatrix m = SampleMatrix();
  DE_ASSERT_OK(acts.Save("m", 5, m));
  auto size = store->SizeOf(ActivationStore::KeyFor("m", 5));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, ActivationStore::PersistedBytes(3, 4));
}

TEST(ActivationStoreTest, CorruptFileRejected) {
  TempDir dir("acts");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ActivationStore acts(&store.value());
  DE_ASSERT_OK(store->Write(ActivationStore::KeyFor("m", 9),
                            {0xde, 0xad, 0xbe, 0xef, 0x01}));
  EXPECT_TRUE(acts.Load("m", 9).status().IsIOError());
}

TEST(ActivationStoreTest, GeometryMismatchRejectedOnSave) {
  TempDir dir("acts");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ActivationStore acts(&store.value());
  LayerActivationMatrix bad;
  bad.num_inputs = 5;
  bad.num_neurons = 5;
  bad.values.resize(3);  // inconsistent
  EXPECT_TRUE(acts.Save("m", 0, bad).IsInvalidArgument());
}

TEST(ActivationStoreTest, PerModelNamespacing) {
  TempDir dir("acts");
  auto store = FileStore::Open(dir.path());
  ASSERT_TRUE(store.ok());
  ActivationStore acts(&store.value());
  DE_ASSERT_OK(acts.Save("model_a", 0, SampleMatrix()));
  EXPECT_TRUE(acts.Contains("model_a", 0));
  EXPECT_FALSE(acts.Contains("model_b", 0));
}

}  // namespace
}  // namespace storage
}  // namespace deepeverest
