// Two sessions sharing one QueryService: an *interactive* session (a human
// stepping through neuron groups, each query carrying a deadline) and a
// *bulk* session sweeping layers in the background. QoS-aware dispatch
// keeps the human's latency flat while the sweep soaks up the leftover
// capacity; per-class p50/p99 from ServiceStats show the separation.
//
//   ./examples/example_qos_service
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/deepeverest.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "service/query_service.h"
#include "storage/file_store.h"

using namespace deepeverest;  // NOLINT: example brevity

namespace {

int Run() {
  nn::ModelPtr model = nn::MakeMiniResNet(/*seed=*/7);
  data::SyntheticImageConfig data_config;
  data_config.num_inputs = 200;
  data_config.seed = 13;
  data::Dataset dataset = data::MakeSyntheticImages(data_config);

  auto dir = storage::MakeTempDir("qos_service");
  if (!dir.ok()) return 1;
  auto store = storage::FileStore::Open(*dir);
  if (!store.ok()) return 1;

  core::DeepEverestOptions engine_options;
  engine_options.batch_size = 16;
  auto de = core::DeepEverest::Create(model.get(), &dataset, &store.value(),
                                      engine_options);
  if (!de.ok()) {
    std::fprintf(stderr, "%s\n", de.status().ToString().c_str());
    return 1;
  }
  // Warm serving start; the simulated device then provides realistic
  // per-batch latency for the service to schedule around.
  if (!(*de)->PreprocessAllLayers().ok()) return 1;
  (*de)->inference()->mutable_cost_model()->launch_overhead_seconds = 2e-3;
  (*de)->inference()->set_simulate_device_latency(true);

  service::QueryServiceOptions service_options;
  service_options.num_workers = 4;
  auto service = service::QueryService::Create(de->get(), service_options);
  if (!service.ok()) return 1;

  const std::vector<int>& layers = model->activation_layers();

  // Bulk session: best-effort sweep over every layer, many queries queued
  // at once (weight 1, no deadline — it can wait).
  std::vector<std::future<Result<core::TopKResult>>> bulk;
  for (int i = 0; i < 40; ++i) {
    core::QuerySpec query;
    query.layer = layers[static_cast<size_t>(i) % layers.size()];
    query.neurons = {i % 8, (i + 3) % 8, (i + 5) % 8};
    query.k = 10;
    query.session_id = 2;
    query.qos = QosClass::kBatch;
    auto submitted = (*service)->Submit(std::move(query));
    if (submitted.ok()) bulk.push_back(std::move(submitted.value()));
  }

  // Interactive session: one query at a time, 250 ms deadline each — the
  // dispatch queue lets these jump every queued bulk query.
  int answered = 0, missed = 0;
  for (int i = 0; i < 10; ++i) {
    core::QuerySpec query;
    query.kind = core::QuerySpec::Kind::kMostSimilar;
    query.target_id = 17 + i;
    query.layer = layers.back();
    query.neurons = {0, 2, 4};
    query.k = 5;
    query.session_id = 1;
    query.qos = QosClass::kInteractive;
    query.deadline_ms = 250.0;
    auto result = (*service)->Execute(std::move(query));
    if (result.ok()) {
      ++answered;
    } else {
      ++missed;
      std::printf("  interactive query %d: %s\n", i,
                  result.status().ToString().c_str());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& future : bulk) future.get();
  (*service)->Drain();

  const service::ServiceStats stats = (*service)->Snapshot();
  std::printf("\nInteractive session: %d answered within deadline, %d missed\n",
              answered, missed);
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "class", "completed",
              "deadline*", "p50", "p99", "fill");
  for (int c = 0; c < kNumQosClasses; ++c) {
    const service::QosClassStats& cls =
        stats.per_class[static_cast<size_t>(c)];
    if (cls.submitted == 0) continue;
    std::printf("%-12s %10lld %10lld %8.1fms %8.1fms %10.2f\n",
                QosClassName(static_cast<QosClass>(c)),
                static_cast<long long>(cls.completed),
                static_cast<long long>(cls.deadline_exceeded +
                                       cls.rejected_past_deadline),
                cls.p50_latency_seconds * 1e3, cls.p99_latency_seconds * 1e3,
                cls.batch_fill);
  }
  std::printf("  (*deadline: expired while queued or mid-query)\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
