// An interactive shell over the declarative query language: reads
// `SELECT TOPK ...` statements from stdin and executes them through the
// full service path (QueryService: admission, QoS, cross-query batching,
// streaming progress) — the same path every other entry point uses, not an
// engine-direct side door. Two models are served side by side; `\model`
// switches between them. Also accepts:
//   \model [name]          - switch the active model (no arg: list models)
//   LAYERS                 - list the active model's queryable layers
//   TOPNEURONS <input> <layer> <m>
//   STATS                  - service + inference/storage counters so far
//   HELP / QUIT
//
//   echo "SELECT TOPK 5 HIGHEST FOR LAYER 7 NEURONS (1,2,3)" |
//       ./examples/deepeverest_shell
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/ql.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "service/engine_registry.h"
#include "service/query_service.h"
#include "storage/file_store.h"
#include "tensor/tensor.h"

using namespace deepeverest;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::printf(
      "Statements:\n"
      "  SELECT TOPK <k> HIGHEST FOR LAYER <l> NEURONS (a, b, ...)\n"
      "  SELECT TOPK <k> [MOST] SIMILAR TO <input> FOR LAYER <l>\n"
      "         NEURONS (...) | TOP <m> NEURONS [OF <input>]\n"
      "         [USING L1|L2|LINF] [THETA <t>]\n"
      "  \\model [name] | LAYERS | TOPNEURONS <input> <layer> <m>\n"
      "  STATS | HELP | QUIT\n");
}

/// One served model: its engine plus the QueryService wrapping it. The
/// members build in declaration order (the engine borrows everything
/// above it) and destroy in reverse.
struct ServedModel {
  std::string name;
  nn::ModelPtr model;
  data::Dataset dataset;
  std::string store_dir;
  std::unique_ptr<storage::FileStore> store;
  std::unique_ptr<core::DeepEverest> engine;
  std::unique_ptr<service::QueryService> service;

  ServedModel(std::string model_name, nn::ModelPtr m, data::Dataset d)
      : name(std::move(model_name)),
        model(std::move(m)),
        dataset(std::move(d)) {}

  bool Open(const core::DeepEverestOptions& options) {
    auto dir = storage::MakeTempDir("shell_" + name);
    if (!dir.ok()) return false;
    store_dir = *dir;
    auto opened = storage::FileStore::Open(store_dir);
    if (!opened.ok()) return false;
    store = std::make_unique<storage::FileStore>(std::move(opened.value()));
    auto created = core::DeepEverest::Create(model.get(), &dataset,
                                             store.get(), options);
    if (!created.ok()) return false;
    engine = std::move(created.value());
    service::QueryServiceOptions service_options;
    service_options.num_workers = 2;
    auto svc = service::QueryService::Create(engine.get(), service_options);
    if (!svc.ok()) return false;
    service = std::move(svc.value());
    return true;
  }
};

}  // namespace

int main() {
  // Model A: the image-model interpretation session the paper describes.
  data::SyntheticImageConfig image_config;
  image_config.num_inputs = 400;
  image_config.seed = 123;
  ServedModel vgg("mini-vgg", nn::MakeMiniVgg(/*seed=*/77),
                  data::MakeSyntheticImages(image_config));
  core::DeepEverestOptions vgg_options;
  vgg_options.batch_size = 16;
  vgg_options.enable_iqa = true;
  if (!vgg.Open(vgg_options)) return 1;

  // Model B: a small MLP over synthetic vectors — a second model behind
  // the same shell, reachable via \model.
  data::Dataset vectors("shell-vec", Shape({8}));
  {
    Rng rng(321);
    for (uint32_t i = 0; i < 200; ++i) {
      Tensor input(Shape({8}));
      for (int d = 0; d < 8; ++d) {
        input[d] = static_cast<float>(rng.NextGaussian());
      }
      vectors.Add(std::move(input), static_cast<int>(i % 4));
    }
  }
  ServedModel mlp("tiny-mlp", nn::MakeTinyMlp(/*input_units=*/8, /*seed=*/9),
                  std::move(vectors));
  core::DeepEverestOptions mlp_options;
  mlp_options.batch_size = 8;
  mlp_options.enable_iqa = true;
  if (!mlp.Open(mlp_options)) return 1;

  service::EngineRegistry registry;
  if (!registry.Register(vgg.name, vgg.service.get()).ok() ||
      !registry.Register(mlp.name, mlp.service.get()).ok()) {
    return 1;
  }
  std::vector<ServedModel*> models = {&vgg, &mlp};
  ServedModel* active = &vgg;

  std::printf("DeepEverest shell — serving %zu models (active %s, %u "
              "inputs). Type HELP.\n",
              registry.size(), active->name.c_str(),
              active->dataset.size());
  std::string line;
  while (std::printf("deepeverest> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string first;
    words >> first;
    if (first.empty()) continue;
    if (first[0] == '\\') {
      std::string command = first.substr(1);
      for (char& c : command) c = static_cast<char>(std::tolower(c));
      if (command == "model") {
        std::string name;
        if (!(words >> name)) {
          for (const std::string& served : registry.ModelNames()) {
            std::printf("  %s%s\n", served.c_str(),
                        served == active->name ? "  (active)" : "");
          }
          continue;
        }
        ServedModel* found = nullptr;
        for (ServedModel* candidate : models) {
          if (candidate->name == name) found = candidate;
        }
        if (found == nullptr) {
          std::printf("error: model '%s' is not served (try \\model)\n",
                      name.c_str());
          continue;
        }
        active = found;
        std::printf("  active model: %s (%u inputs)\n", active->name.c_str(),
                    active->dataset.size());
        continue;
      }
      std::printf("error: unknown command '\\%s' (try HELP)\n",
                  command.c_str());
      continue;
    }
    for (char& c : first) c = static_cast<char>(std::toupper(c));
    if (first == "QUIT" || first == "EXIT") break;
    if (first == "HELP") {
      PrintHelp();
      continue;
    }
    if (first == "LAYERS") {
      for (int layer : active->model->activation_layers()) {
        std::printf("  layer %2d  (%s, %lld neurons)\n", layer,
                    active->model->layer(layer).name().c_str(),
                    static_cast<long long>(
                        active->model->NeuronCount(layer)));
      }
      continue;
    }
    if (first == "TOPNEURONS") {
      uint32_t input = 0;
      int layer = 0, m = 0;
      if (!(words >> input >> layer >> m)) {
        std::printf("usage: TOPNEURONS <input> <layer> <m>\n");
        continue;
      }
      auto top = active->engine->MaximallyActivatedNeurons(input, layer, m);
      if (!top.ok()) {
        std::printf("error: %s\n", top.status().ToString().c_str());
        continue;
      }
      std::printf("  ");
      for (int64_t n : *top) std::printf("%lld ", static_cast<long long>(n));
      std::printf("\n");
      continue;
    }
    if (first == "STATS") {
      const auto& stats = active->engine->inference()->stats();
      const service::ServiceStats service_stats =
          active->service->Snapshot();
      std::printf("  inputs through DNN: %lld (in %lld batches)\n",
                  static_cast<long long>(stats.inputs_run),
                  static_cast<long long>(stats.batches_run));
      std::printf("  service: %lld submitted, %lld completed, %lld failed\n",
                  static_cast<long long>(service_stats.submitted),
                  static_cast<long long>(service_stats.completed),
                  static_cast<long long>(service_stats.failed));
      std::printf("  index storage: %s of %s full materialisation\n",
                  std::to_string(
                      active->engine->PersistedIndexBytes().ValueOr(0))
                      .c_str(),
                  std::to_string(active->engine->FullMaterializationBytes())
                      .c_str());
      continue;
    }

    // A query statement: parse to the canonical QuerySpec, attach the
    // shell's serving envelope, run it through the service (admission,
    // QoS, batching, per-round progress — everything a remote client
    // gets).
    auto parsed = core::ParseQuery(line);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    core::QuerySpec spec = std::move(parsed.value());
    spec.session_id = 1;
    spec.qos = QosClass::kInteractive;
    spec.on_progress = [](const core::NtaProgress& progress) {
      std::printf("  [round %lld] threshold %.5f, %zu confirmed\n",
                  static_cast<long long>(progress.round), progress.threshold,
                  progress.confirmed.size());
      return true;
    };
    auto result = active->service->Execute(std::move(spec));
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& entry : result->entries) {
      std::printf("  input %4u   %.5f   (label %d)\n", entry.input_id,
                  entry.value, active->dataset.label(entry.input_id));
    }
    std::printf("  %lld inputs through the DNN, %lld served from IQA cache\n",
                static_cast<long long>(result->stats.inputs_run),
                static_cast<long long>(result->stats.iqa_hits));
  }
  return 0;
}
