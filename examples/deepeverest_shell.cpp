// An interactive shell over the declarative query language: reads
// `SELECT TOPK ...` statements from stdin and executes them against a
// demo model/dataset. Also accepts:
//   LAYERS                 - list queryable activation layers
//   TOPNEURONS <input> <layer> <m>
//   STATS                  - inference/storage counters so far
//   HELP / QUIT
//
//   echo "SELECT TOPK 5 HIGHEST FOR LAYER 7 NEURONS (1,2,3)" |
//       ./examples/deepeverest_shell
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/ql.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

using namespace deepeverest;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::printf(
      "Statements:\n"
      "  SELECT TOPK <k> HIGHEST FOR LAYER <l> NEURONS (a, b, ...)\n"
      "  SELECT TOPK <k> [MOST] SIMILAR TO <input> FOR LAYER <l>\n"
      "         NEURONS (...) | TOP <m> NEURONS [OF <input>]\n"
      "         [USING L1|L2|LINF] [THETA <t>]\n"
      "  LAYERS | TOPNEURONS <input> <layer> <m> | STATS | HELP | QUIT\n");
}

}  // namespace

int main() {
  nn::ModelPtr model = nn::MakeMiniVgg(/*seed=*/77);
  data::SyntheticImageConfig data_config;
  data_config.num_inputs = 400;
  data_config.seed = 123;
  data::Dataset dataset = data::MakeSyntheticImages(data_config);

  auto dir = storage::MakeTempDir("shell");
  if (!dir.ok()) return 1;
  auto store = storage::FileStore::Open(*dir);
  if (!store.ok()) return 1;
  core::DeepEverestOptions options;
  options.batch_size = 16;
  options.enable_iqa = true;
  auto de = core::DeepEverest::Create(model.get(), &dataset, &store.value(),
                                      options);
  if (!de.ok()) return 1;

  std::printf("DeepEverest shell — model %s, %u inputs. Type HELP.\n",
              model->name().c_str(), dataset.size());
  std::string line;
  while (std::printf("deepeverest> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string first;
    words >> first;
    for (char& c : first) c = static_cast<char>(std::toupper(c));
    if (first.empty()) continue;
    if (first == "QUIT" || first == "EXIT") break;
    if (first == "HELP") {
      PrintHelp();
      continue;
    }
    if (first == "LAYERS") {
      for (int layer : model->activation_layers()) {
        std::printf("  layer %2d  (%s, %lld neurons)\n", layer,
                    model->layer(layer).name().c_str(),
                    static_cast<long long>(model->NeuronCount(layer)));
      }
      continue;
    }
    if (first == "TOPNEURONS") {
      uint32_t input = 0;
      int layer = 0, m = 0;
      if (!(words >> input >> layer >> m)) {
        std::printf("usage: TOPNEURONS <input> <layer> <m>\n");
        continue;
      }
      auto top = (*de)->MaximallyActivatedNeurons(input, layer, m);
      if (!top.ok()) {
        std::printf("error: %s\n", top.status().ToString().c_str());
        continue;
      }
      std::printf("  ");
      for (int64_t n : *top) std::printf("%lld ", static_cast<long long>(n));
      std::printf("\n");
      continue;
    }
    if (first == "STATS") {
      const auto& stats = (*de)->inference()->stats();
      std::printf("  inputs through DNN: %lld (in %lld batches)\n",
                  static_cast<long long>(stats.inputs_run),
                  static_cast<long long>(stats.batches_run));
      std::printf("  index storage: %s of %s full materialisation\n",
                  std::to_string((*de)->PersistedIndexBytes().ValueOr(0))
                      .c_str(),
                  std::to_string((*de)->FullMaterializationBytes()).c_str());
      continue;
    }

    auto result = core::ExecuteQuery(de->get(), line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& entry : result->entries) {
      std::printf("  input %4u   %.5f   (label %d)\n", entry.input_id,
                  entry.value, dataset.label(entry.input_id));
    }
    std::printf("  %lld inputs through the DNN, %lld served from IQA cache\n",
                static_cast<long long>(result->stats.inputs_run),
                static_cast<long long>(result->stats.iqa_hits));
  }
  return 0;
}
