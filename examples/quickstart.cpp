// Quickstart: build a model and dataset, stand up DeepEverest, and run the
// two interpretation-by-example queries the system accelerates.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/deepeverest.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

using namespace deepeverest;  // NOLINT: example brevity

int main() {
  // 1. A frozen model and an input dataset (stand-ins for a trained VGG16
  //    and CIFAR10; see DESIGN.md for the substitution rationale).
  nn::ModelPtr model = nn::MakeMiniVgg(/*seed=*/42);
  data::SyntheticImageConfig data_config;
  data_config.num_inputs = 300;
  data_config.seed = 7;
  data::Dataset dataset = data::MakeSyntheticImages(data_config);

  // 2. A workspace for persisted indexes, and the system itself with a 20%
  //    storage budget (the paper's default).
  auto dir = storage::MakeTempDir("quickstart");
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }
  auto store = storage::FileStore::Open(*dir);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  core::DeepEverestOptions options;
  options.batch_size = 16;
  options.storage_budget_fraction = 0.2;
  auto de = core::DeepEverest::Create(model.get(), &dataset, &store.value(),
                                      options);
  if (!de.ok()) {
    std::fprintf(stderr, "%s\n", de.status().ToString().c_str());
    return 1;
  }
  std::printf("DeepEverest ready: nPartitions=%d, MAI ratio=%.4f\n",
              (*de)->config().num_partitions, (*de)->config().mai_ratio);

  // 3. Top-k highest query ("which inputs maximally activate these
  //    neurons?") against three neurons of the mid activation layer.
  const int mid_layer = model->activation_layers()[2];
  core::NeuronGroup group{mid_layer, {10, 42, 100}};
  auto highest = (*de)->TopKHighest(group, /*k=*/5);
  if (!highest.ok()) {
    std::fprintf(stderr, "%s\n", highest.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop-5 highest for %s:\n", group.ToString().c_str());
  for (const auto& e : highest->entries) {
    std::printf("  input %4u  score %.4f  (label %d)\n", e.input_id, e.value,
                dataset.label(e.input_id));
  }
  std::printf("  [first query on a layer builds its index: %lld inputs run]\n",
              static_cast<long long>(highest->stats.inputs_run));

  // 4. Top-k most-similar query ("which inputs look like input 17 to the
  //    neurons it activates most?"). The layer is now indexed, so NTA
  //    prunes inference. Arbitrary neurons would mostly be zero for this
  //    input (ReLU sparsity), so — as in real interpretation sessions — we
  //    query its maximally activated neurons.
  auto top_neurons = (*de)->MaximallyActivatedNeurons(17, mid_layer, 3);
  if (!top_neurons.ok()) {
    std::fprintf(stderr, "%s\n", top_neurons.status().ToString().c_str());
    return 1;
  }
  group.neurons = *top_neurons;
  auto similar = (*de)->TopKMostSimilar(/*target_id=*/17, group, /*k=*/5);
  if (!similar.ok()) {
    std::fprintf(stderr, "%s\n", similar.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop-5 most similar to input 17 (label %d):\n",
              dataset.label(17));
  for (const auto& e : similar->entries) {
    std::printf("  input %4u  dist %.4f  (label %d)\n", e.input_id, e.value,
                dataset.label(e.input_id));
  }
  std::printf(
      "  [NTA ran inference on %lld of %u inputs — %.1f%% of the dataset]\n",
      static_cast<long long>(similar->stats.inputs_run), dataset.size(),
      100.0 * static_cast<double>(similar->stats.inputs_run) /
          dataset.size());
  return 0;
}
