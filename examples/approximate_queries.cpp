// Demonstrates the section-6 extensions: θ-approximate answers, incremental
// result return, and interactive early stopping with a θ guarantee.
//
//   ./examples/approximate_queries
#include <cstdio>

#include "core/deepeverest.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

using namespace deepeverest;  // NOLINT: example brevity

int main() {
  nn::ModelPtr model = nn::MakeMiniVgg(/*seed=*/5);
  data::SyntheticImageConfig data_config;
  data_config.num_inputs = 400;
  data_config.seed = 21;
  data::Dataset dataset = data::MakeSyntheticImages(data_config);

  auto dir = storage::MakeTempDir("approx");
  if (!dir.ok()) return 1;
  auto store = storage::FileStore::Open(*dir);
  if (!store.ok()) return 1;
  core::DeepEverestOptions de_options;
  de_options.batch_size = 16;
  auto de = core::DeepEverest::Create(model.get(), &dataset, &store.value(),
                                      de_options);
  if (!de.ok()) return 1;

  const int layer = model->activation_layers()[2];
  const uint32_t target = 9;
  // Query the target's maximally activated neurons (arbitrary neurons are
  // mostly zero for any one input under ReLU, which makes distances
  // degenerate).
  auto top_neurons = (*de)->MaximallyActivatedNeurons(target, layer, 3);
  if (!top_neurons.ok()) return 1;
  core::NeuronGroup group{layer, *top_neurons};

  // Warm the index so every run below is NTA-driven.
  if (!(*de)->TopKHighest(group, 1).ok()) return 1;

  // Exact vs θ-approximate: the approximation may stop earlier (fewer
  // inputs through the DNN) while guaranteeing θ·dist(returned) <=
  // dist(anything else).
  std::printf("theta   inputs_run   worst-dist\n");
  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kMostSimilar;
  spec.k = 10;
  spec.layer = group.layer;
  spec.neurons = group.neurons;
  spec.target_id = static_cast<int64_t>(target);
  for (double theta : {1.0, 0.9, 0.7, 0.5}) {
    core::QuerySpec approx = spec;
    approx.theta = theta;
    auto result = (*de)->ExecuteSpec(approx);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%.2f    %6lld       %.4f\n", theta,
                static_cast<long long>(result->stats.inputs_run),
                result->entries.back().value);
  }

  // Incremental return: watch answers become *final* before the query
  // finishes (section 6, "incrementally returning query results"). The
  // progress sink rides in a per-query QueryContext.
  std::printf("\nIncremental confirmation of the exact top-10:\n");
  core::QueryContext progress_ctx;
  progress_ctx.on_progress = [](const core::NtaProgress& p) {
    std::printf("  round %2lld: threshold %.4f, %zu/10 results confirmed\n",
                static_cast<long long>(p.round), p.threshold,
                p.confirmed.size());
    return true;
  };
  if (!(*de)->ExecuteSpec(spec, &progress_ctx).ok()) {
    return 1;
  }

  // Early stopping: the user halts after three rounds and still gets a
  // quantified guarantee.
  std::printf("\nEarly stop after 3 rounds:\n");
  double guarantee = 0.0;
  core::QueryContext stop_ctx;
  stop_ctx.on_progress = [&](const core::NtaProgress& p) {
    guarantee = p.theta_guarantee;
    return p.round < 3;
  };
  auto stopped = (*de)->ExecuteSpec(spec, &stop_ctx);
  if (!stopped.ok()) return 1;
  std::printf(
      "  returned %zu results after %lld inputs; they are a "
      "theta=%.3f approximation of the true top-10\n",
      stopped->entries.size(),
      static_cast<long long>(stopped->stats.inputs_run), guarantee);
  return 0;
}
