// Runs the same query through DeepEverest and each baseline strategy and
// prints the time / storage / inference trade-off (a one-row taste of the
// paper's Figure 5).
//
//   ./examples/baseline_comparison
#include <cstdio>
#include <iostream>

#include "baselines/preprocess_all.h"
#include "baselines/reprocess_all.h"
#include "bench_util/report.h"
#include "core/deepeverest.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

using namespace deepeverest;  // NOLINT: example brevity

int main() {
  nn::ModelPtr model = nn::MakeMiniVgg(/*seed=*/8);
  data::SyntheticImageConfig data_config;
  data_config.num_inputs = 400;
  data_config.seed = 33;
  data::Dataset dataset = data::MakeSyntheticImages(data_config);
  nn::InferenceEngine baseline_engine(model.get(), &dataset, 16);

  auto dir = storage::MakeTempDir("compare");
  if (!dir.ok()) return 1;
  auto store_de = storage::FileStore::Open(*dir + "/de");
  auto store_pa = storage::FileStore::Open(*dir + "/pa");
  if (!store_de.ok() || !store_pa.ok()) return 1;

  core::DeepEverestOptions de_options;
  de_options.batch_size = 16;
  de_options.storage_budget_fraction = 0.2;
  auto de = core::DeepEverest::Create(model.get(), &dataset,
                                      &store_de.value(), de_options);
  if (!de.ok()) return 1;

  baselines::PreprocessAll preprocess(&baseline_engine, &store_pa.value());
  baselines::ReprocessAll reprocess(&baseline_engine);
  if (!preprocess.Preprocess().ok()) return 1;

  const int layer = model->activation_layers()[2];
  const core::NeuronGroup group{layer, {3, 250, 999}};
  const uint32_t target = 77;
  const int k = 20;

  // Warm DeepEverest's index so the measured query is the steady state.
  if (!(*de)->TopKHighest(group, 1).ok()) return 1;

  bench_util::TablePrinter table(
      {"Method", "Query time", "Inputs through DNN", "Disk storage"});

  auto de_result = (*de)->TopKMostSimilar(target, group, k);
  if (!de_result.ok()) return 1;
  table.AddRow({"DeepEverest (20% budget)",
                bench_util::FormatSeconds(de_result->stats.wall_seconds),
                std::to_string(de_result->stats.inputs_run),
                bench_util::FormatBytes(
                    (*de)->PersistedIndexBytes().ValueOr(0))});

  auto pa_result = preprocess.TopKMostSimilar(target, group, k, nullptr);
  if (!pa_result.ok()) return 1;
  table.AddRow({"PreprocessAll",
                bench_util::FormatSeconds(pa_result->stats.wall_seconds),
                std::to_string(pa_result->stats.inputs_run),
                bench_util::FormatBytes(preprocess.StorageBytes().ValueOr(0))});

  auto ra_result = reprocess.TopKMostSimilar(target, group, k, nullptr);
  if (!ra_result.ok()) return 1;
  table.AddRow({"ReprocessAll",
                bench_util::FormatSeconds(ra_result->stats.wall_seconds),
                std::to_string(ra_result->stats.inputs_run), "0 B"});

  std::printf("SimHigh query, k=%d, |G|=%zu, layer %d, %u inputs\n\n", k,
              group.neurons.size(), layer, dataset.size());
  table.Print(std::cout);

  // Sanity: all three methods agree on the result set values.
  for (size_t i = 0; i < de_result->entries.size(); ++i) {
    const double a = de_result->entries[i].value;
    const double b = pa_result->entries[i].value;
    const double c = ra_result->entries[i].value;
    if (std::abs(a - b) > 1e-4 || std::abs(a - c) > 1e-4) {
      std::fprintf(stderr, "rank %zu mismatch: %f %f %f\n", i, a, b, c);
      return 1;
    }
  }
  std::printf("\nAll methods returned identical top-%d distances.\n", k);
  return 0;
}
