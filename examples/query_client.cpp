// End-to-end driver for the HTTP query API, used interactively and by the
// `server-e2e` CI job. It rebuilds the server's engine locally (everything
// derives from the shared --seed), then drives the live server and asserts:
//
//  1. Mixed interactive/batch-session queries over POST /v1/query return
//     results *bit-identical* to the local in-process sequential reference
//     (entries and exact per-query inputs_run).
//  2. A streaming GET /v1/query?stream=1 emits at least one NDJSON progress
//     event before the final result, rounds strictly increase, the
//     confirmed set only grows, and the final entries match the reference.
//  3. A deadline_ms=0 request is rejected with 504/DeadlineExceeded
//     *without running inference* (the service's rejected_past_deadline
//     counter increments; no execution counter moves).
//  4. Addressing the wrong model 404s.
//
//   ./example_query_client --port 8080 [--host 127.0.0.1] [--seed N]
//
// Exits 0 when every check passes. --wait-ready-seconds polls /healthz
// first, so CI can start the server and the client back to back.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/demo_system.h"
#include "common/json.h"
#include "net/http_client.h"
#include "service/query_service.h"

using namespace deepeverest;  // NOLINT: example brevity

namespace {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 8080;
  uint64_t seed = 7;
  uint32_t num_inputs = 200;
  double wait_ready_seconds = 20.0;
};

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  PASS  %s\n", what.c_str());
  } else {
    std::printf("  FAIL  %s\n", what.c_str());
    ++g_failures;
  }
}

Result<net::HttpClient> ConnectReady(const ClientOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.wait_ready_seconds));
  for (;;) {
    auto client = net::HttpClient::Connect(options.host, options.port);
    if (client.ok()) {
      auto health = client->Get("/healthz");
      if (health.ok() && health->status == 200) return client;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IOError("server not ready within " +
                             std::to_string(options.wait_ready_seconds) +
                             "s");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

/// The canonical sequential reference: the query run directly on the local
/// twin engine in the service's execution mode.
Result<core::TopKResult> RunReference(core::DeepEverest* engine,
                                      const service::TopKQuery& query) {
  core::NtaOptions options;
  options.k = query.k;
  options.theta = query.theta;
  options.tie_complete = true;
  if (query.kind == service::TopKQuery::Kind::kHighest) {
    return engine->TopKHighestWithOptions(query.group, std::move(options));
  }
  return engine->TopKMostSimilarWithOptions(query.target_id, query.group,
                                            std::move(options));
}

/// True when the HTTP entries match the reference exactly (ids and values
/// bit-identical — values round-trip through %.17g).
bool EntriesMatch(const JsonValue& entries, const core::TopKResult& expected) {
  if (!entries.is_array() ||
      entries.array_items().size() != expected.entries.size()) {
    return false;
  }
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    const JsonValue& entry = entries.array_items()[i];
    const JsonValue* id = entry.Find("input_id");
    const JsonValue* value = entry.Find("value");
    if (id == nullptr || value == nullptr) return false;
    if (id->int_value() !=
        static_cast<int64_t>(expected.entries[i].input_id)) {
      return false;
    }
    if (value->number_value() != expected.entries[i].value) return false;
  }
  return true;
}

int64_t StatsField(net::HttpClient* client, const std::string& field) {
  auto response = client->Get("/v1/stats");
  if (!response.ok() || response->status != 200) return -1;
  auto parsed = ParseJson(response->body);
  if (!parsed.ok()) return -1;
  const JsonValue* value = parsed->Find(field);
  return value == nullptr ? -1 : value->int_value();
}

int Run(const ClientOptions& options) {
  // The local twin: same seed, same dataset, same weights — reference
  // results are computed here, never fetched from the server under test.
  bench_util::DemoSystemOptions demo_options;
  demo_options.seed = options.seed;
  demo_options.num_inputs = options.num_inputs;
  auto system = bench_util::DemoSystem::Make(demo_options);
  if (!system.ok()) {
    std::fprintf(stderr, "demo system: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  const std::string model_name = (*system)->model_name();

  auto connected = ConnectReady(options);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return 1;
  }
  net::HttpClient client = std::move(connected.value());
  std::printf("connected to %s:%u (model %s)\n", options.host.c_str(),
              static_cast<unsigned>(options.port), model_name.c_str());

  // --- 1. Mixed workload, bit-identical to the sequential reference. ----
  const std::vector<service::TopKQuery> workload =
      bench_util::MakeMixedWorkload(*(*system)->model(), 16);
  int mismatches = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto reference = RunReference((*system)->engine(), workload[i]);
    if (!reference.ok()) {
      std::fprintf(stderr, "reference query %zu: %s\n", i,
                   reference.status().ToString().c_str());
      return 1;
    }
    auto response = client.Post(
        "/v1/query", bench_util::TopKQueryJson(workload[i], model_name));
    if (!response.ok() || response->status != 200) {
      ++mismatches;
      continue;
    }
    auto body = ParseJson(response->body);
    if (!body.ok()) {
      ++mismatches;
      continue;
    }
    const JsonValue* entries = body->Find("entries");
    const JsonValue* stats = body->Find("stats");
    const JsonValue* inputs_run =
        stats == nullptr ? nullptr : stats->Find("inputs_run");
    if (entries == nullptr || inputs_run == nullptr ||
        !EntriesMatch(*entries, reference.value()) ||
        inputs_run->int_value() != reference->stats.inputs_run) {
      ++mismatches;
    }
  }
  Check(mismatches == 0,
        "mixed interactive/batch workload (" +
            std::to_string(workload.size()) +
            " queries) bit-identical to sequential reference");

  // --- 2. Streaming query: progress before result, matching final. ------
  {
    service::TopKQuery streaming;
    streaming.kind = service::TopKQuery::Kind::kHighest;
    streaming.group.layer = (*system)->model()->activation_layers().front();
    streaming.group.neurons = {0, 1, 2, 3};
    streaming.k = 10;
    auto reference = RunReference((*system)->engine(), streaming);
    if (!reference.ok()) {
      std::fprintf(stderr, "streaming reference: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    std::string neurons = "0,1,2,3";
    const std::string target =
        "/v1/query?stream=1&kind=highest&layer=" +
        std::to_string(streaming.group.layer) + "&neurons=" + neurons +
        "&k=10&session_id=9&qos=interactive";
    int progress_events = 0;
    int result_events = 0;
    int64_t last_round = -1;
    size_t last_confirmed = 0;
    bool ordered = true;
    bool progress_before_result = true;
    bool final_matches = false;
    auto streamed = client.GetStream(target, [&](const std::string& line) {
      auto event = ParseJson(line);
      if (!event.ok()) return true;
      const JsonValue* kind = event->Find("event");
      if (kind == nullptr || !kind->is_string()) return true;
      if (kind->string_value() == "progress") {
        if (result_events > 0) progress_before_result = false;
        ++progress_events;
        const JsonValue* round = event->Find("round");
        const JsonValue* confirmed = event->Find("confirmed");
        if (round == nullptr || round->int_value() <= last_round) {
          ordered = false;
        } else {
          last_round = round->int_value();
        }
        const size_t confirmed_count =
            confirmed != nullptr && confirmed->is_array()
                ? confirmed->array_items().size()
                : 0;
        // For kHighest the confirmed set only grows round over round.
        if (confirmed_count < last_confirmed) ordered = false;
        last_confirmed = confirmed_count;
      } else if (kind->string_value() == "result") {
        ++result_events;
        const JsonValue* entries = event->Find("entries");
        final_matches =
            entries != nullptr && EntriesMatch(*entries, reference.value());
      }
      return true;
    });
    Check(streamed.ok() && streamed->status == 200,
          "streaming query returned 200 with a chunked body");
    Check(progress_events >= 1 && result_events == 1 &&
              progress_before_result,
          "stream emitted >=1 progress event before the final result (" +
              std::to_string(progress_events) + " progress)");
    Check(ordered, "progress rounds increase and confirmed set only grows");
    Check(final_matches, "streamed final result bit-identical to reference");
  }

  // --- 3. deadline_ms=0 rejected without running inference. -------------
  {
    const int64_t rejected_before =
        StatsField(&client, "rejected_past_deadline");
    const int64_t executed_before = StatsField(&client, "completed") +
                                    StatsField(&client, "failed") +
                                    StatsField(&client, "deadline_exceeded");
    service::TopKQuery doomed;
    doomed.group.layer = (*system)->model()->activation_layers().back();
    doomed.group.neurons = {0, 1};
    doomed.k = 3;
    auto response = client.Post(
        "/v1/query",
        bench_util::TopKQueryJson(doomed, model_name,
                                  /*include_deadline_ms=*/true,
                                  /*deadline_ms=*/0.0));
    bool rejected_504 = false;
    if (response.ok() && response->status == 504) {
      auto body = ParseJson(response->body);
      if (body.ok()) {
        const JsonValue* error = body->Find("error");
        const JsonValue* code = error ? error->Find("code") : nullptr;
        rejected_504 = code != nullptr && code->is_string() &&
                       code->string_value() == "DeadlineExceeded";
      }
    }
    Check(rejected_504, "deadline_ms=0 rejected with 504 DeadlineExceeded");
    const int64_t rejected_after =
        StatsField(&client, "rejected_past_deadline");
    const int64_t executed_after = StatsField(&client, "completed") +
                                   StatsField(&client, "failed") +
                                   StatsField(&client, "deadline_exceeded");
    Check(rejected_after == rejected_before + 1 &&
              executed_after == executed_before,
          "rejection counted as rejected_past_deadline; no inference ran");
  }

  // --- 4. Wrong model 404s. ---------------------------------------------
  {
    service::TopKQuery query;
    query.group.layer = (*system)->model()->activation_layers().front();
    query.group.neurons = {0};
    auto response = client.Post(
        "/v1/query",
        bench_util::TopKQueryJson(query, "NotTheModelYouAreLookingFor"));
    Check(response.ok() && response->status == 404,
          "query for an unserved model returns 404");
  }

  std::printf("%s (%d failure%s)\n", g_failures == 0 ? "ALL PASS" : "FAILED",
              g_failures, g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(std::atoi(next_value("--port")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(next_value("--seed")));
    } else if (std::strcmp(argv[i], "--inputs") == 0) {
      options.num_inputs =
          static_cast<uint32_t>(std::atoi(next_value("--inputs")));
    } else if (std::strcmp(argv[i], "--wait-ready-seconds") == 0) {
      options.wait_ready_seconds = std::atof(next_value("--wait-ready-seconds"));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host A] [--port N] [--seed N] [--inputs N] "
                   "[--wait-ready-seconds X]\n",
                   argv[0]);
      return 2;
    }
  }
  return Run(options);
}
