// End-to-end driver for the multi-model HTTP query API, used interactively
// and by the `server-e2e` CI job. It rebuilds BOTH of the server's engines
// locally (everything derives from the shared --seed and the fixed
// second-model seed derivation in bench_util), then drives the live server
// and asserts:
//
//  1. Mixed interactive/batch-session queries over POST /v1/query,
//     addressed to each model by its `model` field, return results
//     *bit-identical* to that model's local in-process sequential
//     reference (entries and exact per-query inputs_run) — i.e. routing
//     routes, and the two models demonstrably answer differently.
//  2. A request without a `model` field routes to the default model.
//  3. GET /v1/models lists both models and the default; addressing an
//     unregistered model 404s.
//  4. A derived-group query (`TOP m NEURONS OF x`) submitted via the
//     structured JSON wire AND via POST /v1/ql executes through the
//     QueryService with exact inputs_run attribution, bit-identical to the
//     engine-direct ExecuteSpec reference.
//  5. A streamed POST /v1/ql?stream=1 emits at least one NDJSON progress
//     event before the final result, rounds strictly increase, and the
//     final entries match the reference.
//  6. A deadline_ms=0 request is rejected with 504/DeadlineExceeded
//     *without running inference* (the routed model's
//     rejected_past_deadline counter increments; no execution counter
//     moves, and the *other* model's counters do not move at all).
//  7. A trace=1 query returns its span tree: the root's direct children
//     cover >=95% of the query's wall time, the per-span inputs_run attrs
//     sum exactly to the query's reported inputs_run, and the same trace
//     is retrievable afterwards at GET /v1/trace/<id>.
//  8. GET /v1/metrics parses as Prometheus text exposition format
//     (validated, not just non-empty), reports completed queries for both
//     models, a populated batch-fill histogram, and no 5xx responses
//     beyond the single deliberate 504 from check 6.
//
//   ./example_query_client --port 8080 [--host 127.0.0.1] [--seed N]
//
// Exits 0 when every check passes. --wait-ready-seconds polls /healthz
// first, so CI can start the server and the client back to back.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/demo_system.h"
#include "common/json.h"
#include "core/query_spec_json.h"
#include "net/http_client.h"
#include "service/metrics_registry.h"

using namespace deepeverest;  // NOLINT: example brevity

namespace {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 8080;
  uint64_t seed = 7;
  uint32_t num_inputs = 200;
  double wait_ready_seconds = 20.0;
};

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  PASS  %s\n", what.c_str());
  } else {
    std::printf("  FAIL  %s\n", what.c_str());
    ++g_failures;
  }
}

Result<net::HttpClient> ConnectReady(const ClientOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.wait_ready_seconds));
  for (;;) {
    auto client = net::HttpClient::Connect(options.host, options.port);
    if (client.ok()) {
      auto health = client->Get("/healthz");
      if (health.ok() && health->status == 200) return client;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IOError("server not ready within " +
                             std::to_string(options.wait_ready_seconds) +
                             "s");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

/// The canonical sequential reference: the spec run engine-direct on the
/// local twin through the same ExecuteSpec path the service uses.
Result<core::TopKResult> RunReference(core::DeepEverest* engine,
                                      const core::QuerySpec& spec) {
  return engine->ExecuteSpec(spec);
}

/// True when the HTTP entries match the reference exactly (ids and values
/// bit-identical — values round-trip through %.17g).
bool EntriesMatch(const JsonValue& entries, const core::TopKResult& expected) {
  if (!entries.is_array() ||
      entries.array_items().size() != expected.entries.size()) {
    return false;
  }
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    const JsonValue& entry = entries.array_items()[i];
    const JsonValue* id = entry.Find("input_id");
    const JsonValue* value = entry.Find("value");
    if (id == nullptr || value == nullptr) return false;
    if (id->int_value() !=
        static_cast<int64_t>(expected.entries[i].input_id)) {
      return false;
    }
    if (value->number_value() != expected.entries[i].value) return false;
  }
  return true;
}

/// Reads `field` from the /v1/stats section of `model` (-1 on any miss).
int64_t StatsField(net::HttpClient* client, const std::string& model,
                   const std::string& field) {
  auto response = client->Get("/v1/stats");
  if (!response.ok() || response->status != 200) return -1;
  auto parsed = ParseJson(response->body);
  if (!parsed.ok()) return -1;
  const JsonValue* models = parsed->Find("models");
  if (models == nullptr || !models->is_array()) return -1;
  for (const JsonValue& section : models->array_items()) {
    const JsonValue* name = section.Find("model");
    if (name == nullptr || !name->is_string() ||
        name->string_value() != model) {
      continue;
    }
    const JsonValue* value = section.Find(field);
    return value == nullptr ? -1 : value->int_value();
  }
  return -1;
}

int64_t ExecutedCount(net::HttpClient* client, const std::string& model) {
  return StatsField(client, model, "completed") +
         StatsField(client, model, "failed") +
         StatsField(client, model, "deadline_exceeded");
}

/// The value of the sample whose `name{labels}` part equals `series` in a
/// Prometheus text scrape; -1 when the series is absent.
double MetricValue(const std::string& text, const std::string& series) {
  size_t pos = 0;
  while ((pos = text.find(series, pos)) != std::string::npos) {
    const bool at_line_start = pos == 0 || text[pos - 1] == '\n';
    const size_t value_at = pos + series.size();
    if (at_line_start && value_at < text.size() && text[value_at] == ' ') {
      return std::atof(text.c_str() + value_at + 1);
    }
    pos = value_at;
  }
  return -1.0;
}

/// Sums the `inputs_run` span attrs of a trace JSON object — the spans
/// that partition the query's inference (compute_layer spans use the key
/// `inputs` precisely so they are not double-counted here).
int64_t SumTraceInputsRun(const JsonValue& trace) {
  int64_t sum = 0;
  const JsonValue* spans = trace.Find("spans");
  if (spans == nullptr || !spans->is_array()) return -1;
  for (const JsonValue& span : spans->array_items()) {
    const JsonValue* attrs = span.Find("attrs");
    if (attrs == nullptr) continue;
    const JsonValue* inputs_run = attrs->Find("inputs_run");
    if (inputs_run != nullptr) sum += inputs_run->int_value();
  }
  return sum;
}

int Run(const ClientOptions& options) {
  // The local twins: same seeds, same datasets, same weights — reference
  // results are computed here, never fetched from the server under test.
  bench_util::DemoSystemOptions demo_options;
  demo_options.seed = options.seed;
  demo_options.num_inputs = options.num_inputs;
  auto twin_a = bench_util::DemoSystem::Make(demo_options);
  bench_util::DemoSystemOptions demo_options_b = demo_options;
  demo_options_b.seed = bench_util::DemoModelBSeed(options.seed);
  auto twin_b = bench_util::DemoSystem::Make(demo_options_b);
  if (!twin_a.ok() || !twin_b.ok()) {
    std::fprintf(stderr, "demo system: %s\n",
                 (!twin_a.ok() ? twin_a.status() : twin_b.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  auto connected = ConnectReady(options);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return 1;
  }
  net::HttpClient client = std::move(connected.value());
  std::printf("connected to %s:%u (models %s, %s)\n", options.host.c_str(),
              static_cast<unsigned>(options.port), bench_util::kDemoModelA,
              bench_util::kDemoModelB);

  // --- 1. Mixed workload, routed per model, bit-identical to each twin. --
  const std::vector<core::QuerySpec> workload =
      bench_util::MakeMixedWorkload(*(*twin_a)->model(), 16);
  struct ModelArm {
    const char* name;
    core::DeepEverest* engine;
  };
  const ModelArm arms[] = {{bench_util::kDemoModelA, (*twin_a)->engine()},
                           {bench_util::kDemoModelB, (*twin_b)->engine()}};
  // Collect model A's reference values to also prove the two models answer
  // differently (routing is observable, not a no-op).
  std::vector<core::TopKResult> reference_a;
  int differing_between_models = 0;
  for (const ModelArm& arm : arms) {
    int mismatches = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      auto reference = RunReference(arm.engine, workload[i]);
      if (!reference.ok()) {
        std::fprintf(stderr, "reference query %zu (%s): %s\n", i, arm.name,
                     reference.status().ToString().c_str());
        return 1;
      }
      if (arm.engine == (*twin_a)->engine()) {
        reference_a.push_back(reference.value());
      } else if (i < reference_a.size()) {
        const auto& a = reference_a[i].entries;
        const auto& b = reference->entries;
        bool same = a.size() == b.size();
        for (size_t r = 0; same && r < a.size(); ++r) {
          same = a[r].input_id == b[r].input_id && a[r].value == b[r].value;
        }
        if (!same) ++differing_between_models;
      }
      auto response = client.Post(
          "/v1/query", core::QuerySpecJson(workload[i], arm.name));
      if (!response.ok() || response->status != 200) {
        ++mismatches;
        continue;
      }
      auto body = ParseJson(response->body);
      if (!body.ok()) {
        ++mismatches;
        continue;
      }
      const JsonValue* entries = body->Find("entries");
      const JsonValue* stats = body->Find("stats");
      const JsonValue* inputs_run =
          stats == nullptr ? nullptr : stats->Find("inputs_run");
      if (entries == nullptr || inputs_run == nullptr ||
          !EntriesMatch(*entries, reference.value()) ||
          inputs_run->int_value() != reference->stats.inputs_run) {
        ++mismatches;
      }
    }
    Check(mismatches == 0,
          std::string("mixed workload (") + std::to_string(workload.size()) +
              " queries) routed to '" + arm.name +
              "' bit-identical to its twin reference");
  }
  Check(differing_between_models > 0,
        "the two models answer differently (routing is observable)");

  // --- 2. No model field -> the default model (demo-a). -----------------
  {
    auto reference = RunReference((*twin_a)->engine(), workload[0]);
    auto response =
        client.Post("/v1/query", core::QuerySpecJson(workload[0]));
    bool matches = false;
    if (reference.ok() && response.ok() && response->status == 200) {
      auto body = ParseJson(response->body);
      const JsonValue* entries = body.ok() ? body->Find("entries") : nullptr;
      matches = entries != nullptr && EntriesMatch(*entries,
                                                   reference.value());
    }
    Check(matches, "request without a model field routes to the default");
  }

  // --- 3. /v1/models + unknown-model 404. --------------------------------
  {
    auto response = client.Get("/v1/models");
    bool listed = false;
    if (response.ok() && response->status == 200) {
      auto body = ParseJson(response->body);
      if (body.ok()) {
        const JsonValue* models = body->Find("models");
        const JsonValue* fallback = body->Find("default");
        bool has_a = false, has_b = false;
        if (models != nullptr && models->is_array()) {
          for (const JsonValue& name : models->array_items()) {
            has_a = has_a || (name.is_string() &&
                              name.string_value() == bench_util::kDemoModelA);
            has_b = has_b || (name.is_string() &&
                              name.string_value() == bench_util::kDemoModelB);
          }
        }
        listed = has_a && has_b && fallback != nullptr &&
                 fallback->is_string() &&
                 fallback->string_value() == bench_util::kDemoModelA;
      }
    }
    Check(listed, "GET /v1/models lists both models and the default");

    auto unknown = client.Post(
        "/v1/query",
        core::QuerySpecJson(workload[0], "NotTheModelYouAreLookingFor"));
    Check(unknown.ok() && unknown->status == 404,
          "query for an unserved model returns 404");
  }

  // --- 4. Derived-group query via JSON wire and via /v1/ql. --------------
  {
    core::QuerySpec derived;
    derived.kind = core::QuerySpec::Kind::kHighest;
    derived.layer = (*twin_a)->model()->activation_layers().front();
    derived.top_neurons = 3;
    derived.top_of = 5;
    derived.k = 8;
    derived.session_id = 11;
    auto reference = RunReference((*twin_a)->engine(), derived);
    if (!reference.ok()) {
      std::fprintf(stderr, "derived reference: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }

    auto check_response = [&](Result<net::HttpResponse> response,
                              const std::string& what) {
      bool matches = false;
      if (response.ok() && response->status == 200) {
        auto body = ParseJson(response->body);
        if (body.ok()) {
          const JsonValue* entries = body->Find("entries");
          const JsonValue* stats = body->Find("stats");
          const JsonValue* inputs_run =
              stats == nullptr ? nullptr : stats->Find("inputs_run");
          matches = entries != nullptr && inputs_run != nullptr &&
                    EntriesMatch(*entries, reference.value()) &&
                    inputs_run->int_value() == reference->stats.inputs_run;
        }
      }
      Check(matches, what);
    };

    check_response(
        client.Post("/v1/query",
                    core::QuerySpecJson(derived, bench_util::kDemoModelA)),
        "derived-group (TOP m NEURONS OF x) via JSON wire: bit-identical "
        "entries + exact inputs_run");

    JsonWriter w;
    w.BeginObject();
    w.Key("model");
    w.String(bench_util::kDemoModelA);
    w.Key("ql");
    w.String(derived.ToString());
    w.Key("session_id");
    w.Uint(derived.session_id);
    w.EndObject();
    check_response(client.Post("/v1/ql", w.TakeString()),
                   "derived-group via POST /v1/ql: bit-identical entries + "
                   "exact inputs_run");
  }

  // --- 5. Streamed /v1/ql: progress before result, matching final. -------
  {
    core::QuerySpec streaming;
    streaming.kind = core::QuerySpec::Kind::kHighest;
    streaming.layer = (*twin_a)->model()->activation_layers().front();
    streaming.neurons = {0, 1, 2, 3};
    streaming.k = 10;
    auto reference = RunReference((*twin_a)->engine(), streaming);
    if (!reference.ok()) {
      std::fprintf(stderr, "streaming reference: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("model");
    w.String(bench_util::kDemoModelA);
    w.Key("ql");
    w.String(streaming.ToString());
    w.Key("qos");
    w.String("interactive");
    w.Key("session_id");
    w.Uint(9);
    w.EndObject();
    int progress_events = 0;
    int result_events = 0;
    int64_t last_round = -1;
    bool ordered = true;
    bool progress_before_result = true;
    bool final_matches = false;
    auto streamed = client.PostStream(
        "/v1/ql?stream=1", w.TakeString(), [&](const std::string& line) {
          auto event = ParseJson(line);
          if (!event.ok()) return true;
          const JsonValue* kind = event->Find("event");
          if (kind == nullptr || !kind->is_string()) return true;
          if (kind->string_value() == "progress") {
            if (result_events > 0) progress_before_result = false;
            ++progress_events;
            const JsonValue* round = event->Find("round");
            if (round == nullptr || round->int_value() <= last_round) {
              ordered = false;
            } else {
              last_round = round->int_value();
            }
          } else if (kind->string_value() == "result") {
            ++result_events;
            const JsonValue* entries = event->Find("entries");
            final_matches = entries != nullptr &&
                            EntriesMatch(*entries, reference.value());
          }
          return true;
        });
    Check(streamed.ok() && streamed->status == 200,
          "streamed /v1/ql returned 200 with a chunked body");
    Check(progress_events >= 1 && result_events == 1 &&
              progress_before_result && ordered,
          "QL stream emitted >=1 ordered progress event before the final "
          "result (" +
              std::to_string(progress_events) + " progress)");
    Check(final_matches, "streamed QL final result bit-identical to "
                         "reference");
  }

  // --- 6. deadline_ms=0 rejected without running inference. --------------
  {
    const char* model = bench_util::kDemoModelB;  // exercise the non-default
    const int64_t rejected_before =
        StatsField(&client, model, "rejected_past_deadline");
    const int64_t executed_before = ExecutedCount(&client, model);
    const int64_t other_submitted_before =
        StatsField(&client, bench_util::kDemoModelA, "submitted");
    core::QuerySpec doomed;
    doomed.layer = (*twin_b)->model()->activation_layers().back();
    doomed.neurons = {0, 1};
    doomed.k = 3;
    doomed.deadline_ms = 0.0;  // already due
    auto response =
        client.Post("/v1/query", core::QuerySpecJson(doomed, model));
    bool rejected_504 = false;
    if (response.ok() && response->status == 504) {
      auto body = ParseJson(response->body);
      if (body.ok()) {
        const JsonValue* error = body->Find("error");
        const JsonValue* code = error ? error->Find("code") : nullptr;
        rejected_504 = code != nullptr && code->is_string() &&
                       code->string_value() == "DeadlineExceeded";
      }
    }
    Check(rejected_504, "deadline_ms=0 rejected with 504 DeadlineExceeded");
    Check(StatsField(&client, model, "rejected_past_deadline") ==
                  rejected_before + 1 &&
              ExecutedCount(&client, model) == executed_before,
          "rejection counted in the routed model's rejected_past_deadline; "
          "no inference ran");
    Check(StatsField(&client, bench_util::kDemoModelA, "submitted") ==
              other_submitted_before,
          "the other model's counters did not move");
  }

  // --- 7. trace=1: full-coverage span tree with exact attribution. -------
  {
    core::QuerySpec traced;
    traced.layer = (*twin_a)->model()->activation_layers().front();
    traced.neurons = {0, 1, 2};
    traced.k = 8;
    traced.session_id = 21;
    auto response = client.Post(
        "/v1/query?trace=1",
        core::QuerySpecJson(traced, bench_util::kDemoModelA));
    bool complete = false;
    bool covered = false;
    bool exact_attribution = false;
    bool ring_fetch = false;
    double coverage = 0.0;
    if (response.ok() && response->status == 200) {
      auto body = ParseJson(response->body);
      const JsonValue* trace = body.ok() ? body->Find("trace") : nullptr;
      const JsonValue* spans =
          trace == nullptr ? nullptr : trace->Find("spans");
      if (trace != nullptr && spans != nullptr && spans->is_array() &&
          !spans->array_items().empty()) {
        complete = trace->Find("complete")->bool_value() &&
                   trace->Find("dropped_spans")->int_value() == 0;
        const JsonValue& root = spans->array_items().front();
        const int64_t root_duration =
            root.Find("duration_nanos")->int_value();
        int64_t child_duration = 0;
        for (const JsonValue& span : spans->array_items()) {
          if (span.Find("parent")->int_value() == 0) {
            child_duration += span.Find("duration_nanos")->int_value();
          }
        }
        coverage = root_duration > 0 ? static_cast<double>(child_duration) /
                                           static_cast<double>(root_duration)
                                     : 0.0;
        covered = coverage >= 0.95;
        const JsonValue* stats = body->Find("stats");
        exact_attribution =
            stats != nullptr &&
            SumTraceInputsRun(*trace) ==
                stats->Find("inputs_run")->int_value();
        const int64_t trace_id = trace->Find("trace_id")->int_value();
        auto by_id = client.Get("/v1/trace/" + std::to_string(trace_id));
        if (by_id.ok() && by_id->status == 200) {
          auto ring_copy = ParseJson(by_id->body);
          ring_fetch = ring_copy.ok() &&
                       ring_copy->Find("trace_id")->int_value() == trace_id;
        }
      }
    }
    Check(complete, "trace=1 returns a finished span tree (no drops)");
    char coverage_text[96];
    std::snprintf(coverage_text, sizeof(coverage_text),
                  "root's children cover >=95%% of wall time (got %.1f%%)",
                  coverage * 100.0);
    Check(covered, coverage_text);
    Check(exact_attribution,
          "per-span inputs_run attrs sum exactly to stats.inputs_run");
    Check(ring_fetch, "GET /v1/trace/<id> serves the same trace from the "
                      "ring");
  }

  // --- 8. /v1/metrics: valid exposition, counters moved, zero 5xx. -------
  {
    auto response = client.Get("/v1/metrics");
    const bool fetched = response.ok() && response->status == 200;
    Check(fetched, "GET /v1/metrics returns 200");
    if (fetched) {
      const Status valid =
          service::ValidatePrometheusText(response->body);
      Check(valid.ok(), "scrape parses as Prometheus text format 0.0.4" +
                            (valid.ok() ? std::string()
                                        : " (" + valid.ToString() + ")"));
      const std::string& text = response->body;
      Check(MetricValue(text,
                        std::string("deepeverest_queries_completed_total{"
                                    "model=\"") +
                            bench_util::kDemoModelA + "\"}") > 0 &&
                MetricValue(text,
                            std::string("deepeverest_queries_completed_total{"
                                        "model=\"") +
                                bench_util::kDemoModelB + "\"}") > 0,
            "completed-query counters moved for both models");
      Check(MetricValue(text,
                        std::string("deepeverest_batch_fill_fraction_count{"
                                    "model=\"") +
                            bench_util::kDemoModelA + "\"}") > 0,
            "batch-fill histogram is populated (batching scheduler saw "
            "dispatches)");
      // Check 6 deliberately provokes exactly one 504; any other 5xx is a
      // genuine server error.
      Check(MetricValue(text,
                        "deepeverest_http_responses_total{code=\"5xx\"}") ==
                1,
            "no unexpected 5xx (only the deliberate 504 from check 6)");
      Check(MetricValue(text, "deepeverest_http_requests_total") > 0 &&
                text.find("deepeverest_build_info{") != std::string::npos,
            "HTTP request counters and build info present");
    }
  }

  std::printf("%s (%d failure%s)\n", g_failures == 0 ? "ALL PASS" : "FAILED",
              g_failures, g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(std::atoi(next_value("--port")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(next_value("--seed")));
    } else if (std::strcmp(argv[i], "--inputs") == 0) {
      options.num_inputs =
          static_cast<uint32_t>(std::atoi(next_value("--inputs")));
    } else if (std::strcmp(argv[i], "--wait-ready-seconds") == 0) {
      options.wait_ready_seconds = std::atof(next_value("--wait-ready-seconds"));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host A] [--port N] [--seed N] [--inputs N] "
                   "[--wait-ready-seconds X]\n",
                   argv[0]);
      return 2;
    }
  }
  return Run(options);
}
