// Runs DeepEverest through its declarative query language — "SELECT
// TOPK ..." text parsed into the canonical core::QuerySpec and executed
// through the same ExecuteSpec path the serving tier uses (derived
// TOP-m-NEURONS groups resolve inside the engine, metered into the query's
// stats).
//
//   ./examples/declarative_queries
#include <cstdio>

#include "core/deepeverest.h"
#include "core/ql.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

using namespace deepeverest;  // NOLINT: example brevity

int main() {
  nn::ModelPtr model = nn::MakeMiniVgg(/*seed=*/12);
  data::SyntheticImageConfig data_config;
  data_config.num_inputs = 300;
  data_config.seed = 5;
  data::Dataset dataset = data::MakeSyntheticImages(data_config);

  auto dir = storage::MakeTempDir("ql");
  if (!dir.ok()) return 1;
  auto store = storage::FileStore::Open(*dir);
  if (!store.ok()) return 1;
  core::DeepEverestOptions options;
  options.batch_size = 16;
  auto de = core::DeepEverest::Create(model.get(), &dataset, &store.value(),
                                      options);
  if (!de.ok()) return 1;

  const int mid = model->activation_layers()[2];
  const int late = model->activation_layers().back();
  const std::string queries[] = {
      "SELECT TOPK 5 HIGHEST FOR LAYER " + std::to_string(mid) +
          " TOP 3 NEURONS OF INPUT 42",
      "SELECT TOPK 5 SIMILAR TO 42 FOR LAYER " + std::to_string(mid) +
          " TOP 3 NEURONS",
      "SELECT TOPK 5 SIMILAR TO 42 FOR LAYER " + std::to_string(late) +
          " NEURONS (3, 17, 44) USING L1",
      "SELECT TOPK 5 SIMILAR TO 42 FOR LAYER " + std::to_string(late) +
          " TOP 5 NEURONS THETA 0.8",
  };

  for (const std::string& text : queries) {
    auto spec = core::ParseQuery(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    std::printf("\n> %s\n", spec->ToString().c_str());
    auto result = (*de)->ExecuteSpec(*spec);
    if (!result.ok()) {
      std::fprintf(stderr, "execution error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (const auto& entry : result->entries) {
      std::printf("  input %4u  %s %.4f\n", entry.input_id,
                  spec->kind == core::QuerySpec::Kind::kHighest
                      ? "score"
                      : "dist ",
                  entry.value);
    }
    std::printf("  (%lld inputs through the DNN)\n",
                static_cast<long long>(result->stats.inputs_run));
  }

  // Malformed queries fail with a helpful message instead of crashing.
  auto bad = core::ParseQuery("SELECT TOPK HIGHEST");
  std::printf("\n> SELECT TOPK HIGHEST\n  parse error: %s\n",
              bad.status().ToString().c_str());
  return 0;
}
