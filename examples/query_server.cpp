// The network front-end, runnable: builds TWO deterministic demo systems
// (TinyMlp + synthetic vectors, derived from --seed and a fixed seed
// derivation for the second model), wraps each in its own QueryService,
// registers both in an EngineRegistry, and serves the multi-model HTTP/1.1
// query API on loopback until SIGINT/SIGTERM. The wire protocol's `model`
// field routes between them.
//
//   ./example_query_server --port 8080
//   curl -s localhost:8080/v1/models
//   curl -s localhost:8080/v1/query
//     -d '{"model":"demo-a","kind":"highest","layer":1,"neurons":[0,2,4],"k":5}'
//   curl -s localhost:8080/v1/ql
//     -d '{"model":"demo-b","ql":"SELECT TOPK 5 HIGHEST FOR LAYER 1 TOP 3 NEURONS OF 7"}'
//   curl -sN 'localhost:8080/v1/query?stream=1&layer=1&neurons=0,2,4&k=5'
//   curl -s localhost:8080/v1/stats
//
// The e2e CI job starts this binary, then runs example_query_client
// (which rebuilds both engines from the same seed) against it and asserts
// bit-identical results and correct model routing. See README "Network
// API" for the wire protocol.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench_util/demo_system.h"
#include "net/query_server.h"
#include "persist/ingest.h"
#include "service/engine_registry.h"
#include "service/query_service.h"

using namespace deepeverest;  // NOLINT: example brevity

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Run(int argc, char** argv) {
  bench_util::DemoSystemOptions demo_options;
  // Realistic multi-millisecond queries by default, so streamed progress
  // and mid-query cancellation are observable from a remote client.
  demo_options.device_latency_scale = 8.0;
  net::QueryServerOptions server_options;
  server_options.http.port = 8080;
  service::QueryServiceOptions service_options;
  persist::IngestQueueOptions ingest_options;

  for (int i = 1; i < argc; ++i) {
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      server_options.http.port =
          static_cast<uint16_t>(std::atoi(next_value("--port")));
    } else if (std::strcmp(argv[i], "--inputs") == 0) {
      demo_options.num_inputs =
          static_cast<uint32_t>(std::atoi(next_value("--inputs")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      demo_options.seed =
          static_cast<uint64_t>(std::atoll(next_value("--seed")));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      service_options.num_workers = std::atoi(next_value("--workers"));
    } else if (std::strcmp(argv[i], "--device-scale") == 0) {
      demo_options.device_latency_scale =
          std::atof(next_value("--device-scale"));
    } else if (std::strcmp(argv[i], "--store-dir") == 0) {
      // Persistent store for model A: snapshots + ingest log survive the
      // process, so a restart over the same directory recovers (the crash
      // e2e job kill -9s this binary and restarts it here).
      demo_options.store_dir = next_value("--store-dir");
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0) {
      ingest_options.snapshot_every =
          static_cast<uint32_t>(std::atoi(next_value("--snapshot-every")));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--inputs N] [--seed N] "
                   "[--workers N] [--device-scale X] [--store-dir PATH] "
                   "[--snapshot-every N]\n",
                   argv[0]);
      return 2;
    }
  }

  // Two independent serving stacks: the second model's weights AND dataset
  // derive from a different seed, so misrouted queries would return
  // visibly different answers (exactly what the e2e client checks).
  auto system_a = bench_util::DemoSystem::Make(demo_options);
  if (!system_a.ok()) {
    std::fprintf(stderr, "demo system A: %s\n",
                 system_a.status().ToString().c_str());
    return 1;
  }
  bench_util::DemoSystemOptions demo_options_b = demo_options;
  demo_options_b.seed = bench_util::DemoModelBSeed(demo_options.seed);
  demo_options_b.store_dir.clear();  // only model A persists (and ingests)
  auto system_b = bench_util::DemoSystem::Make(demo_options_b);
  if (!system_b.ok()) {
    std::fprintf(stderr, "demo system B: %s\n",
                 system_b.status().ToString().c_str());
    return 1;
  }

  auto service_a =
      service::QueryService::Create((*system_a)->engine(), service_options);
  auto service_b =
      service::QueryService::Create((*system_b)->engine(), service_options);
  if (!service_a.ok() || !service_b.ok()) {
    std::fprintf(stderr, "query service: %s\n",
                 (!service_a.ok() ? service_a.status() : service_b.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  service::EngineRegistry registry;
  if (!registry.Register(bench_util::kDemoModelA, service_a->get()).ok() ||
      !registry.Register(bench_util::kDemoModelB, service_b->get()).ok()) {
    std::fprintf(stderr, "registry setup failed\n");
    return 1;
  }

  // Model A accepts ingest (B stays query-only, exercising the 404 path).
  // Creation recovers: replays the ingest log into the dataset and installs
  // the last committed snapshot's indexes before the listener opens.
  ingest_options.trace_sink = [svc = service_a->get()](
                                  std::shared_ptr<Trace> trace) {
    svc->RecordTrace(std::move(trace));
  };
  auto ingest = persist::IngestQueue::Create(
      (*system_a)->engine(), (*system_a)->mutable_dataset(),
      (*system_a)->store(), ingest_options);
  if (!ingest.ok()) {
    std::fprintf(stderr, "ingest queue: %s\n",
                 ingest.status().ToString().c_str());
    return 1;
  }
  if (!registry.AttachIngest(bench_util::kDemoModelA, ingest->get()).ok()) {
    std::fprintf(stderr, "ingest attach failed\n");
    return 1;
  }

  auto server = net::QueryServer::Start(&registry, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "http server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  // The readiness line the CI job (and any supervisor) waits for; flushed
  // immediately so a pipe reader sees it before the first request.
  std::printf("query_server listening on 127.0.0.1:%u models=%s,%s inputs=%u "
              "seed=%llu workers=%d recovered_inputs=%u recovered_layers=%u\n",
              static_cast<unsigned>((*server)->port()),
              bench_util::kDemoModelA, bench_util::kDemoModelB,
              demo_options.num_inputs,
              static_cast<unsigned long long>(demo_options.seed),
              service_options.num_workers, (*ingest)->recovered_inputs(),
              (*ingest)->recovered_layers());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("shutting down\n");
  (*server)->Shutdown();
  (*ingest)->Shutdown();
  (*service_a)->Shutdown();
  (*service_b)->Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
