// Simulates the DNN interpretation session from the paper's introduction:
// a user studies why the model responds strongly to one input by
// (1) finding the maximally activated neurons of a late layer,
// (2) asking for the inputs most similar under those neurons,
// (3) widening the neuron group (top-3 -> top-4 -> top-5), which
//     Inter-Query Acceleration makes nearly free.
//
//   ./examples/interpretation_session
#include <cstdio>

#include "core/deepeverest.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

using namespace deepeverest;  // NOLINT: example brevity

namespace {

int Run() {
  nn::ModelPtr model = nn::MakeMiniResNet(/*seed=*/3);
  data::SyntheticImageConfig data_config;
  data_config.num_inputs = 300;
  data_config.seed = 11;
  data::Dataset dataset = data::MakeSyntheticImages(data_config);

  auto dir = storage::MakeTempDir("session");
  if (!dir.ok()) return 1;
  auto store = storage::FileStore::Open(*dir);
  if (!store.ok()) return 1;

  core::DeepEverestOptions options;
  options.batch_size = 16;
  options.enable_iqa = true;  // the session asks related queries
  options.iqa_capacity_bytes = 64ull << 20;
  auto de = core::DeepEverest::Create(model.get(), &dataset, &store.value(),
                                      options);
  if (!de.ok()) {
    std::fprintf(stderr, "%s\n", de.status().ToString().c_str());
    return 1;
  }

  const uint32_t image = 42;  // the "misclassified image" under study
  const int layer = model->activation_layers().back();
  std::printf("Studying input %u (label %d) at layer %d (%lld neurons)\n",
              image, dataset.label(image), layer,
              static_cast<long long>(model->NeuronCount(layer)));

  // Step 1: which neurons fire the most for this input?
  auto top_neurons = (*de)->MaximallyActivatedNeurons(image, layer, 5);
  if (!top_neurons.ok()) return 1;
  std::printf("\nMaximally activated neurons:");
  for (int64_t n : *top_neurons) std::printf(" %lld", static_cast<long long>(n));
  std::printf("\n");

  // Step 2..4: SimTop queries over the top-3, then top-4, then top-5
  // neurons. The queries overlap, so IQA reuses cached activations.
  for (int group_size = 3; group_size <= 5; ++group_size) {
    core::NeuronGroup group;
    group.layer = layer;
    group.neurons.assign(top_neurons->begin(),
                         top_neurons->begin() + group_size);
    auto result = (*de)->TopKMostSimilar(image, group, /*k=*/5);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\nTop-5 similar to input %u under its top-%d neurons "
        "(inference on %lld inputs, %lld served by IQA cache):\n",
        image, group_size,
        static_cast<long long>(result->stats.inputs_run),
        static_cast<long long>(result->stats.iqa_hits));
    int same_label = 0;
    for (const auto& e : result->entries) {
      std::printf("  input %4u  dist %.4f  label %d\n", e.input_id, e.value,
                  dataset.label(e.input_id));
      if (dataset.label(e.input_id) == dataset.label(image)) ++same_label;
    }
    std::printf("  -> %d/5 neighbours share input %u's class\n", same_label,
                image);
  }

  const auto& cache_stats = (*de)->iqa_cache()->stats();
  std::printf("\nIQA cache over the whole session: %lld hits, %lld misses\n",
              static_cast<long long>(cache_stats.hits),
              static_cast<long long>(cache_stats.misses));
  return 0;
}

}  // namespace

int main() { return Run(); }
