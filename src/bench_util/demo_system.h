#ifndef DEEPEVEREST_BENCH_UTIL_DEMO_SYSTEM_H_
#define DEEPEVEREST_BENCH_UTIL_DEMO_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/deepeverest.h"
#include "core/query_spec.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace bench_util {

/// \brief Options for the deterministic demo system shared by the network
/// example server, the e2e client driver, and the network bench.
struct DemoSystemOptions {
  /// Everything (model weights, dataset) derives from this seed, so two
  /// processes building the same options hold *identical* engines — the
  /// property the server-e2e bit-equality check rests on: the client builds
  /// its own copy and compares HTTP results against local sequential runs.
  uint64_t seed = 7;
  uint32_t num_inputs = 200;
  int input_units = 8;
  int batch_size = 8;
  /// Pre-build every index (warm serving start). The NTA path — the one
  /// that emits streaming progress — is only taken on indexed layers.
  bool preprocess = true;
  /// When > 0, enables the simulated device latency model scaled by this
  /// factor, giving queries realistic multi-millisecond execution so
  /// streaming/cancellation races are exercisable.
  double device_latency_scale = 0.0;
  /// When non-empty, the FileStore opens over this directory instead of a
  /// fresh temp dir, and the directory survives destruction — the warm
  /// restart / crash-recovery path: a second process over the same
  /// directory recovers the first one's snapshots and ingest log.
  std::string store_dir;
};

/// \brief A self-contained engine over the TinyMlp model and a synthetic
/// vector dataset, with its own temp FileStore (removed on destruction).
/// Heap-allocated and immovable: the engine holds pointers into the other
/// members.
class DemoSystem {
 public:
  static Result<std::unique_ptr<DemoSystem>> Make(
      const DemoSystemOptions& options);

  ~DemoSystem();

  DemoSystem(const DemoSystem&) = delete;
  DemoSystem& operator=(const DemoSystem&) = delete;

  core::DeepEverest* engine() { return engine_.get(); }
  const nn::Model* model() const { return model_.get(); }
  const data::Dataset* dataset() const { return &dataset_; }
  /// Mutable handle for the ingest pipeline (appends only; the base inputs
  /// stay deterministic).
  data::Dataset* mutable_dataset() { return &dataset_; }
  storage::FileStore* store() { return store_.get(); }
  /// The wire-protocol model name clients address queries to.
  const std::string& model_name() const { return model_->name(); }

 private:
  DemoSystem(nn::ModelPtr model, data::Dataset dataset);

  nn::ModelPtr model_;
  data::Dataset dataset_;
  std::string store_dir_;
  bool owns_store_dir_ = true;
  std::unique_ptr<storage::FileStore> store_;
  std::unique_ptr<core::DeepEverest> engine_;
};

/// \brief The deterministic mixed workload shared by the e2e client and
/// the network bench: both query kinds, interactive and batch QoS, several
/// sessions, cycling across the model's activation layers. One definition,
/// so the two drivers can never silently test different request shapes.
/// (Wire encoding is core::QuerySpecJson — the one shared codec.)
std::vector<core::QuerySpec> MakeMixedWorkload(const nn::Model& model,
                                               int count);

/// \brief The two-model demo deployment shared by example_query_server and
/// example_query_client: registry names and the second model's seed
/// derivation live here so the server and the client's local twins can
/// never drift. Model A serves the base --seed; model B a derived seed
/// (different weights AND dataset, so routing mistakes change answers).
inline constexpr const char kDemoModelA[] = "demo-a";
inline constexpr const char kDemoModelB[] = "demo-b";
inline constexpr uint64_t DemoModelBSeed(uint64_t seed) {
  return seed * 2654435761ull + 101;
}

}  // namespace bench_util
}  // namespace deepeverest

#endif  // DEEPEVEREST_BENCH_UTIL_DEMO_SYSTEM_H_
