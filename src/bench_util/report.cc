#include "bench_util/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace deepeverest {
namespace bench_util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::AddRow(std::vector<std::string> cells) {
  DE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double seconds) {
  std::ostringstream out;
  out << std::fixed;
  if (seconds >= 1.0) {
    out << std::setprecision(3) << seconds << " s";
  } else if (seconds >= 1e-3) {
    out << std::setprecision(2) << seconds * 1e3 << " ms";
  } else {
    out << std::setprecision(0) << seconds * 1e6 << " us";
  }
  return out.str();
}

std::string FormatBytes(uint64_t bytes) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2);
  const double b = static_cast<double>(bytes);
  if (b >= 1e12) {
    out << b / 1e12 << " TB";
  } else if (b >= 1e9) {
    out << b / 1e9 << " GB";
  } else if (b >= 1e6) {
    out << b / 1e6 << " MB";
  } else if (b >= 1e3) {
    out << b / 1e3 << " KB";
  } else {
    out << bytes << " B";
  }
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FormatSpeedup(double ratio) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << ratio << "x";
  return out.str();
}

void PrintBanner(std::ostream& os, const std::string& title,
                 const std::string& subtitle) {
  os << "\n=== " << title << " ===\n";
  if (!subtitle.empty()) os << subtitle << "\n";
  os << "\n";
}

}  // namespace bench_util
}  // namespace deepeverest
