#include "bench_util/query_gen.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace deepeverest {
namespace bench_util {

const char* LayerDepthToString(LayerDepth depth) {
  switch (depth) {
    case LayerDepth::kEarly:
      return "early";
    case LayerDepth::kMid:
      return "mid";
    case LayerDepth::kLate:
      return "late";
  }
  return "?";
}

const char* QueryTypeToString(QueryType type) {
  switch (type) {
    case QueryType::kFireMax:
      return "FireMax";
    case QueryType::kSimTop:
      return "SimTop";
    case QueryType::kSimHigh:
      return "SimHigh";
  }
  return "?";
}

int PickLayer(const nn::Model& model, LayerDepth depth) {
  const std::vector<int>& layers = model.activation_layers();
  DE_CHECK(!layers.empty()) << "model has no activation layers";
  switch (depth) {
    case LayerDepth::kEarly:
      return layers.front();
    case LayerDepth::kMid:
      return layers[layers.size() / 2];
    case LayerDepth::kLate:
      return layers.back();
  }
  return layers.back();
}

namespace {

/// Computes the target's activation row for one layer via the generator
/// engine (setup cost, not measured).
Status TargetRow(nn::InferenceEngine* generator, uint32_t target_id,
                 int layer, std::vector<float>* row) {
  std::vector<std::vector<float>> rows;
  DE_RETURN_NOT_OK(generator->ComputeLayer({target_id}, layer, &rows));
  *row = std::move(rows[0]);
  return Status::OK();
}

}  // namespace

Result<core::NeuronGroup> MakeNeuronGroup(nn::InferenceEngine* generator,
                                          uint32_t target_id, int layer,
                                          GroupKind kind, int size, Rng* rng) {
  if (size < 1) return Status::InvalidArgument("group size must be >= 1");
  std::vector<float> row;
  DE_RETURN_NOT_OK(TargetRow(generator, target_id, layer, &row));
  const int64_t n = static_cast<int64_t>(row.size());
  if (size > n) {
    return Status::InvalidArgument("group size exceeds layer width");
  }

  core::NeuronGroup group;
  group.layer = layer;

  // Neurons ordered by the target's activation, descending.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const float va = row[static_cast<size_t>(a)];
    const float vb = row[static_cast<size_t>(b)];
    if (va != vb) return va > vb;
    return a < b;
  });

  if (kind == GroupKind::kTop) {
    group.neurons.assign(order.begin(), order.begin() + size);
    return group;
  }

  // RandHigh: random picks from the top half of the non-zero neurons.
  int64_t nonzero = 0;
  for (int64_t idx : order) {
    if (row[static_cast<size_t>(idx)] > 0.0f) ++nonzero;
  }
  int64_t pool = nonzero / 2;
  if (pool < size) pool = std::min<int64_t>(n, std::max<int64_t>(size, 1));
  const std::vector<size_t> picks = rng->SampleWithoutReplacement(
      static_cast<size_t>(pool), static_cast<size_t>(size));
  for (size_t pick : picks) group.neurons.push_back(order[pick]);
  std::sort(group.neurons.begin(), group.neurons.end());
  return group;
}

Result<GeneratedQuery> GenerateQuery(nn::InferenceEngine* generator,
                                     QueryType type, LayerDepth depth,
                                     int group_size, Rng* rng) {
  GeneratedQuery query;
  query.type = type;
  query.target_id = static_cast<uint32_t>(
      rng->NextUint64(generator->dataset().size()));
  const int layer = PickLayer(generator->model(), depth);
  const GroupKind kind =
      type == QueryType::kSimTop ? GroupKind::kTop : GroupKind::kRandHigh;
  DE_ASSIGN_OR_RETURN(query.group,
                      MakeNeuronGroup(generator, query.target_id, layer, kind,
                                      group_size, rng));
  query.label = std::string(QueryTypeToString(type)) + "/" +
                LayerDepthToString(depth) + "/g" +
                std::to_string(group_size);
  return query;
}

std::vector<int> GenerateLayerSequence(const std::vector<int>& layers,
                                       const WorkloadSpec& spec) {
  DE_CHECK(!layers.empty());
  Rng rng(spec.seed);
  std::vector<int> unseen = layers;
  rng.Shuffle(&unseen);
  std::set<int> seen;
  std::vector<int> sequence;
  sequence.reserve(static_cast<size_t>(spec.num_queries));

  // First query: a random layer.
  int current = unseen.back();
  unseen.pop_back();
  seen.insert(current);
  sequence.push_back(current);

  for (int q = 1; q < spec.num_queries; ++q) {
    const double draw = rng.NextDouble();
    int next = current;
    if (draw < spec.p_same) {
      next = current;
    } else if (draw < spec.p_same + spec.p_prev) {
      // A previously queried layer other than the current one; falls back
      // to `current` when it is the only one seen.
      std::vector<int> candidates;
      for (int layer : seen) {
        if (layer != current) candidates.push_back(layer);
      }
      if (!candidates.empty()) {
        next = candidates[rng.NextUint64(candidates.size())];
      } else if (!unseen.empty()) {
        next = unseen.back();
        unseen.pop_back();
      }
    } else {
      // A new layer; falls back to "previous" then "same" when exhausted.
      if (!unseen.empty()) {
        next = unseen.back();
        unseen.pop_back();
      } else {
        std::vector<int> candidates;
        for (int layer : seen) {
          if (layer != current) candidates.push_back(layer);
        }
        if (!candidates.empty()) {
          next = candidates[rng.NextUint64(candidates.size())];
        }
      }
    }
    seen.insert(next);
    sequence.push_back(next);
    current = next;
  }
  return sequence;
}

Result<std::vector<core::NeuronGroup>> GenerateIqaSequence(
    nn::InferenceEngine* generator, uint32_t target_id, int layer,
    int group_size, int num_replace, int length, Rng* rng) {
  if (num_replace > group_size) {
    return Status::InvalidArgument("num_replace exceeds group size");
  }
  if (static_cast<int64_t>(group_size) + num_replace >
      generator->model().NeuronCount(layer)) {
    return Status::InvalidArgument(
        "layer too narrow to replace neurons without repeats");
  }
  std::vector<core::NeuronGroup> sequence;
  sequence.reserve(static_cast<size_t>(length));
  DE_ASSIGN_OR_RETURN(core::NeuronGroup group,
                      MakeNeuronGroup(generator, target_id, layer,
                                      GroupKind::kRandHigh, group_size, rng));
  sequence.push_back(group);
  for (int q = 1; q < length; ++q) {
    // Replace num_replace random members with fresh RandHigh neurons not
    // already in the group.
    std::set<int64_t> members(group.neurons.begin(), group.neurons.end());
    const std::vector<size_t> victims = rng->SampleWithoutReplacement(
        group.neurons.size(), static_cast<size_t>(num_replace));
    std::set<size_t> victim_set(victims.begin(), victims.end());
    std::vector<int64_t> kept;
    for (size_t i = 0; i < group.neurons.size(); ++i) {
      if (victim_set.count(i) == 0) kept.push_back(group.neurons[i]);
    }
    int added = 0;
    int attempts = 0;
    while (added < num_replace && attempts < 64) {
      ++attempts;
      DE_ASSIGN_OR_RETURN(
          core::NeuronGroup fresh,
          MakeNeuronGroup(generator, target_id, layer, GroupKind::kRandHigh,
                          num_replace, rng));
      for (int64_t neuron : fresh.neurons) {
        if (added < num_replace && members.insert(neuron).second) {
          kept.push_back(neuron);
          ++added;
        }
      }
    }
    // Small layers can exhaust the RandHigh pool; fall back to any unused
    // neuron so the group size (and replacement count) stays exact.
    const int64_t layer_width = generator->model().NeuronCount(layer);
    while (added < num_replace) {
      const int64_t neuron =
          static_cast<int64_t>(rng->NextUint64(
              static_cast<uint64_t>(layer_width)));
      if (members.insert(neuron).second) {
        kept.push_back(neuron);
        ++added;
      }
    }
    group.neurons = kept;
    std::sort(group.neurons.begin(), group.neurons.end());
    sequence.push_back(group);
  }
  return sequence;
}

}  // namespace bench_util
}  // namespace deepeverest
