#include "bench_util/demo_system.h"

#include <filesystem>
#include <system_error>
#include <utility>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace deepeverest {
namespace bench_util {

namespace {

data::Dataset MakeVectorDataset(uint32_t num_inputs, int dims,
                                uint64_t seed) {
  Rng rng(seed);
  data::Dataset dataset("demo-vec" + std::to_string(num_inputs),
                        Shape({dims}));
  for (uint32_t i = 0; i < num_inputs; ++i) {
    Tensor input(Shape({dims}));
    for (int d = 0; d < dims; ++d) {
      input[d] = static_cast<float>(rng.NextGaussian());
    }
    dataset.Add(std::move(input), static_cast<int>(i % 4));
  }
  return dataset;
}

}  // namespace

DemoSystem::DemoSystem(nn::ModelPtr model, data::Dataset dataset)
    : model_(std::move(model)), dataset_(std::move(dataset)) {}

DemoSystem::~DemoSystem() {
  engine_.reset();  // the engine writes through the store; drop it first
  store_.reset();
  if (!store_dir_.empty() && owns_store_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(store_dir_, ec);
  }
}

Result<std::unique_ptr<DemoSystem>> DemoSystem::Make(
    const DemoSystemOptions& options) {
  if (options.num_inputs == 0) {
    return Status::InvalidArgument("num_inputs must be > 0");
  }
  std::unique_ptr<DemoSystem> system(new DemoSystem(
      nn::MakeTinyMlp(options.input_units, options.seed),
      MakeVectorDataset(options.num_inputs, options.input_units,
                        options.seed + 1)));
  if (options.store_dir.empty()) {
    DE_ASSIGN_OR_RETURN(system->store_dir_,
                        storage::MakeTempDir("demo_system"));
  } else {
    system->store_dir_ = options.store_dir;
    system->owns_store_dir_ = false;  // persistent: survives this process
  }
  DE_ASSIGN_OR_RETURN(storage::FileStore store,
                      storage::FileStore::Open(system->store_dir_));
  system->store_ = std::make_unique<storage::FileStore>(std::move(store));

  core::DeepEverestOptions engine_options;
  engine_options.batch_size = options.batch_size;
  DE_ASSIGN_OR_RETURN(
      system->engine_,
      core::DeepEverest::Create(system->model_.get(), &system->dataset_,
                                system->store_.get(), engine_options));
  if (options.preprocess) {
    DE_RETURN_NOT_OK(system->engine_->PreprocessAllLayers());
  }
  if (options.device_latency_scale > 0.0) {
    system->engine_->inference()->mutable_cost_model()->seconds_per_mac *=
        options.device_latency_scale;
    system->engine_->inference()->set_simulate_device_latency(true);
  }
  return system;
}

std::vector<core::QuerySpec> MakeMixedWorkload(const nn::Model& model,
                                               int count) {
  const std::vector<int>& layers = model.activation_layers();
  std::vector<core::QuerySpec> workload;
  workload.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::QuerySpec spec;
    spec.layer = layers[static_cast<size_t>(i) % layers.size()];
    spec.neurons = {i % 4, (i % 4 + 2) % 8};
    spec.k = 5 + i % 3;
    spec.session_id = static_cast<uint64_t>(1 + i % 6);
    spec.qos = (i % 2 == 0) ? QosClass::kInteractive : QosClass::kBatch;
    if (i % 2 == 0) {
      spec.kind = core::QuerySpec::Kind::kHighest;
    } else {
      spec.kind = core::QuerySpec::Kind::kMostSimilar;
      spec.target_id = i % 20;
    }
    workload.push_back(std::move(spec));
  }
  return workload;
}

}  // namespace bench_util
}  // namespace deepeverest
