#ifndef DEEPEVEREST_BENCH_UTIL_REPORT_H_
#define DEEPEVEREST_BENCH_UTIL_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace deepeverest {
namespace bench_util {

/// \brief Column-aligned plain-text table printer. Every bench binary uses
/// it to print the rows/series of the paper table or figure it regenerates.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& AddRow(std::vector<std::string> cells);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.234 s" / "12.3 ms" / "45 us" as appropriate.
std::string FormatSeconds(double seconds);

/// "1.35 TB" / "37.8 GB" / "120.0 MB" / "4.2 KB".
std::string FormatBytes(uint64_t bytes);

/// Fixed-precision double.
std::string FormatDouble(double value, int precision);

/// "12.3x" speedup notation.
std::string FormatSpeedup(double ratio);

/// Prints a section banner for a bench binary.
void PrintBanner(std::ostream& os, const std::string& title,
                 const std::string& subtitle);

}  // namespace bench_util
}  // namespace deepeverest

#endif  // DEEPEVEREST_BENCH_UTIL_REPORT_H_
