#ifndef DEEPEVEREST_BENCH_UTIL_QUERY_GEN_H_
#define DEEPEVEREST_BENCH_UTIL_QUERY_GEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/query.h"
#include "nn/inference.h"

namespace deepeverest {
namespace bench_util {

/// \brief Layer position within the model, as in the paper's evaluation
/// ("early", "mid", "late" activation layers).
enum class LayerDepth { kEarly, kMid, kLate };

/// \brief Neuron-group selection policy (paper §5.1).
enum class GroupKind {
  kTop,       // the maximally activated neurons for the target input
  kRandHigh,  // random picks from the top half of the input's non-zero
              // neurons
};

/// \brief The three benchmark query types (paper §5.1).
enum class QueryType {
  kFireMax,  // top-k highest
  kSimTop,   // top-k most-similar on a Top group
  kSimHigh,  // top-k most-similar on a RandHigh group
};

const char* LayerDepthToString(LayerDepth depth);
const char* QueryTypeToString(QueryType type);

/// Maps early/mid/late onto the model's queryable activation layers
/// (first / middle / last-but-head).
int PickLayer(const nn::Model& model, LayerDepth depth);

/// Builds a neuron group of `size` neurons for `target_id` at `layer`.
/// `generator` is an inference engine whose cost is *not* part of the
/// experiment being measured (query generation is experiment setup).
Result<core::NeuronGroup> MakeNeuronGroup(nn::InferenceEngine* generator,
                                          uint32_t target_id, int layer,
                                          GroupKind kind, int size, Rng* rng);

/// \brief A fully instantiated benchmark query.
struct GeneratedQuery {
  QueryType type = QueryType::kSimHigh;
  core::NeuronGroup group;
  uint32_t target_id = 0;  // used by SimTop / SimHigh
  std::string label;
};

/// Draws a random target input and builds the query: FireMax and SimHigh
/// use RandHigh groups, SimTop uses Top groups (paper §5.1).
Result<GeneratedQuery> GenerateQuery(nn::InferenceEngine* generator,
                                     QueryType type, LayerDepth depth,
                                     int group_size, Rng* rng);

/// \brief Multi-query workload layer-transition parameters (paper §5.3).
struct WorkloadSpec {
  double p_same = 0.5;  // probability of re-querying the previous layer
  double p_prev = 0.3;  // one of the earlier-queried layers
  double p_new = 0.2;   // a layer never queried before
  int num_queries = 1000;
  uint64_t seed = 1;
};

/// Generates the per-query layer choices over `layers` following the spec.
/// When a category has no eligible layer (nothing new left, or no distinct
/// previous layer), the draw falls back to the next category.
std::vector<int> GenerateLayerSequence(const std::vector<int>& layers,
                                       const WorkloadSpec& spec);

/// \brief Builds the related-query sequences of the IQA experiment (§5.6):
/// the first group has `group_size` RandHigh neurons; each later group
/// replaces `num_replace` random members with fresh RandHigh neurons.
Result<std::vector<core::NeuronGroup>> GenerateIqaSequence(
    nn::InferenceEngine* generator, uint32_t target_id, int layer,
    int group_size, int num_replace, int length, Rng* rng);

}  // namespace bench_util
}  // namespace deepeverest

#endif  // DEEPEVEREST_BENCH_UTIL_QUERY_GEN_H_
