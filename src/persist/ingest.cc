#include "persist/ingest.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "persist/snapshot.h"

namespace deepeverest {
namespace persist {

namespace {

uint64_t NowUnixSeconds() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

IngestQueue::IngestQueue(core::DeepEverest* engine, data::Dataset* dataset,
                         storage::FileStore* store, IngestQueueOptions options)
    : engine_(engine),
      dataset_(dataset),
      store_(store),
      options_(std::move(options)),
      model_(engine->inference()->model().name()),
      log_(store, model_, options_.sync_log) {}

Result<std::unique_ptr<IngestQueue>> IngestQueue::Create(
    core::DeepEverest* engine, data::Dataset* dataset,
    storage::FileStore* store, IngestQueueOptions options) {
  if (engine == nullptr || dataset == nullptr || store == nullptr) {
    return Status::InvalidArgument("engine, dataset, and store are required");
  }
  std::unique_ptr<IngestQueue> queue(
      new IngestQueue(engine, dataset, store, std::move(options)));
  DE_RETURN_NOT_OK(queue->Recover());
  queue->applier_ = std::thread([q = queue.get()] { q->ApplierLoop(); });
  return queue;
}

IngestQueue::~IngestQueue() { Shutdown(); }

Status IngestQueue::Recover() {
  // 1. Replay the ingest log: the dataset already holds the deterministic
  // base inputs; every durably acknowledged ingest continues from there.
  DE_ASSIGN_OR_RETURN(std::vector<IngestRecord> records, log_.Replay());
  const int64_t expected_values = dataset_->input_shape().NumElements();
  for (IngestRecord& record : records) {
    if (record.input_id != dataset_->size()) {
      return Status::FailedPrecondition(
          "ingest log for '" + model_ + "' does not continue the dataset: "
          "record id " + std::to_string(record.input_id) + ", dataset size " +
          std::to_string(dataset_->size()) +
          " (base dataset changed under the store?)");
    }
    if (static_cast<int64_t>(record.values.size()) != expected_values) {
      return Status::FailedPrecondition("ingest log record shape mismatch");
    }
    dataset_->Add(Tensor(dataset_->input_shape(), std::move(record.values)),
                  record.label);
    ++recovered_inputs_;
  }

  // 2. Restore indexes from the last committed snapshot. Anything wrong —
  // missing, corrupt, or from another dataset — means a cold start, never a
  // partially trusted snapshot.
  uint32_t min_watermark = dataset_->size();
  Result<LoadedSnapshot> snapshot = LoadSnapshot(store_, model_);
  if (snapshot.ok()) {
    if (snapshot->manifest.dataset != dataset_->name()) {
      DE_LOG_WARNING << "ignoring snapshot for model '" << model_
                     << "': dataset '" << snapshot->manifest.dataset
                     << "' != '" << dataset_->name() << "'";
    } else {
      for (auto& [layer, index] : snapshot->indexes) {
        if (index.num_inputs() > dataset_->size()) {
          // The snapshot is ahead of the replayed log (log truncated or
          // deleted). Installing would index inputs that no longer exist.
          DE_LOG_WARNING << "ignoring snapshot segment for layer " << layer
                         << ": watermark " << index.num_inputs()
                         << " is past the dataset (" << dataset_->size()
                         << " inputs)";
          continue;
        }
        min_watermark = std::min(min_watermark, index.num_inputs());
        DE_RETURN_NOT_OK(
            engine_->index_manager()->InstallIndex(layer, std::move(index)));
        ++recovered_layers_;
      }
      common::MutexLock lock(&mu_);
      snapshot_bytes_ = static_cast<int64_t>(snapshot->total_bytes);
      snapshot_created_unix_ = snapshot->manifest.created_unix_seconds;
      snapshot_dataset_size_ = snapshot->manifest.dataset_size;
    }
    DE_RETURN_NOT_OK(CollectGarbage(store_, model_));
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    DE_LOG_WARNING << "snapshot for model '" << model_
                   << "' failed to load; cold start: "
                   << snapshot.status().ToString();
  }

  // Anything between the lowest installed watermark and the dataset size is
  // merged by the applier's first pass.
  common::MutexLock lock(&mu_);
  applied_size_ = recovered_layers_ > 0 ? min_watermark : dataset_->size();
  return Status::OK();
}

Result<service::IngestAck> IngestQueue::Ingest(
    const std::vector<service::IngestInput>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("ingest batch is empty");
  }
  const int64_t expected_values = dataset_->input_shape().NumElements();
  for (const service::IngestInput& input : inputs) {
    if (static_cast<int64_t>(input.values.size()) != expected_values) {
      return Status::InvalidArgument(
          "input has " + std::to_string(input.values.size()) +
          " values, expected " + std::to_string(expected_values));
    }
  }

  common::MutexLock lock(&mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("ingest queue is shut down");
  }
  // Admission control: bound how far the index tier may lag the dataset.
  const uint32_t backlog = dataset_->size() - applied_size_;
  if (backlog + inputs.size() > options_.max_backlog) {
    ++rejected_total_;
    return Status::ResourceExhausted(
        "ingest backlog is full (" + std::to_string(backlog) + " of " +
        std::to_string(options_.max_backlog) + " unapplied inputs)");
  }

  // Durability ordering: the whole batch is fsynced into the log BEFORE any
  // input becomes visible in the dataset, so everything a query or merge can
  // observe — and everything we acknowledge — survives a crash.
  std::vector<IngestRecord> records;
  records.reserve(inputs.size());
  uint32_t next_id = dataset_->size();
  for (const service::IngestInput& input : inputs) {
    IngestRecord record;
    record.input_id = next_id++;
    record.label = input.label;
    record.values = input.values;
    records.push_back(std::move(record));
  }
  DE_RETURN_NOT_OK(log_.AppendBatch(records));

  service::IngestAck ack;
  ack.first_id = dataset_->size();
  ack.count = static_cast<uint32_t>(records.size());
  for (IngestRecord& record : records) {
    dataset_->Add(Tensor(dataset_->input_shape(), std::move(record.values)),
                  record.label);
  }
  ack.dataset_size = dataset_->size();
  ingested_total_ += ack.count;
  cv_.NotifyAll();
  return ack;
}

void IngestQueue::ApplierLoop() {
  for (;;) {
    uint32_t target = 0;
    {
      common::MutexLock lock(&mu_);
      while (!shutdown_ && dataset_->size() == applied_size_) {
        cv_.Wait(&mu_);
      }
      if (shutdown_) return;
      applying_ = true;
      target = dataset_->size();
    }
    const Status applied = ApplyTo(target);
    bool want_snapshot = false;
    {
      common::MutexLock lock(&mu_);
      applying_ = false;
      if (applied.ok()) {
        applied_since_snapshot_ += target - applied_size_;
        applied_size_ = target;
        ++applies_total_;
        want_snapshot = options_.snapshot_every > 0 &&
                        applied_since_snapshot_ >= options_.snapshot_every;
      } else {
        DE_LOG_WARNING << "ingest apply for model '" << model_
                       << "' failed (will retry): " << applied.ToString();
      }
      cv_.NotifyAll();
    }
    if (want_snapshot) {
      const Status saved = SnapshotNow();
      if (!saved.ok()) {
        DE_LOG_WARNING << "auto-snapshot for model '" << model_
                       << "' failed: " << saved.ToString();
      }
    }
  }
}

Status IngestQueue::ApplyTo(uint32_t target) {
  common::MutexLock lock(&apply_mu_);
  const std::vector<int> layers = engine_->index_manager()->LoadedLayers();
  if (layers.empty()) return Status::OK();

  // Per-apply trace, pushed into the service's trace ring: `/v1/trace/<id>`
  // answers for ingest applies exactly like for queries.
  auto trace = std::make_shared<Trace>(Trace::NextId());
  const int span = trace->StartSpan("ingest.apply");
  nn::InferenceReceipt receipt;
  Status status = Status::OK();
  int merged_layers = 0;
  for (int layer : layers) {
    status = engine_->index_manager()->CatchUp(layer, target, &receipt);
    if (!status.ok()) break;
    ++merged_layers;
  }
  trace->AddInt(span, "target", target);
  trace->AddInt(span, "layers", merged_layers);
  trace->AddInt(span, "inputs_run", receipt.inputs_run);
  trace->EndSpan(span);
  trace->Finish();
  if (options_.trace_sink) options_.trace_sink(std::move(trace));
  return status;
}

Status IngestQueue::SnapshotNow() {
  common::MutexLock lock(&apply_mu_);
  const uint32_t target = dataset_->size();
  std::vector<core::LayerIndexPtr> pins;
  std::vector<std::pair<int, const core::LayerIndex*>> indexes;
  for (int layer : engine_->index_manager()->LoadedLayers()) {
    DE_RETURN_NOT_OK(engine_->index_manager()->CatchUp(layer, target));
    core::LayerIndexPtr index = engine_->index_manager()->Peek(layer);
    if (index == nullptr) continue;
    pins.push_back(index);
    indexes.emplace_back(layer, pins.back().get());
  }
  const uint64_t now = NowUnixSeconds();
  DE_ASSIGN_OR_RETURN(
      uint64_t bytes,
      WriteSnapshot(store_, model_, dataset_->name(), target, indexes, now));

  common::MutexLock state_lock(&mu_);
  // The snapshot catch-up may have raced ahead of the applier's bookkeeping.
  if (target > applied_size_) {
    applied_size_ = target;
    cv_.NotifyAll();
  }
  ++snapshots_written_;
  snapshot_bytes_ = static_cast<int64_t>(bytes);
  snapshot_created_unix_ = now;
  snapshot_dataset_size_ = target;
  applied_since_snapshot_ = 0;
  return Status::OK();
}

Status IngestQueue::SaveSnapshot() { return SnapshotNow(); }

service::IngestStats IngestQueue::Stats() const {
  service::IngestStats stats;
  stats.dataset_size = dataset_->size();
  for (int layer : engine_->index_manager()->LoadedLayers()) {
    core::LayerIndexPtr index = engine_->index_manager()->Peek(layer);
    if (index == nullptr) continue;
    stats.layers.push_back({layer, index->num_inputs()});
    stats.min_watermark = stats.layers.size() == 1
                              ? index->num_inputs()
                              : std::min(stats.min_watermark,
                                         index->num_inputs());
  }
  common::MutexLock lock(&mu_);
  stats.ingested_total = ingested_total_;
  stats.rejected_total = rejected_total_;
  stats.applies_total = applies_total_;
  stats.snapshots_written = snapshots_written_;
  stats.snapshot_bytes = snapshot_bytes_;
  stats.snapshot_dataset_size = snapshot_dataset_size_;
  stats.snapshot_age_seconds =
      snapshot_created_unix_ > 0
          ? static_cast<double>(NowUnixSeconds() - snapshot_created_unix_)
          : -1.0;
  return stats;
}

bool IngestQueue::WaitIdle(double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  common::MutexLock lock(&mu_);
  while (applying_ || dataset_->size() != applied_size_) {
    if (shutdown_) return false;
    if (!cv_.WaitUntil(&mu_, deadline)) {
      return !applying_ && dataset_->size() == applied_size_;
    }
  }
  return true;
}

void IngestQueue::Shutdown() {
  {
    common::MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
    cv_.NotifyAll();
  }
  if (applier_.joinable()) applier_.join();
}

}  // namespace persist
}  // namespace deepeverest
