#include "persist/ingest_log.h"

#include "common/logging.h"
#include "common/serde.h"
#include "persist/format.h"

namespace deepeverest {
namespace persist {

namespace {
constexpr uint32_t kRecordMagic = 0xDEE710C4;
}  // namespace

std::string IngestLog::KeyFor(const std::string& model) {
  return "ingest/" + model + ".log";
}

namespace {

void FrameRecord(const IngestRecord& record, std::vector<uint8_t>* out) {
  BinaryWriter payload;
  payload.WriteU32(record.input_id);
  payload.WriteI32(record.label);
  payload.WriteF32Vector(record.values);

  BinaryWriter frame;
  frame.WriteU32(kRecordMagic);
  frame.WriteU64(payload.buffer().size());
  frame.WriteU32(Crc32(payload.buffer()));
  out->insert(out->end(), frame.buffer().begin(), frame.buffer().end());
  out->insert(out->end(), payload.buffer().begin(), payload.buffer().end());
}

}  // namespace

Status IngestLog::Append(const IngestRecord& record) {
  std::vector<uint8_t> bytes;
  FrameRecord(record, &bytes);
  return store_->Append(key_, bytes, sync_);
}

Status IngestLog::AppendBatch(const std::vector<IngestRecord>& records) {
  if (records.empty()) return Status::OK();
  std::vector<uint8_t> bytes;
  for (const IngestRecord& record : records) FrameRecord(record, &bytes);
  return store_->Append(key_, bytes, sync_);
}

Result<std::vector<IngestRecord>> IngestLog::Replay() const {
  std::vector<IngestRecord> records;
  if (!store_->Exists(key_)) return records;
  DE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, store_->Read(key_));
  BinaryReader reader(bytes);
  while (!reader.AtEnd()) {
    uint32_t magic = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
    // Any framing failure from here on is a torn tail: stop replay at the
    // last intact record. Those bytes were never fsynced before an ack.
    if (!reader.ReadU32(&magic).ok() || magic != kRecordMagic ||
        !reader.ReadU64(&size).ok() || !reader.ReadU32(&crc).ok() ||
        reader.remaining() < size) {
      DE_LOG_WARNING << "ingest log '" << key_ << "': dropping torn tail ("
                     << reader.remaining() << " trailing bytes)";
      break;
    }
    std::vector<uint8_t> payload(bytes.end() - reader.remaining(),
                                 bytes.end() - reader.remaining() +
                                     static_cast<ptrdiff_t>(size));
    DE_RETURN_NOT_OK(reader.Skip(size));
    if (Crc32(payload) != crc) {
      DE_LOG_WARNING << "ingest log '" << key_
                     << "': dropping torn/corrupt record and tail";
      break;
    }
    BinaryReader record_reader(payload);
    IngestRecord record;
    DE_RETURN_NOT_OK(record_reader.ReadU32(&record.input_id));
    DE_RETURN_NOT_OK(record_reader.ReadI32(&record.label));
    DE_RETURN_NOT_OK(record_reader.ReadF32Vector(&record.values));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace persist
}  // namespace deepeverest
