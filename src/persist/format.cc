#include "persist/format.h"

#include <array>

#include "common/serde.h"

namespace deepeverest {
namespace persist {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> WrapChecksum(const std::vector<uint8_t>& payload) {
  BinaryWriter writer;
  writer.WriteU32(kEnvelopeMagic);
  writer.WriteU64(payload.size());
  writer.WriteU32(Crc32(payload));
  std::vector<uint8_t> out = writer.TakeBuffer();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<std::vector<uint8_t>> UnwrapChecksum(const std::vector<uint8_t>& blob,
                                            const std::string& what) {
  BinaryReader reader(blob);
  uint32_t magic = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  if (!reader.ReadU32(&magic).ok() || magic != kEnvelopeMagic) {
    return Status::IOError(what + ": bad envelope magic (not written by this "
                           "version, or corrupt)");
  }
  DE_RETURN_NOT_OK(reader.ReadU64(&payload_size));
  DE_RETURN_NOT_OK(reader.ReadU32(&crc));
  if (reader.remaining() < payload_size) {
    return Status::IOError(what + ": truncated (" +
                           std::to_string(reader.remaining()) + " of " +
                           std::to_string(payload_size) + " payload bytes)");
  }
  std::vector<uint8_t> payload(blob.end() - reader.remaining(),
                               blob.end() - reader.remaining() +
                                   static_cast<ptrdiff_t>(payload_size));
  const uint32_t actual = Crc32(payload);
  if (actual != crc) {
    return Status::IOError(what + ": checksum mismatch (stored " +
                           std::to_string(crc) + ", computed " +
                           std::to_string(actual) + ")");
  }
  return payload;
}

}  // namespace persist
}  // namespace deepeverest
