#ifndef DEEPEVEREST_PERSIST_INGEST_H_
#define DEEPEVEREST_PERSIST_INGEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/trace.h"
#include "core/deepeverest.h"
#include "data/dataset.h"
#include "persist/ingest_log.h"
#include "service/ingest_sink.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace persist {

struct IngestQueueOptions {
  /// Maximum inputs the background applier may lag behind the dataset before
  /// new batches are rejected with ResourceExhausted (HTTP 429).
  uint32_t max_backlog = 4096;
  /// Automatically commit a snapshot after this many applied inputs
  /// (0 = snapshots only via SaveSnapshot()).
  uint32_t snapshot_every = 0;
  /// fsync every ingest-log append before acknowledging. Required for the
  /// exactly-once guarantee across power loss; tests may disable for speed.
  bool sync_log = true;
  /// Receives the finished per-apply trace (an "ingest.apply" span with
  /// inputs/layers/inputs_run annotations); wired to a QueryService's trace
  /// ring so `GET /v1/trace/<id>` serves ingest applies too.
  std::function<void(std::shared_ptr<Trace>)> trace_sink;
};

/// \brief The durable ingest pipeline for one model: accepts inputs while
/// queries run, applies them to every built LayerIndex incrementally, and
/// owns snapshot recovery + commit.
///
/// Exactly-once index maintenance (pg_incremental style): an input becomes
/// visible only after its log record is durable; each layer's high-watermark
/// is its index's own num_inputs(), persisted atomically *with* the merged
/// index by the snapshot manifest rename. Recovery replays the log (dropping
/// the never-acknowledged torn tail), installs the snapshot's indexes, and
/// re-merges exactly the inputs past each watermark — deterministic
/// inference makes the re-merge idempotent, so no input is ever indexed
/// twice or skipped. Queries pin the index version they start with, so every
/// answer is bit-identical to a fresh scan over that pinned prefix.
class IngestQueue : public service::IngestSink {
 public:
  /// Recovers state from `store` (ingest-log replay into `dataset`, snapshot
  /// load into the engine's IndexManager) and starts the background applier.
  /// `dataset` must be the engine's dataset, already holding the
  /// deterministic base inputs; all pointers must outlive the queue.
  static Result<std::unique_ptr<IngestQueue>> Create(
      core::DeepEverest* engine, data::Dataset* dataset,
      storage::FileStore* store, IngestQueueOptions options);

  ~IngestQueue() override;

  // service::IngestSink:
  Result<service::IngestAck> Ingest(
      const std::vector<service::IngestInput>& inputs) override;
  service::IngestStats Stats() const override;
  Status SaveSnapshot() override;

  /// Blocks until the applier has caught up to the current dataset size (or
  /// the timeout expires — returns false then). Test/bench synchronization.
  bool WaitIdle(double timeout_seconds);

  /// Stops the applier thread. Idempotent; the destructor calls it.
  void Shutdown();

  /// Inputs replayed from the ingest log at startup.
  uint32_t recovered_inputs() const { return recovered_inputs_; }
  /// Layer indexes installed from the snapshot at startup.
  uint32_t recovered_layers() const { return recovered_layers_; }

 private:
  IngestQueue(core::DeepEverest* engine, data::Dataset* dataset,
              storage::FileStore* store, IngestQueueOptions options);

  Status Recover();
  void ApplierLoop();
  /// One apply pass: merge every built layer up to `target`. Holds apply_mu_.
  Status ApplyTo(uint32_t target);
  /// Catch up + committed snapshot. Holds apply_mu_.
  Status SnapshotNow();

  core::DeepEverest* engine_;
  data::Dataset* dataset_;
  storage::FileStore* store_;
  IngestQueueOptions options_;
  std::string model_;
  IngestLog log_;

  uint32_t recovered_inputs_ = 0;  // written once during Create
  uint32_t recovered_layers_ = 0;

  /// Serializes apply passes and snapshot commits (never held while mu_ is).
  common::Mutex apply_mu_;

  mutable common::Mutex mu_;
  common::CondVar cv_;
  bool shutdown_ GUARDED_BY(mu_) = false;
  bool applying_ GUARDED_BY(mu_) = false;
  /// Dataset size the applier has fully merged into every built layer.
  uint32_t applied_size_ GUARDED_BY(mu_) = 0;
  uint32_t applied_since_snapshot_ GUARDED_BY(mu_) = 0;
  int64_t ingested_total_ GUARDED_BY(mu_) = 0;
  int64_t rejected_total_ GUARDED_BY(mu_) = 0;
  int64_t applies_total_ GUARDED_BY(mu_) = 0;
  int64_t snapshots_written_ GUARDED_BY(mu_) = 0;
  int64_t snapshot_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t snapshot_created_unix_ GUARDED_BY(mu_) = 0;
  uint32_t snapshot_dataset_size_ GUARDED_BY(mu_) = 0;

  std::thread applier_;
};

}  // namespace persist
}  // namespace deepeverest

#endif  // DEEPEVEREST_PERSIST_INGEST_H_
