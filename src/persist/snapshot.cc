#include "persist/snapshot.h"

#include <algorithm>
#include <set>

#include "common/serde.h"
#include "persist/format.h"

namespace deepeverest {
namespace persist {

namespace {

constexpr uint32_t kManifestMagic = 0xDEE7A901;
constexpr uint32_t kManifestVersion = 1;

std::string PrefixFor(const std::string& model) {
  return "snapshot/" + model + "/";
}

std::string SegmentKeyFor(const std::string& model, int layer,
                          uint32_t generation) {
  return PrefixFor(model) + "layer_" + std::to_string(layer) + ".g" +
         std::to_string(generation) + ".seg";
}

/// Parses the generation out of a segment key ("....g<gen>.seg"), or 0.
uint32_t GenerationOf(const std::string& key) {
  const size_t dot_seg = key.rfind(".seg");
  if (dot_seg == std::string::npos) return 0;
  const size_t dot_g = key.rfind(".g", dot_seg);
  if (dot_g == std::string::npos) return 0;
  uint32_t gen = 0;
  for (size_t i = dot_g + 2; i < dot_seg; ++i) {
    if (key[i] < '0' || key[i] > '9') return 0;
    gen = gen * 10 + static_cast<uint32_t>(key[i] - '0');
  }
  return gen;
}

Status Hit(const Failpoint& failpoint, const std::string& point) {
  if (failpoint && failpoint(point)) {
    return Status::Cancelled("failpoint: " + point);
  }
  return Status::OK();
}

Result<SnapshotManifest> ReadManifest(storage::FileStore* store,
                                      const std::string& model) {
  const std::string key = ManifestKeyFor(model);
  if (!store->Exists(key)) {
    return Status::NotFound("no snapshot manifest for model '" + model + "'");
  }
  DE_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, store->Read(key));
  DE_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                      UnwrapChecksum(blob, "snapshot manifest '" + key + "'"));
  BinaryReader reader(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  DE_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kManifestMagic) {
    return Status::IOError("bad snapshot manifest magic");
  }
  DE_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kManifestVersion) {
    return Status::IOError("unsupported snapshot manifest version " +
                           std::to_string(version));
  }
  SnapshotManifest manifest;
  DE_RETURN_NOT_OK(reader.ReadU32(&manifest.generation));
  DE_RETURN_NOT_OK(reader.ReadString(&manifest.model));
  DE_RETURN_NOT_OK(reader.ReadString(&manifest.dataset));
  DE_RETURN_NOT_OK(reader.ReadU32(&manifest.dataset_size));
  DE_RETURN_NOT_OK(reader.ReadU64(&manifest.created_unix_seconds));
  uint32_t num_segments = 0;
  DE_RETURN_NOT_OK(reader.ReadU32(&num_segments));
  if (manifest.model != model) {
    return Status::IOError("snapshot manifest names model '" + manifest.model +
                           "', expected '" + model + "'");
  }
  manifest.segments.reserve(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) {
    SegmentInfo seg;
    int32_t layer = 0;
    uint8_t kind = 0;
    DE_RETURN_NOT_OK(reader.ReadI32(&layer));
    DE_RETURN_NOT_OK(reader.ReadU8(&kind));
    DE_RETURN_NOT_OK(reader.ReadString(&seg.key));
    DE_RETURN_NOT_OK(reader.ReadU64(&seg.bytes));
    DE_RETURN_NOT_OK(reader.ReadU32(&seg.crc));
    DE_RETURN_NOT_OK(reader.ReadU32(&seg.watermark));
    seg.layer = layer;
    if (kind > static_cast<uint8_t>(SegmentKind::kQuantizedActs)) {
      return Status::IOError("unknown snapshot segment kind " +
                             std::to_string(kind));
    }
    seg.kind = static_cast<SegmentKind>(kind);
    manifest.segments.push_back(std::move(seg));
  }
  return manifest;
}

}  // namespace

std::string ManifestKeyFor(const std::string& model) {
  return PrefixFor(model) + "MANIFEST";
}

Result<uint64_t> WriteSnapshot(
    storage::FileStore* store, const std::string& model,
    const std::string& dataset_name, uint32_t dataset_size,
    const std::vector<std::pair<int, const core::LayerIndex*>>& indexes,
    uint64_t created_unix_seconds, const Failpoint& failpoint) {
  // Pick a generation strictly above anything on disk — committed or
  // orphaned — so new segment files never overwrite live ones.
  uint32_t generation = 0;
  {
    Result<SnapshotManifest> current = ReadManifest(store, model);
    if (current.ok()) generation = current->generation;
    DE_ASSIGN_OR_RETURN(std::vector<std::string> keys, store->ListKeys());
    for (const std::string& key : keys) {
      if (key.rfind(PrefixFor(model), 0) == 0) {
        generation = std::max(generation, GenerationOf(key));
      }
    }
    ++generation;
  }

  SnapshotManifest manifest;
  manifest.generation = generation;
  manifest.model = model;
  manifest.dataset = dataset_name;
  manifest.dataset_size = dataset_size;
  manifest.created_unix_seconds = created_unix_seconds;

  // 1. Segments first, each write-temp/fsync/rename under a fresh name. The
  // current manifest never references them, so a crash here is invisible.
  for (const auto& [layer, index] : indexes) {
    BinaryWriter writer;
    index->Serialize(&writer);
    const std::vector<uint8_t> enveloped = WrapChecksum(writer.buffer());
    const std::string key = SegmentKeyFor(model, layer, generation);
    DE_RETURN_NOT_OK(store->Write(key + ".tmp", enveloped, /*sync=*/true));
    DE_RETURN_NOT_OK(
        Hit(failpoint, "seg:" + std::to_string(layer) + ":tmp_written"));
    DE_RETURN_NOT_OK(store->Rename(key + ".tmp", key));
    DE_RETURN_NOT_OK(
        Hit(failpoint, "seg:" + std::to_string(layer) + ":renamed"));

    SegmentInfo seg;
    seg.layer = layer;
    seg.kind = SegmentKind::kIndex;
    seg.key = key;
    seg.bytes = enveloped.size();
    seg.crc = Crc32(enveloped);
    seg.watermark = index->num_inputs();
    manifest.segments.push_back(std::move(seg));
  }

  // 2. Manifest rename = the commit point: the new generation's segments and
  // every per-layer watermark become visible in one atomic step.
  BinaryWriter writer;
  writer.WriteU32(kManifestMagic);
  writer.WriteU32(kManifestVersion);
  writer.WriteU32(manifest.generation);
  writer.WriteString(manifest.model);
  writer.WriteString(manifest.dataset);
  writer.WriteU32(manifest.dataset_size);
  writer.WriteU64(manifest.created_unix_seconds);
  writer.WriteU32(static_cast<uint32_t>(manifest.segments.size()));
  for (const SegmentInfo& seg : manifest.segments) {
    writer.WriteI32(seg.layer);
    writer.WriteU8(static_cast<uint8_t>(seg.kind));
    writer.WriteString(seg.key);
    writer.WriteU64(seg.bytes);
    writer.WriteU32(seg.crc);
    writer.WriteU32(seg.watermark);
  }
  const std::string manifest_key = ManifestKeyFor(model);
  DE_RETURN_NOT_OK(store->Write(manifest_key + ".tmp",
                                WrapChecksum(writer.buffer()), /*sync=*/true));
  DE_RETURN_NOT_OK(Hit(failpoint, "manifest:tmp_written"));
  DE_RETURN_NOT_OK(store->Rename(manifest_key + ".tmp", manifest_key));
  DE_RETURN_NOT_OK(Hit(failpoint, "manifest:renamed"));

  // 3. Previous generations are now unreferenced; reclaim them. A crash in
  // here only leaves orphans for the next GC pass.
  DE_RETURN_NOT_OK(CollectGarbage(store, model));
  DE_RETURN_NOT_OK(Hit(failpoint, "gc:done"));

  uint64_t total_bytes = 0;
  DE_ASSIGN_OR_RETURN(total_bytes, store->SizeOf(manifest_key));
  for (const SegmentInfo& seg : manifest.segments) total_bytes += seg.bytes;
  return total_bytes;
}

Result<LoadedSnapshot> LoadSnapshot(storage::FileStore* store,
                                    const std::string& model) {
  LoadedSnapshot snapshot;
  DE_ASSIGN_OR_RETURN(snapshot.manifest, ReadManifest(store, model));
  DE_ASSIGN_OR_RETURN(uint64_t manifest_bytes,
                      store->SizeOf(ManifestKeyFor(model)));
  snapshot.total_bytes = manifest_bytes;
  for (const SegmentInfo& seg : snapshot.manifest.segments) {
    DE_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, store->Read(seg.key));
    if (blob.size() != seg.bytes || Crc32(blob) != seg.crc) {
      return Status::IOError("snapshot segment '" + seg.key +
                             "' does not match its manifest entry "
                             "(truncated or corrupt)");
    }
    if (seg.kind != SegmentKind::kIndex) {
      // Forward-compatible kinds are ignored, not fatal.
      snapshot.total_bytes += blob.size();
      continue;
    }
    DE_ASSIGN_OR_RETURN(
        std::vector<uint8_t> payload,
        UnwrapChecksum(blob, "snapshot segment '" + seg.key + "'"));
    BinaryReader reader(payload);
    DE_ASSIGN_OR_RETURN(core::LayerIndex index,
                        core::LayerIndex::Deserialize(&reader));
    if (index.num_inputs() != seg.watermark) {
      return Status::IOError("snapshot segment '" + seg.key +
                             "' watermark mismatch");
    }
    snapshot.total_bytes += blob.size();
    snapshot.indexes.emplace_back(seg.layer, std::move(index));
  }
  return snapshot;
}

Status CollectGarbage(storage::FileStore* store, const std::string& model) {
  std::set<std::string> referenced;
  referenced.insert(ManifestKeyFor(model));
  Result<SnapshotManifest> manifest = ReadManifest(store, model);
  if (manifest.ok()) {
    for (const SegmentInfo& seg : manifest->segments) {
      referenced.insert(seg.key);
    }
  }
  DE_ASSIGN_OR_RETURN(std::vector<std::string> keys, store->ListKeys());
  for (const std::string& key : keys) {
    if (key.rfind(PrefixFor(model), 0) != 0) continue;
    if (referenced.count(key) != 0) continue;
    DE_RETURN_NOT_OK(store->Remove(key));
  }
  return Status::OK();
}

}  // namespace persist
}  // namespace deepeverest
