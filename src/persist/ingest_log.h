#ifndef DEEPEVEREST_PERSIST_INGEST_LOG_H_
#define DEEPEVEREST_PERSIST_INGEST_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace persist {

/// One durably logged ingested input.
struct IngestRecord {
  uint32_t input_id = 0;
  int32_t label = 0;
  std::vector<float> values;
};

/// \brief Append-only, checksummed record log of ingested inputs.
///
/// The base dataset is reconstructed deterministically at startup (or loaded
/// from its own source); everything ingested afterwards is logged here
/// *before* it becomes visible in the Dataset, so any input a query or an
/// index merge can ever observe is already durable. Replay after a crash
/// rebuilds exactly the acknowledged suffix: each record is individually
/// framed and CRC'd, and a torn tail (crash mid-append) is detected and
/// dropped — by the durability ordering it was never acknowledged.
class IngestLog {
 public:
  /// Log key for `model` inside the store.
  static std::string KeyFor(const std::string& model);

  /// `sync` fsyncs every append (the exactly-once guarantee needs it; tests
  /// may disable it for speed).
  IngestLog(storage::FileStore* store, std::string model, bool sync = true)
      : store_(store), key_(KeyFor(model)), sync_(sync) {}

  /// Durably appends one record. Returns only after the bytes are on disk
  /// (when sync is on) — the caller may then expose the input to readers.
  Status Append(const IngestRecord& record);

  /// Appends a whole batch as one write (one fsync for the batch instead of
  /// one per record — the ingest throughput path).
  Status AppendBatch(const std::vector<IngestRecord>& records);

  /// Replays every intact record in order. Records after the first torn or
  /// corrupt frame are dropped (with a warning); absence of the log file is
  /// an empty replay, not an error.
  Result<std::vector<IngestRecord>> Replay() const;

 private:
  storage::FileStore* store_;
  std::string key_;
  bool sync_;
};

}  // namespace persist
}  // namespace deepeverest

#endif  // DEEPEVEREST_PERSIST_INGEST_LOG_H_
