#ifndef DEEPEVEREST_PERSIST_SNAPSHOT_H_
#define DEEPEVEREST_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/npi.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace persist {

/// What a snapshot segment holds. Today only serialized NPI/MAI index state;
/// the kind byte keeps the format open for quantized-activation segments.
enum class SegmentKind : uint8_t {
  kIndex = 0,
  kQuantizedActs = 1,
};

/// One per-layer segment as recorded in the manifest.
struct SegmentInfo {
  int layer = 0;
  SegmentKind kind = SegmentKind::kIndex;
  std::string key;         // store key of the segment file
  uint64_t bytes = 0;      // size of the (enveloped) segment file
  uint32_t crc = 0;        // crc32 of the whole segment file
  uint32_t watermark = 0;  // input ids [0, watermark) are covered
};

/// The decoded snapshot manifest: one durable, atomic commit point. The
/// per-layer watermarks advance only via a manifest rename, so an index
/// delta and its high-watermark become visible together — the transactional
/// pipeline idea from pg_incremental, done with rename instead of a
/// database transaction.
struct SnapshotManifest {
  uint32_t generation = 0;
  std::string model;
  std::string dataset;
  uint32_t dataset_size = 0;  // dataset watermark when the snapshot was cut
  uint64_t created_unix_seconds = 0;
  std::vector<SegmentInfo> segments;
};

/// A fully validated snapshot: the manifest plus every deserialized index.
struct LoadedSnapshot {
  SnapshotManifest manifest;
  std::vector<std::pair<int, core::LayerIndex>> indexes;
  uint64_t total_bytes = 0;  // manifest + segment files
};

/// Failpoint hook for crash-injection tests: invoked at named points inside
/// the writer ("seg:<layer>:tmp_written", "seg:<layer>:renamed",
/// "manifest:tmp_written", "manifest:renamed", "gc:done"); returning true
/// aborts the write immediately, leaving the on-disk state exactly as a
/// kill -9 at that point would. Production passes nothing.
using Failpoint = std::function<bool(const std::string& point)>;

/// Store key of a model's manifest: `snapshot/<model>/MANIFEST`.
std::string ManifestKeyFor(const std::string& model);

/// \brief Writes one snapshot generation crash-safely.
///
/// Segment files are written first under fresh generation-stamped names
/// (write-temp/fsync/rename each), then the manifest referencing them is
/// atomically renamed into place — the commit point. A crash anywhere
/// before that rename leaves the previous manifest (and therefore the
/// previous snapshot) fully intact; orphaned new-generation segments are
/// garbage-collected by the next successful write or load. `indexes` holds
/// (layer, index) pairs; `dataset_size` is the dataset watermark the caller
/// observed (>= every per-layer watermark). Returns the snapshot's total
/// on-disk size (manifest + segments).
Result<uint64_t> WriteSnapshot(
    storage::FileStore* store, const std::string& model,
    const std::string& dataset_name, uint32_t dataset_size,
    const std::vector<std::pair<int, const core::LayerIndex*>>& indexes,
    uint64_t created_unix_seconds, const Failpoint& failpoint = nullptr);

/// Loads and fully validates the model's snapshot: manifest envelope +
/// per-segment size/crc + index deserialization. Any failure — including a
/// single flipped bit in any file — returns an error and the caller falls
/// back to a cold rebuild; a torn write can never yield a hybrid of two
/// generations because the manifest is a single atomically-replaced file.
/// Returns NotFound when no snapshot has ever been committed.
Result<LoadedSnapshot> LoadSnapshot(storage::FileStore* store,
                                    const std::string& model);

/// Removes stray segment/temp files under `snapshot/<model>/` that the
/// current manifest does not reference (crash leftovers). Safe to run any
/// time; never touches referenced files.
Status CollectGarbage(storage::FileStore* store, const std::string& model);

}  // namespace persist
}  // namespace deepeverest

#endif  // DEEPEVEREST_PERSIST_SNAPSHOT_H_
