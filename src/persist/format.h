#ifndef DEEPEVEREST_PERSIST_FORMAT_H_
#define DEEPEVEREST_PERSIST_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace deepeverest {
namespace persist {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Deterministic across platforms;
/// used to detect torn writes and bit rot in every persisted artifact.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(const std::vector<uint8_t>& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

/// \brief Checksum envelope for persisted blobs.
///
/// Layout: u32 magic | u64 payload_size | u32 crc32(payload) | payload.
/// Every blob the persistence tier writes (legacy index files, snapshot
/// segments, the snapshot manifest) is wrapped so a load can distinguish
/// "valid", "truncated", and "corrupt" instead of deserializing garbage.
constexpr uint32_t kEnvelopeMagic = 0xDE5EA1EDu;

std::vector<uint8_t> WrapChecksum(const std::vector<uint8_t>& payload);

/// Validates the envelope and returns the payload, or IOError with a
/// human-readable reason (`what` names the artifact in the message).
Result<std::vector<uint8_t>> UnwrapChecksum(const std::vector<uint8_t>& blob,
                                            const std::string& what);

}  // namespace persist
}  // namespace deepeverest

#endif  // DEEPEVEREST_PERSIST_FORMAT_H_
