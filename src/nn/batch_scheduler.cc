#include "nn/batch_scheduler.h"

#include <algorithm>

namespace deepeverest {
namespace nn {

namespace {

std::chrono::nanoseconds LingerNanos(double seconds) {
  return std::chrono::nanoseconds(
      static_cast<int64_t>(std::max(0.0, seconds) * 1e9));
}

}  // namespace

BatchingInferenceScheduler::BatchingInferenceScheduler(
    InferenceEngine* engine, BatchSchedulerOptions options)
    : engine_(engine),
      batch_size_(options.max_batch_size > 0 ? options.max_batch_size
                                             : engine->batch_size()),
      linger_{LingerNanos(options.interactive_linger_seconds),
              LingerNanos(options.linger_seconds),
              LingerNanos(options.best_effort_linger_seconds)},
      qos_aware_(options.qos_aware) {
  DE_CHECK_GT(batch_size_, 0);
  const int n = options.num_dispatchers > 0 ? options.num_dispatchers : 1;
  dispatchers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

BatchingInferenceScheduler::~BatchingInferenceScheduler() {
  {
    common::MutexLock lock(&mu_);
    stopping_ = true;
  }
  // Dispatchers drain whatever is still queued (without lingering), so any
  // caller blocked in ComputeLayer is served before the threads exit.
  work_cv_.NotifyAll();
  for (std::thread& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
}

Status BatchingInferenceScheduler::ComputeLayer(
    const std::vector<uint32_t>& input_ids, int layer,
    std::vector<std::vector<float>>* rows, InferenceReceipt* receipt,
    QosClass qos) {
  rows->clear();
  // Validate up front (the class indexes fixed-size linger/stat arrays, and
  // once inputs are merged into a shared batch, one bad id would fail every
  // co-scheduled query's launch).
  if (QosIndex(qos) < 0 || QosIndex(qos) >= kNumQosClasses) {
    return Status::InvalidArgument("unknown QoS class");
  }
  if (input_ids.empty()) return Status::OK();
  if (layer < 0 || layer >= engine_->model().num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(layer) +
                              " out of range");
  }
  const uint32_t num_inputs = engine_->dataset().size();
  for (uint32_t id : input_ids) {
    if (id >= num_inputs) {
      return Status::OutOfRange("inputID " + std::to_string(id) +
                                " out of range [0, " +
                                std::to_string(num_inputs) + ")");
    }
  }

  rows->resize(input_ids.size());
  Request request;
  request.ids = &input_ids;
  request.rows = rows;
  request.qos = qos;
  {
    common::MutexLock lock(&mu_);
    if (stopping_) {
      rows->clear();
      return Status::FailedPrecondition("batch scheduler is shutting down");
    }
    request.arrival = Clock::now();
    request.flush_at = request.arrival + LingerFor(qos);
    LayerQueue& queue = pending_[layer];
    queue.requests.push_back(&request);
    queue.pending_inputs += input_ids.size();
    ++stats_.requests;
    stats_.inputs_enqueued += static_cast<int64_t>(input_ids.size());
    BatchSchedulerClassStats& class_stats = stats_.per_class[QosIndex(qos)];
    ++class_stats.requests;
    class_stats.inputs_enqueued += static_cast<int64_t>(input_ids.size());
    work_cv_.NotifyAll();
    // `request.done` lives on this stack frame but is written by the
    // dispatcher under mu_; the explicit loop keeps every read under mu_.
    while (!request.done) done_cv_.Wait(&mu_);
  }
  if (receipt != nullptr) *receipt += request.receipt;
  if (!request.status.ok()) {
    rows->clear();
    return request.status;
  }
  return Status::OK();
}

void BatchingInferenceScheduler::DispatcherLoop() {
  common::MutexLock lock(&mu_);
  for (;;) {
    if (pending_.empty()) {
      if (stopping_) return;
      while (!stopping_ && pending_.empty()) work_cv_.Wait(&mu_);
      continue;
    }

    // Pick the layer to serve. A layer is *ready* when it has a full batch
    // pending or any pending request's class linger window has expired
    // (always, when stopping) — interactive requests carry a zero window by
    // default, so a layer they join becomes ready (sealed) immediately.
    // Among ready layers the most urgent pending class wins, then the
    // oldest head — FIFO across equal-class layers, so sustained full-batch
    // traffic on one layer cannot starve an expired partial request on
    // another (hot layers keep presenting newer heads while a waiting
    // head's arrival stays fixed). With qos_aware off, class is ignored and
    // selection is pure oldest-head, the pre-QoS behaviour.
    const Clock::time_point now = Clock::now();
    bool has_ready = false;
    int ready_layer = 0;
    bool ready_is_partial = false;
    int ready_class = 0;
    Clock::time_point ready_arrival{};
    bool has_waiting = false;
    Clock::time_point next_deadline{};
    for (const auto& [layer, queue] : pending_) {
      if (queue.requests.empty()) continue;
      const Clock::time_point arrival = queue.requests.front()->arrival;
      // The layer's flush deadline and priority come from its most urgent
      // pending request (queues are at most a few requests deep — one per
      // blocked worker — so the scan is cheap).
      Clock::time_point deadline = Clock::time_point::max();
      int best_class = QosIndex(QosClass::kBestEffort);
      for (const Request* request : queue.requests) {
        if (request->flush_at < deadline) deadline = request->flush_at;
        if (QosIndex(request->qos) < best_class) {
          best_class = QosIndex(request->qos);
        }
      }
      if (!qos_aware_) best_class = QosIndex(QosClass::kBatch);
      const bool full =
          queue.pending_inputs >= static_cast<size_t>(batch_size_);
      if (full || stopping_ || now >= deadline) {
        const bool better =
            !has_ready || best_class < ready_class ||
            (best_class == ready_class && arrival < ready_arrival);
        if (better) {
          has_ready = true;
          ready_layer = layer;
          ready_arrival = arrival;
          ready_is_partial = !full;
          ready_class = best_class;
        }
      } else if (!has_waiting || deadline < next_deadline) {
        has_waiting = true;
        next_deadline = deadline;
      }
    }
    if (!has_ready) {
      if (!has_waiting) {  // defensive: map held only empty queues
        pending_.clear();
        continue;
      }
      // Wait for more inputs to top a batch up; new arrivals or the
      // deadline re-run the selection above.
      work_cv_.WaitUntil(&mu_, next_deadline);
      continue;
    }
    const int layer = ready_layer;
    if (ready_is_partial && !stopping_) {
      ++stats_.linger_flushes;
      if (qos_aware_ && ready_class == QosIndex(QosClass::kInteractive)) {
        ++stats_.sealed_by_interactive;
      }
    }

    std::vector<uint32_t> batch_ids;
    std::vector<Slice> slices;
    GatherBatchLocked(layer, &batch_ids, &slices);
    if (batch_ids.empty()) continue;
    RunBatch(layer, std::move(batch_ids), std::move(slices));
  }
}

void BatchingInferenceScheduler::GatherBatchLocked(
    int layer, std::vector<uint32_t>* batch_ids, std::vector<Slice>* slices) {
  auto it = pending_.find(layer);
  if (it == pending_.end()) return;
  LayerQueue& queue = it->second;
  const size_t capacity = static_cast<size_t>(batch_size_);
  batch_ids->reserve(std::min(capacity, queue.pending_inputs));
  while (!queue.requests.empty() && batch_ids->size() < capacity) {
    Request* request = queue.requests.front();
    const size_t remaining = request->ids->size() - request->dispatched;
    const size_t take = std::min(remaining, capacity - batch_ids->size());
    slices->push_back(Slice{request, request->dispatched, take});
    for (size_t i = 0; i < take; ++i) {
      batch_ids->push_back((*request->ids)[request->dispatched + i]);
    }
    request->dispatched += take;
    queue.pending_inputs -= take;
    // Fully dispatched requests leave the queue; their completion is
    // tracked through the slices of the batches they joined.
    if (request->dispatched == request->ids->size()) {
      queue.requests.pop_front();
    }
  }
  if (queue.requests.empty()) pending_.erase(it);
}

void BatchingInferenceScheduler::RunBatch(int layer,
                                          std::vector<uint32_t> batch_ids,
                                          std::vector<Slice> slices) {
  // The engine call must not run under mu_ (other callers keep enqueueing
  // and other dispatchers keep launching while this batch computes).
  mu_.Unlock();
  std::vector<std::vector<float>> batch_rows;
  InferenceReceipt batch_receipt;
  const Status status =
      engine_->ComputeLayer(batch_ids, layer, &batch_rows, &batch_receipt);
  mu_.Lock();

  const int64_t n = static_cast<int64_t>(batch_ids.size());
  // ComputeLayer meters macs as n * CumulativeMacs(layer), so this division
  // recovers the per-input cost exactly.
  const int64_t macs_per_input =
      status.ok() && n > 0 ? batch_receipt.macs / n : 0;
  bool class_aboard[kNumQosClasses] = {};
  size_t offset = 0;
  for (const Slice& slice : slices) {
    Request* request = slice.request;
    BatchSchedulerClassStats& class_stats =
        stats_.per_class[QosIndex(request->qos)];
    class_stats.inputs_dispatched += static_cast<int64_t>(slice.count);
    if (!class_aboard[QosIndex(request->qos)]) {
      class_aboard[QosIndex(request->qos)] = true;
      ++class_stats.batches_joined;
    }
    if (status.ok()) {
      for (size_t i = 0; i < slice.count; ++i) {
        (*request->rows)[slice.src_begin + i] =
            std::move(batch_rows[offset + i]);
      }
      const double share =
          static_cast<double>(slice.count) / static_cast<double>(n);
      request->receipt.inputs_run += static_cast<int64_t>(slice.count);
      request->receipt.batches_run += share * batch_receipt.batches_run;
      request->receipt.macs +=
          macs_per_input * static_cast<int64_t>(slice.count);
      request->receipt.simulated_gpu_seconds +=
          share * batch_receipt.simulated_gpu_seconds;
    } else if (request->status.ok()) {
      request->status = status;
    }
    request->completed += slice.count;
    offset += slice.count;
    if (request->completed == request->ids->size()) request->done = true;
  }
  stats_.batches_dispatched += 1;
  stats_.inputs_dispatched += n;
  if (slices.size() > 1) stats_.shared_batches += 1;
  // Occupancy histogram bucket for fill in (i/8, (i+1)/8]: with n >= 1,
  // ceil(fill * 8) - 1 lands exactly there; clamp defends against a
  // hypothetical overfull batch.
  const int fill_bucket = std::min(
      BatchSchedulerStats::kFillBuckets - 1,
      static_cast<int>((n * BatchSchedulerStats::kFillBuckets + batch_size_ -
                        1) /
                       batch_size_) -
          1);
  stats_.fill_histogram[static_cast<size_t>(std::max(0, fill_bucket))] += 1;
  done_cv_.NotifyAll();
}

BatchSchedulerStats BatchingInferenceScheduler::stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace nn
}  // namespace deepeverest
