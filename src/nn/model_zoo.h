#ifndef DEEPEVEREST_NN_MODEL_ZOO_H_
#define DEEPEVEREST_NN_MODEL_ZOO_H_

#include <cstdint>

#include "nn/model.h"

namespace deepeverest {
namespace nn {

/// \brief Builders for the frozen models used across tests, examples, and
/// benchmarks. All weights derive deterministically from `seed`.
///
/// These are scaled-down stand-ins for the paper's VGG16 and ResNet50 (see
/// DESIGN.md §1): same layer kinds, same early/mid/late structure, sized so
/// full-dataset inference takes seconds, not minutes, on one CPU core.

/// Tiny MLP over rank-1 inputs of `input_units`; three ReLU layers. Meant
/// for fast unit tests where inference cost is irrelevant.
ModelPtr MakeTinyMlp(int input_units, uint64_t seed);

/// VGG-style sequential conv net over 32x32x3 images: four conv/ReLU blocks
/// with max pooling plus a dense head — five queryable activation layers
/// from 8192 neurons (early) down to 64 (late).
ModelPtr MakeMiniVgg(uint64_t seed);

/// ResNet-style net over 32x32x3 images: conv stem plus three residual
/// blocks with channel growth; roughly 2x MiniVgg's per-input inference
/// cost, mirroring the paper's VGG16-vs-ResNet50 cost contrast.
ModelPtr MakeMiniResNet(uint64_t seed);

}  // namespace nn
}  // namespace deepeverest

#endif  // DEEPEVEREST_NN_MODEL_ZOO_H_
