#include "nn/model.h"

namespace deepeverest {
namespace nn {

void Model::AddLayer(LayerPtr layer) {
  DE_CHECK(!finalized_) << "AddLayer after Finalize";
  layers_.push_back(std::move(layer));
}

Status Model::Finalize() {
  if (finalized_) return Status::FailedPrecondition("model already finalized");
  if (layers_.empty()) return Status::InvalidArgument("model has no layers");
  Shape current = input_shape_;
  int64_t macs = 0;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Layer& layer = *layers_[i];
    auto shape = layer.OutputShape(current);
    if (!shape.ok()) {
      return Status::InvalidArgument("layer " + std::to_string(i) + " (" +
                                     layer.name() +
                                     "): " + shape.status().message());
    }
    macs += layer.MacsFor(current);
    current = std::move(shape).value();
    output_shapes_.push_back(current);
    cumulative_macs_.push_back(macs);
    if (layer.kind() == LayerKind::kRelu ||
        layer.kind() == LayerKind::kResidualBlock) {
      activation_layers_.push_back(static_cast<int>(i));
    }
  }
  finalized_ = true;
  return Status::OK();
}

const Shape& Model::layer_output_shape(int i) const {
  DE_CHECK(finalized_);
  DE_CHECK_GE(i, 0);
  DE_CHECK_LT(i, num_layers());
  return output_shapes_[static_cast<size_t>(i)];
}

int64_t Model::CumulativeMacs(int layer) const {
  DE_CHECK(finalized_);
  DE_CHECK_GE(layer, 0);
  DE_CHECK_LT(layer, num_layers());
  return cumulative_macs_[static_cast<size_t>(layer)];
}

Status Model::ForwardTo(const Tensor& input, int upto_layer,
                        Tensor* out) const {
  if (!finalized_) return Status::FailedPrecondition("model not finalized");
  if (upto_layer < 0 || upto_layer >= num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(upto_layer) +
                              " out of range [0, " +
                              std::to_string(num_layers()) + ")");
  }
  if (input.shape() != input_shape_) {
    return Status::InvalidArgument("input shape " + input.shape().ToString() +
                                   " does not match model input " +
                                   input_shape_.ToString());
  }
  Tensor current = input;
  Tensor next;
  for (int i = 0; i <= upto_layer; ++i) {
    DE_RETURN_NOT_OK(layers_[static_cast<size_t>(i)]->Forward(current, &next));
    current = std::move(next);
  }
  *out = std::move(current);
  return Status::OK();
}

Status Model::ForwardAll(const Tensor& input,
                         std::vector<Tensor>* outputs) const {
  if (!finalized_) return Status::FailedPrecondition("model not finalized");
  if (input.shape() != input_shape_) {
    return Status::InvalidArgument("input shape " + input.shape().ToString() +
                                   " does not match model input " +
                                   input_shape_.ToString());
  }
  outputs->clear();
  outputs->reserve(layers_.size());
  const Tensor* current = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Tensor out;
    DE_RETURN_NOT_OK(layers_[i]->Forward(*current, &out));
    outputs->push_back(std::move(out));
    current = &outputs->back();
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace deepeverest
