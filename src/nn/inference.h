#ifndef DEEPEVEREST_NN_INFERENCE_H_
#define DEEPEVEREST_NN_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace deepeverest {
namespace nn {

/// \brief Counters accumulated across InferenceEngine calls.
///
/// `inputs_run` is the hardware-independent cost metric the paper reports in
/// Table 3 ("number of inputs run by the DNN at query time").
/// `simulated_gpu_seconds` applies the batch cost model below so experiments
/// can also report GPU-shaped timings on this CPU-only machine.
struct InferenceStats {
  int64_t inputs_run = 0;
  int64_t batches_run = 0;
  int64_t macs = 0;
  double wall_seconds = 0.0;
  double simulated_gpu_seconds = 0.0;

  InferenceStats operator-(const InferenceStats& other) const {
    InferenceStats d;
    d.inputs_run = inputs_run - other.inputs_run;
    d.batches_run = batches_run - other.batches_run;
    d.macs = macs - other.macs;
    d.wall_seconds = wall_seconds - other.wall_seconds;
    d.simulated_gpu_seconds =
        simulated_gpu_seconds - other.simulated_gpu_seconds;
    return d;
  }
};

/// \brief Per-call inference metering: exactly the work the engine (or the
/// cross-query batching scheduler) performed on behalf of ONE caller.
///
/// Unlike a before/after `InferenceEngine::stats()` delta — which under
/// concurrency silently absorbs other threads' inference — a receipt is
/// accumulated at the call site and therefore attributes work exactly,
/// regardless of what other queries run in the same window. `batches_run`
/// is fractional: when the BatchingInferenceScheduler merges several
/// queries' inputs into one shared device batch, each caller is charged its
/// occupancy share of that launch (and of its simulated GPU time).
struct InferenceReceipt {
  int64_t inputs_run = 0;
  double batches_run = 0.0;
  int64_t macs = 0;
  double simulated_gpu_seconds = 0.0;

  InferenceReceipt& operator+=(const InferenceReceipt& other) {
    inputs_run += other.inputs_run;
    batches_run += other.batches_run;
    macs += other.macs;
    simulated_gpu_seconds += other.simulated_gpu_seconds;
    return *this;
  }
};

/// \brief Cost model mimicking GPU batch execution (see DESIGN.md §1).
///
/// A launched batch of n <= batch_size inputs takes (approximately) the same
/// time as a full batch because idle lanes do not speed it up:
///   time(n, layer) = ceil(n / batch_size) *
///                    (launch_overhead + batch_size * macs(layer) * sec/mac)
/// This reproduces the paper's Figure 7 plateau: once partitions shrink
/// below the optimal batch size, more partitions stop helping.
struct GpuCostModel {
  double seconds_per_mac = 2.0e-12;       // ~500 GMAC/s effective
  double launch_overhead_seconds = 2e-4;  // per-batch fixed cost

  double BatchSeconds(int64_t n, int64_t batch_size,
                      int64_t macs_per_input) const {
    const int64_t launches = (n + batch_size - 1) / batch_size;
    return static_cast<double>(launches) *
           (launch_overhead_seconds + static_cast<double>(batch_size) *
                                          static_cast<double>(macs_per_input) *
                                          seconds_per_mac);
  }
};

/// \brief Runs batched DNN inference over a dataset and meters every call.
///
/// This is the single chokepoint through which DeepEverest, NTA, and all
/// baselines compute activations, so their inference costs are directly
/// comparable.
///
/// Thread-safety: ComputeLayer/ComputeAllLayers are safe to call
/// concurrently — the forward pass itself is pure (const model + dataset)
/// and the shared counters are mutex-guarded. `stats()` returns a coherent
/// snapshot of the *global* counters; under concurrent queries a
/// before/after delta attributes *all* inference in the window, including
/// other threads' — pass an InferenceReceipt to the compute calls for exact
/// per-caller attribution instead. Configure the cost model and
/// `set_simulate_device_latency` before sharing the engine across threads.
class InferenceEngine {
 public:
  /// Does not take ownership; `model` and `dataset` must outlive the engine.
  /// `batch_size` is the throughput-optimal batch (paper: 128 for VGG16, 64
  /// for ResNet50).
  InferenceEngine(const Model* model, const data::Dataset* dataset,
                  int batch_size)
      : model_(model), dataset_(dataset), batch_size_(batch_size) {
    DE_CHECK_GT(batch_size, 0);
  }

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  const Model& model() const { return *model_; }
  const data::Dataset& dataset() const { return *dataset_; }
  int batch_size() const { return batch_size_; }

  /// Computes layer `layer`'s activations for each input in `input_ids`.
  /// `rows->at(i)` is the flat activation vector of input_ids[i].
  /// Processes in batches of batch_size; each batch is metered. When
  /// `receipt` is non-null, this call's exact cost is *added* to it — the
  /// attribution-safe alternative to a before/after stats() delta.
  Status ComputeLayer(const std::vector<uint32_t>& input_ids, int layer,
                      std::vector<std::vector<float>>* rows,
                      InferenceReceipt* receipt = nullptr);

  /// Computes ALL layers' activations for one input in a single pass
  /// (used by preprocessing / index construction). Metered as one input at
  /// full-model cost; `receipt`, when non-null, is accumulated like in
  /// ComputeLayer.
  Status ComputeAllLayers(uint32_t input_id, std::vector<Tensor>* outputs,
                          InferenceReceipt* receipt = nullptr);

  InferenceStats stats() const {
    common::MutexLock lock(&stats_mu_);
    return stats_;
  }
  void ResetStats() {
    common::MutexLock lock(&stats_mu_);
    stats_ = InferenceStats();
  }

  GpuCostModel* mutable_cost_model() { return &cost_model_; }
  const GpuCostModel& cost_model() const { return cost_model_; }

  /// When on, each batch *blocks* for its cost-model time, turning the
  /// simulated accelerator into a real latency source. This is how the
  /// concurrent query service is benchmarked on CPU-only machines: worker
  /// threads overlap device waits exactly as they would overlap GPU
  /// dispatches, while the pure-CPU reference computation still runs.
  void set_simulate_device_latency(bool on) { simulate_device_latency_ = on; }
  bool simulate_device_latency() const { return simulate_device_latency_; }

 private:
  const Model* model_;
  const data::Dataset* dataset_;
  int batch_size_;
  GpuCostModel cost_model_;
  bool simulate_device_latency_ = false;
  mutable common::Mutex stats_mu_;
  InferenceStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace nn
}  // namespace deepeverest

#endif  // DEEPEVEREST_NN_INFERENCE_H_
