#ifndef DEEPEVEREST_NN_LAYERS_H_
#define DEEPEVEREST_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace deepeverest {
namespace nn {

/// \brief 2D convolution over HWC tensors, stride 1, "same" zero padding.
///
/// Weights are laid out [kernel_h][kernel_w][in_c][out_c]; initialised
/// He-normal from an explicit seed so models are reproducible.
class Conv2D : public Layer {
 public:
  Conv2D(std::string name, int in_channels, int out_channels, int kernel,
         Rng* rng);

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  std::vector<float> weights_;  // [kh][kw][ic][oc]
  std::vector<float> bias_;     // [oc]
};

/// \brief Fully connected layer over rank-1 tensors.
class Dense : public Layer {
 public:
  Dense(std::string name, int in_units, int out_units, Rng* rng);

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;

 private:
  int in_units_;
  int out_units_;
  std::vector<float> weights_;  // [in][out]
  std::vector<float> bias_;     // [out]
};

/// \brief Elementwise max(x, 0). These are the layers DeepEverest queries:
/// their outputs are the "activation values" of the paper.
class Relu : public Layer {
 public:
  explicit Relu(std::string name) : Layer(LayerKind::kRelu, std::move(name)) {}

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;
};

/// \brief 2x2 max pooling with stride 2 over HWC tensors.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(std::string name)
      : Layer(LayerKind::kMaxPool, std::move(name)) {}

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;
};

/// \brief Global average pooling: HWC -> C.
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name)
      : Layer(LayerKind::kGlobalAvgPool, std::move(name)) {}

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;
};

/// \brief Frozen batch normalisation: per-channel affine transform with
/// fixed statistics (inference mode only).
class BatchNorm : public Layer {
 public:
  BatchNorm(std::string name, int channels, Rng* rng);

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;

 private:
  int channels_;
  std::vector<float> scale_;
  std::vector<float> shift_;
};

/// \brief Reshapes any tensor to rank 1.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name)
      : Layer(LayerKind::kFlatten, std::move(name)) {}

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;
};

/// \brief ResNet basic block: conv-bn-relu-conv-bn + skip, then relu.
///
/// When `out_channels != in_channels` the skip path uses a 1x1 projection.
/// Implemented as a composite layer so the surrounding model stays a simple
/// sequence (the paper's layer numbering counts blocks' activation outputs).
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, int in_channels, int out_channels, Rng* rng);

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;

 private:
  int in_channels_;
  int out_channels_;
  Conv2D conv1_;
  BatchNorm bn1_;
  Conv2D conv2_;
  BatchNorm bn2_;
  std::unique_ptr<Conv2D> projection_;  // 1x1 conv, only if channels change.
};

/// \brief Numerically stable softmax over rank-1 tensors.
class Softmax : public Layer {
 public:
  explicit Softmax(std::string name)
      : Layer(LayerKind::kSoftmax, std::move(name)) {}

  Result<Shape> OutputShape(const Shape& input) const override;
  Status Forward(const Tensor& input, Tensor* out) const override;
  int64_t MacsFor(const Shape& input) const override;
};

}  // namespace nn
}  // namespace deepeverest

#endif  // DEEPEVEREST_NN_LAYERS_H_
