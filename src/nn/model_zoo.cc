#include "nn/model_zoo.h"

#include <memory>

#include "common/rng.h"
#include "nn/layers.h"

namespace deepeverest {
namespace nn {

ModelPtr MakeTinyMlp(int input_units, uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_unique<Model>("TinyMlp", Shape({input_units}));
  model->AddLayer(std::make_unique<Dense>("fc1", input_units, 16, &rng));
  model->AddLayer(std::make_unique<Relu>("relu1"));
  model->AddLayer(std::make_unique<Dense>("fc2", 16, 12, &rng));
  model->AddLayer(std::make_unique<Relu>("relu2"));
  model->AddLayer(std::make_unique<Dense>("fc3", 12, 8, &rng));
  model->AddLayer(std::make_unique<Relu>("relu3"));
  model->AddLayer(std::make_unique<Dense>("fc4", 8, 4, &rng));
  model->AddLayer(std::make_unique<Softmax>("softmax"));
  DE_CHECK(model->Finalize().ok());
  return model;
}

ModelPtr MakeMiniVgg(uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_unique<Model>("MiniVgg", Shape({32, 32, 3}));
  // Block 1: 32x32x8 (early activation layer, 8192 neurons).
  model->AddLayer(std::make_unique<Conv2D>("conv1", 3, 8, 3, &rng));
  model->AddLayer(std::make_unique<Relu>("relu1"));
  model->AddLayer(std::make_unique<MaxPool2D>("pool1"));
  // Block 2: 16x16x12 (3072 neurons).
  model->AddLayer(std::make_unique<Conv2D>("conv2", 8, 12, 3, &rng));
  model->AddLayer(std::make_unique<Relu>("relu2"));
  model->AddLayer(std::make_unique<MaxPool2D>("pool2"));
  // Block 3: 8x8x16 (mid activation layer, 1024 neurons).
  model->AddLayer(std::make_unique<Conv2D>("conv3", 12, 16, 3, &rng));
  model->AddLayer(std::make_unique<Relu>("relu3"));
  model->AddLayer(std::make_unique<MaxPool2D>("pool3"));
  // Block 4: 4x4x24 (384 neurons).
  model->AddLayer(std::make_unique<Conv2D>("conv4", 16, 24, 3, &rng));
  model->AddLayer(std::make_unique<Relu>("relu4"));
  model->AddLayer(std::make_unique<MaxPool2D>("pool4"));
  // Head: dense 64 (late activation layer).
  model->AddLayer(std::make_unique<Flatten>("flatten"));
  model->AddLayer(std::make_unique<Dense>("fc1", 2 * 2 * 24, 64, &rng));
  model->AddLayer(std::make_unique<Relu>("relu5"));
  model->AddLayer(std::make_unique<Dense>("fc2", 64, 10, &rng));
  model->AddLayer(std::make_unique<Softmax>("softmax"));
  DE_CHECK(model->Finalize().ok());
  return model;
}

ModelPtr MakeMiniResNet(uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_unique<Model>("MiniResNet", Shape({32, 32, 3}));
  // Stem: 32x32x8 (early activation layer).
  model->AddLayer(std::make_unique<Conv2D>("stem_conv", 3, 8, 3, &rng));
  model->AddLayer(std::make_unique<BatchNorm>("stem_bn", 8, &rng));
  model->AddLayer(std::make_unique<Relu>("stem_relu"));
  model->AddLayer(std::make_unique<MaxPool2D>("pool1"));
  // Stage 1: 16x16x8.
  model->AddLayer(std::make_unique<ResidualBlock>("block1", 8, 8, &rng));
  model->AddLayer(std::make_unique<MaxPool2D>("pool2"));
  // Stage 2: 8x8x16 (mid activation layer).
  model->AddLayer(std::make_unique<ResidualBlock>("block2", 8, 16, &rng));
  model->AddLayer(std::make_unique<MaxPool2D>("pool3"));
  // Stage 3: 4x4x32.
  model->AddLayer(std::make_unique<ResidualBlock>("block3", 16, 32, &rng));
  // Head.
  model->AddLayer(std::make_unique<GlobalAvgPool>("gap"));
  model->AddLayer(std::make_unique<Dense>("fc", 32, 10, &rng));
  model->AddLayer(std::make_unique<Softmax>("softmax"));
  DE_CHECK(model->Finalize().ok());
  return model;
}

}  // namespace nn
}  // namespace deepeverest
