#ifndef DEEPEVEREST_NN_LAYER_H_
#define DEEPEVEREST_NN_LAYER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace deepeverest {
namespace nn {

/// \brief Broad layer category. DeepEverest's evaluation distinguishes
/// activation layers (the queryable ones) from conv/bn/pool plumbing.
enum class LayerKind {
  kConv2D,
  kDense,
  kRelu,
  kMaxPool,
  kGlobalAvgPool,
  kBatchNorm,
  kFlatten,
  kResidualBlock,
  kSoftmax,
};

const char* LayerKindToString(LayerKind kind);

/// \brief One layer of a sequential model.
///
/// Layers are immutable after construction (weights are fixed at build time —
/// DeepEverest only ever queries trained, frozen models). Forward operates on
/// a single input; batching is the engine's job.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the output shape for `input` or errors if incompatible.
  virtual Result<Shape> OutputShape(const Shape& input) const = 0;

  /// Runs the layer. `out` is resized/overwritten.
  virtual Status Forward(const Tensor& input, Tensor* out) const = 0;

  /// Multiply-accumulate count for one input of shape `input`; drives the
  /// simulated-GPU cost model.
  virtual int64_t MacsFor(const Shape& input) const = 0;

  LayerKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

 protected:
  Layer(LayerKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}

 private:
  LayerKind kind_;
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace nn
}  // namespace deepeverest

#endif  // DEEPEVEREST_NN_LAYER_H_
