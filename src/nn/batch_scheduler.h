#ifndef DEEPEVEREST_NN_BATCH_SCHEDULER_H_
#define DEEPEVEREST_NN_BATCH_SCHEDULER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/qos.h"
#include "common/status.h"
#include "nn/inference.h"

namespace deepeverest {
namespace nn {

struct BatchSchedulerOptions {
  /// Device batch capacity. 0 uses the engine's batch_size (the
  /// throughput-optimal batch the whole system is configured around).
  int max_batch_size = 0;
  /// How long a partial batch waits for other queries' inputs before being
  /// flushed anyway, for kBatch-class requests (and for every request when
  /// `qos_aware` is off). The window trades a little latency for batch
  /// fill; it should stay well below one batch's device time.
  double linger_seconds = 5e-4;
  /// Linger for kInteractive requests. The default 0 means an interactive
  /// request never waits out a window: it is dispatched as soon as a
  /// dispatcher sees it, *sealing* any partial batch it joined (the batch
  /// launches immediately with whatever else is pending on that layer).
  double interactive_linger_seconds = 0.0;
  /// Linger for kBestEffort requests: background work waits longest, for
  /// maximally full batches.
  double best_effort_linger_seconds = 2e-3;
  /// Threads running coalesced batches against the engine. Each dispatcher
  /// models one device stream: with n dispatchers, n batches overlap their
  /// (simulated) device time, as n CUDA streams would.
  int num_dispatchers = 1;
  /// When false, the request QoS class is ignored for scheduling: every
  /// request lingers `linger_seconds` and ready layers dispatch purely
  /// oldest-head — the pre-QoS behaviour, kept as the control arm of the
  /// QoS benchmarks. Per-class stats are still recorded.
  bool qos_aware = true;
};

/// \brief Per-QoS-class scheduler counters (monotonic since construction).
struct BatchSchedulerClassStats {
  int64_t requests = 0;         // ComputeLayer calls of this class
  int64_t inputs_enqueued = 0;  // sum of those calls' request sizes
  int64_t inputs_dispatched = 0;
  /// Batches that carried at least one of this class's rows. A shared batch
  /// counts once for every class aboard.
  int64_t batches_joined = 0;

  /// Mean occupancy (in [0, 1]) of the device batches this class rode in.
  /// Interactive traffic is expected to run emptier (it seals batches);
  /// batch/best-effort traffic fuller (it lingers).
  double AverageFill(int batch_size) const {
    if (batches_joined <= 0 || batch_size <= 0) return 0.0;
    return static_cast<double>(inputs_dispatched) /
           (static_cast<double>(batches_joined) *
            static_cast<double>(batch_size));
  }
};

/// \brief Aggregate scheduler counters (monotonic since construction).
struct BatchSchedulerStats {
  int64_t requests = 0;          // ComputeLayer calls accepted
  int64_t inputs_enqueued = 0;   // sum of request sizes
  int64_t batches_dispatched = 0;
  int64_t inputs_dispatched = 0;
  int64_t shared_batches = 0;  // batches serving >1 request (cross-query fill)
  int64_t linger_flushes = 0;  // partial batches flushed by the linger window
  /// Partial batches launched early because an interactive request was
  /// aboard (the "seal" path; a subset of linger_flushes).
  int64_t sealed_by_interactive = 0;

  /// Counters split by the requests' QoS class, indexed by QosIndex().
  std::array<BatchSchedulerClassStats, kNumQosClasses> per_class{};

  /// Dispatched batches by occupancy fraction: bucket i counts batches
  /// whose fill was in (i/8, (i+1)/8]. A healthy batching setup shows mass
  /// in the top buckets; interactive sealing shows up as mass lower down.
  /// Exported at /v1/metrics as a Prometheus histogram.
  static constexpr int kFillBuckets = 8;
  std::array<int64_t, kFillBuckets> fill_histogram{};

  /// Mean batch occupancy in [0, 1]: how full the device lanes ran.
  double AverageFill(int batch_size) const {
    if (batches_dispatched <= 0 || batch_size <= 0) return 0.0;
    return static_cast<double>(inputs_dispatched) /
           (static_cast<double>(batches_dispatched) *
            static_cast<double>(batch_size));
  }
};

/// \brief Coalesces concurrent same-layer ComputeLayer calls into shared
/// device batches, QoS-aware.
///
/// Callers block in ComputeLayer while dispatcher threads drain per-layer
/// queues: a batch is launched as soon as a layer has max_batch_size inputs
/// pending, or when any pending request has lingered past its class's
/// linger window (partial flush). Interactive requests have a zero window
/// by default, so they flush immediately and seal whatever partial batch
/// they joined; batch/best-effort requests wait longer for fuller batches.
/// Among ready layers, dispatch prefers the layer carrying the most urgent
/// class, then the oldest head — so interactive inference never queues
/// behind a backlog of ready bulk layers.
/// Each caller receives exactly the rows it asked for and
/// an InferenceReceipt charging it its own inputs plus its occupancy share
/// of every shared launch — so per-query `inputs_run` is exact under any
/// interleaving, while shared batches drive `batches_run` and simulated GPU
/// seconds below what the queries would pay dispatching alone (the GPU cost
/// model bills a launch the same whether its lanes are full or idle).
///
/// Results are bit-identical to direct engine calls: the forward pass is
/// per-input pure, so batch composition cannot change any activation.
///
/// Thread-safety: ComputeLayer and stats() are safe to call concurrently.
/// The engine must outlive the scheduler; the destructor drains pending
/// work and joins the dispatchers.
class BatchingInferenceScheduler {
 public:
  /// Does not take ownership of `engine`.
  BatchingInferenceScheduler(InferenceEngine* engine,
                             BatchSchedulerOptions options = {});
  ~BatchingInferenceScheduler();

  BatchingInferenceScheduler(const BatchingInferenceScheduler&) = delete;
  BatchingInferenceScheduler& operator=(const BatchingInferenceScheduler&) =
      delete;

  /// Drop-in for InferenceEngine::ComputeLayer: computes layer `layer` for
  /// each input in `input_ids` (rows->at(i) corresponds to input_ids[i]),
  /// possibly sharing device batches with concurrent callers. Blocks until
  /// every requested row is available. This call's exact cost — fractional
  /// for shared launches — is *added* to `receipt` when non-null. `qos` is
  /// the calling query's class; it selects the linger window and the
  /// dispatch priority of the batches this call rides in (results are
  /// identical across classes — only latency and batch fill differ).
  Status ComputeLayer(const std::vector<uint32_t>& input_ids, int layer,
                      std::vector<std::vector<float>>* rows,
                      InferenceReceipt* receipt = nullptr,
                      QosClass qos = QosClass::kBatch);

  BatchSchedulerStats stats() const;

  int batch_size() const { return batch_size_; }
  const InferenceEngine& engine() const { return *engine_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One blocked ComputeLayer call. Lives on the caller's stack; the queue
  /// holds pointers only while ids remain undispatched, so a request may be
  /// out of the queue (fully dispatched) but not yet done (rows pending).
  struct Request {
    const std::vector<uint32_t>* ids = nullptr;
    std::vector<std::vector<float>>* rows = nullptr;
    InferenceReceipt receipt;
    size_t dispatched = 0;  // ids handed to some batch so far
    size_t completed = 0;   // ids whose rows (or failure) have resolved
    Status status;          // first error, if any
    bool done = false;
    QosClass qos = QosClass::kBatch;
    Clock::time_point arrival;
    /// arrival + the class linger window: when this request forces a
    /// partial flush of its layer.
    Clock::time_point flush_at;
  };

  struct LayerQueue {
    std::deque<Request*> requests;  // FIFO; front may be partially consumed
    size_t pending_inputs = 0;      // sum of undispatched ids
  };

  /// A request's contribution to one batch.
  struct Slice {
    Request* request;
    size_t src_begin;  // index into request->ids
    size_t count;
  };

  void DispatcherLoop();
  /// Pops up to batch_size_ pending ids of `layer` into a batch.
  void GatherBatchLocked(int layer, std::vector<uint32_t>* batch_ids,
                         std::vector<Slice>* slices) REQUIRES(mu_);
  /// Runs one gathered batch (mu_ is released around the engine call and
  /// reacquired before scattering rows + receipt shares back to the
  /// contributing requests, so mu_ is held on entry AND exit).
  void RunBatch(int layer, std::vector<uint32_t> batch_ids,
                std::vector<Slice> slices) REQUIRES(mu_);

  std::chrono::nanoseconds LingerFor(QosClass qos) const {
    return qos_aware_ ? linger_[QosIndex(qos)]
                      : linger_[QosIndex(QosClass::kBatch)];
  }

  InferenceEngine* engine_;
  // Derived from BatchSchedulerOptions at construction; the options struct
  // itself is not kept (nothing may change after the dispatchers start).
  int batch_size_;
  std::array<std::chrono::nanoseconds, kNumQosClasses> linger_;
  bool qos_aware_;

  mutable common::Mutex mu_;
  common::CondVar work_cv_;  // wakes dispatchers
  common::CondVar done_cv_;  // wakes blocked callers
  bool stopping_ GUARDED_BY(mu_) = false;
  std::map<int, LayerQueue> pending_ GUARDED_BY(mu_);
  BatchSchedulerStats stats_ GUARDED_BY(mu_);

  std::vector<std::thread> dispatchers_;
};

}  // namespace nn
}  // namespace deepeverest

#endif  // DEEPEVEREST_NN_BATCH_SCHEDULER_H_
