#include "nn/inference.h"

#include <chrono>
#include <thread>

#include "common/stopwatch.h"

namespace deepeverest {
namespace nn {

Status InferenceEngine::ComputeLayer(const std::vector<uint32_t>& input_ids,
                                     int layer,
                                     std::vector<std::vector<float>>* rows,
                                     InferenceReceipt* receipt) {
  rows->clear();
  rows->reserve(input_ids.size());
  if (input_ids.empty()) return Status::OK();
  const int64_t macs = model_->CumulativeMacs(layer);

  Stopwatch watch;
  size_t pos = 0;
  while (pos < input_ids.size()) {
    const size_t batch_end =
        std::min(pos + static_cast<size_t>(batch_size_), input_ids.size());
    const int64_t batch_n = static_cast<int64_t>(batch_end - pos);
    for (size_t i = pos; i < batch_end; ++i) {
      const uint32_t id = input_ids[i];
      if (id >= dataset_->size()) {
        return Status::OutOfRange("inputID " + std::to_string(id) +
                                  " out of range [0, " +
                                  std::to_string(dataset_->size()) + ")");
      }
      Tensor out;
      DE_RETURN_NOT_OK(model_->ForwardTo(dataset_->input(id), layer, &out));
      rows->push_back(std::move(out.vec()));
    }
    const double batch_seconds =
        cost_model_.BatchSeconds(batch_n, batch_size_, macs);
    if (simulate_device_latency_) {
      // Block for the modeled dispatch, without holding any lock: concurrent
      // callers overlap their device waits, as on a real accelerator.
      std::this_thread::sleep_for(std::chrono::duration<double>(batch_seconds));
    }
    if (receipt != nullptr) {
      receipt->inputs_run += batch_n;
      receipt->batches_run += 1.0;
      receipt->macs += batch_n * macs;
      receipt->simulated_gpu_seconds += batch_seconds;
    }
    {
      common::MutexLock lock(&stats_mu_);
      stats_.inputs_run += batch_n;
      stats_.batches_run += 1;
      stats_.macs += batch_n * macs;
      stats_.simulated_gpu_seconds += batch_seconds;
    }
    pos = batch_end;
  }
  common::MutexLock lock(&stats_mu_);
  stats_.wall_seconds += watch.ElapsedSeconds();
  return Status::OK();
}

Status InferenceEngine::ComputeAllLayers(uint32_t input_id,
                                         std::vector<Tensor>* outputs,
                                         InferenceReceipt* receipt) {
  if (input_id >= dataset_->size()) {
    return Status::OutOfRange("inputID " + std::to_string(input_id) +
                              " out of range [0, " +
                              std::to_string(dataset_->size()) + ")");
  }
  const int64_t macs = model_->CumulativeMacs(model_->num_layers() - 1);
  Stopwatch watch;
  DE_RETURN_NOT_OK(model_->ForwardAll(dataset_->input(input_id), outputs));
  const double batch_seconds = cost_model_.BatchSeconds(1, batch_size_, macs);
  if (simulate_device_latency_) {
    std::this_thread::sleep_for(std::chrono::duration<double>(batch_seconds));
  }
  if (receipt != nullptr) {
    receipt->inputs_run += 1;
    receipt->batches_run += 1.0;
    receipt->macs += macs;
    receipt->simulated_gpu_seconds += batch_seconds;
  }
  common::MutexLock lock(&stats_mu_);
  stats_.inputs_run += 1;
  stats_.batches_run += 1;
  stats_.macs += macs;
  stats_.simulated_gpu_seconds += batch_seconds;
  stats_.wall_seconds += watch.ElapsedSeconds();
  return Status::OK();
}

}  // namespace nn
}  // namespace deepeverest
