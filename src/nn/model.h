#ifndef DEEPEVEREST_NN_MODEL_H_
#define DEEPEVEREST_NN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nn/layer.h"

namespace deepeverest {
namespace nn {

/// \brief A frozen sequential DNN.
///
/// A Model owns an ordered list of layers and, after Finalize(), knows every
/// layer's output shape and cumulative inference cost. DeepEverest addresses
/// neurons as (layer index, flat element index within that layer's output).
class Model {
 public:
  Model(std::string name, Shape input_shape)
      : name_(std::move(name)), input_shape_(std::move(input_shape)) {}

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Appends a layer. Must be called before Finalize().
  void AddLayer(LayerPtr layer);

  /// Validates shapes layer-by-layer and precomputes per-layer geometry and
  /// cost. Must be called exactly once after the last AddLayer().
  Status Finalize();

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  bool finalized() const { return finalized_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(int i) const { return *layers_[static_cast<size_t>(i)]; }

  /// Output shape of layer `i` (Finalize() required).
  const Shape& layer_output_shape(int i) const;

  /// Number of neurons (scalar outputs) of layer `i`.
  int64_t NeuronCount(int layer) const {
    return layer_output_shape(layer).NumElements();
  }

  /// Multiply-accumulates required to compute layers [0, layer] for one
  /// input. Inference always starts at layer 0 (paper section 4.6: only
  /// queried layers are stored, so there is no partial starting point).
  int64_t CumulativeMacs(int layer) const;

  /// Indices of the queryable (ReLU / residual-output) layers, in order.
  /// The evaluation's "early/mid/late" layers are picked from this list.
  const std::vector<int>& activation_layers() const {
    return activation_layers_;
  }

  /// Runs the model through layer `upto_layer` (inclusive) and returns that
  /// layer's output.
  Status ForwardTo(const Tensor& input, int upto_layer, Tensor* out) const;

  /// Runs the full model once and captures every layer's output (used by
  /// preprocessing, which materialises all layers in a single pass).
  Status ForwardAll(const Tensor& input, std::vector<Tensor>* outputs) const;

 private:
  std::string name_;
  Shape input_shape_;
  bool finalized_ = false;
  std::vector<LayerPtr> layers_;
  std::vector<Shape> output_shapes_;
  std::vector<int64_t> cumulative_macs_;
  std::vector<int> activation_layers_;
};

using ModelPtr = std::unique_ptr<Model>;

}  // namespace nn
}  // namespace deepeverest

#endif  // DEEPEVEREST_NN_MODEL_H_
