#include "nn/layers.h"

#include <algorithm>
#include <cmath>

namespace deepeverest {
namespace nn {

const char* LayerKindToString(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2D:
      return "Conv2D";
    case LayerKind::kDense:
      return "Dense";
    case LayerKind::kRelu:
      return "Relu";
    case LayerKind::kMaxPool:
      return "MaxPool2D";
    case LayerKind::kGlobalAvgPool:
      return "GlobalAvgPool";
    case LayerKind::kBatchNorm:
      return "BatchNorm";
    case LayerKind::kFlatten:
      return "Flatten";
    case LayerKind::kResidualBlock:
      return "ResidualBlock";
    case LayerKind::kSoftmax:
      return "Softmax";
  }
  return "?";
}

namespace {

// He-normal initialisation: N(0, sqrt(2 / fan_in)).
void HeNormalInit(std::vector<float>* weights, int fan_in, Rng* rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& w : *weights) {
    w = static_cast<float>(rng->NextGaussian() * stddev);
  }
}

Status ExpectRank(const Shape& shape, int rank, const std::string& layer) {
  if (shape.rank() != rank) {
    return Status::InvalidArgument(layer + ": expected rank " +
                                   std::to_string(rank) + " input, got " +
                                   shape.ToString());
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------------

Conv2D::Conv2D(std::string name, int in_channels, int out_channels, int kernel,
               Rng* rng)
    : Layer(LayerKind::kConv2D, std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weights_(static_cast<size_t>(kernel) * kernel * in_channels *
               out_channels),
      bias_(static_cast<size_t>(out_channels), 0.0f) {
  DE_CHECK_GT(kernel, 0);
  DE_CHECK_EQ(kernel % 2, 1);  // "same" padding requires odd kernels.
  HeNormalInit(&weights_, kernel * kernel * in_channels, rng);
}

Result<Shape> Conv2D::OutputShape(const Shape& input) const {
  DE_RETURN_NOT_OK(ExpectRank(input, 3, name()));
  if (input.dim(2) != in_channels_) {
    return Status::InvalidArgument(name() + ": expected " +
                                   std::to_string(in_channels_) +
                                   " channels, got " + input.ToString());
  }
  return Shape({input.dim(0), input.dim(1), out_channels_});
}

Status Conv2D::Forward(const Tensor& input, Tensor* out) const {
  DE_ASSIGN_OR_RETURN(Shape out_shape, OutputShape(input.shape()));
  *out = Tensor(out_shape);
  const int64_t height = input.shape().dim(0);
  const int64_t width = input.shape().dim(1);
  const int ic = in_channels_;
  const int oc = out_channels_;
  const int pad = kernel_ / 2;
  const float* in = input.data();
  float* o = out->data();

  for (int64_t h = 0; h < height; ++h) {
    for (int64_t w = 0; w < width; ++w) {
      float* out_px = o + (h * width + w) * oc;
      for (int c = 0; c < oc; ++c) out_px[c] = bias_[static_cast<size_t>(c)];
      for (int kh = 0; kh < kernel_; ++kh) {
        const int64_t ih = h + kh - pad;
        if (ih < 0 || ih >= height) continue;
        for (int kw = 0; kw < kernel_; ++kw) {
          const int64_t iw = w + kw - pad;
          if (iw < 0 || iw >= width) continue;
          const float* in_px = in + (ih * width + iw) * ic;
          const float* wbase =
              weights_.data() +
              (static_cast<size_t>(kh) * kernel_ + kw) * ic * oc;
          for (int i = 0; i < ic; ++i) {
            const float v = in_px[i];
            const float* wrow = wbase + static_cast<size_t>(i) * oc;
            for (int c = 0; c < oc; ++c) out_px[c] += v * wrow[c];
          }
        }
      }
    }
  }
  return Status::OK();
}

int64_t Conv2D::MacsFor(const Shape& input) const {
  return input.dim(0) * input.dim(1) * kernel_ * kernel_ * in_channels_ *
         out_channels_;
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

Dense::Dense(std::string name, int in_units, int out_units, Rng* rng)
    : Layer(LayerKind::kDense, std::move(name)),
      in_units_(in_units),
      out_units_(out_units),
      weights_(static_cast<size_t>(in_units) * out_units),
      bias_(static_cast<size_t>(out_units), 0.0f) {
  HeNormalInit(&weights_, in_units, rng);
}

Result<Shape> Dense::OutputShape(const Shape& input) const {
  DE_RETURN_NOT_OK(ExpectRank(input, 1, name()));
  if (input.dim(0) != in_units_) {
    return Status::InvalidArgument(name() + ": expected " +
                                   std::to_string(in_units_) +
                                   " units, got " + input.ToString());
  }
  return Shape({out_units_});
}

Status Dense::Forward(const Tensor& input, Tensor* out) const {
  DE_ASSIGN_OR_RETURN(Shape out_shape, OutputShape(input.shape()));
  *out = Tensor(out_shape);
  float* o = out->data();
  for (int c = 0; c < out_units_; ++c) o[c] = bias_[static_cast<size_t>(c)];
  const float* in = input.data();
  for (int i = 0; i < in_units_; ++i) {
    const float v = in[i];
    const float* wrow = weights_.data() + static_cast<size_t>(i) * out_units_;
    for (int c = 0; c < out_units_; ++c) o[c] += v * wrow[c];
  }
  return Status::OK();
}

int64_t Dense::MacsFor(const Shape&) const {
  return static_cast<int64_t>(in_units_) * out_units_;
}

// ---------------------------------------------------------------------------
// Relu
// ---------------------------------------------------------------------------

Result<Shape> Relu::OutputShape(const Shape& input) const { return input; }

Status Relu::Forward(const Tensor& input, Tensor* out) const {
  *out = input;
  for (float& v : out->vec()) v = std::max(v, 0.0f);
  return Status::OK();
}

int64_t Relu::MacsFor(const Shape& input) const { return input.NumElements(); }

// ---------------------------------------------------------------------------
// MaxPool2D
// ---------------------------------------------------------------------------

Result<Shape> MaxPool2D::OutputShape(const Shape& input) const {
  DE_RETURN_NOT_OK(ExpectRank(input, 3, name()));
  if (input.dim(0) % 2 != 0 || input.dim(1) % 2 != 0) {
    return Status::InvalidArgument(name() + ": spatial dims must be even, got " +
                                   input.ToString());
  }
  return Shape({input.dim(0) / 2, input.dim(1) / 2, input.dim(2)});
}

Status MaxPool2D::Forward(const Tensor& input, Tensor* out) const {
  DE_ASSIGN_OR_RETURN(Shape out_shape, OutputShape(input.shape()));
  *out = Tensor(out_shape);
  const int64_t oh = out_shape.dim(0);
  const int64_t ow = out_shape.dim(1);
  const int64_t c = out_shape.dim(2);
  for (int64_t h = 0; h < oh; ++h) {
    for (int64_t w = 0; w < ow; ++w) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float a = input.At(2 * h, 2 * w, ch);
        const float b = input.At(2 * h, 2 * w + 1, ch);
        const float d = input.At(2 * h + 1, 2 * w, ch);
        const float e = input.At(2 * h + 1, 2 * w + 1, ch);
        out->At(h, w, ch) = std::max(std::max(a, b), std::max(d, e));
      }
    }
  }
  return Status::OK();
}

int64_t MaxPool2D::MacsFor(const Shape& input) const {
  return input.NumElements();
}

// ---------------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------------

Result<Shape> GlobalAvgPool::OutputShape(const Shape& input) const {
  DE_RETURN_NOT_OK(ExpectRank(input, 3, name()));
  return Shape({input.dim(2)});
}

Status GlobalAvgPool::Forward(const Tensor& input, Tensor* out) const {
  DE_ASSIGN_OR_RETURN(Shape out_shape, OutputShape(input.shape()));
  *out = Tensor(out_shape);
  const int64_t hw = input.shape().dim(0) * input.shape().dim(1);
  const int64_t c = input.shape().dim(2);
  const float* in = input.data();
  float* o = out->data();
  for (int64_t i = 0; i < hw; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) o[ch] += in[i * c + ch];
  }
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t ch = 0; ch < c; ++ch) o[ch] *= inv;
  return Status::OK();
}

int64_t GlobalAvgPool::MacsFor(const Shape& input) const {
  return input.NumElements();
}

// ---------------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------------

BatchNorm::BatchNorm(std::string name, int channels, Rng* rng)
    : Layer(LayerKind::kBatchNorm, std::move(name)),
      channels_(channels),
      scale_(static_cast<size_t>(channels)),
      shift_(static_cast<size_t>(channels)) {
  // Frozen statistics: scale around 1, shift around 0, as a trained and
  // frozen BN layer would be after folding running statistics.
  for (int c = 0; c < channels; ++c) {
    scale_[static_cast<size_t>(c)] =
        1.0f + 0.2f * static_cast<float>(rng->NextGaussian());
    shift_[static_cast<size_t>(c)] =
        0.1f * static_cast<float>(rng->NextGaussian());
  }
}

Result<Shape> BatchNorm::OutputShape(const Shape& input) const {
  DE_RETURN_NOT_OK(ExpectRank(input, 3, name()));
  if (input.dim(2) != channels_) {
    return Status::InvalidArgument(name() + ": expected " +
                                   std::to_string(channels_) +
                                   " channels, got " + input.ToString());
  }
  return input;
}

Status BatchNorm::Forward(const Tensor& input, Tensor* out) const {
  DE_RETURN_NOT_OK(OutputShape(input.shape()).status());
  *out = input;
  const int64_t hw = input.shape().dim(0) * input.shape().dim(1);
  float* o = out->data();
  for (int64_t i = 0; i < hw; ++i) {
    for (int c = 0; c < channels_; ++c) {
      float& v = o[i * channels_ + c];
      v = v * scale_[static_cast<size_t>(c)] + shift_[static_cast<size_t>(c)];
    }
  }
  return Status::OK();
}

int64_t BatchNorm::MacsFor(const Shape& input) const {
  return input.NumElements();
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

Result<Shape> Flatten::OutputShape(const Shape& input) const {
  return Shape({input.NumElements()});
}

Status Flatten::Forward(const Tensor& input, Tensor* out) const {
  *out = Tensor(Shape({input.NumElements()}), input.vec());
  return Status::OK();
}

int64_t Flatten::MacsFor(const Shape&) const { return 0; }

// ---------------------------------------------------------------------------
// ResidualBlock
// ---------------------------------------------------------------------------

ResidualBlock::ResidualBlock(std::string name, int in_channels,
                             int out_channels, Rng* rng)
    : Layer(LayerKind::kResidualBlock, name),
      in_channels_(in_channels),
      out_channels_(out_channels),
      conv1_(name + "/conv1", in_channels, out_channels, 3, rng),
      bn1_(name + "/bn1", out_channels, rng),
      conv2_(name + "/conv2", out_channels, out_channels, 3, rng),
      bn2_(name + "/bn2", out_channels, rng) {
  if (in_channels != out_channels) {
    projection_ = std::make_unique<Conv2D>(name + "/proj", in_channels,
                                           out_channels, 1, rng);
  }
}

Result<Shape> ResidualBlock::OutputShape(const Shape& input) const {
  DE_RETURN_NOT_OK(ExpectRank(input, 3, name()));
  if (input.dim(2) != in_channels_) {
    return Status::InvalidArgument(name() + ": expected " +
                                   std::to_string(in_channels_) +
                                   " channels, got " + input.ToString());
  }
  return Shape({input.dim(0), input.dim(1), out_channels_});
}

Status ResidualBlock::Forward(const Tensor& input, Tensor* out) const {
  DE_RETURN_NOT_OK(OutputShape(input.shape()).status());
  Tensor t1, t2;
  DE_RETURN_NOT_OK(conv1_.Forward(input, &t1));
  DE_RETURN_NOT_OK(bn1_.Forward(t1, &t2));
  for (float& v : t2.vec()) v = std::max(v, 0.0f);
  DE_RETURN_NOT_OK(conv2_.Forward(t2, &t1));
  DE_RETURN_NOT_OK(bn2_.Forward(t1, &t2));

  Tensor skip;
  const Tensor* skip_ptr = &input;
  if (projection_ != nullptr) {
    DE_RETURN_NOT_OK(projection_->Forward(input, &skip));
    skip_ptr = &skip;
  }
  float* o = t2.data();
  const float* s = skip_ptr->data();
  const int64_t n = t2.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    o[i] = std::max(o[i] + s[i], 0.0f);  // add skip, then relu
  }
  *out = std::move(t2);
  return Status::OK();
}

int64_t ResidualBlock::MacsFor(const Shape& input) const {
  const Shape mid({input.dim(0), input.dim(1), out_channels_});
  int64_t macs = conv1_.MacsFor(input) + bn1_.MacsFor(mid) +
                 conv2_.MacsFor(mid) + bn2_.MacsFor(mid) + mid.NumElements();
  if (projection_ != nullptr) macs += projection_->MacsFor(input);
  return macs;
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

Result<Shape> Softmax::OutputShape(const Shape& input) const {
  DE_RETURN_NOT_OK(ExpectRank(input, 1, name()));
  return input;
}

Status Softmax::Forward(const Tensor& input, Tensor* out) const {
  DE_RETURN_NOT_OK(OutputShape(input.shape()).status());
  *out = input;
  float max_v = out->vec()[0];
  for (float v : out->vec()) max_v = std::max(max_v, v);
  double sum = 0.0;
  for (float& v : out->vec()) {
    v = std::exp(v - max_v);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : out->vec()) v *= inv;
  return Status::OK();
}

int64_t Softmax::MacsFor(const Shape& input) const {
  return input.NumElements();
}

}  // namespace nn
}  // namespace deepeverest
