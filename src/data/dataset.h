#ifndef DEEPEVEREST_DATA_DATASET_H_
#define DEEPEVEREST_DATA_DATASET_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "tensor/tensor.h"

namespace deepeverest {
namespace data {

/// \brief An in-memory, append-only input dataset.
///
/// The paper pre-loads the full input set into memory for all experiments; we
/// additionally support live appends so the ingest path can grow the dataset
/// while queries run. Inputs are addressed by dense `inputID` in [0, size).
///
/// Concurrency contract: `Add` may run concurrently with any number of
/// readers (`input`, `label`, `size`). Readers only ever observe a prefix of
/// fully-written inputs: storage is a fixed table of doubling-capacity chunks
/// (so existing elements never move on growth) and `size_` is published with
/// release ordering only after the new element is in place. Concurrent `Add`
/// calls are serialized internally. Moving a Dataset is NOT thread-safe and
/// must not overlap with any other access.
class Dataset {
 public:
  Dataset(std::string name, Shape input_shape)
      : name_(std::move(name)),
        input_shape_(std::move(input_shape)),
        add_mu_(new common::Mutex()) {}

  Dataset(Dataset&& other) noexcept
      : name_(std::move(other.name_)),
        input_shape_(std::move(other.input_shape_)),
        chunks_(std::move(other.chunks_)),
        add_mu_(std::move(other.add_mu_)) {
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other.size_.store(0, std::memory_order_relaxed);
  }
  Dataset& operator=(Dataset&& other) noexcept {
    if (this != &other) {
      name_ = std::move(other.name_);
      input_shape_ = std::move(other.input_shape_);
      chunks_ = std::move(other.chunks_);
      add_mu_ = std::move(other.add_mu_);
      size_.store(other.size_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      other.size_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Appends one input; shape must match. Returns the new input's ID. Safe to
  /// call while readers are active; the new input becomes visible atomically.
  uint32_t Add(Tensor input, int label) {
    DE_CHECK(input.shape() == input_shape_)
        << "input shape mismatch: " << input.shape().ToString() << " vs "
        << input_shape_.ToString();
    common::MutexLock lock(add_mu_.get());
    const uint32_t id = size_.load(std::memory_order_relaxed);
    DE_CHECK_LT(id, Capacity()) << "dataset full";
    const int chunk = ChunkFor(id);
    const uint32_t offset = OffsetFor(id, chunk);
    if (offset == 0) {
      auto fresh = std::make_unique<Chunk>();
      fresh->inputs.resize(ChunkCapacity(chunk));
      fresh->labels.resize(ChunkCapacity(chunk), 0);
      chunks_[chunk] = std::move(fresh);
    }
    chunks_[chunk]->inputs[offset] = std::move(input);
    chunks_[chunk]->labels[offset] = label;
    size_.store(id + 1, std::memory_order_release);
    return id;
  }

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  uint32_t size() const { return size_.load(std::memory_order_acquire); }

  const Tensor& input(uint32_t id) const {
    DE_CHECK_LT(id, size());
    const int chunk = ChunkFor(id);
    return chunks_[chunk]->inputs[OffsetFor(id, chunk)];
  }
  int label(uint32_t id) const {
    DE_CHECK_LT(id, size());
    const int chunk = ChunkFor(id);
    return chunks_[chunk]->labels[OffsetFor(id, chunk)];
  }

 private:
  // Chunk c holds kBaseChunk << c elements and starts at global id
  // kBaseChunk * ((1 << c) - 1). The chunk table itself never reallocates, so
  // a reader holding a reference is never invalidated by a concurrent Add.
  static constexpr uint32_t kBaseChunk = 64;
  static constexpr int kMaxChunks = 26;  // > 4e9 inputs

  struct Chunk {
    std::vector<Tensor> inputs;
    std::vector<int> labels;
  };

  static constexpr uint32_t ChunkCapacity(int chunk) {
    return kBaseChunk << chunk;
  }
  static constexpr uint64_t Capacity() {
    return static_cast<uint64_t>(kBaseChunk) *
           ((uint64_t{1} << kMaxChunks) - 1);
  }
  static int ChunkFor(uint32_t id) {
    const uint32_t v = id / kBaseChunk + 1;
    return 31 - __builtin_clz(v);
  }
  static uint32_t OffsetFor(uint32_t id, int chunk) {
    return id - kBaseChunk * ((uint32_t{1} << chunk) - 1);
  }

  std::string name_;
  Shape input_shape_;
  std::array<std::unique_ptr<Chunk>, kMaxChunks> chunks_;
  std::atomic<uint32_t> size_{0};
  std::unique_ptr<common::Mutex> add_mu_;
};

/// \brief Configuration for the synthetic image generator.
struct SyntheticImageConfig {
  uint32_t num_inputs = 1000;
  int height = 32;
  int width = 32;
  int channels = 3;
  int num_classes = 10;
  /// Standard deviation of per-pixel Gaussian noise added to the class
  /// pattern; larger values make classes overlap more.
  float noise_stddev = 0.35f;
  /// Standard deviation (log-space) of a per-input global contrast factor.
  /// Natural images vary in brightness/contrast, which makes a CNN's
  /// activations positively correlated across neurons — the property that
  /// lets threshold-style algorithms prune aggressively on real data. 0
  /// disables it.
  float contrast_log_stddev = 0.8f;
  uint64_t seed = 7;
};

/// \brief Generates a deterministic, class-structured synthetic image dataset.
///
/// Substitutes for CIFAR10/ImageNet (unavailable offline). Each class has a
/// smooth low-frequency pattern; each input is its class pattern plus noise
/// and a randomly placed bright blob, so nearest-neighbour structure in
/// activation space is non-trivial (intra-class inputs are closer than
/// inter-class ones) and post-ReLU activation distributions are skewed —
/// the property DeepEverest's equi-depth partitioning exploits.
Dataset MakeSyntheticImages(const SyntheticImageConfig& config);

}  // namespace data
}  // namespace deepeverest

#endif  // DEEPEVEREST_DATA_DATASET_H_
