#ifndef DEEPEVEREST_DATA_DATASET_H_
#define DEEPEVEREST_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace deepeverest {
namespace data {

/// \brief An in-memory input dataset.
///
/// The paper pre-loads the full input set into memory for all experiments;
/// we do the same. Inputs are addressed by dense `inputID` in [0, size).
class Dataset {
 public:
  Dataset(std::string name, Shape input_shape)
      : name_(std::move(name)), input_shape_(std::move(input_shape)) {}

  /// Appends one input; shape must match. Returns the new input's ID.
  uint32_t Add(Tensor input, int label) {
    DE_CHECK(input.shape() == input_shape_)
        << "input shape mismatch: " << input.shape().ToString() << " vs "
        << input_shape_.ToString();
    inputs_.push_back(std::move(input));
    labels_.push_back(label);
    return static_cast<uint32_t>(inputs_.size() - 1);
  }

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  uint32_t size() const { return static_cast<uint32_t>(inputs_.size()); }

  const Tensor& input(uint32_t id) const {
    DE_CHECK_LT(id, size());
    return inputs_[id];
  }
  int label(uint32_t id) const {
    DE_CHECK_LT(id, size());
    return labels_[id];
  }

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<Tensor> inputs_;
  std::vector<int> labels_;
};

/// \brief Configuration for the synthetic image generator.
struct SyntheticImageConfig {
  uint32_t num_inputs = 1000;
  int height = 32;
  int width = 32;
  int channels = 3;
  int num_classes = 10;
  /// Standard deviation of per-pixel Gaussian noise added to the class
  /// pattern; larger values make classes overlap more.
  float noise_stddev = 0.35f;
  /// Standard deviation (log-space) of a per-input global contrast factor.
  /// Natural images vary in brightness/contrast, which makes a CNN's
  /// activations positively correlated across neurons — the property that
  /// lets threshold-style algorithms prune aggressively on real data. 0
  /// disables it.
  float contrast_log_stddev = 0.8f;
  uint64_t seed = 7;
};

/// \brief Generates a deterministic, class-structured synthetic image dataset.
///
/// Substitutes for CIFAR10/ImageNet (unavailable offline). Each class has a
/// smooth low-frequency pattern; each input is its class pattern plus noise
/// and a randomly placed bright blob, so nearest-neighbour structure in
/// activation space is non-trivial (intra-class inputs are closer than
/// inter-class ones) and post-ReLU activation distributions are skewed —
/// the property DeepEverest's equi-depth partitioning exploits.
Dataset MakeSyntheticImages(const SyntheticImageConfig& config);

}  // namespace data
}  // namespace deepeverest

#endif  // DEEPEVEREST_DATA_DATASET_H_
