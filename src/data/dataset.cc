#include "data/dataset.h"

#include <cmath>

#include "common/rng.h"

namespace deepeverest {
namespace data {

namespace {

/// Smooth per-class base pattern: a sum of three low-frequency sinusoids
/// whose frequencies and phases are drawn per (class, channel).
struct ClassPattern {
  struct Wave {
    float fx, fy, phase, amplitude;
  };
  std::vector<Wave> waves;  // 3 waves per channel, [channel*3 + i]

  float Eval(int channel, float x, float y) const {
    float v = 0.0f;
    for (int i = 0; i < 3; ++i) {
      const Wave& w = waves[static_cast<size_t>(channel * 3 + i)];
      v += w.amplitude * std::sin(w.fx * x + w.fy * y + w.phase);
    }
    return v;
  }
};

ClassPattern MakePattern(int channels, Rng* rng) {
  ClassPattern p;
  p.waves.resize(static_cast<size_t>(channels) * 3);
  for (auto& w : p.waves) {
    w.fx = rng->NextFloat(0.5f, 4.0f);
    w.fy = rng->NextFloat(0.5f, 4.0f);
    w.phase = rng->NextFloat(0.0f, 6.2831853f);
    w.amplitude = rng->NextFloat(0.2f, 0.6f);
  }
  return p;
}

}  // namespace

Dataset MakeSyntheticImages(const SyntheticImageConfig& config) {
  DE_CHECK_GT(config.num_inputs, 0u);
  DE_CHECK_GT(config.num_classes, 0);
  Rng rng(config.seed);
  const Shape shape({config.height, config.width, config.channels});
  Dataset dataset("synthetic-" + std::to_string(config.num_inputs), shape);

  std::vector<ClassPattern> patterns;
  patterns.reserve(static_cast<size_t>(config.num_classes));
  for (int c = 0; c < config.num_classes; ++c) {
    patterns.push_back(MakePattern(config.channels, &rng));
  }

  const float inv_h = 1.0f / static_cast<float>(config.height);
  const float inv_w = 1.0f / static_cast<float>(config.width);
  for (uint32_t i = 0; i < config.num_inputs; ++i) {
    const int label = static_cast<int>(rng.NextUint64(
        static_cast<uint64_t>(config.num_classes)));
    const ClassPattern& pattern = patterns[static_cast<size_t>(label)];
    // A per-input bright blob makes individual inputs distinguishable even
    // within a class (this is what "maximally activates" localised neurons).
    const float blob_x = rng.NextFloat(0.1f, 0.9f);
    const float blob_y = rng.NextFloat(0.1f, 0.9f);
    const float blob_r = rng.NextFloat(0.05f, 0.25f);
    const float blob_gain = rng.NextFloat(0.5f, 1.5f);
    const float contrast = std::exp(
        config.contrast_log_stddev * static_cast<float>(rng.NextGaussian()));

    Tensor img(shape);
    for (int h = 0; h < config.height; ++h) {
      for (int w = 0; w < config.width; ++w) {
        const float y = static_cast<float>(h) * inv_h;
        const float x = static_cast<float>(w) * inv_w;
        const float dx = x - blob_x;
        const float dy = y - blob_y;
        const float blob =
            blob_gain * std::exp(-(dx * dx + dy * dy) / (blob_r * blob_r));
        for (int c = 0; c < config.channels; ++c) {
          const float noise = config.noise_stddev *
                              static_cast<float>(rng.NextGaussian());
          img.At(h, w, c) =
              contrast * (pattern.Eval(c, x * 6.2831853f, y * 6.2831853f) +
                          blob + noise);
        }
      }
    }
    dataset.Add(std::move(img), label);
  }
  return dataset;
}

}  // namespace data
}  // namespace deepeverest
