#include "storage/file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace deepeverest {
namespace storage {

namespace fs = std::filesystem;

Result<FileStore> FileStore::Open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IOError("cannot create store root '" + root +
                           "': " + ec.message());
  }
  return FileStore(root);
}

std::string FileStore::PathFor(const std::string& key) const {
  return root_ + "/" + key;
}

Status FileStore::Write(const std::string& key,
                        const std::vector<uint8_t>& data, bool sync) {
  const std::string path = PathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Status::IOError("cannot create parent dirs for '" + key +
                           "': " + ec.message());
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open('" + path + "') failed: " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("write('" + path + "') failed: " +
                             std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fsync('" + path + "') failed: " +
                           std::strerror(err));
  }
  if (::close(fd) != 0) {
    return Status::IOError("close('" + path + "') failed: " +
                           std::strerror(errno));
  }
  bytes_written_ += data.size();
  return Status::OK();
}

Status FileStore::WriteAtomic(const std::string& key,
                              const std::vector<uint8_t>& data, bool sync) {
  const std::string tmp_key = key + ".tmp";
  DE_RETURN_NOT_OK(Write(tmp_key, data, sync));
  return Rename(tmp_key, key);
}

Status FileStore::Append(const std::string& key,
                         const std::vector<uint8_t>& data, bool sync) {
  const std::string path = PathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Status::IOError("cannot create parent dirs for '" + key +
                           "': " + ec.message());
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open('" + path + "') failed: " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("append('" + path + "') failed: " +
                             std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fsync('" + path + "') failed: " +
                           std::strerror(err));
  }
  if (::close(fd) != 0) {
    return Status::IOError("close('" + path + "') failed: " +
                           std::strerror(errno));
  }
  bytes_written_ += data.size();
  return Status::OK();
}

Status FileStore::Rename(const std::string& from, const std::string& to) {
  const std::string from_path = PathFor(from);
  const std::string to_path = PathFor(to);
  std::error_code ec;
  fs::create_directories(fs::path(to_path).parent_path(), ec);
  if (ec) {
    return Status::IOError("cannot create parent dirs for '" + to +
                           "': " + ec.message());
  }
  if (::rename(from_path.c_str(), to_path.c_str()) != 0) {
    return Status::IOError("rename('" + from + "' -> '" + to +
                           "') failed: " + std::strerror(errno));
  }
  // Make the rename itself durable: fsync the destination directory so the
  // new directory entry survives a crash.
  const std::string dir = fs::path(to_path).parent_path().string();
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> FileStore::Read(const std::string& key) const {
  const std::string path = PathFor(key);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such key: " + key);
    return Status::IOError("open('" + path + "') failed: " +
                           std::strerror(errno));
  }
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) {
    ::close(fd);
    return Status::IOError("stat('" + path + "') failed: " + ec.message());
  }
  std::vector<uint8_t> data(size);
  size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::read(fd, data.data() + got, data.size() - got);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("read('" + path + "') failed: " +
                             std::strerror(err));
    }
    if (n == 0) break;  // truncated concurrently; return what we have
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  data.resize(got);
  bytes_read_ += got;
  return data;
}

bool FileStore::Exists(const std::string& key) const {
  std::error_code ec;
  return fs::exists(PathFor(key), ec);
}

Status FileStore::Remove(const std::string& key) {
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  if (ec) {
    return Status::IOError("remove('" + key + "') failed: " + ec.message());
  }
  return Status::OK();
}

Result<uint64_t> FileStore::SizeOf(const std::string& key) const {
  std::error_code ec;
  const uint64_t size = fs::file_size(PathFor(key), ec);
  if (ec) return Status::NotFound("no such key: " + key);
  return size;
}

Result<uint64_t> FileStore::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file(ec)) total += it->file_size(ec);
  }
  if (ec) return Status::IOError("walk('" + root_ + "') failed: " +
                                 ec.message());
  return total;
}

Result<std::vector<std::string>> FileStore::ListKeys() const {
  std::vector<std::string> keys;
  std::error_code ec;
  const fs::path root_path(root_);
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file(ec)) {
      keys.push_back(fs::relative(it->path(), root_path, ec).string());
    }
  }
  if (ec) return Status::IOError("walk('" + root_ + "') failed: " +
                                 ec.message());
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status FileStore::Clear() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    fs::remove_all(entry.path(), ec);
    if (ec) {
      return Status::IOError("clear('" + root_ + "') failed: " + ec.message());
    }
  }
  return Status::OK();
}

Result<std::string> MakeTempDir(const std::string& tag) {
  const char* base_env = std::getenv("TMPDIR");
  const std::string base = base_env != nullptr ? base_env : "/tmp";
  std::string templ = base + "/deepeverest-" + tag + "-XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IOError("mkdtemp failed: " + std::string(strerror(errno)));
  }
  return std::string(buf.data());
}

}  // namespace storage
}  // namespace deepeverest
