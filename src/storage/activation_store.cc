#include "storage/activation_store.h"

#include "common/serde.h"

namespace deepeverest {
namespace storage {

namespace {
constexpr uint32_t kMagic = 0xDEE7AC75;  // "DeepEverest activations"
}  // namespace

std::string ActivationStore::KeyFor(const std::string& model_name, int layer) {
  return "activations/" + model_name + "/layer_" + std::to_string(layer) +
         ".bin";
}

Status ActivationStore::Save(const std::string& model_name, int layer,
                             const LayerActivationMatrix& matrix, bool sync) {
  if (matrix.values.size() !=
      static_cast<size_t>(matrix.num_inputs) * matrix.num_neurons) {
    return Status::InvalidArgument("activation matrix geometry mismatch");
  }
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(matrix.num_inputs);
  writer.WriteU64(matrix.num_neurons);
  writer.WriteF32Vector(matrix.values);
  return store_->Write(KeyFor(model_name, layer), writer.buffer(), sync);
}

Result<LayerActivationMatrix> ActivationStore::Load(
    const std::string& model_name, int layer) const {
  DE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                      store_->Read(KeyFor(model_name, layer)));
  BinaryReader reader(bytes);
  uint32_t magic = 0;
  DE_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::IOError("bad magic in activation file for layer " +
                           std::to_string(layer));
  }
  LayerActivationMatrix matrix;
  DE_RETURN_NOT_OK(reader.ReadU32(&matrix.num_inputs));
  DE_RETURN_NOT_OK(reader.ReadU64(&matrix.num_neurons));
  DE_RETURN_NOT_OK(reader.ReadF32Vector(&matrix.values));
  if (matrix.values.size() !=
      static_cast<size_t>(matrix.num_inputs) * matrix.num_neurons) {
    return Status::IOError("corrupt activation file for layer " +
                           std::to_string(layer));
  }
  return matrix;
}

bool ActivationStore::Contains(const std::string& model_name,
                               int layer) const {
  return store_->Exists(KeyFor(model_name, layer));
}

Status ActivationStore::Remove(const std::string& model_name, int layer) {
  return store_->Remove(KeyFor(model_name, layer));
}

uint64_t ActivationStore::PersistedBytes(uint32_t num_inputs,
                                         uint64_t num_neurons) {
  // magic + num_inputs + num_neurons + vector length prefix + payload.
  return 4 + 4 + 8 + 8 + static_cast<uint64_t>(num_inputs) * num_neurons * 4;
}

}  // namespace storage
}  // namespace deepeverest
