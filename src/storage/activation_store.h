#ifndef DEEPEVEREST_STORAGE_ACTIVATION_STORE_H_
#define DEEPEVEREST_STORAGE_ACTIVATION_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace storage {

/// \brief Dense activation matrix of one layer: nInputs rows x nNeurons cols.
///
/// Row i is the flat activation vector of inputID i. This is the unit of
/// materialisation used by PreprocessAll and the disk caches: one file per
/// layer, float32, uncompressed (exactly the paper's "full materialization"
/// storage cost of 4 bytes per activation).
struct LayerActivationMatrix {
  uint32_t num_inputs = 0;
  uint64_t num_neurons = 0;
  std::vector<float> values;  // row-major, num_inputs * num_neurons

  float At(uint32_t input_id, uint64_t neuron) const {
    return values[static_cast<size_t>(input_id) * num_neurons + neuron];
  }
  const float* Row(uint32_t input_id) const {
    return values.data() + static_cast<size_t>(input_id) * num_neurons;
  }
  float* MutableRow(uint32_t input_id) {
    return values.data() + static_cast<size_t>(input_id) * num_neurons;
  }

  /// Allocates a zeroed matrix.
  static LayerActivationMatrix Make(uint32_t num_inputs, uint64_t num_neurons) {
    LayerActivationMatrix m;
    m.num_inputs = num_inputs;
    m.num_neurons = num_neurons;
    m.values.assign(static_cast<size_t>(num_inputs) * num_neurons, 0.0f);
    return m;
  }
};

/// \brief Persists/loads per-layer activation matrices in a FileStore.
class ActivationStore {
 public:
  /// Does not take ownership; `store` must outlive this object.
  explicit ActivationStore(FileStore* store) : store_(store) {}

  /// Key under which a layer's activations are stored.
  static std::string KeyFor(const std::string& model_name, int layer);

  Status Save(const std::string& model_name, int layer,
              const LayerActivationMatrix& matrix, bool sync = false);

  Result<LayerActivationMatrix> Load(const std::string& model_name,
                                     int layer) const;

  bool Contains(const std::string& model_name, int layer) const;

  Status Remove(const std::string& model_name, int layer);

  /// On-disk payload size for a matrix of this geometry (header + floats).
  static uint64_t PersistedBytes(uint32_t num_inputs, uint64_t num_neurons);

 private:
  FileStore* store_;
};

}  // namespace storage
}  // namespace deepeverest

#endif  // DEEPEVEREST_STORAGE_ACTIVATION_STORE_H_
