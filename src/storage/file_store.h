#ifndef DEEPEVEREST_STORAGE_FILE_STORE_H_
#define DEEPEVEREST_STORAGE_FILE_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace deepeverest {
namespace storage {

/// \brief A flat key -> blob store backed by files under a root directory.
///
/// All on-disk artifacts (NPI/MAI indexes, materialised activations, cached
/// layers) live in a FileStore so storage consumption can be measured
/// exactly; TotalBytes() is what the experiments report as "storage".
/// Keys may contain '/' to create subdirectories.
///
/// Thread-safety: concurrent Read/Write/Exists/SizeOf calls are safe as
/// long as no two writers target the same key at once (IndexManager's
/// per-layer build mutex guarantees that for index keys). Traffic counters
/// are atomic. Moving a store concurrently with use is not supported.
class FileStore {
 public:
  /// Creates (if needed) and opens the store rooted at `root`.
  static Result<FileStore> Open(const std::string& root);

  FileStore(FileStore&& other) noexcept
      : root_(std::move(other.root_)),
        bytes_written_(other.bytes_written_.load()),
        bytes_read_(other.bytes_read_.load()) {}
  FileStore& operator=(FileStore&& other) noexcept {
    root_ = std::move(other.root_);
    bytes_written_.store(other.bytes_written_.load());
    bytes_read_.store(other.bytes_read_.load());
    return *this;
  }
  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  const std::string& root() const { return root_; }

  /// Writes (replacing) `key` with `data`. When `sync` is true the data is
  /// flushed to the device before returning (the paper force-writes when
  /// timing persistence, Figure 10).
  Status Write(const std::string& key, const std::vector<uint8_t>& data,
               bool sync = false);

  /// Crash-safe replacement of `key`: writes `<key>.tmp`, fsyncs it, renames
  /// it over `key`, then fsyncs the parent directory. After a crash at any
  /// point the reader sees either the old bytes or the new bytes, never a
  /// truncated mix (a stray `<key>.tmp` may remain and is ignored/overwritten
  /// by the next writer).
  Status WriteAtomic(const std::string& key, const std::vector<uint8_t>& data,
                     bool sync = true);

  /// Appends `data` to `key`, creating it if absent. When `sync` is true the
  /// appended bytes are flushed to the device before returning. A crash mid-
  /// append can leave a torn tail; readers of append-only logs must frame and
  /// checksum their records (see persist::IngestLog).
  Status Append(const std::string& key, const std::vector<uint8_t>& data,
                bool sync = false);

  /// Atomically renames `from` to `to` (replacing `to` if present) and fsyncs
  /// the destination's parent directory so the rename itself is durable.
  Status Rename(const std::string& from, const std::string& to);

  Result<std::vector<uint8_t>> Read(const std::string& key) const;

  bool Exists(const std::string& key) const;

  /// Removes `key`; OK if it does not exist.
  Status Remove(const std::string& key);

  /// Size in bytes of one key, or NotFound.
  Result<uint64_t> SizeOf(const std::string& key) const;

  /// Total bytes across every key in the store.
  Result<uint64_t> TotalBytes() const;

  /// All keys currently present, relative to the root (sorted).
  Result<std::vector<std::string>> ListKeys() const;

  /// Removes every key (used between experiments).
  Status Clear();

  /// Traffic counters since Open (or ResetTraffic): total payload bytes
  /// moved through Write()/Read(). The benchmark harness uses these to
  /// model I/O time on a reference storage device.
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }
  void ResetTraffic() {
    bytes_written_ = 0;
    bytes_read_ = 0;
  }

 private:
  explicit FileStore(std::string root) : root_(std::move(root)) {}

  std::string PathFor(const std::string& key) const;

  std::string root_;
  std::atomic<uint64_t> bytes_written_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
};

/// \brief Creates a unique empty temporary directory for a store/workspace,
/// under $TMPDIR (or /tmp). `tag` is embedded in the name for debuggability.
Result<std::string> MakeTempDir(const std::string& tag);

}  // namespace storage
}  // namespace deepeverest

#endif  // DEEPEVEREST_STORAGE_FILE_STORE_H_
