#ifndef DEEPEVEREST_STORAGE_QUANTIZED_STORE_H_
#define DEEPEVEREST_STORAGE_QUANTIZED_STORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/activation_store.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace storage {

/// \brief 8-bit linearly quantised activation matrix (MISTIQUE-style).
///
/// The paper points to MISTIQUE's quantisation as an orthogonal storage
/// technique DeepEverest could incorporate (§3). This implements the
/// standard variant: per-neuron min/max ranges with 8-bit codes, a 4x size
/// reduction over float32 at bounded per-value error
/// (<= range/255/2 after round-to-nearest).
///
/// Quantised matrices are lossy, so they are suitable for the caching
/// baselines and for approximate query answering — not for the exact-result
/// guarantees NTA provides over NPI.
struct QuantizedActivationMatrix {
  uint32_t num_inputs = 0;
  uint64_t num_neurons = 0;
  std::vector<float> min_value;   // per neuron
  std::vector<float> scale;       // per neuron: (max - min) / 255
  std::vector<uint8_t> codes;     // row-major, num_inputs x num_neurons

  /// Quantises a float32 matrix.
  static QuantizedActivationMatrix Quantize(
      const LayerActivationMatrix& matrix);

  /// Reconstructs the (lossy) float32 value of one cell.
  float At(uint32_t input_id, uint64_t neuron) const {
    const uint8_t code =
        codes[static_cast<size_t>(input_id) * num_neurons + neuron];
    return min_value[neuron] + scale[neuron] * static_cast<float>(code);
  }

  /// Reconstructs one full row into out[0..num_neurons) through the active
  /// dispatched decode kernel (bit-identical across dispatch modes).
  void DequantizeRow(uint32_t input_id, float* out) const;

  /// Reconstructs the full float32 matrix (row-at-a-time via DequantizeRow).
  LayerActivationMatrix Dequantize() const;

  /// Worst-case absolute reconstruction error for `neuron`.
  float MaxErrorOf(uint64_t neuron) const { return scale[neuron] * 0.5f; }

  /// In-memory payload size (codes + ranges), ~1/4 of float32.
  uint64_t PayloadBytes() const {
    return codes.size() + (min_value.size() + scale.size()) * sizeof(float);
  }
};

/// \brief Persists/loads quantised matrices in a FileStore, mirroring
/// ActivationStore's layout under a separate key prefix.
class QuantizedActivationStore {
 public:
  explicit QuantizedActivationStore(FileStore* store) : store_(store) {}

  static std::string KeyFor(const std::string& model_name, int layer);

  Status Save(const std::string& model_name, int layer,
              const QuantizedActivationMatrix& matrix, bool sync = false);

  Result<QuantizedActivationMatrix> Load(const std::string& model_name,
                                         int layer) const;

  bool Contains(const std::string& model_name, int layer) const;

 private:
  FileStore* store_;
};

}  // namespace storage
}  // namespace deepeverest

#endif  // DEEPEVEREST_STORAGE_QUANTIZED_STORE_H_
