#include "storage/quantized_store.h"

#include <algorithm>
#include <cmath>

#include "common/serde.h"
#include "kernels/kernels.h"

namespace deepeverest {
namespace storage {

namespace {
constexpr uint32_t kMagic = 0xDEE7C0DE;
}  // namespace

QuantizedActivationMatrix QuantizedActivationMatrix::Quantize(
    const LayerActivationMatrix& matrix) {
  QuantizedActivationMatrix q;
  q.num_inputs = matrix.num_inputs;
  q.num_neurons = matrix.num_neurons;
  q.min_value.resize(matrix.num_neurons);
  q.scale.resize(matrix.num_neurons);
  q.codes.resize(static_cast<size_t>(matrix.num_inputs) *
                 matrix.num_neurons);

  for (uint64_t neuron = 0; neuron < matrix.num_neurons; ++neuron) {
    float lo = matrix.At(0, neuron);
    float hi = lo;
    for (uint32_t id = 1; id < matrix.num_inputs; ++id) {
      const float v = matrix.At(id, neuron);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    q.min_value[neuron] = lo;
    q.scale[neuron] = hi > lo ? (hi - lo) / 255.0f : 0.0f;
    const float inv_scale =
        q.scale[neuron] > 0.0f ? 1.0f / q.scale[neuron] : 0.0f;
    for (uint32_t id = 0; id < matrix.num_inputs; ++id) {
      const float v = matrix.At(id, neuron);
      const float code = std::round((v - lo) * inv_scale);
      q.codes[static_cast<size_t>(id) * matrix.num_neurons + neuron] =
          static_cast<uint8_t>(
              std::clamp(code, 0.0f, 255.0f));
    }
  }
  return q;
}

void QuantizedActivationMatrix::DequantizeRow(uint32_t input_id,
                                              float* out) const {
  kernels::Active().dequant_row(
      codes.data() + static_cast<size_t>(input_id) * num_neurons,
      min_value.data(), scale.data(), static_cast<size_t>(num_neurons), out);
}

LayerActivationMatrix QuantizedActivationMatrix::Dequantize() const {
  LayerActivationMatrix matrix =
      LayerActivationMatrix::Make(num_inputs, num_neurons);
  for (uint32_t id = 0; id < num_inputs; ++id) {
    DequantizeRow(id, matrix.MutableRow(id));
  }
  return matrix;
}

std::string QuantizedActivationStore::KeyFor(const std::string& model_name,
                                             int layer) {
  return "quantized/" + model_name + "/layer_" + std::to_string(layer) +
         ".q8";
}

Status QuantizedActivationStore::Save(const std::string& model_name,
                                      int layer,
                                      const QuantizedActivationMatrix& matrix,
                                      bool sync) {
  if (matrix.codes.size() !=
          static_cast<size_t>(matrix.num_inputs) * matrix.num_neurons ||
      matrix.min_value.size() != matrix.num_neurons ||
      matrix.scale.size() != matrix.num_neurons) {
    return Status::InvalidArgument("quantized matrix geometry mismatch");
  }
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(matrix.num_inputs);
  writer.WriteU64(matrix.num_neurons);
  writer.WriteF32Vector(matrix.min_value);
  writer.WriteF32Vector(matrix.scale);
  writer.WriteU64(matrix.codes.size());
  std::vector<uint8_t> buffer = writer.TakeBuffer();
  buffer.insert(buffer.end(), matrix.codes.begin(), matrix.codes.end());
  return store_->Write(KeyFor(model_name, layer), buffer, sync);
}

Result<QuantizedActivationMatrix> QuantizedActivationStore::Load(
    const std::string& model_name, int layer) const {
  DE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                      store_->Read(KeyFor(model_name, layer)));
  BinaryReader reader(bytes);
  uint32_t magic = 0;
  DE_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::IOError("bad magic in quantized activation file");
  }
  QuantizedActivationMatrix matrix;
  DE_RETURN_NOT_OK(reader.ReadU32(&matrix.num_inputs));
  DE_RETURN_NOT_OK(reader.ReadU64(&matrix.num_neurons));
  DE_RETURN_NOT_OK(reader.ReadF32Vector(&matrix.min_value));
  DE_RETURN_NOT_OK(reader.ReadF32Vector(&matrix.scale));
  uint64_t code_count = 0;
  DE_RETURN_NOT_OK(reader.ReadU64(&code_count));
  if (code_count != static_cast<uint64_t>(matrix.num_inputs) *
                        matrix.num_neurons ||
      code_count != reader.remaining() ||
      matrix.min_value.size() != matrix.num_neurons ||
      matrix.scale.size() != matrix.num_neurons) {
    return Status::IOError("corrupt quantized activation file");
  }
  matrix.codes.resize(code_count);
  std::copy(bytes.end() - static_cast<ptrdiff_t>(code_count), bytes.end(),
            matrix.codes.begin());
  return matrix;
}

bool QuantizedActivationStore::Contains(const std::string& model_name,
                                        int layer) const {
  return store_->Exists(KeyFor(model_name, layer));
}

}  // namespace storage
}  // namespace deepeverest
