#include "tensor/tensor.h"

#include <sstream>

namespace deepeverest {

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < rank(); ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

std::string Tensor::ToString() const {
  std::ostringstream out;
  out << "Tensor" << shape_.ToString() << " {";
  const int64_t n = NumElements();
  const int64_t show = n > 8 ? 8 : n;
  for (int64_t i = 0; i < show; ++i) {
    if (i > 0) out << ", ";
    out << data_[static_cast<size_t>(i)];
  }
  if (show < n) out << ", ... (" << n << " elements)";
  out << "}";
  return out.str();
}

}  // namespace deepeverest
