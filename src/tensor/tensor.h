#ifndef DEEPEVEREST_TENSOR_TENSOR_H_
#define DEEPEVEREST_TENSOR_TENSOR_H_

#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "tensor/shape.h"

namespace deepeverest {

/// \brief Dense row-major float32 tensor.
///
/// Owns its buffer. The inference engine treats a layer's output for one
/// input as a single Tensor; a "neuron" in DeepEverest terms is one scalar
/// element of that tensor, addressed by its flat index.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.NumElements()), 0.0f) {}
  /// Takes ownership of `data`; size must match the shape.
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    DE_CHECK_EQ(static_cast<int64_t>(data_.size()), shape_.NumElements());
  }

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float operator[](int64_t i) const {
    DE_CHECK_GE(i, 0);
    DE_CHECK_LT(i, NumElements());
    return data_[static_cast<size_t>(i)];
  }
  float& operator[](int64_t i) {
    DE_CHECK_GE(i, 0);
    DE_CHECK_LT(i, NumElements());
    return data_[static_cast<size_t>(i)];
  }

  /// HWC element access for rank-3 tensors.
  float At(int64_t h, int64_t w, int64_t c) const {
    return data_[static_cast<size_t>(Offset(h, w, c))];
  }
  float& At(int64_t h, int64_t w, int64_t c) {
    return data_[static_cast<size_t>(Offset(h, w, c))];
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  std::string ToString() const;

 private:
  int64_t Offset(int64_t h, int64_t w, int64_t c) const {
    DE_CHECK_EQ(shape_.rank(), 3);
    DE_CHECK_GE(h, 0);
    DE_CHECK_LT(h, shape_.dim(0));
    DE_CHECK_GE(w, 0);
    DE_CHECK_LT(w, shape_.dim(1));
    DE_CHECK_GE(c, 0);
    DE_CHECK_LT(c, shape_.dim(2));
    return (h * shape_.dim(1) + w) * shape_.dim(2) + c;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace deepeverest

#endif  // DEEPEVEREST_TENSOR_TENSOR_H_
