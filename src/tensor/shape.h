#ifndef DEEPEVEREST_TENSOR_SHAPE_H_
#define DEEPEVEREST_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"

namespace deepeverest {

/// \brief Dimensions of a dense row-major tensor.
///
/// Convention throughout the nn/ module: activations are HWC —
/// {height, width, channels} for image-like tensors and {units} for
/// flattened/dense tensors. Batch dimensions are handled by the inference
/// engine, not by Shape.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const {
    DE_CHECK_GE(i, 0);
    DE_CHECK_LT(i, rank());
    return dims_[i];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total number of elements (product of dims; 1 for rank 0).
  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Renders e.g. "[32, 32, 3]".
  std::string ToString() const;

 private:
  void Validate() {
    for (int64_t d : dims_) DE_CHECK_GE(d, 0);
  }

  std::vector<int64_t> dims_;
};

}  // namespace deepeverest

#endif  // DEEPEVEREST_TENSOR_SHAPE_H_
