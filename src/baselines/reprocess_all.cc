#include "baselines/reprocess_all.h"

#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace baselines {

Result<core::TopKResult> ReprocessAll::TopKHighest(
    const core::NeuronGroup& group, int k, core::DistancePtr dist) {
  Stopwatch watch;
  // BruteForceHighest meters its own inference via receipts, so its stats
  // are exact for this call even under concurrency.
  DE_ASSIGN_OR_RETURN(core::TopKResult result,
                      core::BruteForceHighest(inference_, group, k, dist));
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<core::TopKResult> ReprocessAll::TopKMostSimilar(
    uint32_t target_id, const core::NeuronGroup& group, int k,
    core::DistancePtr dist) {
  if (target_id >= inference_->dataset().size()) {
    return Status::OutOfRange("target input out of range");
  }
  Stopwatch watch;
  // Compute the target's group activations first (one pass), then scan all.
  std::vector<std::vector<float>> target_rows;
  nn::InferenceReceipt target_receipt;
  DE_RETURN_NOT_OK(inference_->ComputeLayer({target_id}, group.layer,
                                            &target_rows, &target_receipt));
  std::vector<float> target_acts(group.neurons.size());
  for (size_t i = 0; i < group.neurons.size(); ++i) {
    target_acts[i] =
        target_rows[0][static_cast<size_t>(group.neurons[i])];
  }
  DE_ASSIGN_OR_RETURN(
      core::TopKResult result,
      core::BruteForceMostSimilar(inference_, group, target_acts, k, dist,
                                  /*exclude_target=*/true, target_id));
  result.stats.inputs_run += target_receipt.inputs_run;
  result.stats.batches_run += target_receipt.batches_run;
  result.stats.simulated_gpu_seconds += target_receipt.simulated_gpu_seconds;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace deepeverest
