#include "baselines/lru_cache.h"

#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace baselines {

Result<storage::LayerActivationMatrix> LruCacheEngine::GetLayer(int layer) {
  const std::string& model_name = inference_->model().name();
  auto it = by_layer_.find(layer);
  if (it != by_layer_.end()) {
    ++hits_;
    recency_.erase(it->second);
    recency_.push_front(layer);
    it->second = recency_.begin();
    return activations_.Load(model_name, layer);
  }

  ++misses_;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      ComputeLayerMatrix(inference_, layer));
  // Persist to the disk cache, then evict least-recently-used layers until
  // the budget holds again.
  DE_RETURN_NOT_OK(activations_.Save(model_name, layer, matrix));
  cached_bytes_ += storage::ActivationStore::PersistedBytes(
      matrix.num_inputs, matrix.num_neurons);
  recency_.push_front(layer);
  by_layer_[layer] = recency_.begin();
  DE_RETURN_NOT_OK(EvictUntilWithinBudget());
  return matrix;
}

Status LruCacheEngine::EvictUntilWithinBudget() {
  const std::string& model_name = inference_->model().name();
  while (cached_bytes_ > budget_bytes_ && recency_.size() > 1) {
    const int victim = recency_.back();
    recency_.pop_back();
    by_layer_.erase(victim);
    const uint64_t bytes = storage::ActivationStore::PersistedBytes(
        inference_->dataset().size(),
        static_cast<uint64_t>(inference_->model().NeuronCount(victim)));
    DE_RETURN_NOT_OK(activations_.Remove(model_name, victim));
    cached_bytes_ -= std::min(cached_bytes_, bytes);
  }
  // A single layer larger than the whole budget is still evicted: the
  // cache cannot hold it.
  if (cached_bytes_ > budget_bytes_ && recency_.size() == 1) {
    const int victim = recency_.back();
    recency_.pop_back();
    by_layer_.erase(victim);
    DE_RETURN_NOT_OK(activations_.Remove(model_name, victim));
    cached_bytes_ = 0;
  }
  return Status::OK();
}

Result<core::TopKResult> LruCacheEngine::TopKHighest(
    const core::NeuronGroup& group, int k, core::DistancePtr dist) {
  Stopwatch watch;
  const nn::InferenceStats before = inference_->stats();
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      GetLayer(group.layer));
  core::TopKResult result = core::ScanHighest(
      matrix, group.neurons, k,
      dist != nullptr ? dist : core::L2Distance());
  const nn::InferenceStats delta = inference_->stats() - before;
  result.stats.inputs_run = delta.inputs_run;
  result.stats.batches_run = delta.batches_run;
  result.stats.simulated_gpu_seconds = delta.simulated_gpu_seconds;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<core::TopKResult> LruCacheEngine::TopKMostSimilar(
    uint32_t target_id, const core::NeuronGroup& group, int k,
    core::DistancePtr dist) {
  if (target_id >= inference_->dataset().size()) {
    return Status::OutOfRange("target input out of range");
  }
  Stopwatch watch;
  const nn::InferenceStats before = inference_->stats();
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      GetLayer(group.layer));
  const std::vector<float> target_acts =
      TargetActsFromMatrix(matrix, group.neurons, target_id);
  core::TopKResult result = core::ScanMostSimilar(
      matrix, group.neurons, target_acts, k,
      dist != nullptr ? dist : core::L2Distance(),
      /*exclude_target=*/true, target_id);
  const nn::InferenceStats delta = inference_->stats() - before;
  result.stats.inputs_run = delta.inputs_run;
  result.stats.batches_run = delta.batches_run;
  result.stats.simulated_gpu_seconds = delta.simulated_gpu_seconds;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace deepeverest
