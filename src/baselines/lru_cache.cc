#include "baselines/lru_cache.h"

#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace baselines {

Result<storage::LayerActivationMatrix> LruCacheEngine::GetLayer(
    int layer, nn::InferenceReceipt* receipt) {
  const std::string& model_name = inference_->model().name();
  common::MutexLock lock(&mu_);
  auto it = by_layer_.find(layer);
  if (it != by_layer_.end()) {
    ++hits_;
    recency_.erase(it->second);
    recency_.push_front(layer);
    it->second = recency_.begin();
    return activations_.Load(model_name, layer);
  }

  ++misses_;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      ComputeLayerMatrix(inference_, layer, receipt));
  // Persist to the disk cache, then evict least-recently-used layers until
  // the budget holds again. The byte count recorded here is the one
  // subtracted at eviction.
  DE_RETURN_NOT_OK(activations_.Save(model_name, layer, matrix));
  const uint64_t bytes = storage::ActivationStore::PersistedBytes(
      matrix.num_inputs, matrix.num_neurons);
  cached_bytes_ += bytes;
  bytes_by_layer_[layer] = bytes;
  recency_.push_front(layer);
  by_layer_[layer] = recency_.begin();
  DE_RETURN_NOT_OK(EvictUntilWithinBudgetLocked());
  return matrix;
}

Status LruCacheEngine::EvictLocked(int layer) {
  auto it = by_layer_.find(layer);
  DE_CHECK(it != by_layer_.end());
  recency_.erase(it->second);
  by_layer_.erase(it);
  auto bytes_it = bytes_by_layer_.find(layer);
  DE_CHECK(bytes_it != bytes_by_layer_.end());
  DE_CHECK(cached_bytes_ >= bytes_it->second);
  cached_bytes_ -= bytes_it->second;
  bytes_by_layer_.erase(bytes_it);
  return activations_.Remove(inference_->model().name(), layer);
}

Status LruCacheEngine::EvictUntilWithinBudgetLocked() {
  while (cached_bytes_ > budget_bytes_ && recency_.size() > 1) {
    DE_RETURN_NOT_OK(EvictLocked(recency_.back()));
  }
  // A single layer larger than the whole budget is still evicted: the
  // cache cannot hold it.
  if (cached_bytes_ > budget_bytes_ && recency_.size() == 1) {
    DE_RETURN_NOT_OK(EvictLocked(recency_.back()));
  }
  return Status::OK();
}

Result<core::TopKResult> LruCacheEngine::TopKHighest(
    const core::NeuronGroup& group, int k, core::DistancePtr dist) {
  Stopwatch watch;
  nn::InferenceReceipt receipt;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      GetLayer(group.layer, &receipt));
  core::TopKResult result = core::ScanHighest(
      matrix, group.neurons, k,
      dist != nullptr ? dist : core::L2Distance());
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<core::TopKResult> LruCacheEngine::TopKMostSimilar(
    uint32_t target_id, const core::NeuronGroup& group, int k,
    core::DistancePtr dist) {
  if (target_id >= inference_->dataset().size()) {
    return Status::OutOfRange("target input out of range");
  }
  Stopwatch watch;
  nn::InferenceReceipt receipt;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      GetLayer(group.layer, &receipt));
  const std::vector<float> target_acts =
      TargetActsFromMatrix(matrix, group.neurons, target_id);
  core::TopKResult result = core::ScanMostSimilar(
      matrix, group.neurons, target_acts, k,
      dist != nullptr ? dist : core::L2Distance(),
      /*exclude_target=*/true, target_id);
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace deepeverest
