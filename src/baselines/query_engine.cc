#include "baselines/query_engine.h"

#include <numeric>

namespace deepeverest {
namespace baselines {

Result<storage::LayerActivationMatrix> ComputeLayerMatrix(
    nn::InferenceEngine* inference, int layer, nn::InferenceReceipt* receipt) {
  const uint32_t num_inputs = inference->dataset().size();
  const uint64_t num_neurons =
      static_cast<uint64_t>(inference->model().NeuronCount(layer));
  std::vector<uint32_t> ids(num_inputs);
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<std::vector<float>> rows;
  DE_RETURN_NOT_OK(inference->ComputeLayer(ids, layer, &rows, receipt));
  storage::LayerActivationMatrix matrix =
      storage::LayerActivationMatrix::Make(num_inputs, num_neurons);
  for (uint32_t id = 0; id < num_inputs; ++id) {
    std::copy(rows[id].begin(), rows[id].end(), matrix.MutableRow(id));
  }
  return matrix;
}

std::vector<float> TargetActsFromMatrix(
    const storage::LayerActivationMatrix& matrix,
    const std::vector<int64_t>& neurons, uint32_t target_id) {
  std::vector<float> acts(neurons.size());
  for (size_t i = 0; i < neurons.size(); ++i) {
    acts[i] = matrix.At(target_id, static_cast<uint64_t>(neurons[i]));
  }
  return acts;
}

}  // namespace baselines
}  // namespace deepeverest
