#ifndef DEEPEVEREST_BASELINES_DEEPEVEREST_ENGINE_H_
#define DEEPEVEREST_BASELINES_DEEPEVEREST_ENGINE_H_

#include <string>

#include "baselines/query_engine.h"
#include "core/deepeverest.h"

namespace deepeverest {
namespace baselines {

/// \brief Adapts the DeepEverest facade to the baseline QueryEngine
/// interface so multi-method experiment drivers can treat every strategy
/// uniformly.
class DeepEverestEngine : public QueryEngine {
 public:
  /// Does not take ownership; `system` must outlive this object.
  explicit DeepEverestEngine(core::DeepEverest* system) : system_(system) {}

  std::string name() const override { return "DeepEverest"; }

  /// Optional: eagerly index every layer (by default DeepEverest indexes
  /// incrementally and needs no preprocessing).
  Status Preprocess() override { return system_->PreprocessAllLayers(); }

  Result<core::TopKResult> TopKHighest(const core::NeuronGroup& group, int k,
                                       core::DistancePtr dist) override {
    DE_ASSIGN_OR_RETURN(const core::DistanceKind kind, KindOf(dist));
    return system_->TopKHighest(group, k, kind);
  }

  Result<core::TopKResult> TopKMostSimilar(uint32_t target_id,
                                           const core::NeuronGroup& group,
                                           int k,
                                           core::DistancePtr dist) override {
    DE_ASSIGN_OR_RETURN(const core::DistanceKind kind, KindOf(dist));
    return system_->TopKMostSimilar(target_id, group, k, kind);
  }

  Result<uint64_t> StorageBytes() const override {
    return system_->PersistedIndexBytes();
  }

 private:
  /// DeepEverest's query surface is declarative (QuerySpec names a
  /// DistanceKind); map the baseline interface's object-form distance back
  /// to its kind. Null means the engine default (l2, per the paper).
  static Result<core::DistanceKind> KindOf(const core::DistancePtr& dist) {
    if (dist == nullptr) return core::DistanceKind::kL2;
    const std::string name = dist->name();
    if (name == "l1") return core::DistanceKind::kL1;
    if (name == "l2") return core::DistanceKind::kL2;
    if (name == "linf") return core::DistanceKind::kLInf;
    return Status::InvalidArgument(
        "DeepEverestEngine supports built-in distances only, got: " + name);
  }

  core::DeepEverest* system_;
};

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_DEEPEVEREST_ENGINE_H_
