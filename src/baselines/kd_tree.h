#ifndef DEEPEVEREST_BASELINES_KD_TREE_H_
#define DEEPEVEREST_BASELINES_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "storage/activation_store.h"

namespace deepeverest {
namespace baselines {

/// \brief A point set in the activation space of one neuron group: row i is
/// input i's activations restricted to the group's dimensions.
struct PointMatrix {
  uint32_t num_points = 0;
  uint32_t dims = 0;
  std::vector<float> values;  // row-major

  const float* Row(uint32_t i) const {
    return values.data() + static_cast<size_t>(i) * dims;
  }
};

/// \brief Exact k-d tree for euclidean k-nearest-neighbour search [7].
///
/// Used in Table 1: even a classical KNN index cannot beat ReprocessAll in
/// this problem, because the tree can only be built *after* the group's
/// activations have been computed for every input. Splits on the
/// widest-spread dimension at the median.
class KdTree {
 public:
  explicit KdTree(PointMatrix points);

  /// The k points nearest to `target` (l2), ascending distance.
  /// `exclude` (if >= 0) is an input ID omitted from results.
  std::vector<core::ResultEntry> Query(const float* target, int k,
                                       int64_t exclude = -1) const;

  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int split_dim = -1;       // -1 for leaves
    float split_value = 0.0f;
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;  // leaf: range into point_ids_
    uint32_t end = 0;
  };

  int32_t BuildNode(uint32_t begin, uint32_t end);

  PointMatrix points_;
  std::vector<uint32_t> point_ids_;
  std::vector<Node> nodes_;
  static constexpr uint32_t kLeafSize = 16;
};

/// \brief Exact ball tree [41] for euclidean KNN; same role as KdTree.
/// Balls are split along the direction between two approximately farthest
/// points; search prunes with the triangle inequality.
class BallTree {
 public:
  explicit BallTree(PointMatrix points);

  std::vector<core::ResultEntry> Query(const float* target, int k,
                                       int64_t exclude = -1) const;

  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::vector<float> center;
    float radius = 0.0f;
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;
    uint32_t end = 0;
    bool leaf = false;
  };

  int32_t BuildNode(uint32_t begin, uint32_t end);
  void ComputeBounds(Node* node, uint32_t begin, uint32_t end) const;

  PointMatrix points_;
  std::vector<uint32_t> point_ids_;
  std::vector<Node> nodes_;
  static constexpr uint32_t kLeafSize = 16;
};

/// Builds the group-restricted point matrix from a layer activation matrix.
PointMatrix MakePointMatrix(const storage::LayerActivationMatrix& matrix,
                            const std::vector<int64_t>& neurons);

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_KD_TREE_H_
