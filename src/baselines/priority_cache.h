#ifndef DEEPEVEREST_BASELINES_PRIORITY_CACHE_H_
#define DEEPEVEREST_BASELINES_PRIORITY_CACHE_H_

#include <set>
#include <string>
#include <vector>

#include "baselines/query_engine.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace baselines {

/// \brief Priority Cache baseline (§4.1), adapted from MISTIQUE's storage
/// cost model: assuming every layer is queried equally often, rank layers by
/// query time saved per GB stored — (recompute time − load time) / size —
/// and greedily materialise the best ones under the budget during
/// preprocessing. Queries on materialised layers run like PreprocessAll;
/// everything else runs like ReprocessAll.
class PriorityCacheEngine : public QueryEngine {
 public:
  /// `disk_read_bytes_per_second` models load time in the cost model (the
  /// actual loads are real file reads).
  PriorityCacheEngine(nn::InferenceEngine* inference,
                      storage::FileStore* store, uint64_t budget_bytes,
                      double disk_read_bytes_per_second = 500e6)
      : inference_(inference),
        store_(store),
        activations_(store),
        budget_bytes_(budget_bytes),
        disk_read_bytes_per_second_(disk_read_bytes_per_second) {}

  std::string name() const override { return "Priority Cache"; }

  /// Ranks layers with the cost model and materialises the chosen set.
  Status Preprocess() override;

  Result<core::TopKResult> TopKHighest(const core::NeuronGroup& group, int k,
                                       core::DistancePtr dist) override;
  Result<core::TopKResult> TopKMostSimilar(uint32_t target_id,
                                           const core::NeuronGroup& group,
                                           int k,
                                           core::DistancePtr dist) override;

  Result<uint64_t> StorageBytes() const override { return stored_bytes_; }

  const std::vector<int>& chosen_layers() const { return chosen_layers_; }
  bool IsStored(int layer) const { return stored_.count(layer) != 0; }

 private:
  /// Loads a stored layer (free) or recomputes it, charging `receipt`.
  Result<storage::LayerActivationMatrix> GetLayer(int layer,
                                                  nn::InferenceReceipt* receipt);

  nn::InferenceEngine* inference_;
  storage::FileStore* store_;
  storage::ActivationStore activations_;
  uint64_t budget_bytes_;
  double disk_read_bytes_per_second_;
  uint64_t stored_bytes_ = 0;
  bool preprocessed_ = false;
  std::vector<int> chosen_layers_;
  std::set<int> stored_;
};

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_PRIORITY_CACHE_H_
