#ifndef DEEPEVEREST_BASELINES_REPROCESS_ALL_H_
#define DEEPEVEREST_BASELINES_REPROCESS_ALL_H_

#include <string>

#include "baselines/query_engine.h"

namespace deepeverest {
namespace baselines {

/// \brief ReprocessAll baseline (§4.1): no storage, no preprocessing; every
/// query runs DNN inference on the entire dataset. Its query time stands in
/// for *any* method that does not reduce the number of inputs fed to the
/// DNN (Table 1's point).
class ReprocessAll : public QueryEngine {
 public:
  explicit ReprocessAll(nn::InferenceEngine* inference)
      : inference_(inference) {}

  std::string name() const override { return "ReprocessAll"; }

  Result<core::TopKResult> TopKHighest(const core::NeuronGroup& group, int k,
                                       core::DistancePtr dist) override;
  Result<core::TopKResult> TopKMostSimilar(uint32_t target_id,
                                           const core::NeuronGroup& group,
                                           int k,
                                           core::DistancePtr dist) override;

 private:
  nn::InferenceEngine* inference_;
};

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_REPROCESS_ALL_H_
