#include "baselines/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace deepeverest {
namespace baselines {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double SquaredL2(const float* a, const float* b, uint32_t dims) {
  double sum = 0.0;
  for (uint32_t d = 0; d < dims; ++d) {
    const double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    sum += diff * diff;
  }
  return sum;
}

/// Bounded max-heap of (squared distance, id) used by both tree searches.
class Nearest {
 public:
  Nearest(int k, int64_t exclude) : k_(static_cast<size_t>(k)),
                                    exclude_(exclude) {}

  void Offer(uint32_t id, double d2) {
    if (exclude_ >= 0 && static_cast<int64_t>(id) == exclude_) return;
    if (heap_.size() == k_ && d2 >= heap_.front().first) return;
    heap_.emplace_back(d2, id);
    std::push_heap(heap_.begin(), heap_.end());
    if (heap_.size() > k_) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
  }

  double WorstD2() const {
    return heap_.size() == k_ ? heap_.front().first : kInf;
  }

  std::vector<core::ResultEntry> Sorted() {
    std::sort(heap_.begin(), heap_.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    std::vector<core::ResultEntry> out;
    out.reserve(heap_.size());
    for (const auto& [d2, id] : heap_) {
      out.push_back(core::ResultEntry{id, std::sqrt(d2)});
    }
    return out;
  }

 private:
  size_t k_;
  int64_t exclude_;
  std::vector<std::pair<double, uint32_t>> heap_;
};

}  // namespace

PointMatrix MakePointMatrix(const storage::LayerActivationMatrix& matrix,
                            const std::vector<int64_t>& neurons) {
  PointMatrix points;
  points.num_points = matrix.num_inputs;
  points.dims = static_cast<uint32_t>(neurons.size());
  points.values.resize(static_cast<size_t>(points.num_points) * points.dims);
  for (uint32_t id = 0; id < points.num_points; ++id) {
    float* row = points.values.data() +
                 static_cast<size_t>(id) * points.dims;
    for (uint32_t d = 0; d < points.dims; ++d) {
      row[d] = matrix.At(id, static_cast<uint64_t>(neurons[d]));
    }
  }
  return points;
}

// ---------------------------------------------------------------------------
// KdTree
// ---------------------------------------------------------------------------

KdTree::KdTree(PointMatrix points) : points_(std::move(points)) {
  DE_CHECK_GT(points_.num_points, 0u);
  DE_CHECK_GT(points_.dims, 0u);
  point_ids_.resize(points_.num_points);
  std::iota(point_ids_.begin(), point_ids_.end(), 0u);
  BuildNode(0, points_.num_points);
}

int32_t KdTree::BuildNode(uint32_t begin, uint32_t end) {
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    nodes_[node_index].begin = begin;
    nodes_[node_index].end = end;
    return node_index;
  }

  // Split on the dimension with the widest spread over this range.
  int best_dim = 0;
  float best_spread = -1.0f;
  for (uint32_t d = 0; d < points_.dims; ++d) {
    float lo = points_.Row(point_ids_[begin])[d];
    float hi = lo;
    for (uint32_t i = begin + 1; i < end; ++i) {
      const float v = points_.Row(point_ids_[i])[d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = static_cast<int>(d);
    }
  }
  if (best_spread <= 0.0f) {
    // All points identical in every dimension: keep as a (large) leaf.
    nodes_[node_index].begin = begin;
    nodes_[node_index].end = end;
    return node_index;
  }

  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(point_ids_.begin() + begin, point_ids_.begin() + mid,
                   point_ids_.begin() + end, [&](uint32_t a, uint32_t b) {
                     return points_.Row(a)[best_dim] <
                            points_.Row(b)[best_dim];
                   });
  const float split_value = points_.Row(point_ids_[mid])[best_dim];

  const int32_t left = BuildNode(begin, mid);
  const int32_t right = BuildNode(mid, end);
  nodes_[node_index].split_dim = best_dim;
  nodes_[node_index].split_value = split_value;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

std::vector<core::ResultEntry> KdTree::Query(const float* target, int k,
                                             int64_t exclude) const {
  DE_CHECK_GT(k, 0);
  Nearest nearest(k, exclude);

  // Recursive best-first descent with hyperplane pruning.
  struct Frame {
    int32_t node;
    double min_d2;  // lower bound on distance to this subtree
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0.0});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.min_d2 >= nearest.WorstD2()) continue;
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    if (node.split_dim < 0) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = point_ids_[i];
        nearest.Offer(id, SquaredL2(points_.Row(id), target, points_.dims));
      }
      continue;
    }
    const double delta = static_cast<double>(target[node.split_dim]) -
                         static_cast<double>(node.split_value);
    const int32_t near_child = delta < 0.0 ? node.left : node.right;
    const int32_t far_child = delta < 0.0 ? node.right : node.left;
    // Push the far side first (visited later), with its plane bound.
    stack.push_back(Frame{far_child, frame.min_d2 + delta * delta});
    stack.push_back(Frame{near_child, frame.min_d2});
  }
  return nearest.Sorted();
}

// ---------------------------------------------------------------------------
// BallTree
// ---------------------------------------------------------------------------

BallTree::BallTree(PointMatrix points) : points_(std::move(points)) {
  DE_CHECK_GT(points_.num_points, 0u);
  DE_CHECK_GT(points_.dims, 0u);
  point_ids_.resize(points_.num_points);
  std::iota(point_ids_.begin(), point_ids_.end(), 0u);
  BuildNode(0, points_.num_points);
}

void BallTree::ComputeBounds(Node* node, uint32_t begin, uint32_t end) const {
  node->center.assign(points_.dims, 0.0f);
  for (uint32_t i = begin; i < end; ++i) {
    const float* row = points_.Row(point_ids_[i]);
    for (uint32_t d = 0; d < points_.dims; ++d) node->center[d] += row[d];
  }
  const float inv = 1.0f / static_cast<float>(end - begin);
  for (float& c : node->center) c *= inv;
  double max_d2 = 0.0;
  for (uint32_t i = begin; i < end; ++i) {
    max_d2 = std::max(max_d2, SquaredL2(points_.Row(point_ids_[i]),
                                        node->center.data(), points_.dims));
  }
  node->radius = static_cast<float>(std::sqrt(max_d2));
}

int32_t BallTree::BuildNode(uint32_t begin, uint32_t end) {
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  ComputeBounds(&nodes_[node_index], begin, end);
  if (end - begin <= kLeafSize || nodes_[node_index].radius == 0.0f) {
    nodes_[node_index].leaf = true;
    nodes_[node_index].begin = begin;
    nodes_[node_index].end = end;
    return node_index;
  }

  // Approximate farthest pair: the point A farthest from the centroid, then
  // the point B farthest from A. Partition by which of the two is closer.
  const std::vector<float> center = nodes_[node_index].center;
  auto farthest_from = [&](const float* p) {
    uint32_t best = point_ids_[begin];
    double best_d2 = -1.0;
    for (uint32_t i = begin; i < end; ++i) {
      const double d2 = SquaredL2(points_.Row(point_ids_[i]), p, points_.dims);
      if (d2 > best_d2) {
        best_d2 = d2;
        best = point_ids_[i];
      }
    }
    return best;
  };
  const uint32_t a = farthest_from(center.data());
  const uint32_t b = farthest_from(points_.Row(a));
  const float* pa = points_.Row(a);
  const float* pb = points_.Row(b);

  auto mid_it = std::partition(
      point_ids_.begin() + begin, point_ids_.begin() + end, [&](uint32_t id) {
        return SquaredL2(points_.Row(id), pa, points_.dims) <
               SquaredL2(points_.Row(id), pb, points_.dims);
      });
  uint32_t mid = static_cast<uint32_t>(mid_it - point_ids_.begin());
  // Degenerate partitions (duplicate-heavy data) fall back to halving.
  if (mid == begin || mid == end) mid = begin + (end - begin) / 2;

  const int32_t left = BuildNode(begin, mid);
  const int32_t right = BuildNode(mid, end);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

std::vector<core::ResultEntry> BallTree::Query(const float* target, int k,
                                               int64_t exclude) const {
  DE_CHECK_GT(k, 0);
  Nearest nearest(k, exclude);
  std::vector<int32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    // Triangle-inequality pruning: nothing in the ball can be closer than
    // dist(target, center) - radius.
    const double center_dist =
        std::sqrt(SquaredL2(node.center.data(), target, points_.dims));
    const double lower = std::max(0.0, center_dist - node.radius);
    if (lower * lower >= nearest.WorstD2()) continue;
    if (node.leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = point_ids_[i];
        nearest.Offer(id, SquaredL2(points_.Row(id), target, points_.dims));
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
  return nearest.Sorted();
}

}  // namespace baselines
}  // namespace deepeverest
