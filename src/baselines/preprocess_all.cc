#include "baselines/preprocess_all.h"

#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace baselines {

Status PreprocessAll::Preprocess() {
  if (preprocessed_) return Status::OK();
  const nn::Model& model = inference_->model();
  const uint32_t num_inputs = inference_->dataset().size();

  // Single pass: one ForwardAll per input filling every layer's matrix.
  Stopwatch watch;
  std::vector<storage::LayerActivationMatrix> matrices;
  matrices.reserve(static_cast<size_t>(model.num_layers()));
  for (int layer = 0; layer < model.num_layers(); ++layer) {
    matrices.push_back(storage::LayerActivationMatrix::Make(
        num_inputs, static_cast<uint64_t>(model.NeuronCount(layer))));
  }
  std::vector<Tensor> outputs;
  for (uint32_t id = 0; id < num_inputs; ++id) {
    DE_RETURN_NOT_OK(inference_->ComputeAllLayers(id, &outputs));
    for (int layer = 0; layer < model.num_layers(); ++layer) {
      const Tensor& out = outputs[static_cast<size_t>(layer)];
      std::copy(out.vec().begin(), out.vec().end(),
                matrices[static_cast<size_t>(layer)].MutableRow(id));
    }
  }
  preprocess_inference_seconds_ = watch.ElapsedSeconds();

  watch.Reset();
  for (int layer = 0; layer < model.num_layers(); ++layer) {
    DE_RETURN_NOT_OK(activations_.Save(
        model.name(), layer, matrices[static_cast<size_t>(layer)],
        /*sync=*/true));
  }
  preprocess_persist_seconds_ = watch.ElapsedSeconds();
  preprocessed_ = true;
  return Status::OK();
}

Result<storage::LayerActivationMatrix> PreprocessAll::LoadLayer(
    int layer) const {
  auto result = activations_.Load(inference_->model().name(), layer);
  if (!result.ok() && result.status().IsNotFound()) {
    return Status::FailedPrecondition(
        "PreprocessAll::Preprocess() has not been run");
  }
  return result;
}

Result<core::TopKResult> PreprocessAll::TopKHighest(
    const core::NeuronGroup& group, int k, core::DistancePtr dist) {
  Stopwatch watch;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      LoadLayer(group.layer));
  core::TopKResult result = core::ScanHighest(
      matrix, group.neurons, k,
      dist != nullptr ? dist : core::L2Distance());
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<core::TopKResult> PreprocessAll::TopKMostSimilar(
    uint32_t target_id, const core::NeuronGroup& group, int k,
    core::DistancePtr dist) {
  Stopwatch watch;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      LoadLayer(group.layer));
  if (target_id >= matrix.num_inputs) {
    return Status::OutOfRange("target input out of range");
  }
  const std::vector<float> target_acts =
      TargetActsFromMatrix(matrix, group.neurons, target_id);
  core::TopKResult result = core::ScanMostSimilar(
      matrix, group.neurons, target_acts, k,
      dist != nullptr ? dist : core::L2Distance(),
      /*exclude_target=*/true, target_id);
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace deepeverest
