#ifndef DEEPEVEREST_BASELINES_LRU_CACHE_H_
#define DEEPEVEREST_BASELINES_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "baselines/query_engine.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace baselines {

/// \brief LRU Cache baseline (§4.1): a fixed-budget disk cache of layer
/// activations with least-recently-used layer eviction. Queries hit the
/// cache like PreprocessAll or miss like ReprocessAll; after a miss the
/// queried layer's activations are persisted to the cache.
class LruCacheEngine : public QueryEngine {
 public:
  /// Does not take ownership.
  LruCacheEngine(nn::InferenceEngine* inference, storage::FileStore* store,
                 uint64_t budget_bytes)
      : inference_(inference),
        store_(store),
        activations_(store),
        budget_bytes_(budget_bytes) {}

  std::string name() const override { return "LRU Cache"; }

  Result<core::TopKResult> TopKHighest(const core::NeuronGroup& group, int k,
                                       core::DistancePtr dist) override;
  Result<core::TopKResult> TopKMostSimilar(uint32_t target_id,
                                           const core::NeuronGroup& group,
                                           int k,
                                           core::DistancePtr dist) override;

  Result<uint64_t> StorageBytes() const override { return cached_bytes_; }

  bool IsCached(int layer) const { return by_layer_.count(layer) != 0; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  /// Returns the layer's activation matrix, via the cache or recomputation,
  /// then updates recency/evictions.
  Result<storage::LayerActivationMatrix> GetLayer(int layer);

  Status EvictUntilWithinBudget();

  nn::InferenceEngine* inference_;
  storage::FileStore* store_;
  storage::ActivationStore activations_;
  uint64_t budget_bytes_;
  uint64_t cached_bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  std::list<int> recency_;  // front = most recently used layer
  std::unordered_map<int, std::list<int>::iterator> by_layer_;
};

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_LRU_CACHE_H_
