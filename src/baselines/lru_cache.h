#ifndef DEEPEVEREST_BASELINES_LRU_CACHE_H_
#define DEEPEVEREST_BASELINES_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "baselines/query_engine.h"
#include "common/mutex.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace baselines {

/// \brief LRU Cache baseline (§4.1): a fixed-budget disk cache of layer
/// activations with least-recently-used layer eviction. Queries hit the
/// cache like PreprocessAll or miss like ReprocessAll; after a miss the
/// queried layer's activations are persisted to the cache.
///
/// Byte accounting mirrors IqaCache: the bytes recorded when a layer enters
/// the cache are exactly the bytes subtracted when it leaves (kept in
/// `bytes_by_layer_`), so `cached_bytes_` can never drift from the sum of
/// resident layers — regardless of model/dataset geometry changes between
/// insert and evict, or of a layer being re-admitted after eviction.
///
/// Thread-safety: all public methods are safe to call concurrently (one
/// mutex serialises cache bookkeeping), so the engine can serve as a
/// fallback cache under the concurrent query service. Concurrent misses of
/// *different* layers serialise on the mutex — acceptable for a baseline.
class LruCacheEngine : public QueryEngine {
 public:
  /// Does not take ownership.
  LruCacheEngine(nn::InferenceEngine* inference, storage::FileStore* store,
                 uint64_t budget_bytes)
      : inference_(inference),
        store_(store),
        activations_(store),
        budget_bytes_(budget_bytes) {}

  std::string name() const override { return "LRU Cache"; }

  Result<core::TopKResult> TopKHighest(const core::NeuronGroup& group, int k,
                                       core::DistancePtr dist) override;
  Result<core::TopKResult> TopKMostSimilar(uint32_t target_id,
                                           const core::NeuronGroup& group,
                                           int k,
                                           core::DistancePtr dist) override;

  Result<uint64_t> StorageBytes() const override {
    common::MutexLock lock(&mu_);
    return cached_bytes_;
  }

  bool IsCached(int layer) const {
    common::MutexLock lock(&mu_);
    return by_layer_.count(layer) != 0;
  }
  int64_t hits() const {
    common::MutexLock lock(&mu_);
    return hits_;
  }
  int64_t misses() const {
    common::MutexLock lock(&mu_);
    return misses_;
  }

 private:
  /// Returns the layer's activation matrix, via the cache or recomputation,
  /// then updates recency/evictions. A miss's inference cost is charged to
  /// `receipt` (exact per-caller attribution; hits add nothing).
  Result<storage::LayerActivationMatrix> GetLayer(int layer,
                                                  nn::InferenceReceipt* receipt);

  /// Drops `layer` from cache state and disk.
  Status EvictLocked(int layer) REQUIRES(mu_);

  Status EvictUntilWithinBudgetLocked() REQUIRES(mu_);

  nn::InferenceEngine* inference_;
  storage::FileStore* store_;
  storage::ActivationStore activations_;
  uint64_t budget_bytes_;

  mutable common::Mutex mu_;
  uint64_t cached_bytes_ GUARDED_BY(mu_) = 0;  // == sum of bytes_by_layer_
  int64_t hits_ GUARDED_BY(mu_) = 0;
  int64_t misses_ GUARDED_BY(mu_) = 0;
  /// Front = most recently used layer.
  std::list<int> recency_ GUARDED_BY(mu_);
  std::unordered_map<int, std::list<int>::iterator> by_layer_
      GUARDED_BY(mu_);
  std::unordered_map<int, uint64_t> bytes_by_layer_ GUARDED_BY(mu_);
};

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_LRU_CACHE_H_
