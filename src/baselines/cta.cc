#include "baselines/cta.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

namespace deepeverest {
namespace baselines {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sorted best-first top-k buffer (duplicated from nta.cc's internal helper
/// on purpose: the baselines must not depend on NTA internals).
class TopK {
 public:
  TopK(int k, bool smaller_is_better)
      : k_(static_cast<size_t>(k)), smaller_(smaller_is_better) {}

  void Offer(uint32_t id, double value) {
    if (entries_.size() == k_ && !Better(value, entries_.back().value)) return;
    auto it = std::upper_bound(entries_.begin(), entries_.end(), value,
                               [this](double v, const core::ResultEntry& e) {
                                 return Better(v, e.value);
                               });
    entries_.insert(it, core::ResultEntry{id, value});
    if (entries_.size() > k_) entries_.pop_back();
  }
  bool full() const { return entries_.size() == k_; }
  double Worst() const {
    return full() ? entries_.back().value : (smaller_ ? kInf : -kInf);
  }
  std::vector<core::ResultEntry> Take() { return std::move(entries_); }

 private:
  bool Better(double a, double b) const { return smaller_ ? a < b : a > b; }
  size_t k_;
  bool smaller_;
  std::vector<core::ResultEntry> entries_;
};

}  // namespace

CtaResult CtaMostSimilar(const storage::LayerActivationMatrix& matrix,
                         const std::vector<int64_t>& neurons,
                         const std::vector<float>& target_acts, int k,
                         const core::DistancePtr& dist, bool exclude_target,
                         uint32_t target_id) {
  const core::DistancePtr d = dist != nullptr ? dist : core::L2Distance();
  const size_t g = neurons.size();
  const uint32_t n = matrix.num_inputs;

  // Build the AbsDiff relation: per neuron, inputIDs sorted by
  // |act - target| ascending.
  std::vector<std::vector<uint32_t>> lists(g);
  std::vector<std::vector<double>> gaps(g);
  for (size_t i = 0; i < g; ++i) {
    gaps[i].resize(n);
    lists[i].resize(n);
    std::iota(lists[i].begin(), lists[i].end(), 0u);
    const double s = target_acts[i];
    for (uint32_t id = 0; id < n; ++id) {
      gaps[i][id] =
          std::abs(static_cast<double>(matrix.At(id, neurons[i])) - s);
    }
    std::sort(lists[i].begin(), lists[i].end(),
              [&](uint32_t a, uint32_t b) {
                if (gaps[i][a] != gaps[i][b]) return gaps[i][a] < gaps[i][b];
                return a < b;
              });
  }

  TopK top(k, /*smaller_is_better=*/true);
  std::unordered_set<uint32_t> seen;
  std::vector<double> diffs(g);
  auto random_access = [&](uint32_t id) {
    if (!seen.insert(id).second) return;
    if (exclude_target && id == target_id) return;
    for (size_t i = 0; i < g; ++i) diffs[i] = gaps[i][id];
    top.Offer(id, d->Aggregate(diffs.data(), g));
  };

  CtaResult out;
  std::vector<double> frontier(g);
  for (uint32_t depth = 0; depth < n; ++depth) {
    for (size_t i = 0; i < g; ++i) {
      random_access(lists[i][depth]);
      frontier[i] = gaps[i][lists[i][depth]];
    }
    out.sorted_depth = depth + 1;
    const double threshold = d->Aggregate(frontier.data(), g);
    if (top.full() && top.Worst() <= threshold) break;
  }
  out.top.entries = top.Take();
  return out;
}

CtaResult CtaHighest(const storage::LayerActivationMatrix& matrix,
                     const std::vector<int64_t>& neurons, int k,
                     const core::DistancePtr& dist) {
  const core::DistancePtr d = dist != nullptr ? dist : core::L2Distance();
  const size_t g = neurons.size();
  const uint32_t n = matrix.num_inputs;

  std::vector<std::vector<uint32_t>> lists(g);
  for (size_t i = 0; i < g; ++i) {
    lists[i].resize(n);
    std::iota(lists[i].begin(), lists[i].end(), 0u);
    std::sort(lists[i].begin(), lists[i].end(),
              [&](uint32_t a, uint32_t b) {
                const float va = matrix.At(a, neurons[i]);
                const float vb = matrix.At(b, neurons[i]);
                if (va != vb) return va > vb;
                return a < b;
              });
  }

  TopK top(k, /*smaller_is_better=*/false);
  std::unordered_set<uint32_t> seen;
  std::vector<double> values(g);
  auto random_access = [&](uint32_t id) {
    if (!seen.insert(id).second) return;
    for (size_t i = 0; i < g; ++i) values[i] = matrix.At(id, neurons[i]);
    top.Offer(id, d->Aggregate(values.data(), g));
  };

  CtaResult out;
  std::vector<double> frontier(g);
  for (uint32_t depth = 0; depth < n; ++depth) {
    for (size_t i = 0; i < g; ++i) {
      random_access(lists[i][depth]);
      frontier[i] =
          std::max<double>(0.0, matrix.At(lists[i][depth], neurons[i]));
    }
    out.sorted_depth = depth + 1;
    const double threshold = d->Aggregate(frontier.data(), g);
    if (top.full() && top.Worst() >= threshold) break;
  }
  out.top.entries = top.Take();
  return out;
}

}  // namespace baselines
}  // namespace deepeverest
