#include "baselines/priority_cache.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/nta.h"

namespace deepeverest {
namespace baselines {

Status PriorityCacheEngine::Preprocess() {
  if (preprocessed_) return Status::OK();
  const nn::Model& model = inference_->model();
  const uint32_t num_inputs = inference_->dataset().size();

  // Cost model: for each layer, the benefit of materialising it is the
  // query time saved (recomputation time under the GPU cost model minus
  // load time at the modelled disk throughput) per byte of storage.
  struct Candidate {
    int layer;
    uint64_t bytes;
    double benefit_per_byte;
  };
  std::vector<Candidate> candidates;
  for (int layer = 0; layer < model.num_layers(); ++layer) {
    const uint64_t bytes = storage::ActivationStore::PersistedBytes(
        num_inputs, static_cast<uint64_t>(model.NeuronCount(layer)));
    const double recompute_seconds = inference_->cost_model().BatchSeconds(
        num_inputs, inference_->batch_size(), model.CumulativeMacs(layer));
    const double load_seconds =
        static_cast<double>(bytes) / disk_read_bytes_per_second_;
    const double benefit = recompute_seconds - load_seconds;
    candidates.push_back(
        Candidate{layer, bytes, benefit / static_cast<double>(bytes)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.benefit_per_byte != b.benefit_per_byte) {
                return a.benefit_per_byte > b.benefit_per_byte;
              }
              return a.layer < b.layer;
            });
  uint64_t used = 0;
  for (const Candidate& c : candidates) {
    if (c.benefit_per_byte <= 0.0) continue;
    if (used + c.bytes > budget_bytes_) continue;
    used += c.bytes;
    chosen_layers_.push_back(c.layer);
  }
  std::sort(chosen_layers_.begin(), chosen_layers_.end());

  // One inference pass over the dataset materialising the chosen layers.
  if (!chosen_layers_.empty()) {
    std::vector<storage::LayerActivationMatrix> matrices;
    for (int layer : chosen_layers_) {
      matrices.push_back(storage::LayerActivationMatrix::Make(
          num_inputs, static_cast<uint64_t>(model.NeuronCount(layer))));
    }
    std::vector<Tensor> outputs;
    for (uint32_t id = 0; id < num_inputs; ++id) {
      DE_RETURN_NOT_OK(inference_->ComputeAllLayers(id, &outputs));
      for (size_t i = 0; i < chosen_layers_.size(); ++i) {
        const Tensor& out = outputs[static_cast<size_t>(chosen_layers_[i])];
        std::copy(out.vec().begin(), out.vec().end(),
                  matrices[i].MutableRow(id));
      }
    }
    for (size_t i = 0; i < chosen_layers_.size(); ++i) {
      DE_RETURN_NOT_OK(activations_.Save(model.name(), chosen_layers_[i],
                                         matrices[i], /*sync=*/true));
      stored_.insert(chosen_layers_[i]);
      stored_bytes_ += storage::ActivationStore::PersistedBytes(
          matrices[i].num_inputs, matrices[i].num_neurons);
    }
  }
  preprocessed_ = true;
  return Status::OK();
}

Result<storage::LayerActivationMatrix> PriorityCacheEngine::GetLayer(
    int layer, nn::InferenceReceipt* receipt) {
  if (stored_.count(layer) != 0) {
    return activations_.Load(inference_->model().name(), layer);
  }
  return ComputeLayerMatrix(inference_, layer, receipt);
}

Result<core::TopKResult> PriorityCacheEngine::TopKHighest(
    const core::NeuronGroup& group, int k, core::DistancePtr dist) {
  Stopwatch watch;
  nn::InferenceReceipt receipt;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      GetLayer(group.layer, &receipt));
  core::TopKResult result = core::ScanHighest(
      matrix, group.neurons, k,
      dist != nullptr ? dist : core::L2Distance());
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<core::TopKResult> PriorityCacheEngine::TopKMostSimilar(
    uint32_t target_id, const core::NeuronGroup& group, int k,
    core::DistancePtr dist) {
  if (target_id >= inference_->dataset().size()) {
    return Status::OutOfRange("target input out of range");
  }
  Stopwatch watch;
  nn::InferenceReceipt receipt;
  DE_ASSIGN_OR_RETURN(storage::LayerActivationMatrix matrix,
                      GetLayer(group.layer, &receipt));
  const std::vector<float> target_acts =
      TargetActsFromMatrix(matrix, group.neurons, target_id);
  core::TopKResult result = core::ScanMostSimilar(
      matrix, group.neurons, target_acts, k,
      dist != nullptr ? dist : core::L2Distance(),
      /*exclude_target=*/true, target_id);
  result.stats.inputs_run = receipt.inputs_run;
  result.stats.batches_run = receipt.batches_run;
  result.stats.simulated_gpu_seconds = receipt.simulated_gpu_seconds;
  result.stats.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace baselines
}  // namespace deepeverest
