#ifndef DEEPEVEREST_BASELINES_CTA_H_
#define DEEPEVEREST_BASELINES_CTA_H_

#include <cstdint>
#include <vector>

#include "core/distance.h"
#include "core/query.h"
#include "storage/activation_store.h"

namespace deepeverest {
namespace baselines {

/// \brief Result of a classic threshold algorithm run, including the
/// maximal sorted-access depth — the quantity NTA's instance-optimality
/// proof (Theorem 4.1) bounds NTA's accesses against (d + 2R).
struct CtaResult {
  core::TopKResult top;
  /// Depth of sequential (sorted) accesses at which CTA halted, maximised
  /// over the group's lists.
  int64_t sorted_depth = 0;
};

/// \brief Fagin's classic threshold algorithm [11] over a fully
/// materialised activation matrix.
///
/// Builds one sorted list per neuron of |act - target| ascending, walks the
/// lists in lockstep doing sorted accesses, random-accesses every newly seen
/// input in the other lists to compute its exact distance, and halts when
/// the k-th best distance is at or below the threshold
/// dist(list_0[d], ..., list_{g-1}[d]).
///
/// As the paper argues (§4.1), CTA does not reduce query time in our setting
/// because the matrix itself costs a full inference pass — this
/// implementation exists as a correctness oracle, for Table 1, and to
/// measure `sorted_depth` for the instance-optimality experiments.
CtaResult CtaMostSimilar(const storage::LayerActivationMatrix& matrix,
                         const std::vector<int64_t>& neurons,
                         const std::vector<float>& target_acts, int k,
                         const core::DistancePtr& dist, bool exclude_target,
                         uint32_t target_id);

/// CTA for top-k highest queries: sorted lists are activations descending;
/// the threshold aggregates the current depth's activations.
CtaResult CtaHighest(const storage::LayerActivationMatrix& matrix,
                     const std::vector<int64_t>& neurons, int k,
                     const core::DistancePtr& dist);

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_CTA_H_
