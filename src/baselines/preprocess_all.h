#ifndef DEEPEVEREST_BASELINES_PREPROCESS_ALL_H_
#define DEEPEVEREST_BASELINES_PREPROCESS_ALL_H_

#include <string>

#include "baselines/query_engine.h"
#include "storage/file_store.h"

namespace deepeverest {
namespace baselines {

/// \brief PreprocessAll baseline (§4.1): materialises every layer's
/// activations for every input up front; queries load the stored layer and
/// scan it. Fastest queries, maximal storage (the "full materialisation"
/// all budgets are measured against).
class PreprocessAll : public QueryEngine {
 public:
  /// Does not take ownership; both must outlive this object.
  PreprocessAll(nn::InferenceEngine* inference, storage::FileStore* store)
      : inference_(inference), store_(store), activations_(store) {}

  std::string name() const override { return "PreprocessAll"; }

  /// One full inference pass over the dataset; persists one file per layer.
  Status Preprocess() override;

  Result<core::TopKResult> TopKHighest(const core::NeuronGroup& group, int k,
                                       core::DistancePtr dist) override;
  Result<core::TopKResult> TopKMostSimilar(uint32_t target_id,
                                           const core::NeuronGroup& group,
                                           int k,
                                           core::DistancePtr dist) override;

  Result<uint64_t> StorageBytes() const override {
    return store_->TotalBytes();
  }

  /// Wall-clock seconds spent in the preprocessing pass, split as in the
  /// paper's Figure 10 (inference vs persistence).
  double preprocess_inference_seconds() const {
    return preprocess_inference_seconds_;
  }
  double preprocess_persist_seconds() const {
    return preprocess_persist_seconds_;
  }

 private:
  Result<storage::LayerActivationMatrix> LoadLayer(int layer) const;

  nn::InferenceEngine* inference_;
  storage::FileStore* store_;
  storage::ActivationStore activations_;
  bool preprocessed_ = false;
  double preprocess_inference_seconds_ = 0.0;
  double preprocess_persist_seconds_ = 0.0;
};

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_PREPROCESS_ALL_H_
