#ifndef DEEPEVEREST_BASELINES_QUERY_ENGINE_H_
#define DEEPEVEREST_BASELINES_QUERY_ENGINE_H_

#include <string>

#include "common/result.h"
#include "core/distance.h"
#include "core/query.h"
#include "nn/inference.h"
#include "storage/activation_store.h"

namespace deepeverest {
namespace baselines {

/// \brief Common interface for the baseline strategies of paper §4.1 (and
/// for DeepEverest itself via an adapter), so multi-query workload
/// experiments can drive every method identically.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  virtual std::string name() const = 0;

  /// One-time preprocessing (PreprocessAll materialises everything;
  /// PriorityCache picks and materialises layers; others are no-ops).
  virtual Status Preprocess() { return Status::OK(); }

  /// Top-k highest query. `dist` nullptr selects l2.
  virtual Result<core::TopKResult> TopKHighest(const core::NeuronGroup& group,
                                               int k,
                                               core::DistancePtr dist) = 0;

  /// Top-k most-similar query; `target_id` is excluded from the result.
  virtual Result<core::TopKResult> TopKMostSimilar(
      uint32_t target_id, const core::NeuronGroup& group, int k,
      core::DistancePtr dist) = 0;

  /// Bytes of disk storage this strategy currently uses.
  virtual Result<uint64_t> StorageBytes() const { return uint64_t{0}; }
};

/// Computes the full activation matrix of one layer by running inference on
/// every input (the ReprocessAll inner step, shared by several baselines).
/// `receipt`, when non-null, is charged this call's exact inference cost.
Result<storage::LayerActivationMatrix> ComputeLayerMatrix(
    nn::InferenceEngine* inference, int layer,
    nn::InferenceReceipt* receipt = nullptr);

/// Reads the target input's group activations out of a matrix.
std::vector<float> TargetActsFromMatrix(
    const storage::LayerActivationMatrix& matrix,
    const std::vector<int64_t>& neurons, uint32_t target_id);

}  // namespace baselines
}  // namespace deepeverest

#endif  // DEEPEVEREST_BASELINES_QUERY_ENGINE_H_
