#ifndef DEEPEVEREST_NET_QUERY_SERVER_H_
#define DEEPEVEREST_NET_QUERY_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "core/query_context.h"
#include "core/query_spec.h"
#include "net/http_server.h"
#include "service/engine_registry.h"
#include "service/metrics_registry.h"
#include "service/query_service.h"

namespace deepeverest {
namespace net {

struct QueryServerOptions {
  HttpServerOptions http;
};

/// \brief The HTTP front-end over an EngineRegistry of QueryServices: one
/// server fronting several models, drivable by anything that speaks
/// HTTP/1.1. Requests decode to the one canonical core::QuerySpec (shared
/// wire codec in core/query_spec_json.h) and route by their `model` field
/// to the named model's service — or to the registry's default (first
/// registered) when the field is absent; an unknown model is 404.
///
/// Routes (see README "Network API" for the full request/response schema):
///  - `POST /v1/query` — body: JSON query spec (+ optional "model"
///    routing field, or a "ql" field carrying declarative QL text instead
///    of the structured query fields). Replies 200 with the top-k entries
///    + per-query stats, or a mapped error status.
///  - `GET /v1/query?...` — same query encoded as URL parameters
///    (`neurons` comma-separated). With `stream=1` (URL parameter on GET
///    or POST, or a `"stream": 1` POST-body member) the reply
///    is a chunked `application/x-ndjson` stream: one `progress` event per
///    NTA round (the confirmed-so-far entries), then a final `result` (or
///    `error`) event. A client that disconnects mid-stream cancels the
///    query — the service stops spending inference on an answer nobody
///    will read.
///  - `POST /v1/ql` (and `GET /v1/ql?ql=...`) — the declarative entry
///    point: the `ql` field/parameter holds `SELECT TOPK ...` text, the
///    envelope fields (`model`, `session_id`, `qos`, `deadline_ms`,
///    `weight`, `stream`) apply as on /v1/query. Full QoS/streaming
///    semantics — QL over the wire is not a side door.
///  - `DELETE /v1/query/<id>` — requests cooperative cancellation of a
///    live query by its query id (returned as `query_id` in the result
///    JSON and in the streaming `accepted` event; identical to the trace
///    id). Replies 200 `{"query_id":...,"cancel_requested":true}` when the
///    query was still live — queued queries fail at dispatch, running ones
///    abort between NTA rounds, parked ones fail at resume — or 404 once
///    it has finished (cancelling a finished query has no meaning).
///  - `POST /v1/ingest` — body `{"model": ..., "inputs": [{"values":
///    [...], "label": ...}, ...]}`: durably accepts new inputs for the
///    routed model while queries keep running; the reply carries the
///    assigned dense ids (`first_id`, `count`) and the dataset size after
///    the batch. 429 when the incremental-apply backlog is full (retry),
///    404 when the routed model serves queries only (no ingest pipeline
///    attached). Acknowledged inputs survive crashes and are indexed
///    exactly once.
///  - `GET /v1/snapshot` — the routed model's ingest/snapshot state
///    (`?model=...`, default like /v1/query): per-layer index watermarks,
///    backlog counters, and the last committed snapshot's size/age.
///  - `POST /v1/snapshot/save` — forces a full catch-up and a committed
///    snapshot; replies after the manifest rename is durable.
///  - `GET /v1/models` — the models served here (and which is default).
///  - `GET /v1/stats` — one ServiceStats section per model, plus server
///    uptime and build info.
///  - `GET /v1/metrics` — the Prometheus text exposition (format 0.0.4):
///    per-model query counters and latency histograms, IQA cache and batch
///    scheduler stats, HTTP front-end counters, and build info.
///  - `GET /v1/trace/<id>` — a recently finished query's span tree, while
///    it is still in the service's trace ring. Every query is traced;
///    `trace=1` on /v1/query or /v1/ql (URL parameter or body member, like
///    `stream`) additionally inlines the span tree in the response — as a
///    `"trace"` member of the result JSON, or as a final
///    `{"event":"trace",...}` NDJSON event when streaming.
///  - `GET /healthz` — 200 with a small JSON body (status, uptime, build)
///    once the server accepts connections.
///
/// Status mapping: InvalidArgument→400, NotFound→404,
/// ResourceExhausted→429 (admission backpressure: retry),
/// FailedPrecondition→503 (shutting down), DeadlineExceeded→504 (expired
/// while queued — rejected without running — or mid-query),
/// Cancelled→499, anything else→500. Error bodies are
/// `{"error":{"code":...,"message":...}}`.
///
/// The server holds the registry (and through it the services/engines) by
/// pointer; all must outlive it. Responses are computed on the routed
/// QueryService's worker pool — the HTTP connection threads only parse,
/// submit, and block on the future, so concurrency limits and QoS remain
/// wholly each service's.
class QueryServer {
 public:
  static Result<std::unique_ptr<QueryServer>> Start(
      service::EngineRegistry* registry, const QueryServerOptions& options);

  /// The bound port (resolved when options.http.port was 0).
  uint16_t port() const { return http_->port(); }

  /// Stops the HTTP listener; in-flight requests finish first. The
  /// underlying services are not shut down (they are not owned).
  void Shutdown();

  /// The server's metrics registry — /v1/metrics renders it. Additional
  /// subsystems may AddCollector; handles registered by the server itself
  /// are removed in Shutdown().
  service::MetricsRegistry* metrics() { return &metrics_; }

 private:
  explicit QueryServer(service::EngineRegistry* registry)
      : registry_(registry) {}

  void Handle(const HttpRequest& request, HttpResponseWriter* writer);
  /// Shared by /v1/query and /v1/ql (`require_ql` demands the ql field).
  void HandleQuery(const HttpRequest& request, HttpResponseWriter* writer,
                   bool require_ql);
  void HandleStreamingQuery(service::QueryService* service,
                            core::QuerySpec spec, HttpResponseWriter* writer,
                            bool want_trace);
  void HandleModels(HttpResponseWriter* writer);
  void HandleIngest(const HttpRequest& request, HttpResponseWriter* writer);
  /// GET /v1/snapshot (`save` false) and POST /v1/snapshot/save (true).
  void HandleSnapshot(const HttpRequest& request, HttpResponseWriter* writer,
                      bool save);
  void HandleStats(HttpResponseWriter* writer);
  void HandleMetrics(HttpResponseWriter* writer);
  void HandleTrace(const std::string& path, HttpResponseWriter* writer);
  void HandleCancel(const std::string& path, HttpResponseWriter* writer);
  void HandleHealthz(HttpResponseWriter* writer);

  /// One live (admitted, unfinished) query's control handle, registered for
  /// the duration of the request that submitted it. Backs
  /// `DELETE /v1/query/<id>` and the per-model `states` section of
  /// /v1/stats. Weak: the service and client own the context's lifetime.
  struct LiveQuery {
    std::weak_ptr<core::QueryContext> ctx;
    service::QueryService* service = nullptr;
  };
  void RegisterLive(uint64_t query_id,
                    const std::shared_ptr<core::QueryContext>& ctx,
                    service::QueryService* service);
  void UnregisterLive(uint64_t query_id);

  service::EngineRegistry* registry_;
  std::unique_ptr<HttpServer> http_;
  service::MetricsRegistry metrics_;
  std::vector<int64_t> collector_handles_;
  Stopwatch uptime_;
  int64_t start_unix_seconds_ = 0;

  mutable common::Mutex live_mu_;
  /// Live queries by query id (== trace id, process-wide unique). Entries
  /// are erased when their request finishes; expired stragglers are pruned
  /// opportunistically by /v1/stats.
  std::map<uint64_t, LiveQuery> live_ GUARDED_BY(live_mu_);
};

}  // namespace net
}  // namespace deepeverest

#endif  // DEEPEVEREST_NET_QUERY_SERVER_H_
