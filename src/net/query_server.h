#ifndef DEEPEVEREST_NET_QUERY_SERVER_H_
#define DEEPEVEREST_NET_QUERY_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "net/http_server.h"
#include "service/query_service.h"

namespace deepeverest {
namespace net {

struct QueryServerOptions {
  HttpServerOptions http;
  /// When non-empty, requests naming a different "model" are rejected with
  /// 404 — one QueryServer serves exactly one engine/model.
  std::string model_name;
};

/// \brief The HTTP front-end over a QueryService: the wire protocol that
/// makes the serving tier drivable by anything that speaks HTTP/1.1.
///
/// Routes (see README "Network API" for the full request/response schema):
///  - `POST /v1/query` — body: JSON query (model, kind, layer, neurons, k,
///    theta, qos, deadline_ms, session_id, weight). Replies 200 with the
///    top-k entries + per-query stats, or a mapped error status.
///  - `GET /v1/query?...` — same query encoded as URL parameters
///    (`neurons` comma-separated). With `stream=1` the reply is a chunked
///    `application/x-ndjson` stream: one `progress` event per NTA round
///    (the confirmed-so-far entries), then a final `result` (or `error`)
///    event. A client that disconnects mid-stream cancels the query — the
///    service stops spending inference on an answer nobody will read.
///  - `GET /v1/stats` — ServiceStats snapshot as JSON.
///  - `GET /healthz` — 200 "ok" once the server accepts connections.
///
/// Status mapping: InvalidArgument→400, NotFound→404,
/// ResourceExhausted→429 (admission backpressure: retry),
/// FailedPrecondition→503 (shutting down), DeadlineExceeded→504 (expired
/// while queued — rejected without running — or mid-query),
/// Cancelled→499, anything else→500. Error bodies are
/// `{"error":{"code":...,"message":...}}`.
///
/// The server holds the service and engine by pointer; both must outlive
/// it. Responses are computed on the QueryService's worker pool — the
/// HTTP connection threads only parse, submit, and block on the future, so
/// concurrency limits and QoS remain wholly the service's.
class QueryServer {
 public:
  static Result<std::unique_ptr<QueryServer>> Start(
      service::QueryService* service, const QueryServerOptions& options);

  /// The bound port (resolved when options.http.port was 0).
  uint16_t port() const { return http_->port(); }

  /// Stops the HTTP listener; in-flight requests finish first. The
  /// underlying QueryService is not shut down (it is not owned).
  void Shutdown() { http_->Shutdown(); }

 private:
  QueryServer(service::QueryService* service, QueryServerOptions options)
      : service_(service), options_(std::move(options)) {}

  void Handle(const HttpRequest& request, HttpResponseWriter* writer);
  void HandleQuery(const HttpRequest& request, HttpResponseWriter* writer);
  void HandleStreamingQuery(service::TopKQuery query,
                            HttpResponseWriter* writer);
  void HandleStats(HttpResponseWriter* writer);

  service::QueryService* service_;
  QueryServerOptions options_;
  std::unique_ptr<HttpServer> http_;
};

}  // namespace net
}  // namespace deepeverest

#endif  // DEEPEVEREST_NET_QUERY_SERVER_H_
