#ifndef DEEPEVEREST_NET_HTTP_SERVER_H_
#define DEEPEVEREST_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "net/http.h"

namespace deepeverest {
namespace net {

/// \brief Connection-side response channel handed to the request handler.
///
/// Two modes, chosen per request:
///  - `WriteResponse()`: one buffered response (Content-Length framing).
///  - `BeginChunked()` + `WriteChunk()`* + `EndChunked()`: a streaming
///    response (`Transfer-Encoding: chunked`), used by the NDJSON progress
///    stream. `WriteChunk` returns false once the peer is gone (send
///    failure), which is the server's disconnect signal — streaming
///    handlers use it to cancel the query they are narrating.
///
/// Writers are single-threaded per connection from the server's point of
/// view, but a streaming handler may legally call WriteChunk from the
/// worker thread executing the query while the connection thread waits for
/// the final result — the two never write concurrently (progress events
/// all happen-before the future resolves); a mutex still serialises writes
/// so a misbehaving handler cannot interleave bytes. The accessors take the
/// same mutex: the connection thread reads status()/keep_alive() after the
/// handler returns, and relying on the future's happens-before alone would
/// leave those reads racy the moment a handler misbehaves.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(int fd) : fd_(fd) {}

  HttpResponseWriter(const HttpResponseWriter&) = delete;
  HttpResponseWriter& operator=(const HttpResponseWriter&) = delete;

  /// Sends a complete response. `extra_headers` are appended after the
  /// defaults (Content-Type, Content-Length, Connection).
  void WriteResponse(
      int status, const std::string& content_type, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

  /// Starts a chunked response. Returns false when the head could not be
  /// sent (peer already gone).
  bool BeginChunked(int status, const std::string& content_type);
  /// Sends one chunk (no-op for empty data — an empty chunk would terminate
  /// the stream). Returns false once the peer is unreachable; later calls
  /// keep returning false without touching the socket.
  bool WriteChunk(const std::string& data);
  /// Terminates the chunked body.
  bool EndChunked();

  /// True after any response bytes were sent (routing decides 404 vs
  /// nothing-left-to-do from this).
  bool response_started() const {
    common::MutexLock lock(&mu_);
    return started_;
  }
  /// The status code of the response that was started; 0 before any. Feeds
  /// the server's per-class response counters.
  int status() const {
    common::MutexLock lock(&mu_);
    return status_;
  }
  /// True when this response keeps the connection open afterwards (a
  /// chunked body the handler never terminated loses framing, so it
  /// forces a close too).
  bool keep_alive() const {
    common::MutexLock lock(&mu_);
    return keep_alive_ && !peer_gone_ && !chunked_;
  }
  void set_keep_alive(bool keep) {
    common::MutexLock lock(&mu_);
    keep_alive_ = keep;
  }

 private:
  bool SendAll(const char* data, size_t size) REQUIRES(mu_);

  const int fd_;
  mutable common::Mutex mu_;  // serialises socket writes + response state
  bool started_ GUARDED_BY(mu_) = false;  // any bytes sent
  bool chunked_ GUARDED_BY(mu_) = false;  // between Begin/EndChunked
  bool peer_gone_ GUARDED_BY(mu_) = false;  // a send failed; peer is dead
  bool keep_alive_ GUARDED_BY(mu_) = true;
  int status_ GUARDED_BY(mu_) = 0;  // status of the started response
};

/// \brief Monotonic counters for the HTTP front-end, exported at
/// /v1/metrics. `requests_handled` counts every response written, including
/// the server's own parse-error replies; the per-class counters split it by
/// status family.
struct HttpServerStats {
  int64_t connections_accepted = 0;
  int64_t requests_handled = 0;
  int64_t responses_2xx = 0;
  int64_t responses_4xx = 0;
  int64_t responses_5xx = 0;
};

struct HttpServerOptions {
  /// Loopback by default: the demo server has no auth story, so it should
  /// not listen on external interfaces unless the operator says so.
  std::string bind_address = "127.0.0.1";
  /// 0 lets the kernel pick a free port (tests); `port()` reports the
  /// actual one either way.
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Idle-connection read timeout; a keep-alive connection quiet for this
  /// long is closed. Also bounds how long Shutdown() waits for connection
  /// threads to notice the stop flag.
  double read_timeout_seconds = 30.0;
};

/// \brief A dependency-free HTTP/1.1 server: POSIX sockets, one blocking
/// accept loop plus one thread per live connection.
///
/// Thread-per-connection is the right simplicity/perf point here: the
/// expensive work (query execution) already runs on the QueryService's
/// bounded worker pool, so connection threads mostly block on the future —
/// admission control and backpressure live in the service, not the
/// listener. Keep-alive is honoured; pipelined requests on one connection
/// are served in order.
class HttpServer {
 public:
  /// Invoked once per request. Must produce exactly one response via the
  /// writer; if it returns without writing anything the server sends 500.
  using Handler = std::function<void(const HttpRequest&, HttpResponseWriter*)>;

  /// Binds, listens, and starts the accept thread.
  static Result<std::unique_ptr<HttpServer>> Start(
      const HttpServerOptions& options, Handler handler);

  /// Stops accepting, closes live connections, joins all threads.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolved when options.port was 0).
  uint16_t port() const { return port_; }

  /// Point-in-time counter snapshot (relaxed reads; cheap to poll).
  HttpServerStats stats() const {
    HttpServerStats out;
    out.connections_accepted =
        connections_accepted_.load(std::memory_order_relaxed);
    out.requests_handled = requests_handled_.load(std::memory_order_relaxed);
    out.responses_2xx = responses_2xx_.load(std::memory_order_relaxed);
    out.responses_4xx = responses_4xx_.load(std::memory_order_relaxed);
    out.responses_5xx = responses_5xx_.load(std::memory_order_relaxed);
    return out;
  }

  /// Idempotent orderly stop; also run by the destructor.
  void Shutdown();

 private:
  /// One live connection: its serving thread plus a done flag the accept
  /// loop sweeps on, so finished threads are joined and reclaimed while the
  /// server runs instead of accumulating until Shutdown().
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  HttpServer(HttpServerOptions options, Handler handler);

  void AcceptLoop();
  void ServeConnection(int fd, Connection* self);
  void CountResponse(int status);

  HttpServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_handled_{0};
  std::atomic<int64_t> responses_2xx_{0};
  std::atomic<int64_t> responses_4xx_{0};
  std::atomic<int64_t> responses_5xx_{0};

  std::thread accept_thread_;
  common::Mutex mu_;
  std::list<std::unique_ptr<Connection>> connections_ GUARDED_BY(mu_);
  std::set<int> live_fds_ GUARDED_BY(mu_);  // open connection sockets
};

}  // namespace net
}  // namespace deepeverest

#endif  // DEEPEVEREST_NET_HTTP_SERVER_H_
