#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

namespace deepeverest {
namespace net {

namespace {

/// Poll slice: how often blocked reads/accepts re-check the stop flag.
constexpr int kPollMillis = 100;

}  // namespace

// ---------------------------------------------------------------------------
// HttpResponseWriter
// ---------------------------------------------------------------------------

bool HttpResponseWriter::SendAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a disconnected peer must surface as EPIPE, not SIGPIPE —
    // disconnect detection is how streaming queries get cancelled.
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      peer_gone_ = true;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void HttpResponseWriter::WriteResponse(
    int status, const std::string& content_type, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  common::MutexLock lock(&mu_);
  if (started_ || peer_gone_) return;
  started_ = true;
  status_ = status;
  std::vector<std::pair<std::string, std::string>> headers;
  headers.emplace_back("Content-Type", content_type);
  headers.emplace_back("Content-Length", std::to_string(body.size()));
  headers.emplace_back("Connection", keep_alive_ ? "keep-alive" : "close");
  for (const auto& h : extra_headers) headers.push_back(h);
  const std::string head = FormatResponseHead(status, headers);
  if (SendAll(head.data(), head.size())) SendAll(body.data(), body.size());
}

bool HttpResponseWriter::BeginChunked(int status,
                                      const std::string& content_type) {
  common::MutexLock lock(&mu_);
  if (started_ || peer_gone_) return false;
  started_ = true;
  status_ = status;
  chunked_ = true;
  const std::string head = FormatResponseHead(
      status, {{"Content-Type", content_type},
               {"Transfer-Encoding", "chunked"},
               {"Connection", keep_alive_ ? "keep-alive" : "close"}});
  return SendAll(head.data(), head.size());
}

bool HttpResponseWriter::WriteChunk(const std::string& data) {
  common::MutexLock lock(&mu_);
  if (!chunked_ || peer_gone_) return false;
  if (data.empty()) return true;
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string frame;
  frame.reserve(data.size() + 24);
  frame += size_line;
  frame += data;
  frame += "\r\n";
  return SendAll(frame.data(), frame.size());
}

bool HttpResponseWriter::EndChunked() {
  common::MutexLock lock(&mu_);
  if (!chunked_) return false;
  chunked_ = false;
  if (peer_gone_) return false;
  static const char kLast[] = "0\r\n\r\n";
  return SendAll(kLast, sizeof(kLast) - 1);
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    const HttpServerOptions& options, Handler handler) {
  if (!handler) return Status::InvalidArgument("handler is required");
  if (options.read_timeout_seconds <= 0.0) {
    return Status::InvalidArgument("read_timeout_seconds must be > 0");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("invalid bind address: " +
                                   options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind " + options.bind_address + ":" +
                           std::to_string(options.port) + ": " + error);
  }
  if (::listen(fd, options.listen_backlog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname: " + error);
  }

  std::unique_ptr<HttpServer> server(
      new HttpServer(options, std::move(handler)));
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Shutdown() {
  if (stopping_.exchange(true)) {
    // A second caller must still wait for the joins below, but the first
    // caller owns them; the destructor is the only second caller in
    // practice and runs after an explicit Shutdown() returned.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock the accept loop.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock connection reads; their poll loops also see stopping_ within
  // one slice.
  {
    common::MutexLock lock(&mu_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::list<std::unique_ptr<Connection>> to_join;
  {
    common::MutexLock lock(&mu_);
    to_join.swap(connections_);
  }
  for (auto& connection : to_join) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion (fd/buffer limits) is transient under a
        // connection burst: back off briefly instead of killing the accept
        // loop for the life of the process.
        std::this_thread::sleep_for(std::chrono::milliseconds(kPollMillis));
        continue;
      }
      return;  // listener closed (shutdown) or fatal
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    common::MutexLock lock(&mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    // Reclaim finished connection threads before tracking the new one.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    live_fds_.insert(fd);
    connections_.push_back(std::make_unique<Connection>());
    Connection* connection = connections_.back().get();
    connection->thread =
        std::thread([this, fd, connection] { ServeConnection(fd, connection); });
  }
}

void HttpServer::CountResponse(int status) {
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  if (status >= 200 && status < 300) {
    responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 400 && status < 500) {
    responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 500) {
    responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::ServeConnection(int fd, Connection* self) {
  HttpRequestParser parser;
  char buffer[8192];
  auto last_activity = std::chrono::steady_clock::now();
  bool open = true;

  while (open && !stopping_.load(std::memory_order_acquire)) {
    // A pipelined follow-up request may already be fully buffered from a
    // previous read; a zero-byte feed lets the parser surface it before we
    // block on the socket for bytes that may never come.
    if (!parser.complete()) {
      const Status repumped = parser.Feed("", 0);
      if (!repumped.ok()) {
        HttpResponseWriter writer(fd);
        writer.set_keep_alive(false);
        const int status =
            repumped.code() != StatusCode::kResourceExhausted
                ? 400
                : (parser.body_too_large() ? 413 : 431);
        writer.WriteResponse(status, "text/plain", repumped.message() + "\n");
        CountResponse(writer.status());
        break;
      }
    }
    // Read until one full request is buffered (or the peer/timeout closes
    // the connection).
    while (!parser.complete()) {
      if (stopping_.load(std::memory_order_acquire)) {
        open = false;
        break;
      }
      const double idle = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              last_activity)
                              .count();
      if (idle > options_.read_timeout_seconds) {
        open = false;
        break;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, kPollMillis);
      if (ready < 0) {
        if (errno == EINTR) continue;
        open = false;
        break;
      }
      if (ready == 0) continue;
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        open = false;  // peer closed or error
        break;
      }
      last_activity = std::chrono::steady_clock::now();
      const Status fed = parser.Feed(buffer, static_cast<size_t>(n));
      if (!fed.ok()) {
        // Malformed head/body: answer once, then close (framing is lost).
        HttpResponseWriter writer(fd);
        writer.set_keep_alive(false);
        const int status =
            fed.code() != StatusCode::kResourceExhausted
                ? 400
                : (parser.body_too_large() ? 413 : 431);
        writer.WriteResponse(status, "text/plain", fed.message() + "\n");
        CountResponse(writer.status());
        open = false;
        break;
      }
    }
    if (!open || !parser.complete()) break;

    const HttpRequest request = parser.TakeRequest();
    HttpResponseWriter writer(fd);
    // HTTP/1.1 defaults to keep-alive; an explicit "Connection: close"
    // opts out (connection options are case-insensitive, RFC 9110 §7.6.1).
    // HTTP/1.0 closes unless the request says keep-alive.
    const std::string connection =
        AsciiLower(request.HeaderOrEmpty("connection"));
    if (connection == "close" ||
        (request.version == "HTTP/1.0" && connection != "keep-alive")) {
      writer.set_keep_alive(false);
    }
    handler_(request, &writer);
    if (!writer.response_started()) {
      writer.WriteResponse(500, "text/plain", "handler produced no response\n");
    }
    CountResponse(writer.status());
    open = writer.keep_alive();
    last_activity = std::chrono::steady_clock::now();
  }

  // Untrack before close so Shutdown() can never shutdown() a recycled fd
  // number; marking done last lets the accept loop's sweep join us.
  {
    common::MutexLock lock(&mu_);
    live_fds_.erase(fd);
  }
  ::close(fd);
  self->done.store(true, std::memory_order_release);
}

}  // namespace net
}  // namespace deepeverest
