#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace deepeverest {
namespace net {

Result<HttpClient> HttpClient::Connect(const std::string& host, uint16_t port,
                                       double timeout_seconds) {
  if (timeout_seconds <= 0.0) {
    return Status::InvalidArgument("timeout_seconds must be > 0");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + error);
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return HttpClient(fd, timeout_seconds);
}

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_),
      timeout_seconds_(other.timeout_seconds_),
      read_buffer_(std::move(other.read_buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    timeout_seconds_ = other.timeout_seconds_;
    read_buffer_ = std::move(other.read_buffer_);
    other.fd_ = -1;
  }
  return *this;
}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Status HttpClient::SendAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status error =
          Status::IOError(std::string("send: ") + std::strerror(errno));
      Close();
      return error;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status HttpClient::SendRequest(const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               const std::string& content_type) {
  if (fd_ < 0) return Status::FailedPrecondition("client is disconnected");
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: deepeverest\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: " + content_type + "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  return SendAll(request);
}

Result<HttpResponse> HttpClient::Request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body,
                                         const std::string& content_type) {
  DE_RETURN_NOT_OK(SendRequest(method, target, body, content_type));
  return ReadResponse(nullptr);
}

Result<HttpResponse> HttpClient::GetStream(const std::string& target,
                                           const LineCallback& on_line) {
  if (!on_line) return Status::InvalidArgument("on_line callback is required");
  DE_RETURN_NOT_OK(SendRequest("GET", target, "", "application/json"));
  return ReadResponse(&on_line);
}

Result<HttpResponse> HttpClient::PostStream(const std::string& target,
                                            const std::string& body,
                                            const LineCallback& on_line) {
  if (!on_line) return Status::InvalidArgument("on_line callback is required");
  DE_RETURN_NOT_OK(SendRequest("POST", target, body, "application/json"));
  return ReadResponse(&on_line);
}

Result<HttpResponse> HttpClient::ReadResponse(const LineCallback* on_line) {
  // The timeout is *idle* time — reset whenever bytes arrive — so a long
  // NDJSON stream that keeps emitting progress is never cut off, while a
  // stalled server still trips it.
  auto last_progress = std::chrono::steady_clock::now();
  char buffer[8192];
  bool saw_eof = false;  // clean close (recv == 0), vs. timeout/error

  // Pulls more bytes into read_buffer_; IOError on timeout/close.
  auto read_more = [&]() -> Status {
    for (;;) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        last_progress)
              .count();
      if (elapsed >= timeout_seconds_) {
        Close();
        return Status::IOError("response timed out");
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, 100);
      if (ready < 0) {
        if (errno == EINTR) continue;
        const Status error =
            Status::IOError(std::string("poll: ") + std::strerror(errno));
        Close();
        return error;
      }
      if (ready == 0) continue;
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status error =
            Status::IOError(std::string("recv: ") + std::strerror(errno));
        Close();
        return error;
      }
      if (n == 0) {
        saw_eof = true;
        Close();
        return Status::IOError("connection closed mid-response");
      }
      read_buffer_.append(buffer, static_cast<size_t>(n));
      last_progress = std::chrono::steady_clock::now();
      return Status::OK();
    }
  };

  // --- Head: status line + headers. ---
  size_t head_end;
  while ((head_end = read_buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (read_buffer_.size() > kMaxHeaderBytes) {
      Close();
      return Status::ResourceExhausted("response head exceeds limit");
    }
    DE_RETURN_NOT_OK(read_more());
  }
  const std::string head = read_buffer_.substr(0, head_end);
  read_buffer_.erase(0, head_end + 4);

  HttpResponse response;
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) line_end = head.size();
  const std::string status_line = head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || status_line.compare(0, 5, "HTTP/") != 0) {
    Close();
    return Status::IOError("malformed status line: " + status_line);
  }
  const size_t sp2 = status_line.find(' ', sp1 + 1);
  const std::string code_token =
      status_line.substr(sp1 + 1, sp2 == std::string::npos
                                      ? std::string::npos
                                      : sp2 - sp1 - 1);
  char* end = nullptr;
  response.status = static_cast<int>(std::strtol(code_token.c_str(), &end, 10));
  if (end != code_token.c_str() + code_token.size() || response.status < 100) {
    Close();
    return Status::IOError("malformed status code: " + status_line);
  }
  if (sp2 != std::string::npos) response.reason = status_line.substr(sp2 + 1);

  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    const size_t value_begin = value.find_first_not_of(" \t");
    value = value_begin == std::string::npos ? "" : value.substr(value_begin);
    response.headers[AsciiLower(line.substr(0, colon))] = std::move(value);
  }

  // --- Body. ---
  const bool chunked =
      AsciiLower(response.HeaderOrEmpty("transfer-encoding")) == "chunked";
  if (chunked) {
    ChunkedDecoder decoder;
    std::string line_accumulator;
    bool abandoned = false;
    auto deliver = [&](std::string&& decoded) {
      if (on_line == nullptr) {
        response.body += decoded;
        return;
      }
      line_accumulator += decoded;
      size_t newline;
      while (!abandoned &&
             (newline = line_accumulator.find('\n')) != std::string::npos) {
        std::string line = line_accumulator.substr(0, newline);
        line_accumulator.erase(0, newline + 1);
        if (!(*on_line)(line)) abandoned = true;
      }
    };
    for (;;) {
      if (!read_buffer_.empty()) {
        const std::string bytes = std::move(read_buffer_);
        read_buffer_.clear();
        const Status fed = decoder.Feed(bytes.data(), bytes.size());
        if (!fed.ok()) {
          Close();
          return fed;
        }
        deliver(decoder.TakeOutput());
        // Buffered chunked bodies get the same cap as Content-Length ones
        // (streamed lines are consumed, not accumulated, so no cap there).
        if (on_line == nullptr && response.body.size() > kMaxBodyBytes) {
          Close();
          return Status::ResourceExhausted("response body exceeds limit");
        }
        if (abandoned) {
          // Stream abandoned by the callback: hard-close so the server sees
          // the disconnect now, not at keep-alive timeout.
          Close();
          return response;
        }
      }
      if (decoder.complete()) break;
      DE_RETURN_NOT_OK(read_more());
    }
    if (on_line != nullptr && !line_accumulator.empty()) {
      (*on_line)(line_accumulator);
    }
    return response;
  }

  const std::string& length_header = response.HeaderOrEmpty("content-length");
  if (!length_header.empty()) {
    char* len_end = nullptr;
    const unsigned long long length =
        std::strtoull(length_header.c_str(), &len_end, 10);
    if (len_end != length_header.c_str() + length_header.size() ||
        length > kMaxBodyBytes) {
      Close();
      return Status::IOError("malformed Content-Length");
    }
    while (read_buffer_.size() < length) DE_RETURN_NOT_OK(read_more());
    response.body = read_buffer_.substr(0, static_cast<size_t>(length));
    read_buffer_.erase(0, static_cast<size_t>(length));
    if (on_line != nullptr && !response.body.empty()) {
      // A non-chunked response to a stream request (an error, typically) is
      // still surfaced through the callback for uniform handling.
      (*on_line)(response.body);
    }
    return response;
  }

  // No framing: body runs to connection close (HTTP/1.0 style). Only a
  // clean close terminates it — a timeout or recv error would otherwise
  // hand back a truncated body as success.
  for (;;) {
    response.body += read_buffer_;
    read_buffer_.clear();
    if (response.body.size() > kMaxBodyBytes) {
      Close();
      return Status::ResourceExhausted("response body exceeds limit");
    }
    const Status more = read_more();
    if (!more.ok()) {
      if (saw_eof) break;
      return more;
    }
  }
  return response;
}

}  // namespace net
}  // namespace deepeverest
