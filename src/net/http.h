#ifndef DEEPEVEREST_NET_HTTP_H_
#define DEEPEVEREST_NET_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace deepeverest {
namespace net {

/// \brief HTTP/1.1 message types and wire-format helpers shared by the
/// server and the client. Socket-free by design: everything here consumes
/// and produces byte strings, so the parsing hot spots (the exact code an
/// attacker reaches first) are unit-testable — and sanitizer-testable —
/// without a network.

/// Parse-size guards. Requests exceeding them are rejected with 431/413
/// before any allocation proportional to the claimed size.
inline constexpr size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;

/// \brief One parsed request. Header names are lowercased; the target is
/// split into `path` (percent-decoded) and `query` parameters.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim, case-sensitive)
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  std::string target;  // raw request-target, e.g. "/v1/query?stream=1"
  std::string path;    // percent-decoded path, e.g. "/v1/query"
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;

  /// Header lookup by lowercase name; empty string when absent.
  const std::string& HeaderOrEmpty(const std::string& lower_name) const;
};

/// \brief One parsed response (client side).
struct HttpResponse {
  int status = 0;
  std::string reason;
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;  // chunked bodies arrive already de-chunked

  const std::string& HeaderOrEmpty(const std::string& lower_name) const;
};

/// Canonical reason phrase for `status` ("OK", "Not Found", ...).
const char* HttpStatusText(int status);

/// ASCII-lowercases `s` (header names and connection options are
/// case-insensitive per RFC 9110).
std::string AsciiLower(std::string s);

/// Serialises a response head: status line plus `headers` (verbatim order)
/// and the trailing blank line.
std::string FormatResponseHead(
    int status, const std::vector<std::pair<std::string, std::string>>& headers);

/// Percent-decodes `text` ('+' is NOT treated as space in paths; it is in
/// query strings — pass `plus_is_space`). Invalid %XX sequences fail.
Result<std::string> PercentDecode(const std::string& text, bool plus_is_space);

/// Percent-encodes `text` as one query-string value: unreserved characters
/// (RFC 3986: alnum, '-', '_', '.', '~') pass through, everything else —
/// including '&', '=', and space — becomes %XX. Clients use this to put
/// declarative QL text into a `GET /v1/ql?ql=...` target.
std::string PercentEncode(const std::string& text);

/// Splits "a=1&b=x%20y" into decoded key/value pairs. Keys without '=' map
/// to the empty string.
Result<std::map<std::string, std::string>> ParseQueryString(
    const std::string& query);

/// \brief Incremental HTTP/1.1 request-head parser used by the server's
/// connection loop: feed bytes as they arrive, then check `complete()`.
///
/// The head (request line + headers) is parsed once the terminating CRLFCRLF
/// is seen; the body is then accumulated until Content-Length bytes are
/// available. Chunked *request* bodies are not accepted (the query API never
/// needs them) — a request declaring `Transfer-Encoding` fails with
/// InvalidArgument.
class HttpRequestParser {
 public:
  /// Appends raw bytes. Returns InvalidArgument on malformed input,
  /// ResourceExhausted when a size guard trips. After an error the parser is
  /// poisoned (every later Feed fails).
  Status Feed(const char* data, size_t size);

  /// True once one full request (head + body) is buffered.
  bool complete() const { return state_ == State::kComplete; }

  /// After a ResourceExhausted error: true when the *body* guard tripped
  /// (declared Content-Length too large → 413), false when the head guard
  /// did (→ 431).
  bool body_too_large() const { return body_too_large_; }

  /// The parsed request; valid only when complete(). Resets the parser so
  /// the next Feed starts a new request (HTTP/1.1 keep-alive).
  HttpRequest TakeRequest();

  /// Bytes fed beyond the completed request (pipelined follow-up request).
  const std::string& leftover() const { return buffer_; }

 private:
  enum class State { kHead, kBody, kComplete, kError };

  Status ParseHead();

  State state_ = State::kHead;
  std::string buffer_;
  HttpRequest request_;
  size_t body_remaining_ = 0;
  bool body_too_large_ = false;
  Status error_ = Status::OK();
};

/// \brief Incremental `Transfer-Encoding: chunked` decoder (client side).
/// Feed raw body bytes; decoded payload accumulates in `TakeOutput()`.
class ChunkedDecoder {
 public:
  /// Returns InvalidArgument on a malformed chunk framing.
  Status Feed(const char* data, size_t size);

  /// True once the terminating 0-size chunk (and final CRLF) was consumed.
  bool complete() const { return state_ == State::kComplete; }

  /// Decoded bytes accumulated since the last call; clears the buffer.
  std::string TakeOutput();

 private:
  enum class State { kSizeLine, kData, kDataCrlf, kTrailer, kComplete, kError };

  State state_ = State::kSizeLine;
  std::string pending_;     // undecoded carry-over (partial size line / CRLF)
  std::string output_;      // decoded payload
  size_t chunk_remaining_ = 0;
};

}  // namespace net
}  // namespace deepeverest

#endif  // DEEPEVEREST_NET_HTTP_H_
